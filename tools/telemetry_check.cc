// telemetry_check: validate telemetry artifacts in CI.
//
//   telemetry_check --jsonl=<path>   validate a TEMPO_TELEMETRY_OUT stream
//   telemetry_check --flight=<path>  validate a TEMPO_FLIGHT_OUT dump
//
// Both flags may be given at once. JSONL validation requires every line
// to parse as a JSON object with a "type" field and counts the record
// types (at least one "sample" record must be present — the sampler
// takes a final sample even on short runs). Flight validation requires a
// parseable Perfetto/chrome-trace document: a "traceEvents" array whose
// entries carry name/ph/ts, plus the schema_version / events_appended /
// dropped_events bookkeeping the dumpers write.
//
// Exit codes: 0 = valid; 1 = validation failure; 2 = usage or I/O error.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: telemetry_check [--jsonl=<path>] [--flight=<path>]\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

int CheckJsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "telemetry_check: cannot open %s\n", path.c_str());
    return 2;
  }
  std::string line;
  uint64_t records = 0;
  uint64_t samples = 0;
  uint64_t slow_queries = 0;
  uint64_t other = 0;
  while (std::getline(in, line)) {
    ++records;
    auto parsed = tempo::Json::Parse(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "telemetry_check: %s line %llu does not parse: %s\n",
                   path.c_str(), static_cast<unsigned long long>(records),
                   parsed.status().ToString().c_str());
      return 1;
    }
    if (!parsed->is_object()) {
      std::fprintf(stderr, "telemetry_check: %s line %llu is not an object\n",
                   path.c_str(), static_cast<unsigned long long>(records));
      return 1;
    }
    const tempo::Json* type = parsed->Find("type");
    if (type == nullptr || !type->is_string()) {
      std::fprintf(stderr,
                   "telemetry_check: %s line %llu has no \"type\" field\n",
                   path.c_str(), static_cast<unsigned long long>(records));
      return 1;
    }
    if (type->AsString() == "sample") {
      ++samples;
    } else if (type->AsString() == "slow_query") {
      ++slow_queries;
    } else {
      ++other;
    }
  }
  if (samples == 0) {
    std::fprintf(stderr,
                 "telemetry_check: %s has no \"sample\" records (%llu lines)\n",
                 path.c_str(), static_cast<unsigned long long>(records));
    return 1;
  }
  std::printf("telemetry_check: %s OK — %llu records (%llu samples, "
              "%llu slow queries, %llu other)\n",
              path.c_str(), static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(samples),
              static_cast<unsigned long long>(slow_queries),
              static_cast<unsigned long long>(other));
  return 0;
}

int CheckFlight(const std::string& path) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "telemetry_check: cannot open %s\n", path.c_str());
    return 2;
  }
  auto doc = tempo::Json::Parse(text);
  if (!doc.ok()) {
    std::fprintf(stderr, "telemetry_check: %s does not parse: %s\n",
                 path.c_str(), doc.status().ToString().c_str());
    return 1;
  }
  const tempo::Json* events = doc->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr,
                 "telemetry_check: %s has no traceEvents array\n",
                 path.c_str());
    return 1;
  }
  for (const char* key : {"schema_version", "events_appended",
                          "dropped_events"}) {
    const tempo::Json* v = doc->Find(key);
    if (v == nullptr || !v->is_number()) {
      std::fprintf(stderr, "telemetry_check: %s missing numeric \"%s\"\n",
                   path.c_str(), key);
      return 1;
    }
  }
  for (size_t i = 0; i < events->elements().size(); ++i) {
    const tempo::Json& e = events->elements()[i];
    const tempo::Json* name = e.Find("name");
    const tempo::Json* ph = e.Find("ph");
    const tempo::Json* ts = e.Find("ts");
    if (name == nullptr || !name->is_string() || ph == nullptr ||
        !ph->is_string() || ts == nullptr || !ts->is_number()) {
      std::fprintf(
          stderr,
          "telemetry_check: %s traceEvents[%llu] missing name/ph/ts\n",
          path.c_str(), static_cast<unsigned long long>(i));
      return 1;
    }
  }
  std::printf("telemetry_check: %s OK — %llu events, %llu appended, "
              "%llu dropped\n",
              path.c_str(),
              static_cast<unsigned long long>(events->elements().size()),
              static_cast<unsigned long long>(
                  doc->Find("events_appended")->AsNumber()),
              static_cast<unsigned long long>(
                  doc->Find("dropped_events")->AsNumber()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonl;
  std::string flight;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jsonl=", 0) == 0) {
      jsonl = arg.substr(8);
    } else if (arg.rfind("--flight=", 0) == 0) {
      flight = arg.substr(9);
    } else {
      return Usage();
    }
  }
  if (jsonl.empty() && flight.empty()) return Usage();
  if (!jsonl.empty()) {
    const int rc = CheckJsonl(jsonl);
    if (rc != 0) return rc;
  }
  if (!flight.empty()) {
    const int rc = CheckFlight(flight);
    if (rc != 0) return rc;
  }
  return 0;
}
