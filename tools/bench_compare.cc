// bench_compare: diff two BENCH_*.json reports and fail on charged-I/O
// regression beyond tolerance.
//
//   bench_compare <baseline.json> <current.json> [--tolerance=0.02]
//
// Exit codes: 0 = no regression; 1 = regression or reports not
// comparable (bench/scale/seed mismatch); 2 = usage, I/O or parse error.
// Wall-clock-valued keys are never compared (see IsVolatileBenchKey), so
// the gate is stable across machines: it trips only on deterministic
// quantities — charged I/O, priced costs, output cardinalities.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "obs/bench_compare.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare <baseline.json> <current.json> "
      "[--tolerance=<rel>]\n");
  return 2;
}

tempo::StatusOr<tempo::Json> LoadReport(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return tempo::Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  tempo::StatusOr<tempo::Json> doc = tempo::Json::Parse(buf.str());
  if (!doc.ok()) {
    return tempo::Status::InvalidArgument(
        path + ": " + std::string(doc.status().message()));
  }
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  tempo::BenchCompareOptions options;
  std::string paths[2];
  int num_paths = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tolerance=", 0) == 0) {
      char* end = nullptr;
      const std::string value = arg.substr(12);
      const double tol = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || tol < 0) {
        std::fprintf(stderr, "bad --tolerance value: %s\n", value.c_str());
        return 2;
      }
      options.tolerance = tol;
    } else if (num_paths < 2) {
      paths[num_paths++] = arg;
    } else {
      return Usage();
    }
  }
  if (num_paths != 2) return Usage();

  tempo::StatusOr<tempo::Json> baseline = LoadReport(paths[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 2;
  }
  tempo::StatusOr<tempo::Json> current = LoadReport(paths[1]);
  if (!current.ok()) {
    std::fprintf(stderr, "%s\n", current.status().ToString().c_str());
    return 2;
  }

  tempo::StatusOr<tempo::BenchCompareResult> result =
      tempo::CompareBenchReports(*baseline, *current, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  std::printf("bench_compare %s vs %s (tolerance %.4f)\n%s", paths[0].c_str(),
              paths[1].c_str(), options.tolerance,
              result->Render().c_str());
  return result->ok() ? 0 : 1;
}
