// Sequenced temporal queries: compose select / project / join /
// difference into one pipeline with sequenced (snapshot-reducible)
// semantics, including the valid-time outer and anti join variants.
//
// The scenario: employees with their departments over time, projects
// staffed per department over time. A left-outer join keeps every
// employee interval, NULL-padding the stretches during which their
// department ran no project; the anti join keeps *only* those
// stretches. Both come from the same primitive — the uncovered
// subintervals of each preserved tuple's validity (DESIGN.md §4i).
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/sequenced_pipeline

#include <cstdio>

#include "obs/explain.h"
#include "query/query_plan.h"
#include "query/sequenced_exec.h"
#include "storage/disk.h"
#include "storage/stored_relation.h"

using namespace tempo;

int main() {
  Disk disk;

  Schema emp_schema({{"emp", ValueType::kString},
                     {"dept", ValueType::kString}});
  StoredRelation employees(&disk, emp_schema, "employees");
  auto add_emp = [&](const char* emp, const char* dept, Chronon from,
                     Chronon to) {
    TEMPO_CHECK(employees.Append(Tuple({Value(emp), Value(dept)},
                                       Interval(from, to)))
                    .ok());
  };
  add_emp("ada", "research", 0, 400);
  add_emp("grace", "engineering", 50, 300);
  add_emp("edsger", "research", 150, 250);
  TEMPO_CHECK(employees.Flush().ok());

  Schema proj_schema({{"dept", ValueType::kString},
                      {"project", ValueType::kString}});
  StoredRelation projects(&disk, proj_schema, "projects");
  auto add_proj = [&](const char* dept, const char* project, Chronon from,
                      Chronon to) {
    TEMPO_CHECK(projects.Append(Tuple({Value(dept), Value(project)},
                                      Interval(from, to)))
                    .ok());
  };
  add_proj("research", "tempo", 100, 200);
  add_proj("research", "chronos", 320, 400);
  add_proj("engineering", "kernel", 0, 120);
  TEMPO_CHECK(projects.Flush().ok());

  // Left-outer join: every employee interval survives. Where the
  // department ran no project, the employee's *uncovered subintervals*
  // are emitted with `project` NULL-padded — e.g. ada's [0,99] before
  // "tempo" started and [201,319] between projects.
  QueryPlan plan = QueryPlan::Join(QueryPlan::Scan(&employees),
                                   QueryPlan::Scan(&projects),
                                   JoinKind::kLeftOuter)
                       .Project({"emp", "project"});

  ExecContext ctx;
  auto result = RunSequencedQuery(plan, &disk, QueryOptions{}, &ctx);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("who worked on what, gaps preserved (%llu rows):\n",
              static_cast<unsigned long long>(result->output_tuples));
  auto rows = result->relation->ReadAll();
  TEMPO_CHECK(rows.ok());
  for (const Tuple& t : *rows) std::printf("  %s\n", t.ToString().c_str());

  // The span tree shows one row per operator node (scans are free —
  // they are read by their parent), with the join node annotated with
  // its sequenced kind.
  ExplainOptions eopts;
  eopts.include_timing = false;  // deterministic columns only
  std::printf("\nEXPLAIN ANALYZE:\n%s", ExplainAnalyze(ctx, eopts).c_str());

  // The anti join is the complement: ONLY the uncovered stretches, under
  // the employee schema itself (no padding). Composes like any operator:
  // here restricted to the research department.
  QueryPlan idle = QueryPlan::Join(
      QueryPlan::Scan(&employees)
          .Select({"dept", CompareOp::kEq, Value("research")}),
      QueryPlan::Scan(&projects), JoinKind::kAnti);
  auto idle_result = RunSequencedQuery(idle, &disk);
  if (!idle_result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 idle_result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nresearch staff while no research project ran:\n");
  auto idle_rows = idle_result->relation->ReadAll();
  TEMPO_CHECK(idle_rows.ok());
  for (const Tuple& t : *idle_rows) {
    std::printf("  %s\n", t.ToString().c_str());
  }
  return 0;
}
