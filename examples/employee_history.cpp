// Reconstructing normalized temporal data — the paper's motivating use
// case ("Like its snapshot counterpart, the valid-time natural join
// supports the reconstruction of normalized data", Section 1).
//
// An HR database is decomposed into two valid-time relations keyed by
// employee id: one for salary history, one for position history. This
// example rebuilds the combined history with the valid-time natural join,
// asks point-in-time questions with the timeslice operator, coalesces
// redundant history, and uses the TE-outerjoin to find stretches where an
// employee drew a salary without an assigned position.

#include <cstdio>

#include "algebra/operators.h"
#include "algebra/temporal_joins.h"
#include "core/partition_join.h"
#include "storage/disk.h"
#include "storage/stored_relation.h"

using namespace tempo;

namespace {

void Print(const char* title, const std::vector<Tuple>& tuples) {
  std::printf("%s\n", title);
  for (const Tuple& t : tuples) std::printf("  %s\n", t.ToString().c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  Disk disk;

  // Salary history: (id, salary) @ validity. Normalized — salary changes
  // independently of position.
  Schema salary_schema({{"id", ValueType::kInt64},
                        {"salary", ValueType::kInt64}});
  StoredRelation salaries(&disk, salary_schema, "salaries");
  auto pay = [&](int64_t id, int64_t amount, Chronon from, Chronon to) {
    TEMPO_CHECK(salaries.Append(Tuple({Value(id), Value(amount)},
                                      Interval(from, to)))
                    .ok());
  };
  pay(1, 50000, 0, 99);
  pay(1, 60000, 100, 365);
  pay(2, 55000, 30, 200);
  pay(2, 55000, 201, 365);  // same salary, contiguous: coalescible
  pay(3, 70000, 0, 365);
  TEMPO_CHECK(salaries.Flush().ok());

  // Position history: (id, title) @ validity.
  Schema position_schema({{"id", ValueType::kInt64},
                          {"title", ValueType::kString}});
  StoredRelation positions(&disk, position_schema, "positions");
  auto assign = [&](int64_t id, const char* title, Chronon from, Chronon to) {
    TEMPO_CHECK(positions.Append(Tuple({Value(id), Value(title)},
                                       Interval(from, to)))
                    .ok());
  };
  assign(1, "engineer", 0, 180);
  assign(1, "manager", 181, 365);
  assign(2, "analyst", 60, 365);  // hired into a position 30 days late!
  TEMPO_CHECK(positions.Flush().ok());
  // Employee 3 draws a salary all year but never has a position.

  // --- Reconstruction: salaries |X|_v positions. -----------------------
  auto layout = DeriveNaturalJoinLayout(salary_schema, position_schema);
  TEMPO_CHECK(layout.ok());
  StoredRelation combined(&disk, layout->output, "combined");
  PartitionJoinOptions options;
  options.buffer_pages = 64;
  auto stats = PartitionVtJoin(&salaries, &positions, &combined, options);
  TEMPO_CHECK(stats.ok());
  auto combined_tuples = combined.ReadAll();
  TEMPO_CHECK(combined_tuples.ok());
  Print("combined (id, salary, title) history:", *combined_tuples);

  // --- Point-in-time query: the staff ledger on day 150. ---------------
  Print("timeslice at day 150:", Timeslice(*combined_tuples, 150));

  // --- Coalescing: employee 2's split-but-identical salary rows merge. --
  auto salary_tuples = salaries.ReadAll();
  TEMPO_CHECK(salary_tuples.ok());
  Print("salary history, coalesced:", Coalesce(*salary_tuples));

  // --- TE-outerjoin: salaried time without a position. -----------------
  auto position_tuples = positions.ReadAll();
  TEMPO_CHECK(position_tuples.ok());
  auto outer = TEOuterJoin(salary_schema, *salary_tuples, position_schema,
                           *position_tuples);
  TEMPO_CHECK(outer.ok());
  std::vector<Tuple> unassigned;
  for (const Tuple& t : outer->second) {
    if (t.value(2).is_null()) unassigned.push_back(t);
  }
  Print("salaried but unassigned (title NULL):", unassigned);

  return 0;
}
