// Bitemporal auditing — the paper's Section 5 destination ("a DBMS that
// supports both valid and transaction time").
//
// A payroll ledger records salaries with valid time (when the salary
// applied in the real world) under transaction time (when the database
// learned it). A correction arrives late: the database first believed one
// history, then revised it. Auditors need both answers:
//   "what do we NOW believe the March salary was?"      (current, vt=March)
//   "what did we believe IN FEBRUARY it was?"           (as-of, vt=March)
// plus headcount-over-time analytics via temporal aggregation.

#include <cstdio>

#include "algebra/aggregation.h"
#include "bitemporal/bitemporal_relation.h"

using namespace tempo;

namespace {

void Print(const char* title, const std::vector<Tuple>& tuples) {
  std::printf("%s\n", title);
  for (const Tuple& t : tuples) std::printf("  %s\n", t.ToString().c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  Disk disk;
  // Valid time in days-of-year; transaction time in commit sequence.
  Schema schema({{"emp", ValueType::kString},
                 {"salary", ValueType::kInt64}});
  BitemporalRelation payroll(&disk, schema, "payroll");

  auto tuple = [&](const char* emp, int64_t salary, Chronon from,
                   Chronon to) {
    return Tuple({Value(emp), Value(salary)}, Interval(from, to));
  };

  // Tx 10 (January): the year's salaries are loaded.
  TEMPO_CHECK(payroll.Insert(tuple("ada", 5000, 1, 365), 10).ok());
  TEMPO_CHECK(payroll.Insert(tuple("grace", 5500, 1, 365), 10).ok());

  // Tx 40 (February): grace gets a raise effective day 90.
  TEMPO_CHECK(payroll
                  .Update(tuple("grace", 5500, 1, 365),
                          tuple("grace", 5500, 1, 89), 40)
                  .ok());
  TEMPO_CHECK(payroll.Insert(tuple("grace", 6200, 90, 365), 40).ok());

  // Tx 70 (March): a late correction — ada's salary had actually been
  // 5200 since day 60 all along. The old belief is retracted, the
  // corrected history recorded.
  TEMPO_CHECK(payroll
                  .Update(tuple("ada", 5000, 1, 365),
                          tuple("ada", 5000, 1, 59), 70)
                  .ok());
  TEMPO_CHECK(payroll.Insert(tuple("ada", 5200, 60, 365), 70).ok());

  // --- The two audit questions about valid day 75. ----------------------
  auto now_belief = payroll.Timeslice(/*as_of=*/80, /*vt=*/75);
  TEMPO_CHECK(now_belief.ok());
  Print("current belief about day 75:", *now_belief);

  auto feb_belief = payroll.Timeslice(/*as_of=*/50, /*vt=*/75);
  TEMPO_CHECK(feb_belief.ok());
  Print("what the database believed at tx 50 about day 75:", *feb_belief);

  // --- Full current history, reconstructed. ----------------------------
  auto current = payroll.SnapshotAsOf(80);
  TEMPO_CHECK(current.ok());
  Print("current valid-time history:", *current);

  // --- Analytics: total salary burn over time (temporal SUM). ----------
  AggregationSpec spec;
  spec.fn = AggregateFn::kSum;
  spec.value_attr = 1;
  auto burn = TemporalAggregate(schema, *current, spec);
  TEMPO_CHECK(burn.ok());
  Print("total salary over time (temporal SUM):", burn->second);

  // --- The audit trail itself: every version with its tx interval. -----
  auto versions = payroll.ReadAllVersions();
  TEMPO_CHECK(versions.ok());
  std::printf("audit trail (%llu versions, none ever deleted):\n",
              static_cast<unsigned long long>(payroll.num_versions()));
  for (const Tuple& v : *versions) {
    std::printf("  %s\n", v.ToString().c_str());
  }
  return 0;
}
