// Quickstart: build two small valid-time relations, evaluate their
// valid-time natural join through the JoinRequest facade, and inspect the
// I/O the run performed — including the EXPLAIN ANALYZE span tree of a
// planner-chosen run.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/planner.h"
#include "obs/explain.h"
#include "service/join_request.h"
#include "storage/disk.h"
#include "storage/stored_relation.h"

using namespace tempo;

int main() {
  // A simulated disk volume; every page access is classified as random or
  // sequential and counted.
  Disk disk;

  // Employees with the department they worked in, stamped with validity
  // intervals (chronons; think "days since epoch").
  Schema emp_schema({{"emp", ValueType::kString},
                     {"dept", ValueType::kString}});
  StoredRelation employees(&disk, emp_schema, "employees");
  auto add_emp = [&](const char* emp, const char* dept, Chronon from,
                     Chronon to) {
    TEMPO_CHECK(employees.Append(Tuple({Value(emp), Value(dept)},
                                       Interval(from, to)))
                    .ok());
  };
  add_emp("ada", "engineering", 0, 120);
  add_emp("ada", "research", 121, 400);
  add_emp("grace", "engineering", 50, 300);
  add_emp("edsger", "research", 10, 90);
  TEMPO_CHECK(employees.Flush().ok());

  // Department budgets over time. "dept" is the shared attribute, so the
  // natural join matches on it.
  Schema dept_schema({{"dept", ValueType::kString},
                      {"budget", ValueType::kInt64}});
  StoredRelation budgets(&disk, dept_schema, "budgets");
  auto add_budget = [&](const char* dept, int64_t budget, Chronon from,
                        Chronon to) {
    TEMPO_CHECK(budgets.Append(Tuple({Value(dept), Value(budget)},
                                     Interval(from, to)))
                    .ok());
  };
  add_budget("engineering", 1000, 0, 200);
  add_budget("engineering", 1500, 201, 400);
  add_budget("research", 700, 0, 150);
  add_budget("research", 900, 151, 400);
  TEMPO_CHECK(budgets.Flush().ok());

  // The join output schema is derived from the inputs: shared attributes
  // first, then each side's own attributes; timestamps are implicit.
  auto layout = DeriveNaturalJoinLayout(emp_schema, dept_schema);
  TEMPO_CHECK(layout.ok());
  StoredRelation result(&disk, layout->output, "result");

  // Evaluate employees |X|_v budgets with the paper's partition join.
  // Every executor runs through the same facade: describe the join as a
  // JoinRequest and hand it to RunJoin.
  JoinRequest request;
  request.From(&employees, &budgets)
      .Using(JoinExecutor::kPartition)
      .BufferPages(64)                      // main-memory budget, in pages
      .Model(CostModel::Ratio(5.0));        // random : sequential = 5:1
  auto stats = RunJoin(request, &result);
  if (!stats.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  std::printf("employee x budget history (%llu tuples):\n",
              static_cast<unsigned long long>(stats->output_tuples));
  auto tuples = result.ReadAll();
  TEMPO_CHECK(tuples.ok());
  for (const Tuple& t : *tuples) {
    std::printf("  %s\n", t.ToString().c_str());
  }

  std::printf("\nI/O performed: %s\n", stats->io.ToString().c_str());
  std::printf("weighted cost at 5:1: %.0f\n",
              stats->Cost(request.options.cost_model));

  // Same join through the cost-based planner (JoinExecutor::kAuto, the
  // default), this time with an ExecContext attached: every phase runs
  // under a traced span, and ExplainAnalyze prints the tree with
  // planner-estimated vs. actual cost, the random/sequential split, and
  // the typed metrics.
  StoredRelation result2(&disk, layout->output, "result2");
  ExecContext ctx;
  JoinRequest planned_request;
  planned_request.From(&employees, &budgets).BufferPages(64);
  auto planned = RunJoin(planned_request, &result2, &ctx);
  if (!planned.ok()) {
    std::fprintf(stderr, "planned join failed: %s\n",
                 planned.status().ToString().c_str());
    return 1;
  }
  std::printf("\nEXPLAIN ANALYZE (planner picked %s):\n%s",
              JoinAlgorithmName(static_cast<JoinAlgorithm>(
                  static_cast<int>(planned->Get(Metric::kPlannedAlgorithm)))),
              ExplainAnalyze(ctx).c_str());
  return 0;
}
