// Concurrent query service: several sessions submit valid-time joins at
// once against shared relations. Each admitted query reserves its whole
// buffer budget in the shared pool (excess queries wait in FIFO order),
// and all queries multiplex their CPU-bound morsels onto one
// work-stealing scheduler — yet every query's output and charged I/O are
// identical to running it alone.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/concurrent_service

#include <cstdio>
#include <memory>
#include <vector>

#include "service/query_service.h"
#include "workload/generator.h"

using namespace tempo;

int main() {
  Disk disk;

  // Two generated relations sharing only the "key" attribute.
  WorkloadSpec spec;
  spec.num_tuples = 4096;
  spec.num_long_lived = 256;
  spec.lifespan = 100000;
  spec.distinct_keys = 512;
  spec.tuple_bytes = 64;
  spec.seed = 3;
  auto r = GenerateRelation(&disk, spec, "r");
  TEMPO_CHECK(r.ok());
  spec.seed = 1003;
  auto s_gen = GenerateRelation(&disk, spec, "s_gen");
  TEMPO_CHECK(s_gen.ok());
  Schema s_schema({{"key", ValueType::kInt64}, {"spad", ValueType::kString}});
  StoredRelation s(&disk, s_schema, "s");
  auto s_tuples = (*s_gen)->ReadAll();
  TEMPO_CHECK(s_tuples.ok());
  TEMPO_CHECK(s.AppendAll(*s_tuples).ok());
  TEMPO_CHECK(s.Flush().ok());

  // One service: a shared buffer pool with admission control and a shared
  // scheduler. A pool of 96 pages admits three 32-page queries at once;
  // the rest queue FIFO.
  QueryServiceOptions options;
  options.pool_pages = 96;
  options.scheduler.num_threads = 4;
  auto service = QueryService::Create(&disk, options);
  TEMPO_CHECK(service.ok());
  TEMPO_CHECK((*service)->Register(r->get()).ok());
  TEMPO_CHECK((*service)->Register(&s).ok());

  Session session = (*service)->OpenSession();

  // Submit eight joins at once: different executors, same inputs. Submit
  // returns immediately; each QueryHandle is a future over its result.
  const JoinExecutor executors[] = {
      JoinExecutor::kAuto,      JoinExecutor::kPartition,
      JoinExecutor::kSortMerge, JoinExecutor::kNestedLoop,
      JoinExecutor::kAuto,      JoinExecutor::kPartition,
      JoinExecutor::kSortMerge, JoinExecutor::kAuto,
  };
  std::vector<std::unique_ptr<QueryHandle>> handles;
  for (JoinExecutor executor : executors) {
    JoinRequest request;
    request.From(r->get(), &s).Using(executor).BufferPages(32);
    auto handle = session.Submit(request);
    TEMPO_CHECK(handle.ok());
    handles.push_back(*std::move(handle));
  }

  for (size_t i = 0; i < handles.size(); ++i) {
    Status st = handles[i]->Wait();
    TEMPO_CHECK(st.ok());
    std::printf("query %zu (%-11s): %8llu tuples, waited %8.0f us, io %s\n",
                i, JoinExecutorName(executors[i]),
                static_cast<unsigned long long>(
                    handles[i]->stats().output_tuples),
                handles[i]->admission_wait_us(),
                handles[i]->stats().io.ToString().c_str());
  }

  MetricsRegistry metrics = (*service)->SnapshotMetrics();
  std::printf("\ncompleted: %.0f, admission queue peak: %.0f\n",
              metrics.Get(Metric::kQueriesCompleted),
              metrics.Get(Metric::kAdmissionQueuePeak));
  return 0;
}
