// Incremental evaluation — the direction the paper closes with
// (Section 5: "this work can be considered as the first step towards the
// construction of an incremental evaluation system").
//
// A sensor-fleet scenario: `readings` records which sensor ran which
// firmware over time; `deployments` records where each sensor was
// installed. Operations wants `firmware x location` history materialized
// and kept fresh as sensors re-flash and move. This example builds a
// MaterializedVtJoinView and maintains it under inserts and deletes,
// showing the partition-local I/O of each update next to what a full
// recompute would cost.

#include <cstdio>

#include "incremental/materialized_view.h"
#include "workload/generator.h"

using namespace tempo;

int main() {
  Disk disk;
  Random rng(7);

  Schema readings_schema({{"sensor", ValueType::kInt64},
                          {"firmware", ValueType::kString}});
  Schema deploy_schema({{"sensor", ValueType::kInt64},
                        {"site", ValueType::kString}});

  // A year of history for 64 sensors, with some long-lived rows.
  StoredRelation readings(&disk, readings_schema, "readings");
  StoredRelation deployments(&disk, deploy_schema, "deployments");
  const Chronon kYear = 365;
  const char* firmwares[] = {"v1.0", "v1.1", "v2.0"};
  const char* sites[] = {"north", "south", "harbor", "ridge"};
  for (int i = 0; i < 2000; ++i) {
    int64_t sensor = static_cast<int64_t>(rng.Uniform(64));
    Chronon start = rng.UniformRange(0, kYear - 1);
    Chronon end = std::min<Chronon>(kYear, start + rng.UniformRange(1, 90));
    TEMPO_CHECK(readings
                    .Append(Tuple({Value(sensor),
                                   Value(firmwares[rng.Uniform(3)])},
                                  Interval(start, end)))
                    .ok());
    sensor = static_cast<int64_t>(rng.Uniform(64));
    start = rng.UniformRange(0, kYear - 1);
    end = std::min<Chronon>(kYear, start + rng.UniformRange(1, 180));
    TEMPO_CHECK(deployments
                    .Append(Tuple({Value(sensor),
                                   Value(sites[rng.Uniform(4)])},
                                  Interval(start, end)))
                    .ok());
  }
  TEMPO_CHECK(readings.Flush().ok());
  TEMPO_CHECK(deployments.Flush().ok());

  // Build the materialized view (partitioned storage + per-partition
  // results + persistent long-lived caches).
  const CostModel model = CostModel::Ratio(5.0);
  disk.accountant().Reset();
  MaterializedVtJoinView view(&disk, "fw_by_site");
  TEMPO_CHECK(view.Build(&readings, &deployments, /*buffer_pages=*/8).ok());
  double build_cost = disk.accountant().stats().Cost(model);
  std::printf("view built: %llu result tuples across %zu partitions "
              "(cost %.0f)\n\n",
              static_cast<unsigned long long>(view.result_tuples()),
              view.num_partitions(), build_cost);

  // A sensor re-flashes for a week: one short insert.
  Tuple reflash({Value(int64_t{12}), Value("v2.1")}, Interval(200, 206));
  auto insert_stats = view.InsertR(reflash);
  TEMPO_CHECK(insert_stats.ok());
  std::printf("insert %s\n", reflash.ToString().c_str());
  std::printf("  touched %llu of %zu partitions, +%llu result tuples, "
              "cost %.0f (%.2f%% of build)\n\n",
              static_cast<unsigned long long>(
                  insert_stats->partitions_touched),
              view.num_partitions(),
              static_cast<unsigned long long>(insert_stats->result_delta),
              insert_stats->io.Cost(model),
              100.0 * insert_stats->io.Cost(model) / build_cost);

  // A sensor is deployed for the whole year: a long-lived insert touches
  // every partition it overlaps.
  Tuple long_deploy({Value(int64_t{12}), Value("lighthouse")},
                    Interval(0, kYear));
  auto long_stats = view.InsertS(long_deploy);
  TEMPO_CHECK(long_stats.ok());
  std::printf("insert %s\n", long_deploy.ToString().c_str());
  std::printf("  touched %llu of %zu partitions, +%llu result tuples, "
              "cost %.0f (%.2f%% of build)\n\n",
              static_cast<unsigned long long>(long_stats->partitions_touched),
              view.num_partitions(),
              static_cast<unsigned long long>(long_stats->result_delta),
              long_stats->io.Cost(model),
              100.0 * long_stats->io.Cost(model) / build_cost);

  // Retract the re-flash: partition-local recomputation.
  auto delete_stats = view.DeleteR(reflash);
  TEMPO_CHECK(delete_stats.ok());
  std::printf("delete %s\n", reflash.ToString().c_str());
  std::printf("  touched %llu partitions, cost %.0f (%.2f%% of build)\n\n",
              static_cast<unsigned long long>(
                  delete_stats->partitions_touched),
              delete_stats->io.Cost(model),
              100.0 * delete_stats->io.Cost(model) / build_cost);

  std::printf("view now holds %llu result tuples\n",
              static_cast<unsigned long long>(view.result_tuples()));
  return 0;
}
