// The wider valid-time join family (paper Section 4.1) and the algebra
// operators, on a reservation-system scenario.
//
// `bookings` holds room reservations; `maintenance` holds maintenance
// windows per room. We answer:
//  - which reservations clash with maintenance at all (overlap join),
//  - which maintenance windows fall entirely inside one reservation
//    (contain join, evaluated through the partition framework),
//  - which bookings contain a maintenance window (contain-semijoin),
//  - the rooms' total booked time (coalescing + projection), and
//  - union/difference of two booking calendars.

#include <cstdio>

#include "algebra/operators.h"
#include "algebra/temporal_joins.h"
#include "storage/disk.h"
#include "storage/stored_relation.h"

using namespace tempo;

namespace {

void Print(const char* title, const std::vector<Tuple>& tuples) {
  std::printf("%s\n", title);
  for (const Tuple& t : tuples) std::printf("  %s\n", t.ToString().c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  Disk disk;

  Schema booking_schema({{"room", ValueType::kInt64},
                         {"guest", ValueType::kString}});
  Schema maint_schema({{"room", ValueType::kInt64},
                       {"task", ValueType::kString}});

  StoredRelation bookings(&disk, booking_schema, "bookings");
  auto book = [&](int64_t room, const char* guest, Chronon from, Chronon to) {
    TEMPO_CHECK(bookings.Append(Tuple({Value(room), Value(guest)},
                                      Interval(from, to)))
                    .ok());
  };
  book(101, "ada", 10, 40);
  book(101, "alan", 41, 45);
  book(102, "grace", 0, 90);
  book(103, "edsger", 20, 25);
  TEMPO_CHECK(bookings.Flush().ok());

  StoredRelation maintenance(&disk, maint_schema, "maintenance");
  auto maintain = [&](int64_t room, const char* task, Chronon from,
                      Chronon to) {
    TEMPO_CHECK(maintenance.Append(Tuple({Value(room), Value(task)},
                                         Interval(from, to)))
                    .ok());
  };
  maintain(101, "hvac", 35, 42);     // clashes with two bookings
  maintain(102, "paint", 30, 33);    // inside grace's long stay
  maintain(103, "roof", 50, 60);     // no clash
  TEMPO_CHECK(maintenance.Flush().ok());

  auto layout = DeriveNaturalJoinLayout(booking_schema, maint_schema);
  TEMPO_CHECK(layout.ok());

  PartitionJoinOptions options;
  options.buffer_pages = 32;

  // --- Overlap join: every clash, stamped with the clash interval. -----
  {
    StoredRelation out(&disk, layout->output, "clashes");
    auto stats = PartitionTemporalJoin(&bookings, &maintenance, &out,
                                       IntervalJoinPredicate::kOverlap,
                                       options);
    TEMPO_CHECK(stats.ok());
    auto tuples = out.ReadAll();
    TEMPO_CHECK(tuples.ok());
    Print("reservation/maintenance clashes (overlap join):", *tuples);
  }

  // --- Contain join: maintenance wholly inside one reservation. --------
  {
    StoredRelation out(&disk, layout->output, "contained");
    auto stats = PartitionTemporalJoin(&bookings, &maintenance, &out,
                                       IntervalJoinPredicate::kContains,
                                       options);
    TEMPO_CHECK(stats.ok());
    auto tuples = out.ReadAll();
    TEMPO_CHECK(tuples.ok());
    Print("maintenance inside a single reservation (contain join):",
          *tuples);
  }

  // --- Contain-semijoin: the bookings that contain maintenance. --------
  {
    auto booked = bookings.ReadAll();
    auto maint = maintenance.ReadAll();
    TEMPO_CHECK(booked.ok());
    TEMPO_CHECK(maint.ok());
    auto semi = ContainSemiJoin(booking_schema, *booked, maint_schema,
                                *maint);
    TEMPO_CHECK(semi.ok());
    Print("bookings containing a maintenance window (contain-semijoin):",
          *semi);

    // --- Occupancy per room: project to room, coalesce. -----------------
    auto occupancy = Project(booking_schema, *booked, {0});
    TEMPO_CHECK(occupancy.ok());
    Print("room occupancy (projection + coalescing):", occupancy->second);

    // --- Allen selection: bookings strictly inside the month [0, 50]. ---
    Print("bookings during [0, 50]:",
          SelectAllen(*booked, AllenRelation::kDuring, Interval(0, 50)));

    // --- Calendar algebra: bookings not blocked by maintenance. ---------
    std::vector<Tuple> blocked;
    for (const Tuple& m : *maint) {
      // Rebuild maintenance rows in the booking schema by room to compare
      // value-equivalence per room id only.
      blocked.push_back(Tuple({m.value(0), Value("")}, m.interval()));
    }
    auto rooms_only = Project(booking_schema, *booked, {0});
    auto blocked_only = Project(booking_schema, blocked, {0});
    TEMPO_CHECK(rooms_only.ok());
    TEMPO_CHECK(blocked_only.ok());
    Print("bookable-and-booked time net of maintenance (difference):",
          VtDifference(rooms_only->second, blocked_only->second));
  }
  return 0;
}
