#ifndef TEMPO_ALGEBRA_AGGREGATION_H_
#define TEMPO_ALGEBRA_AGGREGATION_H_

#include <vector>

#include "common/statusor.h"
#include "relation/schema.h"
#include "relation/tuple.h"

namespace tempo {

/// Temporal aggregation: the aggregate of the tuples valid at each
/// instant, reported as maximal intervals over which its value is
/// constant. (The paper's simulations credit "the aggregation tree
/// implementation" [Kline & Snodgrass] for exactly this computation; we
/// implement it with an equivalent endpoint sweep — coverage is
/// piecewise constant between interval endpoints, so the sweep visits
/// each distinct endpoint once.)
///
/// Example: COUNT over {[0,4], [2,6]} is (1)@[0,1], (2)@[2,4], (1)@[5,6].
enum class AggregateFn {
  kCount,  ///< number of valid tuples
  kSum,    ///< sum of an int64 attribute over valid tuples
  kMin,    ///< minimum of an int64 attribute over valid tuples
  kMax,    ///< maximum of an int64 attribute over valid tuples
};

const char* AggregateFnName(AggregateFn fn);

/// Options for TemporalAggregate.
struct AggregationSpec {
  AggregateFn fn = AggregateFn::kCount;
  /// Attribute position aggregated over (must be int64). Ignored for
  /// kCount.
  size_t value_attr = 0;
  /// Attribute positions to group by; one output series per group.
  std::vector<size_t> group_by;
};

/// Computes the temporal aggregate of `tuples` under `schema`.
/// Returns the output schema (group-by attributes + "<fn>" int64 column)
/// and the result tuples: for each group, one tuple per maximal interval
/// of constant aggregate value, ascending in time. Instants covered by
/// no tuple of a group produce no output (COUNT never reports 0).
///
/// O((n + distinct endpoints) log n) per group via an endpoint sweep
/// with a multiset of active values (for kMin/kMax) or a running
/// count/sum.
StatusOr<std::pair<Schema, std::vector<Tuple>>> TemporalAggregate(
    const Schema& schema, const std::vector<Tuple>& tuples,
    const AggregationSpec& spec);

}  // namespace tempo

#endif  // TEMPO_ALGEBRA_AGGREGATION_H_
