#ifndef TEMPO_ALGEBRA_TEMPORAL_JOINS_H_
#define TEMPO_ALGEBRA_TEMPORAL_JOINS_H_

#include <vector>

#include "common/statusor.h"
#include "core/partition_join.h"
#include "relation/schema.h"
#include "relation/tuple.h"

namespace tempo {

/// Evaluates a member of the valid-time join family (Section 4.1) through
/// the partition framework: the intersect-/overlap-join, contain-join and
/// interval-equality join all imply interval overlap, so the same
/// partitioning, migration and de-duplication machinery applies verbatim;
/// only the in-memory pair predicate changes. The equi-condition is the
/// natural one: the attributes the two schemas share by name (none shared
/// = the pure time-join T-join, a timestamp-filtered cross product).
///
/// The result tuple carries overlap(x[V], y[V]), which for kContains /
/// kContainedIn / kEqual equals the contained interval.
StatusOr<JoinRunStats> PartitionTemporalJoin(StoredRelation* r,
                                             StoredRelation* s,
                                             StoredRelation* out,
                                             IntervalJoinPredicate predicate,
                                             PartitionJoinOptions options);

/// Contain-semijoin [LM92]: the r tuples whose interval contains the
/// interval of at least one key-matching s tuple. In-memory operator;
/// result tuples keep r's schema and timestamps.
StatusOr<std::vector<Tuple>> ContainSemiJoin(const Schema& r_schema,
                                             const std::vector<Tuple>& r,
                                             const Schema& s_schema,
                                             const std::vector<Tuple>& s);

/// The event join / TE-outerjoin family [SG89]. The result schema is the
/// natural-join output schema; unmatched stretches are padded with NULLs.
///
/// TE-outerjoin (left outer): every natural-join result tuple, plus — for
/// each r tuple — the maximal subintervals of its validity not covered by
/// any key-matching, overlapping s tuple, with the s-side attributes NULL.
StatusOr<std::pair<Schema, std::vector<Tuple>>> TEOuterJoin(
    const Schema& r_schema, const std::vector<Tuple>& r,
    const Schema& s_schema, const std::vector<Tuple>& s);

/// Event join (full outer): TE-outerjoin plus the symmetric s-side
/// padding (r-side attributes NULL over s's uncovered subintervals).
StatusOr<std::pair<Schema, std::vector<Tuple>>> EventJoin(
    const Schema& r_schema, const std::vector<Tuple>& r,
    const Schema& s_schema, const std::vector<Tuple>& s);

}  // namespace tempo

#endif  // TEMPO_ALGEBRA_TEMPORAL_JOINS_H_
