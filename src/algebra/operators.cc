#include "algebra/operators.h"

#include <algorithm>
#include <map>

namespace tempo {

namespace {

// Groups tuples by their explicit-attribute values. Keys are serialized
// value lists; std::map gives deterministic group order.
std::map<std::string, std::vector<const Tuple*>> GroupByValue(
    const std::vector<Tuple>& tuples) {
  std::map<std::string, std::vector<const Tuple*>> groups;
  for (const Tuple& t : tuples) {
    std::string key;
    for (const Value& v : t.values()) {
      key += v.ToString();
      key.push_back('\x1f');
    }
    groups[key].push_back(&t);
  }
  return groups;
}

}  // namespace

std::vector<Tuple> Coalesce(const std::vector<Tuple>& tuples) {
  std::vector<Tuple> out;
  for (auto& [key, group] : GroupByValue(tuples)) {
    std::vector<Interval> intervals;
    intervals.reserve(group.size());
    for (const Tuple* t : group) intervals.push_back(t->interval());
    IntervalSet merged(std::move(intervals));
    for (const Interval& iv : merged.intervals()) {
      out.push_back(Tuple(group.front()->values(), iv));
    }
  }
  return out;
}

std::vector<Tuple> Timeslice(const std::vector<Tuple>& tuples, Chronon t) {
  std::vector<Tuple> out;
  for (const Tuple& tuple : tuples) {
    if (tuple.interval().Contains(t)) {
      out.push_back(Tuple(tuple.values(), Interval::At(t)));
    }
  }
  return out;
}

std::vector<Tuple> SelectAllen(const std::vector<Tuple>& tuples,
                               AllenRelation rel, const Interval& q) {
  std::vector<Tuple> out;
  for (const Tuple& t : tuples) {
    if (ClassifyAllen(t.interval(), q) == rel) out.push_back(t);
  }
  return out;
}

std::vector<Tuple> Select(const std::vector<Tuple>& tuples,
                          const std::function<bool(const Tuple&)>& pred) {
  std::vector<Tuple> out;
  for (const Tuple& t : tuples) {
    if (pred(t)) out.push_back(t);
  }
  return out;
}

StatusOr<std::pair<Schema, std::vector<Tuple>>> Project(
    const Schema& schema, const std::vector<Tuple>& tuples,
    const std::vector<size_t>& attrs) {
  std::vector<Attribute> out_attrs;
  for (size_t pos : attrs) {
    if (pos >= schema.num_attributes()) {
      return Status::InvalidArgument("projection position out of range: " +
                                     std::to_string(pos));
    }
    out_attrs.push_back(schema.attribute(pos));
  }
  TEMPO_ASSIGN_OR_RETURN(Schema out_schema, Schema::Make(out_attrs));
  std::vector<Tuple> projected;
  projected.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    std::vector<Value> values;
    values.reserve(attrs.size());
    for (size_t pos : attrs) values.push_back(t.value(pos));
    projected.push_back(Tuple(std::move(values), t.interval()));
  }
  return std::make_pair(std::move(out_schema), Coalesce(projected));
}

std::vector<Tuple> VtUnion(const std::vector<Tuple>& r,
                           const std::vector<Tuple>& s) {
  std::vector<Tuple> all = r;
  all.insert(all.end(), s.begin(), s.end());
  return Coalesce(all);
}

std::vector<Tuple> VtDifference(const std::vector<Tuple>& r,
                                const std::vector<Tuple>& s) {
  // For each value-group of r, subtract the time covered by the matching
  // value-group of s.
  auto s_groups = GroupByValue(s);
  std::vector<Tuple> out;
  for (auto& [key, group] : GroupByValue(r)) {
    std::vector<Interval> r_ivs;
    for (const Tuple* t : group) r_ivs.push_back(t->interval());
    IntervalSet r_set(std::move(r_ivs));

    IntervalSet s_set;
    auto it = s_groups.find(key);
    if (it != s_groups.end()) {
      std::vector<Interval> s_ivs;
      for (const Tuple* t : it->second) s_ivs.push_back(t->interval());
      s_set = IntervalSet(std::move(s_ivs));
    }
    IntervalSet remainder = r_set.Difference(s_set);
    for (const Interval& iv : remainder.intervals()) {
      out.push_back(Tuple(group.front()->values(), iv));
    }
  }
  return out;
}

}  // namespace tempo
