#ifndef TEMPO_ALGEBRA_OPERATORS_H_
#define TEMPO_ALGEBRA_OPERATORS_H_

#include <functional>
#include <vector>

#include "common/statusor.h"
#include "relation/schema.h"
#include "relation/tuple.h"
#include "temporal/allen.h"
#include "temporal/interval_set.h"

namespace tempo {

/// Coalescing [JSS92a]: merges value-equivalent tuples (equal on all
/// explicit attributes) whose validity intervals overlap or are adjacent
/// into maximal-interval tuples. The output is the canonical form used to
/// compare valid-time relations for snapshot equivalence; result order is
/// deterministic (grouped by value, intervals ascending).
std::vector<Tuple> Coalesce(const std::vector<Tuple>& tuples);

/// Valid-timeslice τ_t(r): the tuples valid at chronon `t`, their
/// timestamps collapsed to [t, t]. This is how a snapshot state is
/// reconstructed from a valid-time relation.
std::vector<Tuple> Timeslice(const std::vector<Tuple>& tuples, Chronon t);

/// Valid-time selection on the timestamp: keeps tuples whose validity
/// interval stands in relation `rel` to the query interval `q`
/// (e.g. kDuring for "valid entirely within q").
std::vector<Tuple> SelectAllen(const std::vector<Tuple>& tuples,
                               AllenRelation rel, const Interval& q);

/// Valid-time selection with an arbitrary predicate over the tuple.
std::vector<Tuple> Select(const std::vector<Tuple>& tuples,
                          const std::function<bool(const Tuple&)>& pred);

/// Valid-time projection π_attrs(r): keeps the attribute positions in
/// `attrs` (in the given order) and coalesces the result, since dropping
/// attributes can make previously distinct tuples value-equivalent.
/// Returns the projected schema alongside the tuples.
StatusOr<std::pair<Schema, std::vector<Tuple>>> Project(
    const Schema& schema, const std::vector<Tuple>& tuples,
    const std::vector<size_t>& attrs);

/// Valid-time union / difference with coalesced results.
std::vector<Tuple> VtUnion(const std::vector<Tuple>& r,
                           const std::vector<Tuple>& s);

/// Tuples of r restricted to the time not covered by value-equivalent
/// tuples of s (temporal difference r -ᵗ s).
std::vector<Tuple> VtDifference(const std::vector<Tuple>& r,
                                const std::vector<Tuple>& s);

}  // namespace tempo

#endif  // TEMPO_ALGEBRA_OPERATORS_H_
