#include "algebra/aggregation.h"

#include <algorithm>
#include <map>
#include <set>

namespace tempo {

const char* AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "count";
    case AggregateFn::kSum:
      return "sum";
    case AggregateFn::kMin:
      return "min";
    case AggregateFn::kMax:
      return "max";
  }
  return "?";
}

namespace {

/// Sweeps one group's intervals and appends the constant-value segments.
void SweepGroup(const std::vector<const Tuple*>& group,
                const AggregationSpec& spec,
                const std::vector<Value>& group_values,
                std::vector<Tuple>* out) {
  // Events: value enters at start, leaves after end.
  struct Event {
    Chronon at;
    bool enter;
    int64_t value;
  };
  std::vector<Event> events;
  events.reserve(group.size() * 2);
  for (const Tuple* t : group) {
    int64_t v = 0;
    if (spec.fn != AggregateFn::kCount) {
      v = t->value(spec.value_attr).AsInt64();
    }
    events.push_back({t->interval().start(), true, v});
    if (t->interval().end() != kChrononMax) {
      events.push_back({t->interval().end() + 1, false, v});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.enter < b.enter;  // exits before entries at t
            });

  int64_t count = 0;
  int64_t sum = 0;
  std::multiset<int64_t> active_values;  // only maintained for min/max

  auto current = [&]() -> int64_t {
    switch (spec.fn) {
      case AggregateFn::kCount:
        return count;
      case AggregateFn::kSum:
        return sum;
      case AggregateFn::kMin:
        return *active_values.begin();
      case AggregateFn::kMax:
        return *active_values.rbegin();
    }
    return 0;
  };

  bool open = false;
  Chronon seg_start = 0;
  int64_t seg_value = 0;
  auto close_segment = [&](Chronon end) {
    if (!open) return;
    std::vector<Value> values = group_values;
    values.emplace_back(seg_value);
    out->push_back(Tuple(std::move(values), Interval(seg_start, end)));
    open = false;
  };

  size_t i = 0;
  while (i < events.size()) {
    Chronon at = events[i].at;
    // Apply every event at this chronon.
    for (; i < events.size() && events[i].at == at; ++i) {
      const Event& e = events[i];
      int delta = e.enter ? 1 : -1;
      count += delta;
      sum += e.enter ? e.value : -e.value;
      if (spec.fn == AggregateFn::kMin || spec.fn == AggregateFn::kMax) {
        if (e.enter) {
          active_values.insert(e.value);
        } else {
          active_values.erase(active_values.find(e.value));
        }
      }
    }
    if (count == 0) {
      close_segment(at - 1);
      continue;
    }
    int64_t value = current();
    if (open && value == seg_value) continue;  // segment extends
    close_segment(at - 1);
    open = true;
    seg_start = at;
    seg_value = value;
  }
  // All intervals are closed, so the final exit event drives count to 0
  // and closes the last segment — unless a tuple ends at kChrononMax.
  close_segment(kChrononMax);
}

}  // namespace

StatusOr<std::pair<Schema, std::vector<Tuple>>> TemporalAggregate(
    const Schema& schema, const std::vector<Tuple>& tuples,
    const AggregationSpec& spec) {
  if (spec.fn != AggregateFn::kCount) {
    if (spec.value_attr >= schema.num_attributes()) {
      return Status::InvalidArgument("aggregate attribute out of range");
    }
    if (schema.attribute(spec.value_attr).type != ValueType::kInt64) {
      return Status::InvalidArgument(
          "aggregation requires an int64 attribute");
    }
  }
  std::vector<Attribute> out_attrs;
  for (size_t pos : spec.group_by) {
    if (pos >= schema.num_attributes()) {
      return Status::InvalidArgument("group-by attribute out of range");
    }
    out_attrs.push_back(schema.attribute(pos));
  }
  out_attrs.push_back(Attribute{AggregateFnName(spec.fn), ValueType::kInt64});
  TEMPO_ASSIGN_OR_RETURN(Schema out_schema,
                         Schema::Make(std::move(out_attrs)));

  // Group tuples by the group-by values (deterministic order).
  std::map<std::string, std::vector<const Tuple*>> groups;
  for (const Tuple& t : tuples) {
    std::string key;
    for (size_t pos : spec.group_by) {
      key += t.value(pos).ToString();
      key.push_back('\x1f');
    }
    groups[key].push_back(&t);
  }

  std::vector<Tuple> out;
  for (auto& [key, group] : groups) {
    std::vector<Value> group_values;
    group_values.reserve(spec.group_by.size());
    for (size_t pos : spec.group_by) {
      group_values.push_back(group.front()->value(pos));
    }
    SweepGroup(group, spec, group_values, &out);
  }
  return std::make_pair(std::move(out_schema), std::move(out));
}

}  // namespace tempo
