#include "algebra/temporal_joins.h"

#include <unordered_map>

#include "join/join_common.h"
#include "temporal/interval_set.h"

namespace tempo {

StatusOr<JoinRunStats> PartitionTemporalJoin(StoredRelation* r,
                                             StoredRelation* s,
                                             StoredRelation* out,
                                             IntervalJoinPredicate predicate,
                                             PartitionJoinOptions options) {
  options.predicate = TemporalPredicate::FromJoinPredicate(predicate);
  return PartitionVtJoin(r, s, out, options);
}

StatusOr<std::vector<Tuple>> ContainSemiJoin(const Schema& r_schema,
                                             const std::vector<Tuple>& r,
                                             const Schema& s_schema,
                                             const std::vector<Tuple>& s) {
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(r_schema, s_schema));
  HashedTupleIndex index(&s, &layout.s_join_attrs);
  std::vector<Tuple> out;
  for (const Tuple& x : r) {
    bool matched = false;
    index.ForEachMatch(x, layout.r_join_attrs, [&](const Tuple& y) {
      if (x.interval().Contains(y.interval())) matched = true;
    });
    if (matched) out.push_back(x);
  }
  return out;
}

namespace {

/// Emits, for each left tuple, the natural-join matches against the
/// indexed right side plus NULL-padded tuples over uncovered subintervals.
/// `left_is_r` selects attribute placement in the output layout.
void OuterJoinSide(const NaturalJoinLayout& layout,
                   const std::vector<Tuple>& left,
                   const HashedTupleIndex& right_index, bool left_is_r,
                   bool emit_matches, std::vector<Tuple>* out) {
  const std::vector<size_t>& left_keys =
      left_is_r ? layout.r_join_attrs : layout.s_join_attrs;
  for (const Tuple& x : left) {
    std::vector<Interval> covered;
    right_index.ForEachMatch(x, left_keys, [&](const Tuple& y) {
      auto common = Overlap(x.interval(), y.interval());
      if (!common) return;
      covered.push_back(*common);
      if (emit_matches) {
        out->push_back(left_is_r ? MakeJoinTuple(layout, x, y, *common)
                                 : MakeJoinTuple(layout, y, x, *common));
      }
    });
    // Pad the uncovered stretches of x's validity with NULLs.
    IntervalSet holes = SubtractAll(x.interval(), covered);
    for (const Interval& hole : holes.intervals()) {
      std::vector<Value> values;
      values.reserve(layout.output.num_attributes());
      if (left_is_r) {
        for (size_t pos : layout.r_join_attrs) values.push_back(x.value(pos));
        for (size_t pos : layout.r_rest) values.push_back(x.value(pos));
        for (size_t i = 0; i < layout.s_rest.size(); ++i) {
          values.push_back(Value::Null());
        }
      } else {
        for (size_t pos : layout.s_join_attrs) values.push_back(x.value(pos));
        for (size_t i = 0; i < layout.r_rest.size(); ++i) {
          values.push_back(Value::Null());
        }
        for (size_t pos : layout.s_rest) values.push_back(x.value(pos));
      }
      out->push_back(Tuple(std::move(values), hole));
    }
  }
}

}  // namespace

StatusOr<std::pair<Schema, std::vector<Tuple>>> TEOuterJoin(
    const Schema& r_schema, const std::vector<Tuple>& r,
    const Schema& s_schema, const std::vector<Tuple>& s) {
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(r_schema, s_schema));
  HashedTupleIndex s_index(&s, &layout.s_join_attrs);
  std::vector<Tuple> out;
  OuterJoinSide(layout, r, s_index, /*left_is_r=*/true,
                /*emit_matches=*/true, &out);
  return std::make_pair(layout.output, std::move(out));
}

StatusOr<std::pair<Schema, std::vector<Tuple>>> EventJoin(
    const Schema& r_schema, const std::vector<Tuple>& r,
    const Schema& s_schema, const std::vector<Tuple>& s) {
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(r_schema, s_schema));
  HashedTupleIndex s_index(&s, &layout.s_join_attrs);
  HashedTupleIndex r_index(&r, &layout.r_join_attrs);
  std::vector<Tuple> out;
  OuterJoinSide(layout, r, s_index, /*left_is_r=*/true,
                /*emit_matches=*/true, &out);
  // The s side only contributes its unmatched padding; the matches were
  // already emitted above.
  OuterJoinSide(layout, s, r_index, /*left_is_r=*/false,
                /*emit_matches=*/false, &out);
  return std::make_pair(layout.output, std::move(out));
}

}  // namespace tempo
