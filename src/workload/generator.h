#ifndef TEMPO_WORKLOAD_GENERATOR_H_
#define TEMPO_WORKLOAD_GENERATOR_H_

#include <memory>
#include <string>

#include "common/random.h"
#include "common/statusor.h"
#include "storage/stored_relation.h"

namespace tempo {

/// Synthetic valid-time relation specification, following the paper's
/// experiment setups (Sections 4.2-4.4):
///
///  - `num_tuples - num_long_lived` tuples are "randomly distributed over
///    the lifespan of the relation" with "valid-time interval ... exactly
///    one chronon long";
///  - `num_long_lived` tuples have "their starting chronon randomly
///    distributed over the first 1/2 of the relation lifespan, and their
///    ending chronon equal to the starting chronon plus 1/2 of the
///    relation lifespan";
///  - join-attribute values are drawn from `distinct_keys` values,
///    uniformly, or Zipf-skewed when zipf_theta > 0 (an extension used by
///    the skew ablation).
///
/// Tuples are appended in generation order (i.e. unsorted in time),
/// matching the paper's "we do not assume any sort ordering of input
/// tuples".
struct WorkloadSpec {
  uint64_t num_tuples = 0;
  uint64_t num_long_lived = 0;
  Chronon lifespan = 1000000;
  /// 0 means the paper's lifespan/2.
  int64_t long_lived_duration = 0;
  uint64_t distinct_keys = 1024;
  double zipf_theta = 0.0;
  /// Total serialized record size; padding fills the remainder. Must be
  /// >= 29 (16 interval + 1 null bitmap + 8 key + 4 string length).
  uint64_t tuple_bytes = 123;
  uint64_t seed = 1;
  /// Shifts every generated chronon by this offset (used by the skew
  /// ablation to misalign outer and inner distributions).
  Chronon time_offset = 0;
};

/// The schema generated relations use: an int64 join attribute "key" plus
/// a string "pad" sized to reach WorkloadSpec::tuple_bytes.
Schema BenchSchema();

/// Generates a relation per `spec` onto `disk`. Generation I/O (the
/// appends) is charged unless the caller uncharges the file; benchmarks
/// reset the accountant after loading instead.
StatusOr<std::unique_ptr<StoredRelation>> GenerateRelation(
    Disk* disk, const WorkloadSpec& spec, const std::string& name);

/// Builds one tuple of the bench schema.
Tuple MakeBenchTuple(int64_t key, Interval iv, uint64_t tuple_bytes);

}  // namespace tempo

#endif  // TEMPO_WORKLOAD_GENERATOR_H_
