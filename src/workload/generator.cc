#include "workload/generator.h"

#include <algorithm>

namespace tempo {

Schema BenchSchema() {
  return Schema({{"key", ValueType::kInt64}, {"pad", ValueType::kString}});
}

Tuple MakeBenchTuple(int64_t key, Interval iv, uint64_t tuple_bytes) {
  TEMPO_CHECK(tuple_bytes >= 29);
  std::string pad(tuple_bytes - 29, 'x');
  return Tuple({Value(key), Value(std::move(pad))}, iv);
}

StatusOr<std::unique_ptr<StoredRelation>> GenerateRelation(
    Disk* disk, const WorkloadSpec& spec, const std::string& name) {
  if (spec.num_long_lived > spec.num_tuples) {
    return Status::InvalidArgument(
        "num_long_lived exceeds num_tuples");
  }
  if (spec.lifespan < 2) {
    return Status::InvalidArgument("lifespan must be at least 2 chronons");
  }
  if (spec.tuple_bytes < 29) {
    return Status::InvalidArgument("tuple_bytes must be at least 29");
  }
  Random rng(spec.seed);
  std::unique_ptr<ZipfGenerator> zipf;
  if (spec.zipf_theta > 0.0) {
    zipf = std::make_unique<ZipfGenerator>(spec.distinct_keys,
                                           spec.zipf_theta);
  }
  auto rel = std::make_unique<StoredRelation>(disk, BenchSchema(), name);

  const int64_t long_duration =
      spec.long_lived_duration > 0 ? spec.long_lived_duration
                                   : spec.lifespan / 2;
  // Interleave long-lived tuples uniformly through the file so that both
  // kinds are spread over all pages, as the paper's generator implies.
  const uint64_t n = spec.num_tuples;
  uint64_t long_emitted = 0;
  for (uint64_t i = 0; i < n; ++i) {
    // Emit a long-lived tuple whenever the long-lived quota is behind
    // its proportional schedule.
    bool make_long =
        long_emitted * n < spec.num_long_lived * i + spec.num_long_lived;
    if (long_emitted >= spec.num_long_lived) make_long = false;

    int64_t key = zipf != nullptr
                      ? static_cast<int64_t>(zipf->Next(rng))
                      : static_cast<int64_t>(rng.Uniform(spec.distinct_keys));
    Interval iv = Interval::At(0);
    if (make_long) {
      ++long_emitted;
      Chronon start = rng.UniformRange(0, spec.lifespan / 2 - 1);
      iv = Interval(start + spec.time_offset,
                    start + long_duration + spec.time_offset);
    } else {
      Chronon start = rng.UniformRange(0, spec.lifespan - 1);
      iv = Interval(start + spec.time_offset, start + spec.time_offset);
    }
    TEMPO_RETURN_IF_ERROR(
        rel->Append(MakeBenchTuple(key, iv, spec.tuple_bytes)));
  }
  TEMPO_RETURN_IF_ERROR(rel->Flush());
  return rel;
}

}  // namespace tempo
