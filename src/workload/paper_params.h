#ifndef TEMPO_WORKLOAD_PAPER_PARAMS_H_
#define TEMPO_WORKLOAD_PAPER_PARAMS_H_

#include <cstdint>

#include "temporal/chronon.h"

namespace tempo::paper {

/// Global parameter values reconstructed from the paper (Figure 5 is
/// garbled in the scanned text; these are derived from the prose —
/// EXPERIMENTS.md documents the derivation):
///
///  - 32 MiB relations of 262,144 tuples => 128-byte tuples;
///  - the Section 4.2 sampling example (819 random reads ~ one scan at
///    10:1) => 8,192 pages => 4 KiB pages, 32 tuples/page;
///  - "ten tuples ... for each object" over "approximately 26,000
///    objects" => 26,214 distinct join-attribute values;
///  - relation lifespan 1,000,000 chronons;
///  - buffers 1..32 MiB; random:sequential ratios 2:1, 5:1, 10:1.
///
/// Our slotted page spends 4 bytes of header and 4 bytes of slot per
/// record, so the record payload is 123 bytes to keep exactly 32 tuples
/// per 4 KiB page (123 + 4 slot bytes = 127 <= 4092/32).
inline constexpr uint64_t kTuplesPerRelation = 262144;
inline constexpr uint32_t kPagesPerRelation = 8192;
inline constexpr uint32_t kTuplesPerPage = 32;
inline constexpr uint64_t kTupleBytes = 123;
inline constexpr uint64_t kDistinctKeys = 26214;
inline constexpr Chronon kLifespan = 1000000;

/// Memory sizes used in Figures 6 and 8, in pages (4 KiB each).
inline constexpr uint32_t kPages1MiB = 256;
inline constexpr uint32_t kPages2MiB = 512;
inline constexpr uint32_t kPages4MiB = 1024;
inline constexpr uint32_t kPages8MiB = 2048;
inline constexpr uint32_t kPages16MiB = 4096;
inline constexpr uint32_t kPages32MiB = 8192;

/// Random:sequential access cost ratios of the trials in Section 4.2.
inline constexpr double kRatios[] = {2.0, 5.0, 10.0};

}  // namespace tempo::paper

#endif  // TEMPO_WORKLOAD_PAPER_PARAMS_H_
