#include "join/indexed_join.h"

#include <algorithm>

#include "join/external_sort.h"

namespace tempo {

StatusOr<JoinRunStats> IndexedVtJoin(StoredRelation* r, StoredRelation* s,
                                     StoredRelation* out,
                                     const VtJoinOptions& options,
                                     ExecContext* ctx) {
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout, PrepareJoin(r, s, out));
  if (options.buffer_pages < 8) {
    return Status::InvalidArgument(
        "indexed join needs at least 8 buffer pages");
  }
  TEMPO_RETURN_IF_ERROR(RequireSharedChrononPredicate(options, "indexed"));
  Disk* disk = r->disk();
  IoAccountant& acct = disk->accountant();
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&acct);
  }
  IoStats before = acct.stats();
  TraceSpan exec_span = SpanIf(ctx, Phase::kIndexed);

  // Sort both inputs by Vs; build the append-only tree over the inner.
  SortedRelation sr;
  SortedRelation ss;
  {
    TraceSpan sort_span = SpanIf(ctx, Phase::kSortR);
    TEMPO_ASSIGN_OR_RETURN(
        SortedRelation sorted,
        ExternalSortByVs(r, options.buffer_pages, r->name() + ".isorted"));
    sr = std::move(sorted);
  }
  {
    TraceSpan sort_span = SpanIf(ctx, Phase::kSortS);
    TEMPO_ASSIGN_OR_RETURN(
        SortedRelation sorted,
        ExternalSortByVs(s, options.buffer_pages, s->name() + ".isorted"));
    ss = std::move(sorted);
  }
  IoStats sort_end = acct.stats();
  StatusOr<std::unique_ptr<AppendOnlyTree>> tree_or =
      Status::Internal("unset");
  {
    TraceSpan build_span = SpanIf(ctx, Phase::kIndexBuild);
    tree_or = AppendOnlyTree::Build(ss.relation.get(), s->name());
  }
  TEMPO_RETURN_IF_ERROR(tree_or.status());
  std::unique_ptr<AppendOnlyTree> tree = std::move(tree_or).value();
  IoStats build_end = acct.stats();
  TraceSpan probe_span = SpanIf(ctx, Phase::kIndexProbe);

  // Buffer split: a few frames pin index nodes, the rest cache inner
  // data pages; one page streams the outer, one holds the result.
  const uint32_t node_frames = std::max<uint32_t>(2, tree->height() + 1);
  BufferManager node_pool(disk, node_frames);
  uint32_t data_frames = options.buffer_pages > node_frames + 2
                             ? options.buffer_pages - node_frames - 2
                             : 1;
  BufferManager data_pool(disk, data_frames);
  ScopedPoolRegistration node_reg(ctx, &node_pool);
  ScopedPoolRegistration data_reg(ctx, &data_pool);

  ResultWriter writer(out);
  uint64_t inner_pages_scanned = 0;
  uint64_t views_probed = 0;
  const RecordLayout& s_view_layout = ss.relation->schema().layout();
  const int64_t widen = tree->max_duration();

  const uint32_t r_pages = sr.relation->num_pages();
  const uint32_t s_pages = ss.relation->num_pages();
  for (uint32_t rp = 0; rp < r_pages; ++rp) {
    TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> outer,
                           sr.relation->ReadPageTuples(rp));
    if (outer.empty()) continue;
    HashedTupleIndex probe(&outer, &layout.r_join_attrs);
    // The inner range this outer page can match: tuples with
    // Vs in [min Vs - maxDuration, max Ve].
    Chronon lo = outer.front().interval().start();
    Chronon hi = outer.front().interval().end();
    for (const Tuple& x : outer) {
      lo = std::min(lo, x.interval().start());
      hi = std::max(hi, x.interval().end());
    }
    Chronon lo_bound =
        lo > kChrononMin + widen ? lo - widen : kChrononMin;
    TEMPO_ASSIGN_OR_RETURN(uint32_t first,
                           tree->LowerBoundPage(lo_bound, &node_pool));
    TEMPO_ASSIGN_OR_RETURN(uint32_t last,
                           tree->UpperBoundPage(hi, &node_pool));
    if (last >= s_pages) last = s_pages - 1;
    for (uint32_t sp = first; sp <= last && sp < s_pages; ++sp) {
      TEMPO_ASSIGN_OR_RETURN(Page * page,
                             data_pool.Pin(ss.relation->file_id(), sp));
      ++inner_pages_scanned;
      // Probe records in place off the pinned frame; the page stays
      // pinned until the probe loop is done with its views.
      Status status = Status::OK();
      for (uint16_t slot = 0; slot < page->num_records(); ++slot) {
        std::string_view rec = page->GetRecord(slot);
        auto y_or = TupleView::Make(s_view_layout, rec.data(), rec.size());
        if (!y_or.ok()) {
          status = y_or.status();
          break;
        }
        const TupleView& y = *y_or;
        ++views_probed;
        const Interval y_iv = y.interval();
        probe.ForEachMatch(y, layout.s_join_attrs, [&](const Tuple& x) {
          if (!status.ok()) return;
          auto common = Overlap(x.interval(), y_iv);
          if (!common) return;
          if (!PredicateAdmitsOverlapping(options.predicate, x.interval(),
                                          y_iv)) {
            return;
          }
          status = writer.Emit(layout, x, y, *common);
        });
        if (!status.ok()) break;
      }
      TEMPO_RETURN_IF_ERROR(
          data_pool.Unpin(ss.relation->file_id(), sp, false));
      TEMPO_RETURN_IF_ERROR(status);
    }
  }
  TEMPO_RETURN_IF_ERROR(writer.Finish());

  JoinRunStats stats;
  stats.io = acct.stats() - before;
  stats.output_tuples = writer.count();
  stats.Set(Metric::kIndexNodePages,
            static_cast<double>(tree->num_node_pages()));
  stats.Set(Metric::kIndexBuildIoOps,
            static_cast<double>((build_end - sort_end).total_ops()));
  stats.Set(Metric::kSortIoOps,
            static_cast<double>((sort_end - before).total_ops()));
  stats.Set(Metric::kInnerPagesScanned,
            static_cast<double>(inner_pages_scanned));
  stats.Set(Metric::kDecodeMaterializationsAvoided,
            static_cast<double>(views_probed + sr.records_sorted_zero_copy +
                                ss.records_sorted_zero_copy));

  tree->Drop().ok();
  disk->DeleteFile(sr.relation->file_id()).ok();
  disk->DeleteFile(ss.relation->file_id()).ok();
  ExportMetrics(stats, ctx);
  return stats;
}

}  // namespace tempo
