#include "join/sweep_join.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "join/external_sort.h"

namespace tempo {

namespace {

/// Zero-copy sequential cursor over a sorted relation: reads
/// `chunk_pages` consecutive pages per refill (1 random + (c-1)
/// sequential I/Os), pins them, and exposes each record as a TupleView
/// into the pinned page bytes. Views stay valid until the next refill —
/// exactly the window the sweep needs, since an arrival is probed and
/// materialized before its stream advances.
class ViewStream {
 public:
  ViewStream(StoredRelation* rel, uint32_t chunk_pages)
      : rel_(rel),
        layout_(&rel->schema().layout()),
        chunk_pages_(std::max<uint32_t>(1, chunk_pages)) {
    pages_.reserve(chunk_pages_);
  }

  bool Exhausted() const { return exhausted_; }
  const TupleView& Head() const { return views_[pos_]; }

  /// Loads the first chunk. Must be called once before use.
  Status Prime() { return RefillIfNeeded(); }

  /// Consumes the head record.
  Status Pop() {
    ++pos_;
    return RefillIfNeeded();
  }

 private:
  Status RefillIfNeeded() {
    if (pos_ < views_.size()) return Status::OK();
    views_.clear();
    pages_.clear();
    pos_ = 0;
    uint32_t end = std::min(rel_->num_pages(), next_page_ + chunk_pages_);
    if (next_page_ >= end) {
      exhausted_ = true;
      return Status::OK();
    }
    for (; next_page_ < end; ++next_page_) {
      pages_.emplace_back();
      TEMPO_RETURN_IF_ERROR(rel_->ReadPage(next_page_, &pages_.back()));
    }
    for (const Page& page : pages_) {
      for (uint16_t slot = 0; slot < page.num_records(); ++slot) {
        std::string_view rec = page.GetRecord(slot);
        TEMPO_ASSIGN_OR_RETURN(
            TupleView v, TupleView::Make(*layout_, rec.data(), rec.size()));
        views_.push_back(v);
      }
    }
    return Status::OK();
  }

  StoredRelation* rel_;
  const RecordLayout* layout_;
  uint32_t chunk_pages_;
  uint32_t next_page_ = 0;
  bool exhausted_ = false;
  std::vector<Page> pages_;  // never reallocates: reserved to chunk size
  std::vector<TupleView> views_;
  size_t pos_ = 0;
};

/// One side's active tuples as a gapless append log in structure-of-arrays
/// layout: `ends_[i]`, `hashes_[i]` and `tuples_[i]` describe the i-th
/// arrival that has not been compacted away. Probes walk a hash bucket of
/// indices and consult the flat end array first, so the common miss
/// (expired entry) costs one contiguous load; expired indices are
/// swap-removed from the bucket as they are passed over. A global
/// compaction rebuilds the log (preserving append order) only when more
/// than half of it is dead, keeping it gapless without per-expiry
/// bookkeeping.
class GaplessActiveMap {
 public:
  explicit GaplessActiveMap(const std::vector<size_t>* key_attrs)
      : key_attrs_(key_attrs) {}

  /// Appends an arrival. `hash` must be the tuple's HashAttrs over this
  /// side's key positions (computed on the zero-copy view by the caller).
  void Insert(Tuple&& t, size_t hash) {
    const uint32_t idx = static_cast<uint32_t>(tuples_.size());
    ends_.push_back(t.interval().end());
    hashes_.push_back(hash);
    tuples_.push_back(std::move(t));
    buckets_[hash].push_back(idx);
    expiry_.push(std::make_pair(ends_.back(), idx));
    ++appends_;
    peak_ = std::max(peak_, Live());
  }

  /// Updates liveness accounting for the sweep position (entries with
  /// end < `expire_bound` are dead) and compacts when the append log is
  /// more than half dead.
  void ExpireTo(Chronon expire_bound) {
    while (!expiry_.empty() && expiry_.top().first < expire_bound) {
      expiry_.pop();
      ++dead_;
    }
    if (tuples_.size() >= 64 && dead_ * 2 > tuples_.size()) {
      Compact(expire_bound);
    }
  }

  /// Calls fn(const Tuple&) for every live entry (end >= `expire_bound`)
  /// matching `probe` on the aligned key positions. `visited` counts the
  /// live candidates inspected.
  template <typename Fn>
  void ForEachCandidate(const TupleView& probe,
                        const std::vector<size_t>& probe_attrs,
                        Chronon expire_bound, uint64_t* visited, Fn&& fn) {
    size_t h = probe.HashAttrs(probe_attrs);
    auto it = buckets_.find(h);
    if (it == buckets_.end()) return;
    auto& vec = it->second;
    for (size_t i = 0; i < vec.size();) {
      const uint32_t idx = vec[i];
      if (ends_[idx] < expire_bound) {
        vec[i] = vec.back();
        vec.pop_back();
        continue;
      }
      ++*visited;
      if (probe.EqualOnAttrs(probe_attrs, *key_attrs_, tuples_[idx])) {
        fn(tuples_[idx]);
      }
      ++i;
    }
    if (vec.empty()) buckets_.erase(it);
  }

  uint64_t Live() const { return tuples_.size() - dead_; }
  uint64_t peak() const { return peak_; }
  uint64_t appends() const { return appends_; }
  uint64_t compactions() const { return compactions_; }

 private:
  void Compact(Chronon expire_bound) {
    std::vector<Chronon> ends;
    std::vector<size_t> hashes;
    std::vector<Tuple> tuples;
    const size_t live = Live();
    ends.reserve(live);
    hashes.reserve(live);
    tuples.reserve(live);
    for (size_t i = 0; i < tuples_.size(); ++i) {
      if (ends_[i] < expire_bound) continue;
      ends.push_back(ends_[i]);
      hashes.push_back(hashes_[i]);
      tuples.push_back(std::move(tuples_[i]));
    }
    ends_ = std::move(ends);
    hashes_ = std::move(hashes);
    tuples_ = std::move(tuples);
    buckets_.clear();
    std::vector<std::pair<Chronon, uint32_t>> heap;
    heap.reserve(ends_.size());
    for (uint32_t i = 0; i < ends_.size(); ++i) {
      buckets_[hashes_[i]].push_back(i);
      heap.emplace_back(ends_[i], i);
    }
    expiry_ = ExpiryHeap(ExpiryHeap::value_compare(), std::move(heap));
    dead_ = 0;
    ++compactions_;
  }

  using ExpiryHeap =
      std::priority_queue<std::pair<Chronon, uint32_t>,
                          std::vector<std::pair<Chronon, uint32_t>>,
                          std::greater<>>;

  const std::vector<size_t>* key_attrs_;
  std::vector<Chronon> ends_;
  std::vector<size_t> hashes_;
  std::vector<Tuple> tuples_;
  std::unordered_map<size_t, std::vector<uint32_t>> buckets_;
  ExpiryHeap expiry_;  // (end, idx) min-heap driving the dead_ count
  size_t dead_ = 0;
  uint64_t peak_ = 0;
  uint64_t appends_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace

StatusOr<JoinRunStats> SweepVtJoin(StoredRelation* r, StoredRelation* s,
                                   StoredRelation* out,
                                   const VtJoinOptions& options,
                                   ExecContext* ctx) {
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout, PrepareJoin(r, s, out));
  if (options.buffer_pages < 4) {
    return Status::InvalidArgument(
        "sweep join needs at least 4 buffer pages");
  }
  if (options.join_kind != JoinKind::kInner) {
    return Status::InvalidArgument(
        "sweep executor evaluates inner joins only (kind " +
        std::string(JoinKindName(options.join_kind)) +
        " runs on the partition executor or the reference oracle)");
  }
  const TemporalPredicate pred = options.predicate;
  if (pred.HasDisjointNonAdjacent()) {
    return Status::InvalidArgument(
        "sweep executor cannot evaluate predicate '" + pred.Name() +
        "': before/after match unboundedly separated tuples (use the "
        "reference oracle)");
  }
  Disk* disk = r->disk();
  IoAccountant& acct = disk->accountant();
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&acct);
  }
  IoStats before = acct.stats();
  TraceSpan exec_span = SpanIf(ctx, Phase::kSweepJoin);

  // --- Phase 1: sort both inputs by (Vs, Ve). --------------------------
  // ExternalSortByVs's parallel run formation is charged-I/O-identical to
  // the serial pass, so everything downstream of here — and hence the
  // whole run — is byte- and charge-invariant over thread counts.
  Scheduler* scheduler = SchedulerOf(ctx);
  const ParallelOptions parallel = SchedulerParallel(scheduler);
  MorselStats sort_morsels;
  SortedRelation sr;
  SortedRelation ss;
  {
    TraceSpan sort_span = SpanIf(ctx, Phase::kSortR);
    TEMPO_ASSIGN_OR_RETURN(
        SortedRelation sorted,
        ExternalSortByVs(r, options.buffer_pages, r->name() + ".sweep",
                         scheduler, &sort_morsels));
    sr = std::move(sorted);
  }
  {
    TraceSpan sort_span = SpanIf(ctx, Phase::kSortS);
    TEMPO_ASSIGN_OR_RETURN(
        SortedRelation sorted,
        ExternalSortByVs(s, options.buffer_pages, s->name() + ".sweep",
                         scheduler, &sort_morsels));
    ss = std::move(sorted);
  }
  exec_span.AddMorsels(sort_morsels);
  MergeHistogram(ctx, Hist::kMorselDurationUs, sort_morsels.duration_hist);
  IoStats sort_io = acct.stats() - before;
  TraceSpan sweep_span = SpanIf(ctx, Phase::kSweepPass);

  // --- Phase 2: one forward sweep over the merged arrival order. -------
  // Each sorted stream gets a multi-page read buffer (same split as
  // sort-merge); the active maps hold materialized live tuples in memory,
  // like the radix path's column state — the in-memory play is the point.
  uint32_t stream_chunk = std::max<uint32_t>(1, options.buffer_pages / 8);
  ViewStream stream_r(sr.relation.get(), stream_chunk);
  ViewStream stream_s(ss.relation.get(), stream_chunk);
  TEMPO_RETURN_IF_ERROR(stream_r.Prime());
  TEMPO_RETURN_IF_ERROR(stream_s.Prime());

  GaplessActiveMap active_r(&layout.r_join_attrs);
  GaplessActiveMap active_s(&layout.s_join_attrs);

  // Emission specialization, chosen once per run: the default overlap
  // disjunction needs no classification (a live key match overlaps by
  // construction); any narrower mask classifies in (r, s) order. With
  // meets/met-by in the mask, the expiry bound is slackened one chronon
  // so an entry ending exactly one chronon before the sweep survives to
  // meet its adjacent partner.
  const bool emit_all = pred.IsOverlapDefault();
  const bool adjacency = pred.NeedsAdjacency();

  ResultWriter writer = ResultWriter::Canonical(out);
  uint64_t probe_visits = 0;
  uint64_t views_probed = 0;
  while (!stream_r.Exhausted() || !stream_s.Exhausted()) {
    // Pick the stream whose head starts earlier (ties: r first), exactly
    // the sort-merge arrival order.
    bool take_r;
    if (stream_r.Exhausted()) {
      take_r = false;
    } else if (stream_s.Exhausted()) {
      take_r = true;
    } else {
      take_r = !IntervalStartLess()(stream_s.Head().interval(),
                                    stream_r.Head().interval());
    }
    ViewStream& stream = take_r ? stream_r : stream_s;
    const TupleView& arrival = stream.Head();
    const Interval arrival_iv = arrival.interval();
    const Chronon sweep = arrival_iv.start();
    const Chronon expire_bound =
        adjacency && sweep != kChrononMin ? sweep - 1 : sweep;

    active_r.ExpireTo(expire_bound);
    active_s.ExpireTo(expire_bound);

    // The arrival is materialized exactly once — for emission and its own
    // insertion; hashing and key equality run on the view.
    ++views_probed;
    Tuple arrival_tuple = arrival.Materialize();
    Status status = Status::OK();
    if (take_r) {
      active_s.ForEachCandidate(
          arrival, layout.r_join_attrs, expire_bound, &probe_visits,
          [&](const Tuple& entry) {
            if (!status.ok()) return;
            const Interval entry_iv = entry.interval();
            if (!emit_all && !pred.Test(ClassifyAllen(arrival_iv, entry_iv))) {
              return;
            }
            status = writer.Emit(layout, arrival_tuple, entry,
                                 PredicateResultInterval(arrival_iv, entry_iv));
          });
      TEMPO_RETURN_IF_ERROR(status);
      active_r.Insert(std::move(arrival_tuple),
                      arrival.HashAttrs(layout.r_join_attrs));
    } else {
      active_r.ForEachCandidate(
          arrival, layout.s_join_attrs, expire_bound, &probe_visits,
          [&](const Tuple& entry) {
            if (!status.ok()) return;
            const Interval entry_iv = entry.interval();
            if (!emit_all && !pred.Test(ClassifyAllen(entry_iv, arrival_iv))) {
              return;
            }
            status = writer.Emit(layout, entry, arrival_tuple,
                                 PredicateResultInterval(entry_iv, arrival_iv));
          });
      TEMPO_RETURN_IF_ERROR(status);
      active_s.Insert(std::move(arrival_tuple),
                      arrival.HashAttrs(layout.s_join_attrs));
    }
    TEMPO_RETURN_IF_ERROR(stream.Pop());
  }
  TEMPO_RETURN_IF_ERROR(writer.Finish());

  disk->DeleteFile(sr.relation->file_id()).ok();
  disk->DeleteFile(ss.relation->file_id()).ok();

  JoinRunStats stats;
  stats.io = acct.stats() - before;
  stats.output_tuples = writer.count();
  stats.Set(Metric::kSortIoOps, static_cast<double>(sort_io.total_ops()));
  stats.Set(Metric::kJoinPredicateMask, static_cast<double>(pred.mask()));
  stats.Set(Metric::kSweepActivePeak,
            static_cast<double>(active_r.peak() + active_s.peak()));
  stats.Set(Metric::kSweepAppends,
            static_cast<double>(active_r.appends() + active_s.appends()));
  stats.Set(Metric::kSweepCompactions,
            static_cast<double>(active_r.compactions() +
                                active_s.compactions()));
  stats.Set(Metric::kSweepProbeHits, static_cast<double>(probe_visits));
  stats.Set(Metric::kDecodeMaterializationsAvoided,
            static_cast<double>(sr.records_sorted_zero_copy +
                                ss.records_sorted_zero_copy + views_probed));
  if (parallel.enabled()) {
    stats.Set(Metric::kMorselsDispatched,
              static_cast<double>(sort_morsels.morsels_dispatched));
    stats.Set(Metric::kParallelEfficiency,
              sort_morsels.Efficiency(parallel.num_threads));
  }
  ExportMetrics(stats, ctx);
  return stats;
}

}  // namespace tempo
