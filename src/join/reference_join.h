#ifndef TEMPO_JOIN_REFERENCE_JOIN_H_
#define TEMPO_JOIN_REFERENCE_JOIN_H_

#include <vector>

#include "common/statusor.h"
#include "obs/exec_options.h"
#include "relation/schema.h"
#include "relation/tuple.h"

namespace tempo {

/// Straight transcription of the paper's tuple-relational-calculus
/// definition of r ⋈ᵥ s (Section 2): for every pair (x, y) agreeing on the
/// shared attributes with overlap(x[V], y[V]) ≠ ⊥, emit z = (A, B, C)
/// stamped with the overlap. O(|r|·|s|), entirely in memory.
///
/// This is the testing oracle: every disk-based executor must produce
/// exactly this multiset of tuples (in any order).
StatusOr<std::vector<Tuple>> ReferenceValidTimeJoin(
    const Schema& r_schema, const std::vector<Tuple>& r,
    const Schema& s_schema, const std::vector<Tuple>& s);

/// Generalized oracle over any TemporalPredicate: for every key-matching
/// pair (x, y) whose Allen relation belongs to `predicate`, emit z =
/// (A, B, C) stamped with PredicateResultInterval(x[V], y[V]) — the
/// intersection for chronon-sharing pairs, the covering span for the
/// adjacency/disjoint relations. ReferenceValidTimeJoin is the special
/// case predicate == overlap. This is the single ground truth for every
/// executor × predicate pair. O(|r|·|s|), entirely in memory.
StatusOr<std::vector<Tuple>> ReferenceTemporalJoin(
    const Schema& r_schema, const std::vector<Tuple>& r,
    const Schema& s_schema, const std::vector<Tuple>& s,
    const TemporalPredicate& predicate);

/// Brute-force oracle for the sequenced join variants. kInner reduces to
/// ReferenceValidTimeJoin. The outer kinds additionally emit, per
/// preserved-side tuple, the subintervals of its validity not overlapped
/// by any key-matching partner (IntervalSet::SubtractAll), NULL-padding
/// the other side's private attributes; kAnti emits *only* the unmatched
/// r subintervals in r's own schema. O(|r|·|s|), entirely in memory.
StatusOr<std::vector<Tuple>> ReferenceSequencedJoin(
    const Schema& r_schema, const std::vector<Tuple>& r,
    const Schema& s_schema, const std::vector<Tuple>& s, JoinKind kind);

/// Multiset equality of tuple vectors, ignoring order. Used by tests and
/// the executors' self-check mode.
bool SameTupleMultiset(std::vector<Tuple> a, std::vector<Tuple> b);

}  // namespace tempo

#endif  // TEMPO_JOIN_REFERENCE_JOIN_H_
