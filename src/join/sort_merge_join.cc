#include "join/sort_merge_join.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "join/external_sort.h"

namespace tempo {

namespace {

/// Sequential cursor over a sorted relation reading `chunk_pages`
/// consecutive pages per refill (1 random + (c-1) sequential I/Os), and
/// exposing the origin page of each tuple (needed to attribute back-up
/// reads).
class SweepStream {
 public:
  SweepStream(StoredRelation* rel, uint32_t chunk_pages)
      : rel_(rel), chunk_pages_(std::max<uint32_t>(1, chunk_pages)) {}

  bool Exhausted() const { return exhausted_; }
  const Tuple& Head() const { return buffered_[pos_]; }
  uint32_t HeadPage() const { return pages_[pos_]; }

  /// Loads the first chunk. Must be called once before use.
  Status Prime() { return RefillIfNeeded(); }

  /// Consumes the head tuple.
  Status Pop() {
    ++pos_;
    return RefillIfNeeded();
  }

  StoredRelation* relation() const { return rel_; }

 private:
  Status RefillIfNeeded() {
    if (pos_ < buffered_.size()) return Status::OK();
    buffered_.clear();
    pages_.clear();
    pos_ = 0;
    uint32_t end = std::min(rel_->num_pages(), next_page_ + chunk_pages_);
    if (next_page_ >= end) {
      exhausted_ = true;
      return Status::OK();
    }
    for (; next_page_ < end; ++next_page_) {
      Page page;
      TEMPO_RETURN_IF_ERROR(rel_->ReadPage(next_page_, &page));
      TEMPO_RETURN_IF_ERROR(
          StoredRelation::DecodePage(rel_->schema(), page, &buffered_));
      pages_.resize(buffered_.size(), next_page_);
    }
    return Status::OK();
  }

  StoredRelation* rel_;
  uint32_t chunk_pages_;
  uint32_t next_page_ = 0;
  bool exhausted_ = false;
  std::vector<Tuple> buffered_;
  std::vector<uint32_t> pages_;
  size_t pos_ = 0;
};

/// One not-yet-expired tuple of the sweep, remembering its disk page and
/// its global arrival sequence number (used by the eviction watermark).
struct ActiveTuple {
  Tuple tuple;
  uint32_t page;
  size_t bytes;
  uint64_t seq;
};

/// Hash-bucketed active set for one side of the sweep, with lazy
/// expiration during probes.
class ActiveSet {
 public:
  explicit ActiveSet(const std::vector<size_t>* key_attrs)
      : key_attrs_(key_attrs) {}

  void Insert(const Tuple& t, uint32_t page, size_t bytes, uint64_t seq) {
    size_t h = t.HashAttrs(*key_attrs_);
    buckets_[h].push_back(ActiveTuple{t, page, bytes, seq});
    ++live_count_;
    live_bytes_ += bytes;
    expiry_.push(std::make_pair(t.interval().end(), bytes));
    max_live_ = std::max(max_live_, live_count_);
  }

  /// Drops accounting for tuples expired before `sweep` (bucket entries are
  /// removed lazily on probe).
  void ExpireBefore(Chronon sweep) {
    while (!expiry_.empty() && expiry_.top().first < sweep) {
      live_bytes_ -= expiry_.top().second;
      --live_count_;
      expiry_.pop();
    }
  }

  /// Calls fn(const ActiveTuple&) for every live tuple matching `probe` on
  /// the aligned key positions; physically erases expired entries it
  /// passes over. `sweep` is the probe tuple's Vs.
  template <typename Fn>
  void ForEachMatch(const Tuple& probe, const std::vector<size_t>& probe_attrs,
                    Chronon sweep, Fn&& fn) {
    size_t h = probe.HashAttrs(probe_attrs);
    auto it = buckets_.find(h);
    if (it == buckets_.end()) return;
    auto& vec = it->second;
    for (size_t i = 0; i < vec.size();) {
      if (vec[i].tuple.interval().end() < sweep) {
        vec[i] = std::move(vec.back());
        vec.pop_back();
        continue;
      }
      if (vec[i].tuple.EqualOnAttrs(*key_attrs_, probe_attrs, probe)) {
        fn(vec[i]);
      }
      ++i;
    }
    if (vec.empty()) buckets_.erase(it);
  }

  uint64_t live_count() const { return live_count_; }
  uint64_t live_bytes() const { return live_bytes_; }
  uint64_t max_live() const { return max_live_; }

 private:
  const std::vector<size_t>* key_attrs_;
  std::unordered_map<size_t, std::vector<ActiveTuple>> buckets_;
  // (Ve, bytes) min-heap for byte/count accounting.
  std::priority_queue<std::pair<Chronon, size_t>,
                      std::vector<std::pair<Chronon, size_t>>,
                      std::greater<>>
      expiry_;
  uint64_t live_count_ = 0;
  uint64_t live_bytes_ = 0;
  uint64_t max_live_ = 0;
};

uint64_t WindowKey(int side, uint32_t page) {
  return (static_cast<uint64_t>(side) << 32) | page;
}

/// Tracks which active tuples still fit in the retention budget.
///
/// Live (not-yet-expired) tuples are retained in memory until their total
/// bytes exceed the budget; then the tuples with the *largest remaining
/// Ve* are evicted first — they are the long-lived tuples that would clog
/// memory longest, and they are exactly the tuples the paper says force
/// sort-merge to back up: a later match against an evicted tuple must
/// physically re-read its sorted-file page. Short tuples are never the
/// eviction victims (they expire almost immediately), so a workload
/// without long-lived tuples never backs up regardless of budget.
class RetentionBudget {
 public:
  explicit RetentionBudget(size_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  /// Registers an arrival at sweep position `sweep`; returns its seq.
  uint64_t Add(size_t bytes, Chronon ve, Chronon sweep) {
    ExpireBefore(sweep);
    uint64_t seq = next_seq_++;
    retained_bytes_ += bytes;
    by_ve_desc_.push(Entry{ve, seq, bytes});
    by_ve_asc_.push(Entry{ve, seq, bytes});
    while (retained_bytes_ > budget_bytes_ && !by_ve_desc_.empty()) {
      Entry victim = by_ve_desc_.top();
      by_ve_desc_.pop();
      if (!Release(victim)) continue;  // already expired or evicted
      evicted_.insert(victim.seq);
    }
    return seq;
  }

  /// Releases the bytes of tuples whose validity ended before `sweep`.
  void ExpireBefore(Chronon sweep) {
    while (!by_ve_asc_.empty() && by_ve_asc_.top().ve < sweep) {
      Entry e = by_ve_asc_.top();
      by_ve_asc_.pop();
      Release(e);
    }
  }

  bool Evicted(uint64_t seq) const { return evicted_.count(seq) != 0; }

 private:
  struct Entry {
    Chronon ve;
    uint64_t seq;
    size_t bytes;
  };
  struct VeLess {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.ve != b.ve ? a.ve < b.ve : a.seq < b.seq;
    }
  };
  struct VeGreater {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.ve != b.ve ? a.ve > b.ve : a.seq > b.seq;
    }
  };

  /// Subtracts an entry's bytes exactly once (both heaps see each entry).
  bool Release(const Entry& e) {
    if (!released_.insert(e.seq).second) return false;
    retained_bytes_ -= e.bytes;
    return true;
  }

  size_t budget_bytes_;
  uint64_t next_seq_ = 0;
  size_t retained_bytes_ = 0;
  // Max-Ve heap: eviction victims. Min-Ve heap: expiry.
  std::priority_queue<Entry, std::vector<Entry>, VeLess> by_ve_desc_;
  std::priority_queue<Entry, std::vector<Entry>, VeGreater> by_ve_asc_;
  std::unordered_set<uint64_t> released_;
  std::unordered_set<uint64_t> evicted_;
};

}  // namespace

StatusOr<JoinRunStats> SortMergeVtJoin(StoredRelation* r, StoredRelation* s,
                                       StoredRelation* out,
                                       const VtJoinOptions& options,
                                       ExecContext* ctx) {
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout, PrepareJoin(r, s, out));
  if (options.buffer_pages < 4) {
    return Status::InvalidArgument(
        "sort-merge join needs at least 4 buffer pages");
  }
  TEMPO_RETURN_IF_ERROR(RequireSharedChrononPredicate(options, "sort-merge"));
  Disk* disk = r->disk();
  IoAccountant& acct = disk->accountant();
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&acct);
  }
  IoStats before = acct.stats();
  TraceSpan exec_span = SpanIf(ctx, Phase::kSortMerge);

  // --- Phase 1: sort both inputs by Vs. --------------------------------
  Scheduler* scheduler = SchedulerOf(ctx);
  const ParallelOptions parallel = SchedulerParallel(scheduler);
  MorselStats sort_morsels;
  SortedRelation sr;
  SortedRelation ss;
  {
    TraceSpan sort_span = SpanIf(ctx, Phase::kSortR);
    TEMPO_ASSIGN_OR_RETURN(
        SortedRelation sorted,
        ExternalSortByVs(r, options.buffer_pages, r->name() + ".sorted",
                         scheduler, &sort_morsels));
    sr = std::move(sorted);
  }
  {
    TraceSpan sort_span = SpanIf(ctx, Phase::kSortS);
    TEMPO_ASSIGN_OR_RETURN(
        SortedRelation sorted,
        ExternalSortByVs(s, options.buffer_pages, s->name() + ".sorted",
                         scheduler, &sort_morsels));
    ss = std::move(sorted);
  }
  exec_span.AddMorsels(sort_morsels);
  MergeHistogram(ctx, Hist::kMorselDurationUs, sort_morsels.duration_hist);
  IoStats sort_io = acct.stats() - before;
  TraceSpan sweep_span = SpanIf(ctx, Phase::kMergeSweep);

  // --- Phase 2: co-sweep in Vs order. ----------------------------------
  // Each sorted stream gets a multi-page read buffer so its refills are
  // mostly sequential; an eighth of the budget each is a reasonable split
  // that leaves the bulk of memory to the window and active sets.
  uint32_t stream_chunk = std::max<uint32_t>(1, options.buffer_pages / 8);
  SweepStream stream_r(sr.relation.get(), stream_chunk);
  SweepStream stream_s(ss.relation.get(), stream_chunk);
  TEMPO_RETURN_IF_ERROR(stream_r.Prime());
  TEMPO_RETURN_IF_ERROR(stream_s.Prime());

  ActiveSet active_r(&layout.r_join_attrs);
  ActiveSet active_s(&layout.s_join_attrs);

  // One result page and a stream buffer per input; the remainder is the
  // merge window, shared with the active sets.
  uint32_t window_base = options.buffer_pages > 2 * stream_chunk + 1
                             ? options.buffer_pages - 2 * stream_chunk - 1
                             : 1;
  // Active tuples are retained in memory up to the budget; over budget,
  // the longest-remaining (long-lived) tuples are evicted. A match against
  // an evicted tuple is a *back-up*: its sorted-file page is physically
  // re-read. The re-read page's long-lived tuples are retained from then
  // on — they are exactly the tuples worth keeping — so each backed-up
  // page is re-read at most once over the whole merge.
  RetentionBudget budget(static_cast<size_t>(window_base) * kPageSize);

  ResultWriter writer(out);
  uint64_t backup_reads = 0;
  Page scratch;
  std::unordered_set<uint64_t> backed_up_pages;

  auto charge_backup = [&](int side, const ActiveTuple& at) -> Status {
    if (!budget.Evicted(at.seq)) return Status::OK();
    uint64_t key = WindowKey(side, at.page);
    if (!backed_up_pages.insert(key).second) return Status::OK();
    StoredRelation* rel = side == 0 ? sr.relation.get() : ss.relation.get();
    TEMPO_RETURN_IF_ERROR(rel->ReadPage(at.page, &scratch));
    ++backup_reads;
    return Status::OK();
  };

  while (!stream_r.Exhausted() || !stream_s.Exhausted()) {
    // Pick the stream whose head starts earlier (ties: r first).
    bool take_r;
    if (stream_r.Exhausted()) {
      take_r = false;
    } else if (stream_s.Exhausted()) {
      take_r = true;
    } else {
      take_r = !IntervalStartLess()(stream_s.Head().interval(),
                                    stream_r.Head().interval());
    }
    SweepStream& stream = take_r ? stream_r : stream_s;
    const Tuple arrival = stream.Head();
    const uint32_t arrival_page = stream.HeadPage();
    const Chronon sweep = arrival.interval().start();

    active_r.ExpireBefore(sweep);
    active_s.ExpireBefore(sweep);
    budget.ExpireBefore(sweep);

    // Probe the opposite active set; each match may require backing up to
    // the partner's page.
    Status status = Status::OK();
    if (take_r) {
      active_s.ForEachMatch(arrival, layout.r_join_attrs, sweep,
                            [&](const ActiveTuple& at) {
        if (!status.ok()) return;
        auto common = Overlap(arrival.interval(), at.tuple.interval());
        if (!common) return;
        if (!PredicateAdmitsOverlapping(options.predicate, arrival.interval(),
                                        at.tuple.interval())) {
          return;
        }
        status = charge_backup(1, at);
        if (!status.ok()) return;
        status = writer.Emit(layout, arrival, at.tuple, *common);
      });
      TEMPO_RETURN_IF_ERROR(status);
      size_t bytes = arrival.SerializedSize(r->schema());
      active_r.Insert(arrival, arrival_page, bytes,
                      budget.Add(bytes, arrival.interval().end(), sweep));
    } else {
      active_r.ForEachMatch(arrival, layout.s_join_attrs, sweep,
                            [&](const ActiveTuple& at) {
        if (!status.ok()) return;
        auto common = Overlap(at.tuple.interval(), arrival.interval());
        if (!common) return;
        if (!PredicateAdmitsOverlapping(options.predicate, at.tuple.interval(),
                                        arrival.interval())) {
          return;
        }
        status = charge_backup(0, at);
        if (!status.ok()) return;
        status = writer.Emit(layout, at.tuple, arrival, *common);
      });
      TEMPO_RETURN_IF_ERROR(status);
      size_t bytes = arrival.SerializedSize(s->schema());
      active_s.Insert(arrival, arrival_page, bytes,
                      budget.Add(bytes, arrival.interval().end(), sweep));
    }
    TEMPO_RETURN_IF_ERROR(stream.Pop());
  }
  TEMPO_RETURN_IF_ERROR(writer.Finish());

  disk->DeleteFile(sr.relation->file_id()).ok();
  disk->DeleteFile(ss.relation->file_id()).ok();

  JoinRunStats stats;
  stats.io = acct.stats() - before;
  stats.output_tuples = writer.count();
  stats.Set(Metric::kSortIoOps, static_cast<double>(sort_io.total_ops()));
  stats.Set(Metric::kDecodeMaterializationsAvoided,
            static_cast<double>(sr.records_sorted_zero_copy +
                                ss.records_sorted_zero_copy));
  stats.Set(Metric::kBackupPageReads, static_cast<double>(backup_reads));
  stats.Set(Metric::kMaxActiveTuples,
            static_cast<double>(active_r.max_live() + active_s.max_live()));
  if (parallel.enabled()) {
    stats.Set(Metric::kMorselsDispatched,
              static_cast<double>(sort_morsels.morsels_dispatched));
    stats.Set(Metric::kParallelEfficiency,
              sort_morsels.Efficiency(parallel.num_threads));
  }
  ExportMetrics(stats, ctx);
  return stats;
}

}  // namespace tempo
