#ifndef TEMPO_JOIN_SWEEP_JOIN_H_
#define TEMPO_JOIN_SWEEP_JOIN_H_

#include "join/join_common.h"

namespace tempo {

/// Endpoint-sorted sweep evaluation of the generalized temporal join,
/// after Piatov, Helmer, Dignös and Persia (arXiv 2008.12665): both
/// relations are externally sorted by (Vs, Ve) — reusing ExternalSortByVs's
/// run formation, so the sort I/O is charged identically to sort-merge and
/// is thread-invariant — then joined in ONE forward sweep over the merged
/// arrival order.
///
/// Each side keeps a *gapless append-only active map*: flat parallel
/// arrays (interval ends, key hashes, tuples — structure-of-arrays, so the
/// liveness filter of a probe touches only the contiguous end array) plus
/// hash buckets of indices into them. Arrivals are appended, never
/// updated in place; expired entries are skipped lazily during probes and
/// physically reclaimed by a global compaction only when more than half of
/// the append log is dead, which keeps the map gapless and the amortized
/// maintenance cost O(1) per tuple. An arriving tuple probes the opposite
/// map as a zero-copy TupleView (hash and key equality run on the sorted
/// page bytes) and is materialized exactly once, for its own insertion.
///
/// Predicate support — the reason this executor exists — is the full
/// shared-chronon-or-adjacent family: any TemporalPredicate not containing
/// before/after. Emission is specialized per predicate class, chosen once
/// per run:
///   - the default overlap disjunction: every live key match overlaps by
///     construction (it arrived no later and has not expired), so matches
///     are emitted without classifying;
///   - narrower chronon-sharing sets (during, starts/finishes/equals
///     endpoint equality, contain-join, ...): classify + mask test;
///   - sets with meets/met-by: the expiry bound is slackened by one
///     chronon so an entry ending exactly one chronon before the sweep
///     position survives to meet its adjacent partner, and classification
///     runs in (r, s) argument order on both probe directions.
/// Predicates containing before/after match unboundedly separated tuples
/// and are rejected (only the reference oracle evaluates those).
///
/// Output is written in canonical order (ResultWriter::Canonical), so a
/// sweep run is byte-identical to the extended reference oracle — and to
/// itself at any thread count — for every supported predicate. Result
/// stamps come from PredicateResultInterval (intersection, else span).
///
/// Inner joins only. Metrics: kSortIoOps, kSweepActivePeak, kSweepAppends,
/// kSweepCompactions, kSweepProbeHits, kJoinPredicateMask (always set),
/// kDecodeMaterializationsAvoided. Traced as kSweepJoin with nested
/// sort r / sort s / sweep pass spans.
StatusOr<JoinRunStats> SweepVtJoin(StoredRelation* r, StoredRelation* s,
                                   StoredRelation* out,
                                   const VtJoinOptions& options,
                                   ExecContext* ctx = nullptr);

}  // namespace tempo

#endif  // TEMPO_JOIN_SWEEP_JOIN_H_
