#include "join/join_common.h"

namespace tempo {

Tuple MakeJoinTuple(const NaturalJoinLayout& layout, const Tuple& x,
                    const Tuple& y, const Interval& overlap) {
  std::vector<Value> values;
  values.reserve(layout.output.num_attributes());
  for (size_t pos : layout.r_join_attrs) values.push_back(x.value(pos));
  for (size_t pos : layout.r_rest) values.push_back(x.value(pos));
  for (size_t pos : layout.s_rest) values.push_back(y.value(pos));
  return Tuple(std::move(values), overlap);
}

Tuple MakeJoinTuple(const NaturalJoinLayout& layout, const Tuple& x,
                    const TupleView& y, const Interval& overlap) {
  std::vector<Value> values;
  values.reserve(layout.output.num_attributes());
  for (size_t pos : layout.r_join_attrs) values.push_back(x.value(pos));
  for (size_t pos : layout.r_rest) values.push_back(x.value(pos));
  for (size_t pos : layout.s_rest) values.push_back(y.ValueAt(pos));
  return Tuple(std::move(values), overlap);
}

Tuple MakeJoinTuple(const NaturalJoinLayout& layout, const TupleView& x,
                    const TupleView& y, const Interval& overlap) {
  std::vector<Value> values;
  values.reserve(layout.output.num_attributes());
  for (size_t pos : layout.r_join_attrs) values.push_back(x.ValueAt(pos));
  for (size_t pos : layout.r_rest) values.push_back(x.ValueAt(pos));
  for (size_t pos : layout.s_rest) values.push_back(y.ValueAt(pos));
  return Tuple(std::move(values), overlap);
}

HashedTupleIndex::HashedTupleIndex(const std::vector<Tuple>* tuples,
                                   const std::vector<size_t>* key_attrs)
    : tuples_(tuples), key_attrs_(key_attrs) {
  Rebuild(tuples);
}

void HashedTupleIndex::Rebuild(const std::vector<Tuple>* tuples) {
  tuples_ = tuples;
  buckets_.clear();
  buckets_.reserve(tuples_->size());
  for (size_t i = 0; i < tuples_->size(); ++i) {
    buckets_.emplace((*tuples_)[i].HashAttrs(*key_attrs_), i);
  }
}

StatusOr<NaturalJoinLayout> PrepareJoin(StoredRelation* r, StoredRelation* s,
                                        StoredRelation* out) {
  if (r == nullptr || s == nullptr || out == nullptr) {
    return Status::InvalidArgument("join inputs must be non-null");
  }
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(r->schema(), s->schema()));
  if (!(out->schema() == layout.output)) {
    return Status::InvalidArgument(
        "output relation schema " + out->schema().ToString() +
        " does not match derived join schema " + layout.output.ToString());
  }
  if (r->HasUnflushedAppends() || s->HasUnflushedAppends()) {
    return Status::FailedPrecondition(
        "input relations must be flushed before joining");
  }
  return layout;
}

}  // namespace tempo
