#include "join/join_common.h"

#include <algorithm>

namespace tempo {

Tuple MakeJoinTuple(const NaturalJoinLayout& layout, const Tuple& x,
                    const Tuple& y, const Interval& overlap) {
  std::vector<Value> values;
  values.reserve(layout.output.num_attributes());
  for (size_t pos : layout.r_join_attrs) values.push_back(x.value(pos));
  for (size_t pos : layout.r_rest) values.push_back(x.value(pos));
  for (size_t pos : layout.s_rest) values.push_back(y.value(pos));
  return Tuple(std::move(values), overlap);
}

Tuple MakeJoinTuple(const NaturalJoinLayout& layout, const Tuple& x,
                    const TupleView& y, const Interval& overlap) {
  std::vector<Value> values;
  values.reserve(layout.output.num_attributes());
  for (size_t pos : layout.r_join_attrs) values.push_back(x.value(pos));
  for (size_t pos : layout.r_rest) values.push_back(x.value(pos));
  for (size_t pos : layout.s_rest) values.push_back(y.ValueAt(pos));
  return Tuple(std::move(values), overlap);
}

Tuple MakeJoinTuple(const NaturalJoinLayout& layout, const TupleView& x,
                    const TupleView& y, const Interval& overlap) {
  std::vector<Value> values;
  values.reserve(layout.output.num_attributes());
  for (size_t pos : layout.r_join_attrs) values.push_back(x.ValueAt(pos));
  for (size_t pos : layout.r_rest) values.push_back(x.ValueAt(pos));
  for (size_t pos : layout.s_rest) values.push_back(y.ValueAt(pos));
  return Tuple(std::move(values), overlap);
}

Tuple MakeUnmatchedTuple(const NaturalJoinLayout& layout, bool preserved_is_r,
                         const Tuple& x, const Interval& uncovered) {
  std::vector<Value> values;
  values.reserve(layout.output.num_attributes());
  if (preserved_is_r) {
    for (size_t pos : layout.r_join_attrs) values.push_back(x.value(pos));
    for (size_t pos : layout.r_rest) values.push_back(x.value(pos));
    for (size_t i = 0; i < layout.s_rest.size(); ++i) {
      values.push_back(Value::Null());  // C attributes: NULL
    }
  } else {
    for (size_t pos : layout.s_join_attrs) values.push_back(x.value(pos));
    for (size_t i = 0; i < layout.r_rest.size(); ++i) {
      values.push_back(Value::Null());  // B attributes: NULL
    }
    for (size_t pos : layout.s_rest) values.push_back(x.value(pos));
  }
  return Tuple(std::move(values), uncovered);
}

Tuple MakeAntiTuple(const Tuple& x, const Interval& uncovered) {
  return Tuple(x.values(), uncovered);
}

Status ResultWriter::Finish() {
  if (canonical_) {
    std::sort(buffered_.begin(), buffered_.end());
    for (const std::string& record : buffered_) {
      TEMPO_RETURN_IF_ERROR(out_->AppendRecord(record));
    }
    buffered_.clear();
  }
  return out_->Flush();
}

HashedTupleIndex::HashedTupleIndex(const std::vector<Tuple>* tuples,
                                   const std::vector<size_t>* key_attrs)
    : tuples_(tuples), key_attrs_(key_attrs) {
  Rebuild(tuples);
}

void HashedTupleIndex::Rebuild(const std::vector<Tuple>* tuples) {
  tuples_ = tuples;
  buckets_.clear();
  buckets_.reserve(tuples_->size());
  for (size_t i = 0; i < tuples_->size(); ++i) {
    buckets_.emplace((*tuples_)[i].HashAttrs(*key_attrs_), i);
  }
}

StatusOr<NaturalJoinLayout> PrepareJoin(StoredRelation* r, StoredRelation* s,
                                        StoredRelation* out) {
  if (r == nullptr || s == nullptr || out == nullptr) {
    return Status::InvalidArgument("join inputs must be non-null");
  }
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(r->schema(), s->schema()));
  if (!(out->schema() == layout.output)) {
    return Status::InvalidArgument(
        "output relation schema " + out->schema().ToString() +
        " does not match derived join schema " + layout.output.ToString());
  }
  if (r->HasUnflushedAppends() || s->HasUnflushedAppends()) {
    return Status::FailedPrecondition(
        "input relations must be flushed before joining");
  }
  return layout;
}

StatusOr<NaturalJoinLayout> PrepareJoinForKind(StoredRelation* r,
                                               StoredRelation* s,
                                               StoredRelation* out,
                                               JoinKind kind) {
  if (kind != JoinKind::kAnti) return PrepareJoin(r, s, out);
  if (r == nullptr || s == nullptr || out == nullptr) {
    return Status::InvalidArgument("join inputs must be non-null");
  }
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(r->schema(), s->schema()));
  if (!(out->schema() == r->schema())) {
    return Status::InvalidArgument(
        "anti join output schema " + out->schema().ToString() +
        " must match the preserved side's schema " + r->schema().ToString());
  }
  if (r->HasUnflushedAppends() || s->HasUnflushedAppends()) {
    return Status::FailedPrecondition(
        "input relations must be flushed before joining");
  }
  return layout;
}

}  // namespace tempo
