#ifndef TEMPO_JOIN_APPEND_ONLY_TREE_H_
#define TEMPO_JOIN_APPEND_ONLY_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "storage/buffer_manager.h"
#include "storage/stored_relation.h"

namespace tempo {

/// The append-only tree of Gunadhi & Segev [SG89, GS91] — the auxiliary
/// access path the paper's related work uses and the paper's own
/// algorithm pointedly avoids ("our approach does not require sort
/// orderings or auxiliary access paths, each with additional update
/// costs").
///
/// It indexes a relation whose tuples are appended in non-decreasing
/// interval-start order: a B+-tree on Vs whose inserts always land in the
/// rightmost leaf, so appends never split interior structure except along
/// the right spine. Leaf entries map the first Vs of each data page to
/// its page number.
///
/// The tree's nodes live in their own paged file on the relation's disk,
/// so every build, probe and append charges real (classified) I/O; the
/// index-vs-partition ablation measures exactly these charges.
class AppendOnlyTree {
 public:
  /// Bulk-loads an index over `rel`, which must already be ordered by
  /// non-decreasing Vs (e.g. the output of ExternalSortByVs, or an
  /// append-only relation in arrival order). One sequential pass over the
  /// relation plus writing the node file.
  static StatusOr<std::unique_ptr<AppendOnlyTree>> Build(
      StoredRelation* rel, const std::string& name);

  /// Registers one appended data page (its first Vs must be >= every key
  /// already present — the append-only contract). Charges the rightmost-
  /// spine node writes.
  Status AppendPage(Chronon first_vs, uint32_t page_no);

  /// First data page that could contain a tuple with Vs >= `t` — i.e.
  /// the page before the first leaf key > t (earlier pages end below t).
  /// Also the natural lower bound for "pages with min Vs <= t" scans.
  /// Charges one node read per level through `buffers`.
  StatusOr<uint32_t> LowerBoundPage(Chronon t, BufferManager* buffers) const;

  /// Last data page whose first Vs is <= `t` (pages after it start past
  /// t). Charges one node read per level.
  StatusOr<uint32_t> UpperBoundPage(Chronon t, BufferManager* buffers) const;

  uint32_t height() const { return height_; }
  uint32_t num_node_pages() const;
  uint32_t num_data_pages() const { return num_entries_; }
  /// Largest interval duration seen at build/append time; range probes
  /// over interval *overlap* widen their lower bound by this much.
  int64_t max_duration() const { return max_duration_; }
  void ObserveDuration(int64_t d) {
    if (d > max_duration_) max_duration_ = d;
  }

  /// Drops the node file.
  Status Drop();

 private:
  AppendOnlyTree(Disk* disk, std::string name);

  struct NodeRef {
    uint32_t page_no;
  };

  /// Appends a (key, child) entry to the node at `level`, growing the
  /// right spine (and the root) as needed.
  Status Insert(uint32_t level, Chronon key, uint32_t child);

  Disk* disk_;
  std::string name_;
  FileId file_ = 0;
  uint32_t height_ = 0;        // levels; 0 = empty
  uint32_t num_entries_ = 0;   // leaf entries = data pages indexed
  int64_t max_duration_ = 1;
  // Rightmost node page per level (level 0 = leaves), plus the cached
  // in-memory copy of each rightmost node for cheap appends.
  std::vector<uint32_t> right_spine_;
  std::vector<Page> right_page_;
  uint32_t root_page_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_JOIN_APPEND_ONLY_TREE_H_
