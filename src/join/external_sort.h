#ifndef TEMPO_JOIN_EXTERNAL_SORT_H_
#define TEMPO_JOIN_EXTERNAL_SORT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "parallel/parallel_for.h"
#include "parallel/scheduler.h"
#include "storage/stored_relation.h"

namespace tempo {

/// Per-page summary of a sorted relation, collected for free while the
/// final merge pass writes its output. The sort-merge join's back-up logic
/// consults this instead of an auxiliary index (which the paper's setting
/// disallows — "we do not assume ... the presence of additional data
/// structures or access paths").
struct SortedPageMeta {
  Chronon min_vs;  ///< smallest Vs on the page (pages are Vs-ordered)
  Chronon max_vs;  ///< largest Vs on the page
  Chronon max_ve;  ///< largest Ve on the page (NOT monotone across pages)
};

/// A relation sorted by (Vs, Ve) plus its per-page summaries.
struct SortedRelation {
  std::unique_ptr<StoredRelation> relation;
  std::vector<SortedPageMeta> page_meta;
  /// Input records sorted and written back as zero-copy views during run
  /// formation (no owning Tuple decode); feeds the
  /// decode_materializations_avoided metric.
  uint64_t records_sorted_zero_copy = 0;
};

/// Externally sorts `input` by validity-interval start (ties by end) using
/// at most `buffer_pages` pages of memory: classic run formation (memory-
/// sized sorted runs) followed by multiway merge passes. Fewer buffer pages
/// mean more, shorter runs and possibly multiple merge passes — the memory
/// sensitivity the paper attributes to sort-merge (Section 4.2).
///
/// Temporary run files live on `input`'s disk and are deleted before
/// returning; all their I/O is charged. The returned relation's file is
/// named `output_name`.
///
/// With a multi-threaded `scheduler`, run formation overlaps sorting with
/// reading: the calling thread reads a wave of up to num_threads memory-
/// sized chunks (input pages still read in scan order) and the scheduler's
/// shared workers sort them while the coordinator writes finished runs
/// back in chunk order, so run files and charged I/O are identical to the
/// serial pass. Note the wave holds up to num_threads chunks of
/// buffer_pages pages at once — parallel mode deliberately trades memory
/// for CPU overlap. Merge passes stay serial (the heap is inherently
/// sequential). A null scheduler is the serial mode; `morsel_stats`
/// accumulates dispatch counters.
StatusOr<SortedRelation> ExternalSortByVs(StoredRelation* input,
                                          uint32_t buffer_pages,
                                          const std::string& output_name,
                                          Scheduler* scheduler = nullptr,
                                          MorselStats* morsel_stats = nullptr);

}  // namespace tempo

#endif  // TEMPO_JOIN_EXTERNAL_SORT_H_
