#ifndef TEMPO_JOIN_INDEXED_JOIN_H_
#define TEMPO_JOIN_INDEXED_JOIN_H_

#include "join/append_only_tree.h"
#include "join/join_common.h"

namespace tempo {

/// Index-based evaluation of the valid-time natural join in the style of
/// the paper's related work [SG89, GS91]: both inputs are sorted by
/// interval start, an append-only tree is built over the inner, and each
/// outer page probes the tree to bound the inner page range it must scan
/// (widened below the start by the inner's maximum tuple duration — the
/// classic weakness of start-ordered temporal indexes with long-lived
/// tuples).
///
/// Charged I/O includes the sorts, the index build (node writes), every
/// probe's node reads (through a small pinned-node buffer pool) and the
/// inner data reads (through an LRU pool of `buffer_pages`). The
/// index-vs-partition ablation uses this executor to quantify the
/// paper's argument that the partition join "does not require sort
/// orderings or auxiliary access paths, each with additional update
/// costs".
///
/// Metrics in JoinRunStats: kIndexNodePages, kIndexBuildIoOps, kSortIoOps,
/// kInnerPagesScanned. With a non-null `ctx`, the run is traced as
/// kIndexed with nested sort r / sort s / index build / index probe
/// spans, and the node and data buffer pools are registered so the probe
/// span reports hit/miss deltas.
StatusOr<JoinRunStats> IndexedVtJoin(StoredRelation* r, StoredRelation* s,
                                     StoredRelation* out,
                                     const VtJoinOptions& options,
                                     ExecContext* ctx = nullptr);

}  // namespace tempo

#endif  // TEMPO_JOIN_INDEXED_JOIN_H_
