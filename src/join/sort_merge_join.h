#ifndef TEMPO_JOIN_SORT_MERGE_JOIN_H_
#define TEMPO_JOIN_SORT_MERGE_JOIN_H_

#include "join/join_common.h"

namespace tempo {

/// Sort-merge evaluation of the valid-time natural join [SG89, LM90 style]:
/// both relations are externally sorted on interval start, then co-swept in
/// Vs order.
///
/// The sweep keeps the not-yet-expired ("active") tuples of both sides; an
/// arriving tuple joins against the opposite active set. Long-lived tuples
/// stay active long after their page has left the in-memory merge window,
/// so when a later arrival matches one, the algorithm *backs up*: it
/// physically re-reads that tuple's page (paper Section 4.3: a long-lived
/// tuple "must be joined with all tuples that overlap it, some of these
/// tuples may, unfortunately, have already been read, requiring the
/// algorithm to re-read these pages"). Re-reads are batched per (arrival
/// page, old page) pair — one back-up read serves every match between the
/// two pages — and are unnecessary while the old page is still in the
/// window, which is why ample memory suppresses the effect and one-chronon
/// workloads never back up.
///
/// Buffer budget (buffer_pages total): the sort phases use all of it; the
/// merge phase allocates a multi-page read buffer per sorted stream, one
/// result page, and leaves the rest as the window. Memory held by active
/// tuples is charged against the window, shrinking it — long-lived tuples
/// squeeze the window and increase back-ups, compounding their cost.
///
/// Metrics in JoinRunStats: kSortIoOps (unweighted I/O count of the two
/// sorts), kBackupPageReads, kMaxActiveTuples. With a non-null `ctx`, the
/// run is traced as kSortMerge with nested sort r / sort s / merge sweep
/// spans.
StatusOr<JoinRunStats> SortMergeVtJoin(StoredRelation* r, StoredRelation* s,
                                       StoredRelation* out,
                                       const VtJoinOptions& options,
                                       ExecContext* ctx = nullptr);

}  // namespace tempo

#endif  // TEMPO_JOIN_SORT_MERGE_JOIN_H_
