#ifndef TEMPO_JOIN_JOIN_COMMON_H_
#define TEMPO_JOIN_JOIN_COMMON_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "parallel/parallel_for.h"
#include "relation/schema.h"
#include "relation/tuple.h"
#include "storage/io_accountant.h"
#include "storage/stored_relation.h"

namespace tempo {

/// Options shared by all valid-time join executors.
struct VtJoinOptions {
  /// Total main-memory budget in pages (the paper's buffSize). All executor
  /// working state that scales with the input — partition areas, sort run
  /// buffers, merge windows — is charged against this budget; O(1)
  /// bookkeeping is not.
  uint32_t buffer_pages = 2048;  // 8 MiB at 4 KiB pages

  /// Weights used by cost-based decisions inside the executors (the
  /// partition-size optimizer, the sampling-mode choice).
  CostModel cost_model = CostModel::Ratio(5.0);

  /// Seed for any sampling the executor performs.
  uint64_t seed = 42;

  /// Threading for CPU-bound phases (run formation, decode, probe). The
  /// default single thread is the paper-faithful serial mode; see
  /// ParallelOptions.
  ParallelOptions parallel;
};

/// Execution report of one join run.
struct JoinRunStats {
  IoStats io;                ///< charged I/O performed by the executor
  uint64_t output_tuples = 0;

  /// Weighted cost of the run under `model`.
  double Cost(const CostModel& model) const { return io.Cost(model); }

  /// Executor-specific details (e.g. "partitions", "samples",
  /// "merge_backup_pages"). Keys are documented on each executor.
  std::unordered_map<std::string, double> details;
};

/// Assembles the result tuple of the valid-time natural join (paper
/// Section 2): explicit values A (shared), B (r-only), C (s-only), stamped
/// with the overlap of the input intervals. `overlap` must be the
/// (non-empty) intersection of x and y's intervals.
Tuple MakeJoinTuple(const NaturalJoinLayout& layout, const Tuple& x,
                    const Tuple& y, const Interval& overlap);

/// Buffered writer appending join results to an output relation. The
/// output page is the paper's dedicated result buffer page (Figure 3).
class ResultWriter {
 public:
  explicit ResultWriter(StoredRelation* out) : out_(out) {}

  Status Emit(const NaturalJoinLayout& layout, const Tuple& x, const Tuple& y,
              const Interval& overlap) {
    ++count_;
    return out_->Append(MakeJoinTuple(layout, x, y, overlap));
  }

  /// Appends an already-assembled result tuple. The parallel probe builds
  /// result tuples on workers and the coordinator appends the per-morsel
  /// buffers in page order, so output bytes match the serial run.
  Status EmitAssembled(const Tuple& t) {
    ++count_;
    return out_->Append(t);
  }

  Status Finish() { return out_->Flush(); }

  uint64_t count() const { return count_; }

 private:
  StoredRelation* out_;
  uint64_t count_ = 0;
};

/// An in-memory equi-hash index over tuples, keyed on a subset of attribute
/// positions. This is the "any simple evaluation algorithm ... once in
/// memory" of Section 3.1: executors build it over the memory-resident side
/// and probe with each tuple of the streamed side.
class HashedTupleIndex {
 public:
  /// Builds over `tuples` (kept by pointer; caller owns) using key
  /// positions `key_attrs`.
  HashedTupleIndex(const std::vector<Tuple>* tuples,
                   const std::vector<size_t>* key_attrs);

  /// Re-binds to a new tuple vector (same key positions) and rebuilds.
  void Rebuild(const std::vector<Tuple>* tuples);

  /// Invokes `fn(const Tuple&)` for each indexed tuple equal to `probe` on
  /// the aligned key positions `probe_attrs`.
  template <typename Fn>
  void ForEachMatch(const Tuple& probe, const std::vector<size_t>& probe_attrs,
                    Fn&& fn) const {
    size_t h = probe.HashAttrs(probe_attrs);
    auto [lo, hi] = buckets_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      const Tuple& candidate = (*tuples_)[it->second];
      if (candidate.EqualOnAttrs(*key_attrs_, probe_attrs, probe)) {
        fn(candidate);
      }
    }
  }

 private:
  const std::vector<Tuple>* tuples_;
  const std::vector<size_t>* key_attrs_;
  std::unordered_multimap<size_t, size_t> buckets_;
};

/// Derives the natural-join layout and validates that `out` has the
/// expected output schema. Shared prologue of every executor.
StatusOr<NaturalJoinLayout> PrepareJoin(StoredRelation* r, StoredRelation* s,
                                        StoredRelation* out);

}  // namespace tempo

#endif  // TEMPO_JOIN_JOIN_COMMON_H_
