#ifndef TEMPO_JOIN_JOIN_COMMON_H_
#define TEMPO_JOIN_JOIN_COMMON_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "obs/exec_context.h"
#include "obs/exec_options.h"
#include "obs/metrics.h"
#include "parallel/parallel_for.h"
#include "relation/schema.h"
#include "relation/tuple.h"
#include "relation/tuple_view.h"
#include "storage/io_accountant.h"
#include "storage/page_arena.h"
#include "storage/stored_relation.h"

namespace tempo {

/// Options shared by all valid-time join executors. The four common knobs
/// — buffer_pages (the paper's buffSize: all working state that scales
/// with the input is charged against it), cost_model, seed, parallel —
/// live in the shared ExecOptions core, so planner and executor option
/// structs can exchange them by slicing instead of field-by-field copies.
struct VtJoinOptions : ExecOptions {};

/// Execution report of one join run. Executor-specific counters are typed:
/// a MetricsRegistry over the declared Metric enum, so every counter a run
/// can report is declared in obs/metrics.h with unit, owner and doc string.
struct JoinRunStats {
  IoStats io;                ///< charged I/O performed by the executor
  uint64_t output_tuples = 0;

  /// Typed executor counters; every key is declared in obs/metrics.h with
  /// unit, owner and doc string.
  MetricsRegistry metrics;

  /// Weighted cost of the run under `model`.
  double Cost(const CostModel& model) const { return io.Cost(model); }

  void Set(Metric m, double value) { metrics.Set(m, value); }

  /// Adds `delta` to a metric (unset counts as zero).
  void Add(Metric m, double delta) { metrics.Add(m, delta); }

  double Get(Metric m) const { return metrics.Get(m); }
  bool Has(Metric m) const { return metrics.Has(m); }
};

/// Copies a run's typed metrics into the run's ExecContext (no-op on a
/// null context). Executors call this once before returning so EXPLAIN
/// ANALYZE can print the registry next to the span tree.
inline void ExportMetrics(const JoinRunStats& stats, ExecContext* ctx) {
  if (ctx != nullptr) ctx->metrics().Merge(stats.metrics);
}

/// Direct-call guard for the overlap-driven executors (nested-loop,
/// sort-merge, indexed, partition, radix): every relation in the
/// predicate's disjunction must imply a shared chronon, because these
/// executors only ever consider tuple pairs that meet in a partition /
/// active window. Facade requests hit the same rule earlier through
/// ValidateExecOptions; this keeps direct executor calls safe too.
inline Status RequireSharedChrononPredicate(const ExecOptions& options,
                                            const char* executor) {
  if (options.predicate.ImpliesSharedChronon()) return Status::OK();
  return Status::InvalidArgument(
      std::string(executor) + " executor cannot evaluate predicate '" +
      options.predicate.Name() +
      "': it contains relations without a shared chronon (use the sweep "
      "executor for meets/met-by, the reference oracle for before/after)");
}

/// Emission-site filter for pairs already known to share a chronon: the
/// default overlap predicate accepts unconditionally; any narrower
/// overlap-family predicate classifies the pair and tests the mask.
inline bool PredicateAdmitsOverlapping(const TemporalPredicate& pred,
                                       const Interval& x, const Interval& y) {
  if (pred.IsOverlapDefault()) return true;
  return pred.Test(ClassifyAllen(x, y));
}

/// Assembles the result tuple of the valid-time natural join (paper
/// Section 2): explicit values A (shared), B (r-only), C (s-only), stamped
/// with the overlap of the input intervals. `overlap` must be the
/// (non-empty) intersection of x and y's intervals.
Tuple MakeJoinTuple(const NaturalJoinLayout& layout, const Tuple& x,
                    const Tuple& y, const Interval& overlap);

/// Same, with a zero-copy probe-side record: y's values are materialized
/// straight from the record bytes into the result — the only point on the
/// probe hot path where owning Values are created.
Tuple MakeJoinTuple(const NaturalJoinLayout& layout, const Tuple& x,
                    const TupleView& y, const Interval& overlap);

/// Same, with both sides zero-copy: every output value is materialized
/// straight from the two page-backed records. The radix join emits through
/// this — its match pairs are row ordinals into pinned page arenas, so
/// neither side ever exists as an owning Tuple.
Tuple MakeJoinTuple(const NaturalJoinLayout& layout, const TupleView& x,
                    const TupleView& y, const Interval& overlap);

/// Assembles a NULL-padded unmatched row of a sequenced *outer* join in
/// the join output schema (A, B, C): when `preserved_is_r`, A and B come
/// from the r-side tuple `x` and every C attribute is NULL; otherwise A
/// and C come from the s-side tuple `x` (read through the pairwise-aligned
/// s positions) and every B attribute is NULL. `uncovered` must be a
/// subinterval of x's validity not overlapped by any key-matching partner.
Tuple MakeUnmatchedTuple(const NaturalJoinLayout& layout, bool preserved_is_r,
                         const Tuple& x, const Interval& uncovered);

/// The anti join's unmatched row: `x` itself (r's own schema, no padding)
/// restricted to the uncovered subinterval.
Tuple MakeAntiTuple(const Tuple& x, const Interval& uncovered);

/// Buffered writer appending join results to an output relation. The
/// output page is the paper's dedicated result buffer page (Figure 3).
///
/// Canonical mode (the sequenced outer/anti variants): emitted tuples are
/// buffered as serialized records and appended in lexicographic byte order
/// at Finish(). Serialization is canonical, so two runs producing the same
/// result *multiset* — the partition variant at any thread count and the
/// brute-force oracle — write byte-identical output pages, which is what
/// the parity tests assert. The buffering trades the streaming result page
/// for exact verifiability; all output I/O is still charged identically
/// (same bytes, same page count) regardless of emission order.
class ResultWriter {
 public:
  explicit ResultWriter(StoredRelation* out) : out_(out) {}

  /// A writer that defers appends and sorts the serialized records at
  /// Finish() — the canonical sequenced result order.
  static ResultWriter Canonical(StoredRelation* out) {
    ResultWriter w(out);
    w.canonical_ = true;
    return w;
  }

  Status Emit(const NaturalJoinLayout& layout, const Tuple& x, const Tuple& y,
              const Interval& overlap) {
    return EmitAssembled(MakeJoinTuple(layout, x, y, overlap));
  }

  Status Emit(const NaturalJoinLayout& layout, const Tuple& x,
              const TupleView& y, const Interval& overlap) {
    return EmitAssembled(MakeJoinTuple(layout, x, y, overlap));
  }

  Status Emit(const NaturalJoinLayout& layout, const TupleView& x,
              const TupleView& y, const Interval& overlap) {
    return EmitAssembled(MakeJoinTuple(layout, x, y, overlap));
  }

  /// Appends an already-assembled result tuple. The parallel probe builds
  /// result tuples on workers and the coordinator appends the per-morsel
  /// buffers in page order, so output bytes match the serial run.
  Status EmitAssembled(const Tuple& t) {
    if (canonical_) {
      std::string record;
      t.SerializeTo(out_->schema(), &record);
      buffered_.push_back(std::move(record));
      ++count_;
      return Status::OK();
    }
    Status st = out_->Append(t);
    if (st.ok()) ++count_;
    return st;
  }

  /// Streaming mode: flushes the partial output page. Canonical mode:
  /// sorts the buffered records, appends them all, then flushes.
  Status Finish();

  /// Number of successfully emitted result tuples; a failed Append is
  /// not counted.
  uint64_t count() const { return count_; }

 private:
  StoredRelation* out_;
  uint64_t count_ = 0;
  bool canonical_ = false;
  std::vector<std::string> buffered_;
};

/// An in-memory equi-hash index over tuples, keyed on a subset of attribute
/// positions. This is the "any simple evaluation algorithm ... once in
/// memory" of Section 3.1: executors build it over the memory-resident side
/// and probe with each tuple of the streamed side.
class HashedTupleIndex {
 public:
  /// Builds over `tuples` (kept by pointer; caller owns) using key
  /// positions `key_attrs`.
  HashedTupleIndex(const std::vector<Tuple>* tuples,
                   const std::vector<size_t>* key_attrs);

  /// Re-binds to a new tuple vector (same key positions) and rebuilds.
  void Rebuild(const std::vector<Tuple>* tuples);

  /// Invokes `fn(const Tuple&)` for each indexed tuple equal to `probe` on
  /// the aligned key positions `probe_attrs`.
  template <typename Fn>
  void ForEachMatch(const Tuple& probe, const std::vector<size_t>& probe_attrs,
                    Fn&& fn) const {
    size_t h = probe.HashAttrs(probe_attrs);
    auto [lo, hi] = buckets_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      const Tuple& candidate = (*tuples_)[it->second];
      if (candidate.EqualOnAttrs(*key_attrs_, probe_attrs, probe)) {
        fn(candidate);
      }
    }
  }

  /// Zero-copy probe: hashes and compares the key directly on the probe
  /// record's bytes. TupleView's hash is bit-compatible with
  /// Tuple::HashAttrs, so the bucket walk — and hence match order — is
  /// identical to probing with the materialized tuple.
  template <typename Fn>
  void ForEachMatch(const TupleView& probe,
                    const std::vector<size_t>& probe_attrs, Fn&& fn) const {
    size_t h = probe.HashAttrs(probe_attrs);
    auto [lo, hi] = buckets_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      const Tuple& candidate = (*tuples_)[it->second];
      if (probe.EqualOnAttrs(probe_attrs, *key_attrs_, candidate)) {
        fn(candidate);
      }
    }
  }

  /// Like ForEachMatch, but also passes the candidate's index into the
  /// bound tuple vector, `fn(const Tuple&, size_t)`. The outer/anti join
  /// variants use the index to accumulate per-build-tuple coverage.
  template <typename Fn>
  void ForEachMatchIndexed(const TupleView& probe,
                           const std::vector<size_t>& probe_attrs,
                           Fn&& fn) const {
    size_t h = probe.HashAttrs(probe_attrs);
    auto [lo, hi] = buckets_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      const Tuple& candidate = (*tuples_)[it->second];
      if (probe.EqualOnAttrs(probe_attrs, *key_attrs_, candidate)) {
        fn(candidate, it->second);
      }
    }
  }

 private:
  const std::vector<Tuple>* tuples_;
  const std::vector<size_t>* key_attrs_;
  std::unordered_multimap<size_t, size_t> buckets_;
};

/// Derives the natural-join layout and validates that `out` has the
/// expected output schema. Shared prologue of every executor.
StatusOr<NaturalJoinLayout> PrepareJoin(StoredRelation* r, StoredRelation* s,
                                        StoredRelation* out);

/// Kind-aware prologue: for kAnti the output carries r's own schema (the
/// anti join pads nothing), for every other kind the join output schema.
/// The returned layout is always the natural-join layout of (r, s).
StatusOr<NaturalJoinLayout> PrepareJoinForKind(StoredRelation* r,
                                               StoredRelation* s,
                                               StoredRelation* out,
                                               JoinKind kind);

}  // namespace tempo

#endif  // TEMPO_JOIN_JOIN_COMMON_H_
