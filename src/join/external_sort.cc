#include "join/external_sort.h"

#include <algorithm>
#include <memory>
#include <queue>

namespace tempo {

namespace {

bool TupleVsLess(const Tuple& a, const Tuple& b) {
  return IntervalStartLess()(a.interval(), b.interval());
}

bool ViewVsLess(const TupleView& a, const TupleView& b) {
  return IntervalStartLess()(a.interval(), b.interval());
}

/// One memory-sized chunk of input pinned as views: run formation sorts
/// the views (same comparator, so stable_sort yields the same permutation
/// as sorting the decoded tuples) and writes the raw record bytes back.
struct ViewChunk {
  PageTupleArena arena;
  std::vector<TupleView> views;

  void Clear() {
    arena.Clear();
    views.clear();
  }

  Status Load(StoredRelation* input, uint32_t first_page, uint32_t end_page) {
    Clear();
    for (uint32_t p = first_page; p < end_page; ++p) {
      Page page;
      TEMPO_RETURN_IF_ERROR(input->ReadPage(p, &page));
      TEMPO_RETURN_IF_ERROR(
          StoredRelation::DecodePageViews(input->schema(), page, &arena)
              .status());
    }
    views = arena.views();
    return Status::OK();
  }

  Status WriteRun(StoredRelation* run) const {
    for (const TupleView& v : views) {
      TEMPO_RETURN_IF_ERROR(run->AppendRecord(v.record()));
    }
    return run->Flush();
  }
};

/// Appends sorted views to `out`, recording per-page metadata by mirroring
/// the relation's pagination (the view twin of AppendWithMeta below).
Status AppendViewsWithMeta(StoredRelation* out,
                           const std::vector<TupleView>& views,
                           std::vector<SortedPageMeta>* meta) {
  uint32_t pages_before = out->num_pages();
  SortedPageMeta current{0, 0, 0};
  bool have_current = false;
  for (const TupleView& v : views) {
    TEMPO_RETURN_IF_ERROR(out->AppendRecord(v.record()));
    uint32_t pages_now = out->num_pages();
    if (pages_now != pages_before) {
      if (have_current) meta->push_back(current);
      have_current = false;
      pages_before = pages_now;
    }
    const Interval iv = v.interval();
    if (!have_current) {
      current = SortedPageMeta{iv.start(), iv.start(), iv.end()};
      have_current = true;
    } else {
      current.min_vs = std::min(current.min_vs, iv.start());
      current.max_vs = std::max(current.max_vs, iv.start());
      current.max_ve = std::max(current.max_ve, iv.end());
    }
  }
  TEMPO_RETURN_IF_ERROR(out->Flush());
  if (have_current) meta->push_back(current);
  return Status::OK();
}

/// Reads one run (a Vs-sorted relation) through a multi-page input buffer:
/// each refill fetches `buffer_pages` consecutive pages (1 random +
/// (c-1) sequential I/Os).
class RunReader {
 public:
  RunReader(StoredRelation* run, uint32_t buffer_pages)
      : run_(run), buffer_pages_(buffer_pages == 0 ? 1 : buffer_pages) {}

  /// Fetches the next tuple; returns false at end of run.
  StatusOr<bool> Next(Tuple* out) {
    if (pos_ >= buffered_.size()) {
      TEMPO_RETURN_IF_ERROR(Refill());
      if (buffered_.empty()) return false;
    }
    *out = std::move(buffered_[pos_++]);
    return true;
  }

 private:
  Status Refill() {
    buffered_.clear();
    pos_ = 0;
    uint32_t end = next_page_ + buffer_pages_;
    if (end > run_->num_pages()) end = run_->num_pages();
    for (; next_page_ < end; ++next_page_) {
      Page page;
      TEMPO_RETURN_IF_ERROR(run_->ReadPage(next_page_, &page));
      TEMPO_RETURN_IF_ERROR(
          StoredRelation::DecodePage(run_->schema(), page, &buffered_));
    }
    return Status::OK();
  }

  StoredRelation* run_;
  uint32_t buffer_pages_;
  uint32_t next_page_ = 0;
  std::vector<Tuple> buffered_;
  size_t pos_ = 0;
};

/// Merges `runs` into `out`, optionally collecting page metadata. Buffer
/// budget: each input run and the output each get
/// buffer_pages / (runs + 1) pages (at least 1).
Status MergeRuns(std::vector<std::unique_ptr<StoredRelation>>& runs,
                 uint32_t buffer_pages, StoredRelation* out,
                 std::vector<SortedPageMeta>* meta) {
  uint32_t per_stream =
      std::max<uint32_t>(1, buffer_pages / (static_cast<uint32_t>(runs.size()) + 1));
  std::vector<RunReader> readers;
  readers.reserve(runs.size());
  for (auto& run : runs) readers.emplace_back(run.get(), per_stream);

  struct HeapEntry {
    Tuple tuple;
    size_t stream;
  };
  auto heap_greater = [](const HeapEntry& a, const HeapEntry& b) {
    return TupleVsLess(b.tuple, a.tuple);
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      decltype(heap_greater)>
      heap(heap_greater);

  for (size_t i = 0; i < readers.size(); ++i) {
    Tuple t;
    TEMPO_ASSIGN_OR_RETURN(bool more, readers[i].Next(&t));
    if (more) heap.push(HeapEntry{std::move(t), i});
  }

  // Track metadata per output page. StoredRelation flushes a page whenever
  // the next tuple does not fit, so we mirror its pagination by watching
  // num_pages() grow.
  uint32_t pages_before = out->num_pages();
  SortedPageMeta current{0, 0, 0};
  bool have_current = false;

  auto close_page = [&]() {
    if (meta != nullptr && have_current) meta->push_back(current);
    have_current = false;
  };

  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    TEMPO_RETURN_IF_ERROR(out->Append(top.tuple));
    uint32_t pages_now = out->num_pages();
    if (pages_now != pages_before) {
      // The append buffer was flushed before this tuple was added; the
      // finished page's metadata is complete.
      close_page();
      pages_before = pages_now;
    }
    const Interval& iv = top.tuple.interval();
    if (!have_current) {
      current = SortedPageMeta{iv.start(), iv.start(), iv.end()};
      have_current = true;
    } else {
      current.max_vs = std::max(current.max_vs, iv.start());
      current.min_vs = std::min(current.min_vs, iv.start());
      current.max_ve = std::max(current.max_ve, iv.end());
    }
    Tuple next;
    TEMPO_ASSIGN_OR_RETURN(bool more, readers[top.stream].Next(&next));
    if (more) heap.push(HeapEntry{std::move(next), top.stream});
  }
  TEMPO_RETURN_IF_ERROR(out->Flush());
  close_page();
  return Status::OK();
}

}  // namespace

StatusOr<SortedRelation> ExternalSortByVs(StoredRelation* input,
                                          uint32_t buffer_pages,
                                          const std::string& output_name,
                                          Scheduler* scheduler,
                                          MorselStats* morsel_stats) {
  const ParallelOptions parallel = SchedulerParallel(scheduler);
  ThreadPool* pool = SchedulerPool(scheduler);
  if (buffer_pages < 3) {
    return Status::InvalidArgument("external sort needs at least 3 pages");
  }
  if (input->HasUnflushedAppends()) {
    return Status::FailedPrecondition("input must be flushed before sorting");
  }
  Disk* disk = input->disk();

  uint32_t pages = input->num_pages();

  // Whole input fits in memory: one read pass, sort the views in place,
  // one write pass of the raw record bytes.
  if (pages <= buffer_pages) {
    ViewChunk all;
    TEMPO_RETURN_IF_ERROR(all.Load(input, 0, pages));
    std::stable_sort(all.views.begin(), all.views.end(), ViewVsLess);
    SortedRelation result;
    result.relation =
        std::make_unique<StoredRelation>(disk, input->schema(), output_name);
    TEMPO_RETURN_IF_ERROR(AppendViewsWithMeta(result.relation.get(),
                                              all.views, &result.page_meta));
    result.records_sorted_zero_copy = all.views.size();
    TEMPO_CHECK(result.page_meta.size() == result.relation->num_pages());
    return result;
  }

  // --- Run formation: memory-sized sorted runs. -----------------------
  std::vector<std::unique_ptr<StoredRelation>> runs;
  uint64_t run_records = 0;
  if (parallel.enabled() && pool != nullptr) {
    // The coordinator reads a wave of chunks (input pages in scan order),
    // workers sort their views, and the runs are written back in chunk
    // order — same run files and per-file I/O sequences as the serial
    // pass. Each chunk's pages stay pinned in its arena until its run is
    // written.
    const uint32_t wave_chunks = std::max<uint32_t>(1, parallel.num_threads);
    std::vector<std::unique_ptr<ViewChunk>> chunks;
    chunks.reserve(wave_chunks);
    for (uint32_t c = 0; c < wave_chunks; ++c) {
      chunks.push_back(std::make_unique<ViewChunk>());
    }
    for (uint32_t start = 0; start < pages;
         start += buffer_pages * wave_chunks) {
      uint32_t in_wave = 0;
      for (; in_wave < wave_chunks; ++in_wave) {
        uint32_t cs = start + in_wave * buffer_pages;
        if (cs >= pages) break;
        uint32_t ce = std::min(pages, cs + buffer_pages);
        TEMPO_RETURN_IF_ERROR(chunks[in_wave]->Load(input, cs, ce));
      }
      TEMPO_RETURN_IF_ERROR(ParallelFor(
          pool, in_wave, 1,
          [&](size_t m, size_t begin, size_t end) -> Status {
            (void)m;
            (void)end;
            std::stable_sort(chunks[begin]->views.begin(),
                             chunks[begin]->views.end(), ViewVsLess);
            return Status::OK();
          },
          morsel_stats));
      for (uint32_t c = 0; c < in_wave; ++c) {
        auto run = std::make_unique<StoredRelation>(
            disk, input->schema(),
            output_name + ".run" + std::to_string(runs.size()));
        TEMPO_RETURN_IF_ERROR(chunks[c]->WriteRun(run.get()));
        run_records += chunks[c]->views.size();
        runs.push_back(std::move(run));
      }
    }
  } else {
    ViewChunk chunk;
    for (uint32_t start = 0; start < pages; start += buffer_pages) {
      uint32_t end = std::min(pages, start + buffer_pages);
      TEMPO_RETURN_IF_ERROR(chunk.Load(input, start, end));
      std::stable_sort(chunk.views.begin(), chunk.views.end(), ViewVsLess);
      auto run = std::make_unique<StoredRelation>(
          disk, input->schema(),
          output_name + ".run" + std::to_string(runs.size()));
      TEMPO_RETURN_IF_ERROR(chunk.WriteRun(run.get()));
      run_records += chunk.views.size();
      runs.push_back(std::move(run));
    }
  }

  auto drop_runs = [&](std::vector<std::unique_ptr<StoredRelation>>& v) {
    for (auto& run : v) disk->DeleteFile(run->file_id()).ok();
    v.clear();
  };

  SortedRelation result;
  result.relation = std::make_unique<StoredRelation>(disk, input->schema(),
                                                     output_name);
  result.records_sorted_zero_copy = run_records;
  if (runs.empty()) return result;

  // --- Merge passes until one fan-in suffices. -------------------------
  // Fan-in: with F input streams plus one output stream each getting at
  // least one page, F <= buffer_pages - 1.
  const uint32_t max_fanin = buffer_pages - 1;
  uint32_t pass = 0;
  while (runs.size() > max_fanin) {
    std::vector<std::unique_ptr<StoredRelation>> next_runs;
    for (size_t i = 0; i < runs.size(); i += max_fanin) {
      size_t end = std::min(runs.size(), i + max_fanin);
      std::vector<std::unique_ptr<StoredRelation>> group;
      for (size_t j = i; j < end; ++j) group.push_back(std::move(runs[j]));
      auto merged = std::make_unique<StoredRelation>(
          disk, input->schema(),
          output_name + ".pass" + std::to_string(pass) + "." +
              std::to_string(next_runs.size()));
      TEMPO_RETURN_IF_ERROR(
          MergeRuns(group, buffer_pages, merged.get(), nullptr));
      drop_runs(group);
      next_runs.push_back(std::move(merged));
    }
    runs = std::move(next_runs);
    ++pass;
  }

  // --- Final merge produces the output and its page metadata. ----------
  TEMPO_RETURN_IF_ERROR(MergeRuns(runs, buffer_pages, result.relation.get(),
                                  &result.page_meta));
  drop_runs(runs);
  TEMPO_CHECK(result.page_meta.size() == result.relation->num_pages());
  return result;
}

}  // namespace tempo
