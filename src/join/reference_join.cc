#include "join/reference_join.h"

#include <algorithm>

#include "join/join_common.h"
#include "temporal/interval_set.h"

namespace tempo {

StatusOr<std::vector<Tuple>> ReferenceValidTimeJoin(
    const Schema& r_schema, const std::vector<Tuple>& r,
    const Schema& s_schema, const std::vector<Tuple>& s) {
  return ReferenceTemporalJoin(r_schema, r, s_schema, s,
                               TemporalPredicate::Overlap());
}

StatusOr<std::vector<Tuple>> ReferenceTemporalJoin(
    const Schema& r_schema, const std::vector<Tuple>& r,
    const Schema& s_schema, const std::vector<Tuple>& s,
    const TemporalPredicate& predicate) {
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(r_schema, s_schema));
  std::vector<Tuple> out;
  for (const Tuple& x : r) {
    for (const Tuple& y : s) {
      if (!x.EqualOnAttrs(layout.r_join_attrs, layout.s_join_attrs, y)) {
        continue;
      }
      if (!predicate.Matches(x.interval(), y.interval())) continue;
      out.push_back(MakeJoinTuple(
          layout, x, y, PredicateResultInterval(x.interval(), y.interval())));
    }
  }
  return out;
}

namespace {

/// Appends the unmatched rows of the side `outer` (an r-side when
/// `preserved_is_r`, else an s-side) against partners `inner`: per outer
/// tuple, subtract every key-matching partner's overlap from its validity
/// and emit one row per remaining subinterval.
void AppendUnmatched(const NaturalJoinLayout& layout, bool preserved_is_r,
                     const std::vector<Tuple>& outer,
                     const std::vector<Tuple>& inner, JoinKind kind,
                     std::vector<Tuple>* out) {
  const std::vector<size_t>& outer_keys =
      preserved_is_r ? layout.r_join_attrs : layout.s_join_attrs;
  const std::vector<size_t>& inner_keys =
      preserved_is_r ? layout.s_join_attrs : layout.r_join_attrs;
  for (const Tuple& x : outer) {
    std::vector<Interval> covered;
    for (const Tuple& y : inner) {
      if (!x.EqualOnAttrs(outer_keys, inner_keys, y)) continue;
      auto common = Overlap(x.interval(), y.interval());
      if (common) covered.push_back(*common);
    }
    const IntervalSet uncovered = SubtractAll(x.interval(), covered);
    for (const Interval& iv : uncovered.intervals()) {
      out->push_back(kind == JoinKind::kAnti
                         ? MakeAntiTuple(x, iv)
                         : MakeUnmatchedTuple(layout, preserved_is_r, x, iv));
    }
  }
}

}  // namespace

StatusOr<std::vector<Tuple>> ReferenceSequencedJoin(
    const Schema& r_schema, const std::vector<Tuple>& r,
    const Schema& s_schema, const std::vector<Tuple>& s, JoinKind kind) {
  if (kind == JoinKind::kInner) {
    return ReferenceValidTimeJoin(r_schema, r, s_schema, s);
  }
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(r_schema, s_schema));
  std::vector<Tuple> out;
  if (kind != JoinKind::kAnti) {
    TEMPO_ASSIGN_OR_RETURN(
        out, ReferenceValidTimeJoin(r_schema, r, s_schema, s));
  }
  AppendUnmatched(layout, /*preserved_is_r=*/true, r, s, kind, &out);
  if (kind == JoinKind::kFullOuter) {
    AppendUnmatched(layout, /*preserved_is_r=*/false, s, r, kind, &out);
  }
  return out;
}

namespace {

// Total order over tuples for canonical sorting; only used to compare
// multisets, so any consistent order works.
bool TupleLess(const Tuple& a, const Tuple& b) {
  if (a.interval().start() != b.interval().start()) {
    return a.interval().start() < b.interval().start();
  }
  if (a.interval().end() != b.interval().end()) {
    return a.interval().end() < b.interval().end();
  }
  size_t n = std::min(a.num_values(), b.num_values());
  for (size_t i = 0; i < n; ++i) {
    if (a.value(i) != b.value(i)) return a.value(i) < b.value(i);
  }
  return a.num_values() < b.num_values();
}

}  // namespace

bool SameTupleMultiset(std::vector<Tuple> a, std::vector<Tuple> b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end(), TupleLess);
  std::sort(b.begin(), b.end(), TupleLess);
  return a == b;
}

}  // namespace tempo
