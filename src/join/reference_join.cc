#include "join/reference_join.h"

#include <algorithm>

#include "join/join_common.h"

namespace tempo {

StatusOr<std::vector<Tuple>> ReferenceValidTimeJoin(
    const Schema& r_schema, const std::vector<Tuple>& r,
    const Schema& s_schema, const std::vector<Tuple>& s) {
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(r_schema, s_schema));
  std::vector<Tuple> out;
  for (const Tuple& x : r) {
    for (const Tuple& y : s) {
      if (!x.EqualOnAttrs(layout.r_join_attrs, layout.s_join_attrs, y)) {
        continue;
      }
      auto common = Overlap(x.interval(), y.interval());
      if (!common) continue;
      out.push_back(MakeJoinTuple(layout, x, y, *common));
    }
  }
  return out;
}

namespace {

// Total order over tuples for canonical sorting; only used to compare
// multisets, so any consistent order works.
bool TupleLess(const Tuple& a, const Tuple& b) {
  if (a.interval().start() != b.interval().start()) {
    return a.interval().start() < b.interval().start();
  }
  if (a.interval().end() != b.interval().end()) {
    return a.interval().end() < b.interval().end();
  }
  size_t n = std::min(a.num_values(), b.num_values());
  for (size_t i = 0; i < n; ++i) {
    if (a.value(i) != b.value(i)) return a.value(i) < b.value(i);
  }
  return a.num_values() < b.num_values();
}

}  // namespace

bool SameTupleMultiset(std::vector<Tuple> a, std::vector<Tuple> b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end(), TupleLess);
  std::sort(b.begin(), b.end(), TupleLess);
  return a == b;
}

}  // namespace tempo
