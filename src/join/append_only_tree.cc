#include "join/append_only_tree.h"

#include <cstring>

namespace tempo {

namespace {

// Node entry wire format: key (8 bytes) + child page number (4 bytes).
constexpr size_t kEntrySize = 12;

std::string EncodeEntry(Chronon key, uint32_t child) {
  std::string out(kEntrySize, '\0');
  std::memcpy(out.data(), &key, 8);
  std::memcpy(out.data() + 8, &child, 4);
  return out;
}

void DecodeEntry(std::string_view rec, Chronon* key, uint32_t* child) {
  TEMPO_DCHECK(rec.size() == kEntrySize);
  std::memcpy(key, rec.data(), 8);
  std::memcpy(child, rec.data() + 8, 4);
}

}  // namespace

AppendOnlyTree::AppendOnlyTree(Disk* disk, std::string name)
    : disk_(disk), name_(std::move(name)) {
  file_ = disk_->CreateFile(name_ + ".aptree");
}

StatusOr<std::unique_ptr<AppendOnlyTree>> AppendOnlyTree::Build(
    StoredRelation* rel, const std::string& name) {
  std::unique_ptr<AppendOnlyTree> tree(
      new AppendOnlyTree(rel->disk(), name));
  Chronon prev_first = kChrononMin;
  for (uint32_t p = 0; p < rel->num_pages(); ++p) {
    TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                           rel->ReadPageTuples(p));
    if (tuples.empty()) continue;
    Chronon first = tuples.front().interval().start();
    for (const Tuple& t : tuples) {
      if (t.interval().start() < prev_first) {
        return Status::FailedPrecondition(
            "relation is not ordered by interval start");
      }
      prev_first = t.interval().start();
      tree->ObserveDuration(t.interval().duration());
    }
    TEMPO_RETURN_IF_ERROR(tree->AppendPage(first, p));
  }
  return tree;
}

Status AppendOnlyTree::AppendPage(Chronon first_vs, uint32_t page_no) {
  TEMPO_RETURN_IF_ERROR(Insert(0, first_vs, page_no));
  ++num_entries_;
  return Status::OK();
}

Status AppendOnlyTree::Insert(uint32_t level, Chronon key, uint32_t child) {
  if (level >= right_spine_.size()) {
    // New level (the tree grows at the top). Its single page becomes the
    // root; the caller is responsible for seeding it with the previous
    // top page's entry before/after this insert (see the split path).
    Page fresh;
    TEMPO_ASSIGN_OR_RETURN(uint32_t page_no,
                           disk_->AppendPage(file_, fresh));
    right_spine_.push_back(page_no);
    right_page_.push_back(fresh);
    height_ = static_cast<uint32_t>(right_spine_.size());
    root_page_ = page_no;
  }
  Page& cur = right_page_[level];
  std::string entry = EncodeEntry(key, child);
  if (!cur.Fits(entry.size())) {
    // Split: the rightmost page at this level is full. Its on-disk copy
    // is already current; start a fresh right page and tell the parent.
    const uint32_t old_page = right_spine_[level];
    const bool had_parent = level + 1 < right_spine_.size();
    Page fresh;
    TEMPO_ASSIGN_OR_RETURN(uint32_t new_page,
                           disk_->AppendPage(file_, fresh));
    right_spine_[level] = new_page;
    right_page_[level].Reset();
    if (!had_parent) {
      // A parent is being created: seed it with the old page first. Its
      // first key is unimportant for the descend (it is the leftmost
      // child); use kChrononMin.
      TEMPO_RETURN_IF_ERROR(Insert(level + 1, kChrononMin, old_page));
    }
    TEMPO_RETURN_IF_ERROR(Insert(level + 1, key, new_page));
  }
  Page& target = right_page_[level];
  auto slot = target.AddRecord(entry);
  TEMPO_CHECK(slot.has_value());
  // Keep the on-disk node current (this is the index's update cost).
  return disk_->WritePage(file_, right_spine_[level], target);
}

uint32_t AppendOnlyTree::num_node_pages() const {
  return disk_->FileSizePages(file_);
}

namespace {

/// Index of the last entry on `node` with key <= t; -1 if none.
int LastEntryAtMost(const Page& node, Chronon t) {
  int found = -1;
  for (uint16_t i = 0; i < node.num_records(); ++i) {
    Chronon key;
    uint32_t child;
    DecodeEntry(node.GetRecord(i), &key, &child);
    if (key <= t) {
      found = i;
    } else {
      break;  // entries are appended in key order
    }
  }
  return found;
}

}  // namespace

StatusOr<uint32_t> AppendOnlyTree::UpperBoundPage(
    Chronon t, BufferManager* buffers) const {
  if (height_ == 0) {
    return Status::FailedPrecondition("empty index");
  }
  uint32_t page_no = root_page_;
  for (uint32_t level = height_; level-- > 0;) {
    TEMPO_ASSIGN_OR_RETURN(Page * node, buffers->Pin(file_, page_no));
    int idx = LastEntryAtMost(*node, t);
    if (idx < 0) idx = 0;  // descend leftmost
    Chronon key;
    uint32_t child;
    DecodeEntry(node->GetRecord(static_cast<uint16_t>(idx)), &key, &child);
    TEMPO_RETURN_IF_ERROR(buffers->Unpin(file_, page_no, false));
    page_no = child;
    if (level == 0) return child;  // leaf entry = data page
  }
  return page_no;
}

StatusOr<uint32_t> AppendOnlyTree::LowerBoundPage(
    Chronon t, BufferManager* buffers) const {
  TEMPO_ASSIGN_OR_RETURN(uint32_t page, UpperBoundPage(t, buffers));
  // Step back one data page: the preceding page may contain tuples with
  // Vs == t at its tail.
  return page > 0 ? page - 1 : 0;
}

Status AppendOnlyTree::Drop() {
  if (file_ != 0 && disk_->Exists(file_)) {
    TEMPO_RETURN_IF_ERROR(disk_->DeleteFile(file_));
  }
  right_spine_.clear();
  right_page_.clear();
  height_ = 0;
  num_entries_ = 0;
  return Status::OK();
}

}  // namespace tempo
