#ifndef TEMPO_JOIN_NESTED_LOOP_JOIN_H_
#define TEMPO_JOIN_NESTED_LOOP_JOIN_H_

#include "join/join_common.h"

namespace tempo {

/// Block nested-loop evaluation of the valid-time natural join: the outer
/// relation r is read once in blocks of (buffSize - 2) pages; for each
/// block the inner relation s is scanned in full through a single page
/// buffer (the remaining page holds result tuples).
///
/// This is the paper's brute-force comparator (Section 4.1 computed its
/// cost analytically; NestedLoopAnalyticCost reproduces that closed form,
/// and the executor is validated against it). Long-lived tuples do not
/// affect its cost; memory size affects it dramatically — few outer pages
/// in memory means many scans of the inner relation (Section 4.2).
///
/// Metrics in JoinRunStats: kOuterBlocks. With a non-null `ctx`, the run
/// is traced as one kNestedLoop span.
StatusOr<JoinRunStats> NestedLoopVtJoin(StoredRelation* r, StoredRelation* s,
                                        StoredRelation* out,
                                        const VtJoinOptions& options,
                                        ExecContext* ctx = nullptr);

/// Closed-form I/O cost of NestedLoopVtJoin, excluding result output.
/// Under HeadModel::kPerFile, the outer is one sequential pass (1 random +
/// (pages_r - 1) sequential) and each of the `blocks` inner scans costs
/// 1 random + (pages_s - 1) sequential. Under kSingleHead each outer block
/// additionally reseeks (blocks random + pages_r - blocks sequential).
/// Matches the executor exactly when the result relation is uncharged.
double NestedLoopAnalyticCost(uint32_t pages_r, uint32_t pages_s,
                              uint32_t buffer_pages, const CostModel& model,
                              HeadModel head_model = HeadModel::kPerFile);

}  // namespace tempo

#endif  // TEMPO_JOIN_NESTED_LOOP_JOIN_H_
