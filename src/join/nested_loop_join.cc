#include "join/nested_loop_join.h"

namespace tempo {

StatusOr<JoinRunStats> NestedLoopVtJoin(StoredRelation* r, StoredRelation* s,
                                        StoredRelation* out,
                                        const VtJoinOptions& options,
                                        ExecContext* ctx) {
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout, PrepareJoin(r, s, out));
  if (options.buffer_pages < 3) {
    return Status::InvalidArgument(
        "nested-loop join needs at least 3 buffer pages");
  }
  TEMPO_RETURN_IF_ERROR(
      RequireSharedChrononPredicate(options, "nested-loop"));
  IoAccountant& acct = r->disk()->accountant();
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&acct);
  }
  IoStats before = acct.stats();
  TraceSpan span = SpanIf(ctx, Phase::kNestedLoop);

  const uint32_t block_pages = options.buffer_pages - 2;
  const uint32_t pages_r = r->num_pages();
  const uint32_t pages_s = s->num_pages();

  ResultWriter writer(out);
  uint64_t blocks = 0;
  uint64_t views_probed = 0;
  const RecordLayout& s_layout = s->schema().layout();

  std::vector<Tuple> block;
  for (uint32_t block_start = 0; block_start < pages_r;
       block_start += block_pages) {
    ++blocks;
    uint32_t block_end = block_start + block_pages;
    if (block_end > pages_r) block_end = pages_r;

    // Load the outer block (1 random + (k-1) sequential reads).
    block.clear();
    for (uint32_t p = block_start; p < block_end; ++p) {
      Page page;
      TEMPO_RETURN_IF_ERROR(r->ReadPage(p, &page));
      TEMPO_RETURN_IF_ERROR(
          StoredRelation::DecodePage(r->schema(), page, &block));
    }
    HashedTupleIndex index(&block, &layout.r_join_attrs);

    // Scan the inner relation through one page buffer, probing each
    // record in place off the page — no inner tuple is materialized
    // unless it joins.
    for (uint32_t p = 0; p < pages_s; ++p) {
      Page page;
      TEMPO_RETURN_IF_ERROR(s->ReadPage(p, &page));
      for (uint16_t slot = 0; slot < page.num_records(); ++slot) {
        std::string_view rec = page.GetRecord(slot);
        TEMPO_ASSIGN_OR_RETURN(
            TupleView y, TupleView::Make(s_layout, rec.data(), rec.size()));
        ++views_probed;
        Status status = Status::OK();
        const Interval y_iv = y.interval();
        index.ForEachMatch(y, layout.s_join_attrs, [&](const Tuple& x) {
          if (!status.ok()) return;
          auto common = Overlap(x.interval(), y_iv);
          if (common &&
              PredicateAdmitsOverlapping(options.predicate, x.interval(),
                                         y_iv)) {
            status = writer.Emit(layout, x, y, *common);
          }
        });
        TEMPO_RETURN_IF_ERROR(status);
      }
    }
  }
  TEMPO_RETURN_IF_ERROR(writer.Finish());

  JoinRunStats stats;
  stats.io = acct.stats() - before;
  stats.output_tuples = writer.count();
  stats.Set(Metric::kOuterBlocks, static_cast<double>(blocks));
  stats.Set(Metric::kDecodeMaterializationsAvoided,
            static_cast<double>(views_probed));
  ExportMetrics(stats, ctx);
  return stats;
}

double NestedLoopAnalyticCost(uint32_t pages_r, uint32_t pages_s,
                              uint32_t buffer_pages, const CostModel& model,
                              HeadModel head_model) {
  TEMPO_CHECK(buffer_pages >= 3);
  if (pages_r == 0) return 0.0;
  uint32_t block_pages = buffer_pages - 2;
  uint64_t blocks = (pages_r + block_pages - 1) / block_pages;
  uint64_t inner_random = pages_s > 0 ? blocks : 0;
  uint64_t inner_seq = pages_s > 0 ? blocks * (pages_s - 1) : 0;
  if (head_model == HeadModel::kPerFile) {
    // The outer blocks form one continuous pass over r.
    return model.Cost(1 + inner_random, (pages_r - 1) + inner_seq);
  }
  // Single head: every outer block and every inner scan reseeks.
  return model.Cost(blocks + inner_random, (pages_r - blocks) + inner_seq);
}

}  // namespace tempo
