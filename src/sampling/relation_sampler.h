#ifndef TEMPO_SAMPLING_RELATION_SAMPLER_H_
#define TEMPO_SAMPLING_RELATION_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "storage/stored_relation.h"
#include "temporal/interval.h"

namespace tempo {

/// Draws uniform samples of a stored relation's validity intervals,
/// without replacement, incrementally.
///
/// determinePartIntervals (Appendix A.2) grows its sample set as it
/// examines larger candidate partition sizes, so the sampler keeps its
/// position across calls: DrawRandom(k) returns k *additional* samples,
/// each costing one random page read.
///
/// The paper's Section 4.2 optimization: when the required number of
/// samples exceeds the sequential-scan break-even point, the algorithm
/// "sequentially scans the outer relation, drawing samples randomly when a
/// page of the relation is brought into main memory". SwitchToScan()
/// implements this — it charges one full sequential scan and thereafter any
/// number of samples is free.
class RelationSampler {
 public:
  RelationSampler(StoredRelation* relation, Random* rng);

  /// Total tuples available to sample.
  uint64_t population() const { return population_; }
  /// Samples drawn so far (all modes).
  uint64_t num_drawn() const { return drawn_.size(); }
  bool scanned() const { return scanned_; }

  /// Draws `count` additional distinct samples by random page reads and
  /// appends their intervals to the internal sample set. Clamped to the
  /// remaining population. Returns the number actually drawn.
  StatusOr<uint64_t> DrawRandom(uint64_t count);

  /// Charges one sequential scan of the relation and makes the entire
  /// population available as samples at no further I/O cost. Subsequent
  /// DrawRandom calls draw from the in-memory residue for free.
  Status SwitchToScan();

  /// All sample intervals drawn so far, in draw order.
  const std::vector<Interval>& samples() const { return drawn_; }

  /// I/O (in random-read units under `random_weight`:1 weighting) that
  /// drawing `additional` more samples would cost in the current mode.
  /// Used by the optimizer to decide when scanning becomes cheaper.
  double EstimateDrawCost(uint64_t additional, double random_weight) const;

  /// Cost of SwitchToScan() if not yet scanned: 1 random + (pages-1)
  /// sequential.
  double ScanCost(double random_weight) const;

 private:
  StoredRelation* relation_;
  Random* rng_;
  uint64_t population_;
  // Lazily shuffled permutation of tuple ordinals; next_ is the cursor.
  std::vector<uint64_t> permutation_;
  uint64_t next_ = 0;
  std::vector<Interval> drawn_;
  bool scanned_ = false;
  // When scanned_, intervals of the whole relation indexed by ordinal.
  std::vector<Interval> all_intervals_;
};

}  // namespace tempo

#endif  // TEMPO_SAMPLING_RELATION_SAMPLER_H_
