#include "sampling/kolmogorov.h"

#include <cmath>

#include "common/assert.h"

namespace tempo {

double KolmogorovDeviation(uint64_t num_samples, double critical) {
  TEMPO_CHECK(num_samples > 0);
  return critical / std::sqrt(static_cast<double>(num_samples));
}

uint64_t RequiredKolmogorovSamples(uint64_t relation_pages,
                                   uint64_t error_pages, double critical) {
  TEMPO_CHECK(error_pages > 0);
  double ratio =
      critical * static_cast<double>(relation_pages) /
      static_cast<double>(error_pages);
  double m = ratio * ratio;
  uint64_t required = static_cast<uint64_t>(std::ceil(m));
  return required == 0 ? 1 : required;
}

}  // namespace tempo
