#include "sampling/relation_sampler.h"

#include <numeric>

namespace tempo {

RelationSampler::RelationSampler(StoredRelation* relation, Random* rng)
    : relation_(relation), rng_(rng) {
  TEMPO_CHECK(relation != nullptr);
  TEMPO_CHECK(rng != nullptr);
  population_ = relation->num_tuples();
  permutation_.resize(population_);
  std::iota(permutation_.begin(), permutation_.end(), 0);
  rng_->Shuffle(permutation_);
}

StatusOr<uint64_t> RelationSampler::DrawRandom(uint64_t count) {
  uint64_t available = population_ - next_;
  uint64_t to_draw = count < available ? count : available;
  for (uint64_t i = 0; i < to_draw; ++i) {
    uint64_t ordinal = permutation_[next_++];
    if (scanned_) {
      drawn_.push_back(all_intervals_[ordinal]);
    } else {
      TEMPO_ASSIGN_OR_RETURN(Tuple t, relation_->ReadTupleRandom(ordinal));
      drawn_.push_back(t.interval());
    }
  }
  return to_draw;
}

Status RelationSampler::SwitchToScan() {
  if (scanned_) return Status::OK();
  all_intervals_.clear();
  all_intervals_.reserve(population_);
  auto scan = relation_->Scan();
  Tuple t;
  while (true) {
    TEMPO_ASSIGN_OR_RETURN(bool more, scan.Next(&t));
    if (!more) break;
    all_intervals_.push_back(t.interval());
  }
  TEMPO_CHECK(all_intervals_.size() == population_);
  scanned_ = true;
  return Status::OK();
}

double RelationSampler::EstimateDrawCost(uint64_t additional,
                                         double random_weight) const {
  if (scanned_) return 0.0;
  return static_cast<double>(additional) * random_weight;
}

double RelationSampler::ScanCost(double random_weight) const {
  if (scanned_) return 0.0;
  uint32_t pages = relation_->num_pages();
  if (pages == 0) return 0.0;
  return random_weight + static_cast<double>(pages - 1);
}

}  // namespace tempo
