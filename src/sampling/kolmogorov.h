#ifndef TEMPO_SAMPLING_KOLMOGOROV_H_
#define TEMPO_SAMPLING_KOLMOGOROV_H_

#include <cstdint>

namespace tempo {

/// Asymptotic critical values of the Kolmogorov test statistic [Con71]:
/// with confidence `1 - alpha`, the empirical distribution of m samples
/// deviates from the true distribution by at most K(alpha)/sqrt(m) in any
/// percentile. The paper uses the 99% value, 1.63 (Section 3.4).
struct KolmogorovCritical {
  static constexpr double k90 = 1.22;
  static constexpr double k95 = 1.36;
  static constexpr double k98 = 1.52;
  static constexpr double k99 = 1.63;
};

/// Maximum percentile deviation guaranteed (with the given confidence) for
/// a sample of size m: K/sqrt(m).
double KolmogorovDeviation(uint64_t num_samples,
                           double critical = KolmogorovCritical::k99);

/// The paper's sample-size bound: choosing partitioning chronons from m
/// samples, each boundary's percentile is off by at most 1.63/sqrt(m), i.e.
/// a partition may exceed its estimated size by (1.63 * relation_size) /
/// sqrt(m). Requiring that overflow to fit in `error_size` pages gives
///     m >= ((1.63 * relation_size) / error_size)^2
/// where relation_size and error_size are in the same unit (pages here).
/// Returns the smallest such m (>= 1). As the paper's footnote 2 notes, the
/// bound depends only on the ratio relation_size/error_size.
uint64_t RequiredKolmogorovSamples(uint64_t relation_pages,
                                   uint64_t error_pages,
                                   double critical = KolmogorovCritical::k99);

}  // namespace tempo

#endif  // TEMPO_SAMPLING_KOLMOGOROV_H_
