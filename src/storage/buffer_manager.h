#ifndef TEMPO_STORAGE_BUFFER_MANAGER_H_
#define TEMPO_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "storage/disk.h"

namespace tempo {

/// Hit/miss counters of a BufferManager, snapshotable and subtractable so
/// the tracing layer can attribute buffer traffic to a phase:
///   BufferCounters before = pool.counters();
///   ... run phase ...
///   BufferCounters phase = pool.counters() - before;
struct BufferCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;

  uint64_t total() const { return hits + misses; }

  BufferCounters operator-(const BufferCounters& other) const {
    return BufferCounters{hits - other.hits, misses - other.misses};
  }
  BufferCounters operator+(const BufferCounters& other) const {
    return BufferCounters{hits + other.hits, misses + other.misses};
  }
  bool operator==(const BufferCounters& other) const {
    return hits == other.hits && misses == other.misses;
  }
};

/// A classic pin/unpin buffer pool over a Disk with LRU replacement.
///
/// The paper's join algorithms manage their buffer budget explicitly (outer
/// partition area, inner page, tuple cache, result page — Figure 3), so the
/// join executors talk to the Disk directly and enforce their own page
/// budget. BufferManager serves the rest of the system: the algebra
/// operators, incremental view maintenance, and applications that want
/// ordinary cached access.
///
/// Usage:
///   TEMPO_ASSIGN_OR_RETURN(Page* p, buf.Pin(file, 3));
///   ... read/modify *p ...
///   buf.Unpin(file, 3, /*dirty=*/true);
///
/// Pin/Unpin and the flush operations are internally synchronized, so the
/// pool may be shared across threads. The returned Page* stays valid while
/// pinned (frames own their pages by unique_ptr); coordinating concurrent
/// writers to the *same* pinned page remains the caller's responsibility.
class BufferManager {
 public:
  /// `capacity_frames` pages of buffer memory.
  BufferManager(Disk* disk, size_t capacity_frames);

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  ~BufferManager();

  /// Pins the page, reading it from disk on a miss. Fails with
  /// ResourceExhausted if every frame is pinned.
  StatusOr<Page*> Pin(FileId file, uint32_t page_no);

  /// Releases one pin. `dirty` marks the frame for write-back on eviction
  /// or flush.
  Status Unpin(FileId file, uint32_t page_no, bool dirty);

  /// Appends a fresh empty page to `file` on disk and pins it.
  /// Returns the page and its number.
  StatusOr<std::pair<Page*, uint32_t>> NewPage(FileId file);

  /// Writes back all dirty frames (clean frames stay cached).
  Status FlushAll();

  /// Writes back and drops every frame of `file`. Required before deleting
  /// the file on disk.
  Status FlushAndEvictFile(FileId file);

  size_t capacity() const { return capacity_; }
  size_t num_cached() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.size();
  }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

  /// Consistent snapshot of both counters (one lock acquisition).
  BufferCounters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return BufferCounters{hits_, misses_};
  }

 private:
  struct Key {
    FileId file;
    uint32_t page_no;
    bool operator==(const Key& other) const {
      return file == other.file && page_no == other.page_no;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.file * 0x9e3779b97f4a7c15ull ^
                                   k.page_no);
    }
  };
  struct Frame {
    Key key;
    std::unique_ptr<Page> page;
    int pin_count = 0;
    bool dirty = false;
    // Position in lru_ when pin_count == 0.
    std::list<Key>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Frees one frame slot if at capacity, evicting the LRU unpinned frame.
  /// Caller must hold mu_.
  Status EnsureCapacity();
  Status WriteBack(Frame& frame);

  Disk* disk_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<Key, Frame, KeyHash> table_;
  std::list<Key> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// RAII pin guard. Unpins on destruction; call MarkDirty() before release
/// if the page was modified.
class PinnedPage {
 public:
  PinnedPage(BufferManager* buf, FileId file, uint32_t page_no, Page* page)
      : buf_(buf), file_(file), page_no_(page_no), page_(page) {}
  ~PinnedPage() {
    if (buf_ != nullptr) {
      // Unpin cannot fail for a held pin.
      buf_->Unpin(file_, page_no_, dirty_).ok();
    }
  }
  PinnedPage(PinnedPage&& other) noexcept
      : buf_(other.buf_),
        file_(other.file_),
        page_no_(other.page_no_),
        page_(other.page_),
        dirty_(other.dirty_) {
    other.buf_ = nullptr;
  }
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;
  PinnedPage& operator=(PinnedPage&&) = delete;

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  Page& operator*() const { return *page_; }
  void MarkDirty() { dirty_ = true; }

 private:
  BufferManager* buf_;
  FileId file_;
  uint32_t page_no_;
  Page* page_;
  bool dirty_ = false;
};

}  // namespace tempo

#endif  // TEMPO_STORAGE_BUFFER_MANAGER_H_
