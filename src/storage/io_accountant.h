#ifndef TEMPO_STORAGE_IO_ACCOUNTANT_H_
#define TEMPO_STORAGE_IO_ACCOUNTANT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/histogram.h"

namespace tempo {

/// Weights for the two I/O classes. The paper measures "cost as the number
/// of I/O operations performed by an algorithm, distinguishing between the
/// higher cost of random access and the lower cost of sequential access"
/// (Section 4.1) and runs trials at random:sequential ratios 2:1, 5:1 and
/// 10:1 (Section 4.2).
struct CostModel {
  double random_weight = 5.0;
  double sequential_weight = 1.0;

  static CostModel Ratio(double ratio) { return CostModel{ratio, 1.0}; }

  double Cost(uint64_t random_ops, uint64_t sequential_ops) const {
    return static_cast<double>(random_ops) * random_weight +
           static_cast<double>(sequential_ops) * sequential_weight;
  }
};

/// Raw I/O counters. Subtractable so callers can measure a phase:
///   IoStats before = disk.accountant().stats();
///   ... run phase ...
///   IoStats phase = disk.accountant().stats() - before;
struct IoStats {
  uint64_t random_reads = 0;
  uint64_t sequential_reads = 0;
  uint64_t random_writes = 0;
  uint64_t sequential_writes = 0;

  uint64_t total_random() const { return random_reads + random_writes; }
  uint64_t total_sequential() const {
    return sequential_reads + sequential_writes;
  }
  uint64_t total_ops() const { return total_random() + total_sequential(); }

  double Cost(const CostModel& model) const {
    return model.Cost(total_random(), total_sequential());
  }

  IoStats operator-(const IoStats& other) const {
    return IoStats{random_reads - other.random_reads,
                   sequential_reads - other.sequential_reads,
                   random_writes - other.random_writes,
                   sequential_writes - other.sequential_writes};
  }
  IoStats operator+(const IoStats& other) const {
    return IoStats{random_reads + other.random_reads,
                   sequential_reads + other.sequential_reads,
                   random_writes + other.random_writes,
                   sequential_writes + other.sequential_writes};
  }
  bool operator==(const IoStats& other) const {
    return random_reads == other.random_reads &&
           sequential_reads == other.sequential_reads &&
           random_writes == other.random_writes &&
           sequential_writes == other.sequential_writes;
  }

  std::string ToString() const;
};

/// How accesses are classified as random vs sequential.
enum class HeadModel {
  /// Sequential iff the access continues *that file's* previous position
  /// (page p after p-1 or p of the same file), regardless of interleaved
  /// traffic to other files. This matches the paper's cost statements
  /// (Appendix A.1: the inner partition and the tuple cache are each "read
  /// nearly sequentially" even though their reads interleave), as if each
  /// logical stream kept a dedicated arm.
  kPerFile,
  /// Sequential iff the access continues the single device head's last
  /// position: any switch between files (or a backward/forward jump) is a
  /// seek. Stricter; interleaved streams pay for every switch. Offered for
  /// the sensitivity ablation.
  kSingleHead,
};

/// Classifies each page access as random or sequential and accumulates
/// counters. Reading a k-page run of one file costs 1 random + (k-1)
/// sequential accesses under either model; the models differ only in how
/// interleaved streams interact (see HeadModel).
///
/// Thread-safe: Record*/stats()/Reset may be called concurrently (the
/// parallel executors issue I/O from a partitioning coordinator per input
/// and from sort workers). Under the default kPerFile model the totals are
/// order-independent — each file's accesses keep their per-stream order —
/// so charged counts are deterministic across thread counts.
class IoAccountant {
 public:
  IoAccountant() = default;

  HeadModel head_model() const {
    std::lock_guard<std::mutex> lock(mu_);
    return head_model_;
  }
  void set_head_model(HeadModel m) {
    std::lock_guard<std::mutex> lock(mu_);
    head_model_ = m;
  }

  /// Records an access. `charged=false` accesses (e.g. the shared result
  /// file excluded from algorithm comparisons) are neither counted nor
  /// allowed to move the head.
  void RecordRead(uint64_t file_id, uint64_t page_no, bool charged);
  void RecordWrite(uint64_t file_id, uint64_t page_no, bool charged);

  /// Scoped per-thread attribution, used by the tracing layer to charge a
  /// phase for the I/O it issues. While registered, every charged access
  /// recorded *by the registering thread* is additionally accumulated into
  /// `*sink` (classification is identical to the global counters, so sinks
  /// nest and sum exactly). Collectors form a per-thread stack and only the
  /// innermost one receives the traffic — a nested phase's I/O is excluded
  /// from its parent's sink, giving exclusive per-span attribution. The
  /// registering thread must Pop in LIFO order; `*sink` may be read only
  /// after the Pop. Accesses from threads with no registered collector
  /// update just the global counters (free: one thread-local empty check).
  void PushThreadCollector(IoStats* sink);
  void PopThreadCollector(IoStats* sink);

  /// Optional page-read latency sink, installed by an ExecContext when it
  /// binds this accountant. While set, Disk times each page read and
  /// records the wall-clock microseconds here; while null (the default,
  /// and any run without an ExecContext), no clock is ever read — the
  /// zero-overhead guarantee of the null-context mode. The sink must
  /// outlive its installation; ExecContext clears it on destruction.
  void SetLatencySink(LogHistogram* sink) {
    latency_sink_.store(sink, std::memory_order_release);
  }
  /// Clears the sink only if it is still `sink` (a newer context that
  /// re-bound the accountant is left undisturbed).
  void ClearLatencySink(LogHistogram* sink) {
    latency_sink_.compare_exchange_strong(sink, nullptr,
                                          std::memory_order_acq_rel);
  }
  LogHistogram* latency_sink() const {
    return latency_sink_.load(std::memory_order_acquire);
  }

  /// Snapshot of the counters.
  IoStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = IoStats{};
    has_position_ = false;
    file_positions_.clear();
  }

 private:
  bool IsSequential(uint64_t file_id, uint64_t page_no) const;
  void Advance(uint64_t file_id, uint64_t page_no);

  /// Innermost collector registered by the calling thread for this
  /// accountant, or null.
  IoStats* ThreadCollector() const;

  mutable std::mutex mu_;
  IoStats stats_;
  HeadModel head_model_ = HeadModel::kPerFile;
  // kSingleHead state.
  bool has_position_ = false;
  uint64_t last_file_ = 0;
  uint64_t last_page_ = 0;
  // kPerFile state: last page touched per file.
  std::unordered_map<uint64_t, uint64_t> file_positions_;
  std::atomic<LogHistogram*> latency_sink_{nullptr};
};

}  // namespace tempo

#endif  // TEMPO_STORAGE_IO_ACCOUNTANT_H_
