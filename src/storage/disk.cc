#include "storage/disk.h"

#include <chrono>
#include <utility>
#include <vector>

namespace tempo {

namespace {

/// Per-thread stack of {disk, accountant} bindings (innermost last). A
/// stack rather than a single slot so a query that nests scopes — or a
/// test that runs a query inside another binding — restores the outer
/// ledger on exit. Scanned from the back on each access; depth is 0 or 1
/// in practice, so the scan is effectively a pointer compare.
thread_local std::vector<std::pair<const Disk*, IoAccountant*>> t_bindings;

IoAccountant* FindBinding(const Disk* disk) {
  for (auto it = t_bindings.rbegin(); it != t_bindings.rend(); ++it) {
    if (it->first == disk) return it->second;
  }
  return nullptr;
}

}  // namespace

ScopedAccountantBinding::ScopedAccountantBinding(const Disk* disk,
                                                 IoAccountant* accountant) {
  if (disk == nullptr || accountant == nullptr) return;
  t_bindings.emplace_back(disk, accountant);
  pushed_ = true;
}

ScopedAccountantBinding::~ScopedAccountantBinding() {
  if (pushed_) t_bindings.pop_back();
}

IoAccountant& Disk::accountant() {
  IoAccountant* bound = FindBinding(this);
  return bound != nullptr ? *bound : accountant_;
}

const IoAccountant& Disk::accountant() const {
  const IoAccountant* bound = FindBinding(this);
  return bound != nullptr ? *bound : accountant_;
}

IoAccountant* Disk::BoundAccountant() const { return FindBinding(this); }

FileId Disk::CreateFile(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  FileId id = next_id_++;
  File f;
  f.name = std::move(name);
  files_.emplace(id, std::move(f));
  return id;
}

StatusOr<Disk::File*> Disk::Find(FileId id) {
  auto it = files_.find(id);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + std::to_string(id));
  }
  return &it->second;
}

Status Disk::DeleteFile(FileId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(id);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + std::to_string(id));
  }
  files_.erase(it);
  return Status::OK();
}

Status Disk::Truncate(FileId id) {
  std::lock_guard<std::mutex> lock(mu_);
  TEMPO_ASSIGN_OR_RETURN(File * f, Find(id));
  f->pages.clear();
  return Status::OK();
}

Status Disk::SetCharged(FileId id, bool charged) {
  std::lock_guard<std::mutex> lock(mu_);
  TEMPO_ASSIGN_OR_RETURN(File * f, Find(id));
  f->charged = charged;
  return Status::OK();
}

uint32_t Disk::FileSizePages(FileId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(id);
  if (it == files_.end()) return 0;
  return static_cast<uint32_t>(it->second.pages.size());
}

const std::string& Disk::FileName(FileId id) const {
  static const std::string kUnknown = "<unknown>";
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(id);
  return it == files_.end() ? kUnknown : it->second.name;
}

Status Disk::CheckFault() {
  if (!fault_armed_) return Status::OK();
  if (fault_countdown_ == 0) {
    return Status::Internal("injected storage fault");
  }
  --fault_countdown_;
  return Status::OK();
}

Status Disk::ReadPage(FileId id, uint32_t page_no, Page* out) {
  // Latency capture at the Disk/IoAccountant boundary: only when an
  // ExecContext installed a sink. The timed window includes lock wait, so
  // contention between the parallel coordinators shows up in the tail.
  IoAccountant& acct = accountant();
  LogHistogram* latency = acct.latency_sink();
  std::chrono::steady_clock::time_point t0;
  if (latency != nullptr) t0 = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    TEMPO_ASSIGN_OR_RETURN(File * f, Find(id));
    if (page_no >= f->pages.size()) {
      return Status::OutOfRange("read past EOF: page " +
                                std::to_string(page_no) + " of " + f->name);
    }
    TEMPO_RETURN_IF_ERROR(CheckFault());
    acct.RecordRead(id, page_no, f->charged);
    *out = *f->pages[page_no];
  }
  if (latency != nullptr) {
    latency->Record(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  }
  return Status::OK();
}

Status Disk::WritePage(FileId id, uint32_t page_no, const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  TEMPO_ASSIGN_OR_RETURN(File * f, Find(id));
  if (page_no >= f->pages.size()) {
    return Status::OutOfRange("write past EOF: page " +
                              std::to_string(page_no) + " of " + f->name);
  }
  TEMPO_RETURN_IF_ERROR(CheckFault());
  accountant().RecordWrite(id, page_no, f->charged);
  *f->pages[page_no] = page;
  return Status::OK();
}

StatusOr<uint32_t> Disk::AppendPage(FileId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  TEMPO_ASSIGN_OR_RETURN(File * f, Find(id));
  TEMPO_RETURN_IF_ERROR(CheckFault());
  uint32_t page_no = static_cast<uint32_t>(f->pages.size());
  accountant().RecordWrite(id, page_no, f->charged);
  f->pages.push_back(std::make_unique<Page>(page));
  return page_no;
}

uint64_t Disk::TotalPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [id, f] : files_) total += f.pages.size();
  return total;
}

}  // namespace tempo
