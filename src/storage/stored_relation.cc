#include "storage/stored_relation.h"

#include <algorithm>

namespace tempo {

StoredRelation::StoredRelation(Disk* disk, Schema schema, std::string name)
    : disk_(disk), schema_(std::move(schema)), name_(std::move(name)) {
  TEMPO_CHECK(disk != nullptr);
  file_ = disk_->CreateFile(name_);
  cum_tuples_.push_back(0);
}

Status StoredRelation::Append(const Tuple& tuple) {
  std::string record;
  tuple.SerializeTo(schema_, &record);
  if (record.size() > kMaxRecordSize) {
    return Status::InvalidArgument("tuple record exceeds page capacity (" +
                                   std::to_string(record.size()) + " bytes)");
  }
  if (!append_buffer_.Fits(record.size())) {
    TEMPO_RETURN_IF_ERROR(Flush());
  }
  auto slot = append_buffer_.AddRecord(record);
  TEMPO_CHECK(slot.has_value());
  ++append_buffer_count_;
  ++num_tuples_;
  return Status::OK();
}

Status StoredRelation::AppendRecord(std::string_view record) {
  if (record.size() > kMaxRecordSize) {
    return Status::InvalidArgument("record exceeds page capacity (" +
                                   std::to_string(record.size()) + " bytes)");
  }
  if (!append_buffer_.Fits(record.size())) {
    TEMPO_RETURN_IF_ERROR(Flush());
  }
  auto slot = append_buffer_.AddRecord(record);
  TEMPO_CHECK(slot.has_value());
  ++append_buffer_count_;
  ++num_tuples_;
  return Status::OK();
}

Status StoredRelation::AppendAll(const std::vector<Tuple>& tuples) {
  for (const auto& t : tuples) {
    TEMPO_RETURN_IF_ERROR(Append(t));
  }
  return Flush();
}

Status StoredRelation::Flush() {
  if (append_buffer_count_ == 0) return Status::OK();
  TEMPO_ASSIGN_OR_RETURN(uint32_t page_no,
                         disk_->AppendPage(file_, append_buffer_));
  (void)page_no;
  cum_tuples_.push_back(cum_tuples_.back() + append_buffer_count_);
  append_buffer_.Reset();
  append_buffer_count_ = 0;
  return Status::OK();
}

Status StoredRelation::Clear() {
  TEMPO_RETURN_IF_ERROR(disk_->Truncate(file_));
  append_buffer_.Reset();
  append_buffer_count_ = 0;
  num_tuples_ = 0;
  cum_tuples_.assign(1, 0);
  return Status::OK();
}

Status StoredRelation::ReadPage(uint32_t page_no, Page* out) {
  return disk_->ReadPage(file_, page_no, out);
}

Status StoredRelation::DecodePage(const Schema& schema, const Page& page,
                                  std::vector<Tuple>* out) {
  for (uint16_t slot = 0; slot < page.num_records(); ++slot) {
    std::string_view rec = page.GetRecord(slot);
    TEMPO_ASSIGN_OR_RETURN(Tuple t,
                           Tuple::Deserialize(schema, rec.data(), rec.size()));
    out->push_back(std::move(t));
  }
  return Status::OK();
}

StatusOr<size_t> StoredRelation::DecodePageAppend(const Schema& schema,
                                                  const Page& page,
                                                  std::vector<Tuple>* arena) {
  const size_t before = arena->size();
  arena->reserve(before + page.num_records());
  TEMPO_RETURN_IF_ERROR(DecodePage(schema, page, arena));
  return arena->size() - before;
}

StatusOr<size_t> StoredRelation::DecodePageViews(const Schema& schema,
                                                 const Page& page,
                                                 PageTupleArena* arena) {
  return arena->AddPage(schema, page);
}

StatusOr<std::vector<Tuple>> StoredRelation::ReadPageTuples(uint32_t page_no) {
  Page page;
  TEMPO_RETURN_IF_ERROR(ReadPage(page_no, &page));
  std::vector<Tuple> out;
  out.reserve(page.num_records());
  TEMPO_RETURN_IF_ERROR(DecodePage(schema_, page, &out));
  return out;
}

uint32_t StoredRelation::TuplesOnPage(uint32_t page_no) const {
  TEMPO_DCHECK(page_no + 1 < cum_tuples_.size());
  return static_cast<uint32_t>(cum_tuples_[page_no + 1] -
                               cum_tuples_[page_no]);
}

uint32_t StoredRelation::PageOfTuple(uint64_t tuple_index) const {
  TEMPO_DCHECK(tuple_index < cum_tuples_.back());
  auto it = std::upper_bound(cum_tuples_.begin(), cum_tuples_.end(),
                             tuple_index);
  TEMPO_DCHECK(it != cum_tuples_.begin());
  return static_cast<uint32_t>((it - cum_tuples_.begin()) - 1);
}

StatusOr<Tuple> StoredRelation::ReadTupleRandom(uint64_t tuple_index) {
  if (tuple_index >= cum_tuples_.back()) {
    return Status::OutOfRange("tuple index " + std::to_string(tuple_index) +
                              " not flushed to disk");
  }
  uint32_t page_no = PageOfTuple(tuple_index);
  Page page;
  TEMPO_RETURN_IF_ERROR(ReadPage(page_no, &page));
  uint16_t slot = static_cast<uint16_t>(tuple_index - cum_tuples_[page_no]);
  std::string_view rec = page.GetRecord(slot);
  return Tuple::Deserialize(schema_, rec.data(), rec.size());
}

StatusOr<bool> StoredRelation::Scanner::Next(Tuple* out) {
  while (true) {
    if (!page_loaded_) {
      if (page_no_ >= rel_->num_pages()) return false;
      current_.clear();
      Page page;
      TEMPO_RETURN_IF_ERROR(rel_->ReadPage(page_no_, &page));
      TEMPO_RETURN_IF_ERROR(
          DecodePage(rel_->schema(), page, &current_));
      slot_ = 0;
      page_loaded_ = true;
    }
    if (slot_ < current_.size()) {
      *out = current_[slot_++];
      return true;
    }
    ++page_no_;
    page_loaded_ = false;
  }
}

StatusOr<std::vector<Tuple>> StoredRelation::ReadAll() {
  std::vector<Tuple> out;
  out.reserve(num_tuples_);
  Scanner scan = Scan();
  Tuple t;
  while (true) {
    TEMPO_ASSIGN_OR_RETURN(bool more, scan.Next(&t));
    if (!more) break;
    out.push_back(t);
  }
  return out;
}

}  // namespace tempo
