#include "storage/page_arena.h"

namespace tempo {

StatusOr<size_t> PageTupleArena::AddPage(const Schema& schema,
                                         const Page& page) {
  pages_.push_back(page);
  const Page& pinned = pages_.back();
  const RecordLayout& layout = schema.layout();
  const size_t before = views_.size();
  views_.reserve(before + pinned.num_records());
  for (uint16_t slot = 0; slot < pinned.num_records(); ++slot) {
    std::string_view rec = pinned.GetRecord(slot);
    auto view = TupleView::Make(layout, rec.data(), rec.size());
    if (!view.ok()) {
      // Drop the partially decoded page so the arena stays consistent.
      views_.resize(before);
      pages_.pop_back();
      return view.status();
    }
    views_.push_back(*view);
  }
  return views_.size() - before;
}

}  // namespace tempo
