#ifndef TEMPO_STORAGE_PAGE_ARENA_H_
#define TEMPO_STORAGE_PAGE_ARENA_H_

#include <deque>
#include <vector>

#include "common/statusor.h"
#include "relation/schema.h"
#include "relation/tuple_view.h"
#include "storage/page.h"

namespace tempo {

/// Pins decoded page bytes so TupleViews over them stay valid for the
/// lifetime of a processing phase (one morsel, one partition pass, one
/// probe batch).
///
/// AddPage copies the page into a deque — deque growth never moves
/// existing elements, so views handed out earlier keep pointing at live
/// bytes — and appends one validated TupleView per record to views().
/// Clear() drops everything at a phase boundary; reusing one arena per
/// worker across pages keeps the capacity of views() warm the same way
/// the owning DecodePageAppend arena does.
///
/// The arena borrows the RecordLayout cached on the Schema passed to
/// AddPage; that Schema (or a copy sharing its layout) must outlive the
/// arena's views.
class PageTupleArena {
 public:
  PageTupleArena() = default;
  PageTupleArena(const PageTupleArena&) = delete;
  PageTupleArena& operator=(const PageTupleArena&) = delete;

  /// Copies `page` into the arena and appends one view per record.
  /// Returns the number of views appended, or the first record-corruption
  /// error.
  StatusOr<size_t> AddPage(const Schema& schema, const Page& page);

  /// Views over every record added since the last Clear(), in page order
  /// then slot order.
  const std::vector<TupleView>& views() const { return views_; }

  size_t num_pages() const { return pages_.size(); }

  /// Invalidates all views handed out so far.
  void Clear() {
    pages_.clear();
    views_.clear();
  }

 private:
  std::deque<Page> pages_;
  std::vector<TupleView> views_;
};

}  // namespace tempo

#endif  // TEMPO_STORAGE_PAGE_ARENA_H_
