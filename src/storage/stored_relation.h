#ifndef TEMPO_STORAGE_STORED_RELATION_H_
#define TEMPO_STORAGE_STORED_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "relation/schema.h"
#include "relation/tuple.h"
#include "storage/disk.h"
#include "storage/page.h"
#include "storage/page_arena.h"

namespace tempo {

/// A valid-time relation instance stored as a heap file of slotted pages on
/// a simulated Disk.
///
/// Appends are buffered through a single in-memory page (flushed when full
/// or on Flush()); the paper's algorithms read the relation either
/// sequentially (Scanner) or page-at-a-time (ReadPage / ReadPageTuples).
/// Random tuple access for sampling goes through ReadTupleRandom, which
/// reads the containing page — one random I/O, the cost the paper assigns
/// to one sample.
///
/// The tuple directory (tuples-per-page) is in-memory catalog metadata and
/// is not charged as I/O, mirroring the paper's assumption that |r| and
/// page counts are known to the optimizer.
class StoredRelation {
 public:
  /// Creates an empty relation backed by a fresh file on `disk`.
  StoredRelation(Disk* disk, Schema schema, std::string name);

  StoredRelation(const StoredRelation&) = delete;
  StoredRelation& operator=(const StoredRelation&) = delete;
  StoredRelation(StoredRelation&&) = default;

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  FileId file_id() const { return file_; }
  Disk* disk() const { return disk_; }

  uint64_t num_tuples() const { return num_tuples_; }
  /// Pages on disk; excludes the unflushed append buffer.
  uint32_t num_pages() const { return disk_->FileSizePages(file_); }
  /// True if Append() has buffered tuples not yet on disk.
  bool HasUnflushedAppends() const { return append_buffer_count_ > 0; }

  /// Whether accesses to this relation's file are charged to the
  /// accountant (see Disk::SetCharged).
  Status SetCharged(bool charged) { return disk_->SetCharged(file_, charged); }

  /// Appends a tuple (buffered). Fails if the record exceeds a page.
  Status Append(const Tuple& tuple);

  /// Appends an already-serialized record verbatim (buffered). Because
  /// serialization is canonical (Deserialize rejects any non-round-trip
  /// encoding), routing record bytes straight from an input page — e.g.
  /// through a TupleView — produces the same stored bytes as decoding and
  /// re-appending the Tuple, without the decode/encode round trip.
  Status AppendRecord(std::string_view record);

  /// Appends every tuple, then flushes.
  Status AppendAll(const std::vector<Tuple>& tuples);

  /// Writes out the partial append buffer, if any.
  Status Flush();

  /// Removes all tuples (disk file truncated, directory cleared).
  Status Clear();

  /// Reads a page (charged I/O).
  Status ReadPage(uint32_t page_no, Page* out);

  /// Reads a page and decodes all its tuples (charged I/O).
  StatusOr<std::vector<Tuple>> ReadPageTuples(uint32_t page_no);

  /// Decodes every record in `page` under `schema`. No I/O.
  static Status DecodePage(const Schema& schema, const Page& page,
                           std::vector<Tuple>* out);

  /// Batch-decode variant for tight loops: appends every record in `page`
  /// to `*arena` (not cleared), reserving capacity up front so a reused
  /// arena stops reallocating after the first pages. Returns the number of
  /// tuples appended. Serial and parallel probe/partition paths reuse one
  /// arena per worker across pages to avoid per-page vector churn.
  static StatusOr<size_t> DecodePageAppend(const Schema& schema,
                                           const Page& page,
                                           std::vector<Tuple>* arena);

  /// Zero-copy variant: pins `page` in `*arena` (see PageTupleArena) and
  /// appends one validated TupleView per record instead of materializing
  /// owning Tuples. Returns the number of views appended. The views stay
  /// valid until the arena is cleared.
  static StatusOr<size_t> DecodePageViews(const Schema& schema,
                                          const Page& page,
                                          PageTupleArena* arena);

  /// Number of tuples stored on `page_no` (directory lookup; no I/O).
  uint32_t TuplesOnPage(uint32_t page_no) const;

  /// Page containing the tuple with ordinal `tuple_index` (directory
  /// lookup; no I/O).
  uint32_t PageOfTuple(uint64_t tuple_index) const;

  /// Reads the tuple with ordinal `tuple_index` by fetching its page —
  /// the random-access path used by sampling.
  StatusOr<Tuple> ReadTupleRandom(uint64_t tuple_index);

  /// Sequential full-scan cursor. Reads pages in order (1 random +
  /// (n-1) sequential I/Os if uninterrupted).
  class Scanner {
   public:
    explicit Scanner(StoredRelation* rel) : rel_(rel) {}

    /// Fetches the next tuple into `*out`; returns false at end of
    /// relation.
    StatusOr<bool> Next(Tuple* out);

   private:
    StoredRelation* rel_;
    uint32_t page_no_ = 0;
    size_t slot_ = 0;
    std::vector<Tuple> current_;
    bool page_loaded_ = false;
  };

  Scanner Scan() { return Scanner(this); }

  /// Reads the entire relation into memory (charged as one sequential
  /// scan). Convenience for tests and small inputs.
  StatusOr<std::vector<Tuple>> ReadAll();

 private:
  Disk* disk_;
  Schema schema_;
  std::string name_;
  FileId file_;

  Page append_buffer_;
  uint32_t append_buffer_count_ = 0;

  uint64_t num_tuples_ = 0;
  // cum_tuples_[p] = number of tuples on pages [0, p); one extra trailing
  // entry equals the flushed-tuple total.
  std::vector<uint64_t> cum_tuples_;
};

}  // namespace tempo

#endif  // TEMPO_STORAGE_STORED_RELATION_H_
