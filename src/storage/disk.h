#ifndef TEMPO_STORAGE_DISK_H_
#define TEMPO_STORAGE_DISK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "storage/io_accountant.h"
#include "storage/page.h"

namespace tempo {

/// Identifies a file on a Disk.
using FileId = uint64_t;

/// A simulated disk volume: named paged files held in memory, with every
/// page access routed through an IoAccountant.
///
/// The paper ran "main-memory simulations ... We measured cost as the number
/// of I/O operations" (Section 4.1). Disk is that simulator: algorithms
/// execute their real page-level logic against it, and the accountant
/// classifies and counts the traffic. A single head position is tracked per
/// Disk (one spindle), so interleaved access to different files is random,
/// and consecutive pages of one file are sequential — the model Appendix A.1
/// reasons with.
///
/// Files may be marked *uncharged* (SetCharged(false)): their accesses are
/// neither counted nor move the head. Benchmarks mark the shared result
/// file uncharged for all algorithms, following the paper's "the cost of
/// writing the result relation is omitted since this cost is incurred by
/// all evaluation algorithms" (Appendix A.2).
///
/// All operations are internally synchronized: the parallel executors
/// issue traffic from a coordinator per input stream and from sort
/// workers, each touching disjoint files. Page contents are copied in and
/// out under the lock, so callers never observe torn pages.
class Disk {
 public:
  Disk() = default;

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Creates an empty file. Names are for debugging; duplicates allowed.
  FileId CreateFile(std::string name);

  /// Deletes a file and frees its pages. Ids are never reused.
  Status DeleteFile(FileId id);

  /// Drops all pages of the file but keeps the id valid.
  Status Truncate(FileId id);

  /// Marks whether accesses to this file are charged to the accountant.
  Status SetCharged(FileId id, bool charged);

  bool Exists(FileId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.count(id) != 0;
  }

  /// Number of pages in the file; 0 for unknown ids.
  uint32_t FileSizePages(FileId id) const;

  const std::string& FileName(FileId id) const;

  /// Reads page `page_no` into `*out`. OutOfRange if past EOF.
  Status ReadPage(FileId id, uint32_t page_no, Page* out);

  /// Overwrites an existing page.
  Status WritePage(FileId id, uint32_t page_no, const Page& page);

  /// Appends a page; returns its page number.
  StatusOr<uint32_t> AppendPage(FileId id, const Page& page);

  /// The accountant charged by page traffic *from the calling thread*: the
  /// innermost ScopedAccountantBinding installed on this thread for this
  /// disk, or the disk's own base accountant when none is bound. Single-
  /// query code never notices the indirection; the concurrent query
  /// service binds a fresh per-query accountant around each query so that
  /// per-query head positions — and therefore charged IoStats — are
  /// byte-identical to a serial run of the same query.
  IoAccountant& accountant();
  const IoAccountant& accountant() const;

  /// The disk's own accountant, ignoring any thread binding. Aggregate
  /// observers (TotalBufferCounters-style dashboards, tests asserting the
  /// unbound default) read this.
  IoAccountant& base_accountant() { return accountant_; }
  const IoAccountant& base_accountant() const { return accountant_; }

  /// The accountant bound on the calling thread for this disk, or null
  /// when unbound. Executors that move charged I/O onto a helper thread
  /// (the partition join's R-partitioning thread) capture this before
  /// spawning and re-bind it inside via ScopedAccountantBinding, so the
  /// helper charges the same per-query ledger as its coordinator.
  IoAccountant* BoundAccountant() const;

  /// Total pages across all files (simulated secondary-storage footprint;
  /// used by the replication-vs-migration ablation).
  uint64_t TotalPages() const;

  /// Fault injection: after `ops` further successful page accesses, every
  /// subsequent access fails with an Internal error until cleared. Used
  /// by the robustness tests to verify that every executor propagates
  /// storage failures as Status instead of crashing or corrupting state.
  void InjectFaultAfter(uint64_t ops) {
    std::lock_guard<std::mutex> lock(mu_);
    fault_armed_ = true;
    fault_countdown_ = ops;
  }
  void ClearFault() {
    std::lock_guard<std::mutex> lock(mu_);
    fault_armed_ = false;
  }

 private:
  struct File {
    std::string name;
    bool charged = true;
    std::vector<std::unique_ptr<Page>> pages;
  };

  StatusOr<File*> Find(FileId id);

  /// Consumes one fault-injection tick; error when the fault has fired.
  Status CheckFault();

  mutable std::mutex mu_;
  std::unordered_map<FileId, File> files_;
  FileId next_id_ = 1;
  IoAccountant accountant_;
  bool fault_armed_ = false;
  uint64_t fault_countdown_ = 0;
};

/// Binds `accountant` as the calling thread's ledger for all page traffic
/// on `disk` for the lifetime of this object (a null accountant is a
/// no-op, which lets callers forward a possibly-absent binding verbatim).
/// Bindings are per-thread and nest innermost-wins; they are how multiple
/// concurrent queries share one Disk while each keeps the private head
/// model that makes its charged IoStats equal to a serial run.
class ScopedAccountantBinding {
 public:
  ScopedAccountantBinding(const Disk* disk, IoAccountant* accountant);

  ScopedAccountantBinding(const ScopedAccountantBinding&) = delete;
  ScopedAccountantBinding& operator=(const ScopedAccountantBinding&) = delete;

  ~ScopedAccountantBinding();

 private:
  bool pushed_ = false;
};

}  // namespace tempo

#endif  // TEMPO_STORAGE_DISK_H_
