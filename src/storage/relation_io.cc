#include "storage/relation_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace tempo {

namespace {

constexpr char kMagic[] = "TEMPOREL1\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

void Append32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void Append64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status Expect(std::string_view bytes) {
    if (data_.size() - pos_ < bytes.size() ||
        data_.substr(pos_, bytes.size()) != bytes) {
      return Status::Corruption("bad magic in relation image");
    }
    pos_ += bytes.size();
    return Status::OK();
  }
  StatusOr<uint32_t> Read32() {
    if (data_.size() - pos_ < 4) {
      return Status::Corruption("truncated relation image");
    }
    uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  StatusOr<uint64_t> Read64() {
    if (data_.size() - pos_ < 8) {
      return Status::Corruption("truncated relation image");
    }
    uint64_t v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  StatusOr<std::string_view> ReadBytes(size_t len) {
    if (data_.size() - pos_ < len) {
      return Status::Corruption("truncated relation image");
    }
    std::string_view out = data_.substr(pos_, len);
    pos_ += len;
    return out;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

Status SaveRelation(StoredRelation* rel, const std::string& path) {
  if (rel->HasUnflushedAppends()) {
    return Status::FailedPrecondition("flush the relation before saving");
  }
  std::string out(kMagic, kMagicLen);
  const Schema& schema = rel->schema();
  Append32(&out, static_cast<uint32_t>(schema.num_attributes()));
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    const Attribute& a = schema.attribute(i);
    out.push_back(static_cast<char>(a.type));
    Append32(&out, static_cast<uint32_t>(a.name.size()));
    out += a.name;
  }
  Append64(&out, rel->num_tuples());

  auto scan = rel->Scan();
  Tuple t;
  while (true) {
    TEMPO_ASSIGN_OR_RETURN(bool more, scan.Next(&t));
    if (!more) break;
    std::string record;
    t.SerializeTo(schema, &record);
    Append32(&out, static_cast<uint32_t>(record.size()));
    out += record;
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  int rc = std::fclose(f);
  if (written != out.size() || rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<StoredRelation>> LoadRelation(
    Disk* disk, const std::string& path, const std::string& name) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::string data;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, got);
  }
  std::fclose(f);

  Reader reader(data);
  TEMPO_RETURN_IF_ERROR(reader.Expect(std::string_view(kMagic, kMagicLen)));
  TEMPO_ASSIGN_OR_RETURN(uint32_t attr_count, reader.Read32());
  if (attr_count > 10000) {
    return Status::Corruption("implausible attribute count");
  }
  std::vector<Attribute> attrs;
  attrs.reserve(attr_count);
  for (uint32_t i = 0; i < attr_count; ++i) {
    TEMPO_ASSIGN_OR_RETURN(std::string_view type_byte, reader.ReadBytes(1));
    uint8_t raw = static_cast<uint8_t>(type_byte[0]);
    if (raw > static_cast<uint8_t>(ValueType::kString)) {
      return Status::Corruption("unknown attribute type");
    }
    TEMPO_ASSIGN_OR_RETURN(uint32_t name_len, reader.Read32());
    TEMPO_ASSIGN_OR_RETURN(std::string_view name_bytes,
                           reader.ReadBytes(name_len));
    attrs.push_back(
        Attribute{std::string(name_bytes), static_cast<ValueType>(raw)});
  }
  TEMPO_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  TEMPO_ASSIGN_OR_RETURN(uint64_t tuple_count, reader.Read64());

  auto rel = std::make_unique<StoredRelation>(disk, schema, name);
  for (uint64_t i = 0; i < tuple_count; ++i) {
    TEMPO_ASSIGN_OR_RETURN(uint32_t len, reader.Read32());
    TEMPO_ASSIGN_OR_RETURN(std::string_view record, reader.ReadBytes(len));
    TEMPO_ASSIGN_OR_RETURN(Tuple t,
                           Tuple::Deserialize(schema, record.data(),
                                              record.size()));
    TEMPO_RETURN_IF_ERROR(rel->Append(t));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in relation image");
  }
  TEMPO_RETURN_IF_ERROR(rel->Flush());
  return rel;
}

}  // namespace tempo
