#ifndef TEMPO_STORAGE_PAGE_H_
#define TEMPO_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>

#include "common/assert.h"

namespace tempo {

/// Disk page size. 4 KiB reproduces the paper's configuration: a 32 MiB
/// relation of 262,144 128-byte tuples occupies 8,192 pages, matching the
/// sampling example in Section 4.2 (819 random reads ≈ one sequential scan
/// at a 10:1 cost ratio).
inline constexpr size_t kPageSize = 4096;

/// A slotted heap page: a fixed 4 KiB buffer holding variable-length
/// records.
///
/// Layout:
///   [0,2)  uint16 slot_count
///   [2,4)  uint16 free_end   -- records occupy [free_end, kPageSize)
///   [4,..) slot array: per record {uint16 offset, uint16 length}
///
/// Records are appended from the back; slots grow from the front. Pages are
/// value types — copying one is a memcpy — which is what the simulated disk
/// does on reads and writes.
class Page {
 public:
  using SlotId = uint16_t;

  Page() { Reset(); }

  /// Clears the page to the empty state.
  void Reset() {
    std::memset(data_, 0, kPageSize);
    SetSlotCount(0);
    SetFreeEnd(static_cast<uint16_t>(kPageSize));
  }

  uint16_t num_records() const { return Load16(0); }

  /// Bytes of record payload that one more record could carry (its 4-byte
  /// slot is accounted separately).
  size_t FreeSpace() const {
    size_t gap = Gap();
    return gap >= kSlotSize ? gap - kSlotSize : 0;
  }

  /// True iff a record of `record_size` bytes plus its slot fits.
  bool Fits(size_t record_size) const {
    return record_size + kSlotSize <= Gap();
  }

  /// Appends a record; returns its slot id, or nullopt if it does not fit.
  /// Zero-length records are allowed.
  std::optional<SlotId> AddRecord(std::string_view record) {
    if (!Fits(record.size())) return std::nullopt;
    uint16_t count = num_records();
    uint16_t free_end = FreeEnd();
    uint16_t offset = static_cast<uint16_t>(free_end - record.size());
    std::memcpy(data_ + offset, record.data(), record.size());
    size_t slot_pos = kHeaderSize + count * kSlotSize;
    Store16(slot_pos, offset);
    Store16(slot_pos + 2, static_cast<uint16_t>(record.size()));
    SetFreeEnd(offset);
    SetSlotCount(static_cast<uint16_t>(count + 1));
    return count;
  }

  /// Returns the record stored in `slot`. The view is valid until the page
  /// is modified or destroyed.
  std::string_view GetRecord(SlotId slot) const {
    TEMPO_DCHECK(slot < num_records());
    size_t slot_pos = kHeaderSize + slot * kSlotSize;
    uint16_t offset = Load16(slot_pos);
    uint16_t length = Load16(slot_pos + 2);
    return std::string_view(data_ + offset, length);
  }

  /// Raw page bytes (for the simulated disk).
  const char* data() const { return data_; }
  char* mutable_data() { return data_; }

 private:
  static constexpr size_t kHeaderSize = 4;
  static constexpr size_t kSlotSize = 4;

  size_t Gap() const {
    size_t slots_end = kHeaderSize + num_records() * kSlotSize;
    size_t free_end = FreeEnd();
    TEMPO_DCHECK(free_end >= slots_end);
    return free_end - slots_end;
  }

  uint16_t FreeEnd() const { return Load16(2); }
  void SetFreeEnd(uint16_t v) { Store16(2, v); }
  void SetSlotCount(uint16_t v) { Store16(0, v); }

  uint16_t Load16(size_t pos) const {
    uint16_t v;
    std::memcpy(&v, data_ + pos, 2);
    return v;
  }
  void Store16(size_t pos, uint16_t v) { std::memcpy(data_ + pos, &v, 2); }

  char data_[kPageSize];
};

/// Largest record AddRecord can ever accept on an empty page.
inline constexpr size_t kMaxRecordSize = kPageSize - 4 /*header*/ - 4 /*slot*/;

}  // namespace tempo

#endif  // TEMPO_STORAGE_PAGE_H_
