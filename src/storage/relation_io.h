#ifndef TEMPO_STORAGE_RELATION_IO_H_
#define TEMPO_STORAGE_RELATION_IO_H_

#include <memory>
#include <string>

#include "common/statusor.h"
#include "storage/stored_relation.h"

namespace tempo {

/// Persistence of valid-time relations to real files (the simulated Disk
/// is in-memory by design — it is the paper's measurement instrument —
/// but a downstream user needs datasets to survive the process).
///
/// File format (little-endian):
///   magic "TEMPOREL1\n"
///   u32 attr_count; per attribute: u8 type, u32 name_len, name bytes
///   u64 tuple_count
///   per tuple: u32 record_len, record bytes (the page record format)
///
/// The format embeds the schema, so Load needs no prior knowledge and
/// verifies integrity via the record decoder.

/// Writes `rel` (must be flushed) to `path`.
Status SaveRelation(StoredRelation* rel, const std::string& path);

/// Reads a relation image from `path` into a fresh StoredRelation named
/// `name` on `disk`.
StatusOr<std::unique_ptr<StoredRelation>> LoadRelation(
    Disk* disk, const std::string& path, const std::string& name);

}  // namespace tempo

#endif  // TEMPO_STORAGE_RELATION_IO_H_
