#include "storage/io_accountant.h"

namespace tempo {

std::string IoStats::ToString() const {
  return "reads{ran=" + std::to_string(random_reads) +
         ", seq=" + std::to_string(sequential_reads) + "} writes{ran=" +
         std::to_string(random_writes) + ", seq=" +
         std::to_string(sequential_writes) + "}";
}

bool IoAccountant::IsSequential(uint64_t file_id, uint64_t page_no) const {
  if (head_model_ == HeadModel::kSingleHead) {
    return has_position_ && file_id == last_file_ &&
           (page_no == last_page_ + 1 || page_no == last_page_);
  }
  auto it = file_positions_.find(file_id);
  if (it == file_positions_.end()) return false;
  return page_no == it->second + 1 || page_no == it->second;
}

void IoAccountant::Advance(uint64_t file_id, uint64_t page_no) {
  has_position_ = true;
  last_file_ = file_id;
  last_page_ = page_no;
  file_positions_[file_id] = page_no;
}

void IoAccountant::RecordRead(uint64_t file_id, uint64_t page_no,
                              bool charged) {
  if (!charged) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (IsSequential(file_id, page_no)) {
    ++stats_.sequential_reads;
  } else {
    ++stats_.random_reads;
  }
  Advance(file_id, page_no);
}

void IoAccountant::RecordWrite(uint64_t file_id, uint64_t page_no,
                               bool charged) {
  if (!charged) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (IsSequential(file_id, page_no)) {
    ++stats_.sequential_writes;
  } else {
    ++stats_.random_writes;
  }
  Advance(file_id, page_no);
}

}  // namespace tempo
