#include "storage/io_accountant.h"

#include <utility>
#include <vector>

namespace tempo {

namespace {

/// Per-thread collector stack. Entries are tagged with their accountant so
/// independent Disks (common in tests) never cross-collect. The stack is
/// only ever touched by its own thread; Record* reads it under the
/// accountant's mutex, which is fine because pushes/pops on other threads
/// affect only those threads' stacks.
thread_local std::vector<std::pair<const IoAccountant*, IoStats*>>
    t_collectors;

}  // namespace

std::string IoStats::ToString() const {
  return "reads{ran=" + std::to_string(random_reads) +
         ", seq=" + std::to_string(sequential_reads) + "} writes{ran=" +
         std::to_string(random_writes) + ", seq=" +
         std::to_string(sequential_writes) + "}";
}

bool IoAccountant::IsSequential(uint64_t file_id, uint64_t page_no) const {
  if (head_model_ == HeadModel::kSingleHead) {
    return has_position_ && file_id == last_file_ &&
           (page_no == last_page_ + 1 || page_no == last_page_);
  }
  auto it = file_positions_.find(file_id);
  if (it == file_positions_.end()) return false;
  return page_no == it->second + 1 || page_no == it->second;
}

void IoAccountant::Advance(uint64_t file_id, uint64_t page_no) {
  has_position_ = true;
  last_file_ = file_id;
  last_page_ = page_no;
  file_positions_[file_id] = page_no;
}

IoStats* IoAccountant::ThreadCollector() const {
  for (auto it = t_collectors.rbegin(); it != t_collectors.rend(); ++it) {
    if (it->first == this) return it->second;
  }
  return nullptr;
}

void IoAccountant::PushThreadCollector(IoStats* sink) {
  t_collectors.emplace_back(this, sink);
}

void IoAccountant::PopThreadCollector(IoStats* sink) {
  for (auto it = t_collectors.rbegin(); it != t_collectors.rend(); ++it) {
    if (it->first == this && it->second == sink) {
      t_collectors.erase(std::next(it).base());
      return;
    }
  }
}

void IoAccountant::RecordRead(uint64_t file_id, uint64_t page_no,
                              bool charged) {
  if (!charged) return;
  IoStats* sink = t_collectors.empty() ? nullptr : ThreadCollector();
  std::lock_guard<std::mutex> lock(mu_);
  if (IsSequential(file_id, page_no)) {
    ++stats_.sequential_reads;
    if (sink != nullptr) ++sink->sequential_reads;
  } else {
    ++stats_.random_reads;
    if (sink != nullptr) ++sink->random_reads;
  }
  Advance(file_id, page_no);
}

void IoAccountant::RecordWrite(uint64_t file_id, uint64_t page_no,
                               bool charged) {
  if (!charged) return;
  IoStats* sink = t_collectors.empty() ? nullptr : ThreadCollector();
  std::lock_guard<std::mutex> lock(mu_);
  if (IsSequential(file_id, page_no)) {
    ++stats_.sequential_writes;
    if (sink != nullptr) ++sink->sequential_writes;
  } else {
    ++stats_.random_writes;
    if (sink != nullptr) ++sink->random_writes;
  }
  Advance(file_id, page_no);
}

}  // namespace tempo
