#include "storage/buffer_manager.h"

namespace tempo {

BufferManager::BufferManager(Disk* disk, size_t capacity_frames)
    : disk_(disk), capacity_(capacity_frames) {
  TEMPO_CHECK(disk != nullptr);
  TEMPO_CHECK(capacity_frames > 0);
}

BufferManager::~BufferManager() {
  // Best-effort flush; destruction cannot report errors.
  FlushAll().ok();
}

Status BufferManager::WriteBack(Frame& frame) {
  if (!frame.dirty) return Status::OK();
  TEMPO_RETURN_IF_ERROR(
      disk_->WritePage(frame.key.file, frame.key.page_no, *frame.page));
  frame.dirty = false;
  return Status::OK();
}

Status BufferManager::EnsureCapacity() {
  if (table_.size() < capacity_) return Status::OK();
  // Evict the least-recently-used unpinned frame.
  if (lru_.empty()) {
    return Status::ResourceExhausted("all buffer frames are pinned");
  }
  Key victim_key = lru_.back();
  auto it = table_.find(victim_key);
  TEMPO_CHECK(it != table_.end());
  TEMPO_RETURN_IF_ERROR(WriteBack(it->second));
  lru_.pop_back();
  table_.erase(it);
  return Status::OK();
}

StatusOr<Page*> BufferManager::Pin(FileId file, uint32_t page_no) {
  std::lock_guard<std::mutex> lock(mu_);
  Key key{file, page_no};
  auto it = table_.find(key);
  if (it != table_.end()) {
    ++hits_;
    Frame& frame = it->second;
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return frame.page.get();
  }
  ++misses_;
  TEMPO_RETURN_IF_ERROR(EnsureCapacity());
  Frame frame;
  frame.key = key;
  frame.page = std::make_unique<Page>();
  TEMPO_RETURN_IF_ERROR(disk_->ReadPage(file, page_no, frame.page.get()));
  frame.pin_count = 1;
  auto [pos, inserted] = table_.emplace(key, std::move(frame));
  TEMPO_CHECK(inserted);
  return pos->second.page.get();
}

Status BufferManager::Unpin(FileId file, uint32_t page_no, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  Key key{file, page_no};
  auto it = table_.find(key);
  if (it == table_.end()) {
    return Status::FailedPrecondition("unpin of uncached page");
  }
  Frame& frame = it->second;
  if (frame.pin_count <= 0) {
    return Status::FailedPrecondition("unpin of unpinned page");
  }
  frame.dirty = frame.dirty || dirty;
  --frame.pin_count;
  if (frame.pin_count == 0) {
    lru_.push_front(key);
    frame.lru_pos = lru_.begin();
    frame.in_lru = true;
  }
  return Status::OK();
}

StatusOr<std::pair<Page*, uint32_t>> BufferManager::NewPage(FileId file) {
  // Append outside the lock (Disk is itself synchronized); Pin re-locks.
  Page empty;
  TEMPO_ASSIGN_OR_RETURN(uint32_t page_no, disk_->AppendPage(file, empty));
  TEMPO_ASSIGN_OR_RETURN(Page * page, Pin(file, page_no));
  return std::make_pair(page, page_no);
}

Status BufferManager::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, frame] : table_) {
    TEMPO_RETURN_IF_ERROR(WriteBack(frame));
  }
  return Status::OK();
}

Status BufferManager::FlushAndEvictFile(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second.key.file == file) {
      if (it->second.pin_count > 0) {
        return Status::FailedPrecondition(
            "cannot evict pinned page of file " + std::to_string(file));
      }
      TEMPO_RETURN_IF_ERROR(WriteBack(it->second));
      if (it->second.in_lru) lru_.erase(it->second.lru_pos);
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

}  // namespace tempo
