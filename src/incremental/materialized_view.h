#ifndef TEMPO_INCREMENTAL_MATERIALIZED_VIEW_H_
#define TEMPO_INCREMENTAL_MATERIALIZED_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/partition_join.h"
#include "core/partition_spec.h"
#include "join/join_common.h"
#include "storage/stored_relation.h"

namespace tempo {

/// A materialized valid-time natural join view with partition-local
/// incremental maintenance — the direction the paper closes with
/// (Section 5 / [SSJ93]; also Section 3.1: "suppose that r |X| s is
/// materialized as a view, and an update happens to r in partition r_i ...
/// the consistency of the view is insured by recomputing only r_i |X| s_i",
/// and footnote 1: the last-overlap placement was chosen "with
/// consideration for incremental adaptations").
///
/// Design. Build() plans a partitioning of valid time and stores, per
/// partition i:
///   - r_i, s_i        : tuples whose *last* overlap is p_i (base storage,
///                       exactly the join algorithm's layout), and
///   - rcache_i, scache_i : materialized copies of later-stored long-lived
///                       tuples overlapping p_i — the join algorithm's
///                       transient tuple cache made persistent, so each
///                       partition is self-contained for maintenance;
///   - result_i        : the partition-local join result, emitting a pair
///                       only where its overlap *ends* (the exactly-once
///                       rule), so result = U_i result_i with no overlap.
///
/// An insert touches only the partitions the new tuple overlaps: the tuple
/// is appended to its last-overlap partition and to the earlier caches,
/// and is delta-joined against the opposite side of those partitions. A
/// delete recomputes result_i for exactly the overlapped partitions
/// (partition-local recomputation, per the paper). Nothing outside
/// [firstOverlap, lastOverlap] is read or written.
///
/// The persistent caches trade secondary storage for update locality —
/// the paper's Section 5 tradeoff discussion — and the ablation bench
/// incremental-vs-recompute quantifies the win.
class MaterializedVtJoinView {
 public:
  /// I/O performed by one maintenance operation.
  struct UpdateStats {
    IoStats io;
    uint64_t partitions_touched = 0;
    uint64_t result_delta = 0;  ///< tuples added (insert) or rebuilt (delete)
  };

  MaterializedVtJoinView(Disk* disk, std::string name);
  ~MaterializedVtJoinView();

  MaterializedVtJoinView(const MaterializedVtJoinView&) = delete;
  MaterializedVtJoinView& operator=(const MaterializedVtJoinView&) = delete;

  /// Builds the view from base relations (copies their contents into the
  /// view's partitioned storage). `buffer_pages` drives the partitioning
  /// plan exactly as in PartitionVtJoin. With a non-null `ctx`, the build
  /// is traced as a kViewBuild span (sampling children included).
  Status Build(StoredRelation* r, StoredRelation* s, uint32_t buffer_pages,
               uint64_t seed = 42, ExecContext* ctx = nullptr);

  /// Inserts a tuple into the r (outer) side and maintains the view.
  /// With a non-null `ctx`, maintenance is traced as a kViewInsert span.
  StatusOr<UpdateStats> InsertR(const Tuple& t, ExecContext* ctx = nullptr);
  /// Inserts a tuple into the s (inner) side and maintains the view.
  StatusOr<UpdateStats> InsertS(const Tuple& t, ExecContext* ctx = nullptr);

  /// Deletes one tuple equal to `t` (attributes and timestamp) from the
  /// given side, recomputing the overlapped partitions' results.
  /// NotFound if no such tuple exists. With a non-null `ctx`, maintenance
  /// is traced as a kViewDelete span.
  StatusOr<UpdateStats> DeleteR(const Tuple& t, ExecContext* ctx = nullptr);
  StatusOr<UpdateStats> DeleteS(const Tuple& t, ExecContext* ctx = nullptr);

  /// The current view contents (concatenation of partition results).
  StatusOr<std::vector<Tuple>> ReadResult();

  const PartitionSpec& spec() const { return spec_; }
  const Schema& output_schema() const { return layout_.output; }
  size_t num_partitions() const { return spec_.num_partitions(); }
  uint64_t result_tuples() const { return result_tuples_; }

 private:
  struct Side {
    Schema schema;
    std::vector<size_t>* keys;  // into layout_
    std::vector<std::unique_ptr<StoredRelation>> parts;
    std::vector<std::unique_ptr<StoredRelation>> caches;
  };

  Status InsertInto(Side& side, Side& other, bool side_is_r, const Tuple& t,
                    UpdateStats* stats);
  Status DeleteFrom(Side& side, Side& other, bool side_is_r, const Tuple& t,
                    UpdateStats* stats);

  /// Recomputes result_[i] from the stored partitions and caches.
  Status RecomputePartitionResult(size_t i);

  /// All tuples of `side` visible in partition i (partition + cache).
  StatusOr<std::vector<Tuple>> VisibleTuples(Side& side, size_t i);

  /// Removes one tuple equal to `t` from a relation by rewriting it.
  /// Returns false if absent.
  StatusOr<bool> RemoveTuple(StoredRelation* rel, const Tuple& t);

  Disk* disk_;
  std::string name_;
  bool built_ = false;
  NaturalJoinLayout layout_;
  PartitionSpec spec_;
  Side r_side_;
  Side s_side_;
  std::vector<std::unique_ptr<StoredRelation>> results_;
  uint64_t result_tuples_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_INCREMENTAL_MATERIALIZED_VIEW_H_
