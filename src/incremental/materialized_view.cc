#include "incremental/materialized_view.h"

#include <functional>

#include "core/determine_part_intervals.h"
#include "relation/tuple_view.h"

namespace tempo {

namespace {

/// Streams the visible records of one side of a partition — its
/// partition file followed by its cache file, the same page order
/// VisibleTuples materializes — as zero-copy views, one page in memory
/// at a time.
Status ForEachVisibleView(StoredRelation* part, StoredRelation* cache,
                          const std::function<Status(const TupleView&)>& fn) {
  const RecordLayout& layout = part->schema().layout();
  for (StoredRelation* rel : {part, cache}) {
    for (uint32_t p = 0; p < rel->num_pages(); ++p) {
      Page page;
      TEMPO_RETURN_IF_ERROR(rel->ReadPage(p, &page));
      for (uint16_t slot = 0; slot < page.num_records(); ++slot) {
        std::string_view rec = page.GetRecord(slot);
        TEMPO_ASSIGN_OR_RETURN(
            TupleView v, TupleView::Make(layout, rec.data(), rec.size()));
        TEMPO_RETURN_IF_ERROR(fn(v));
      }
    }
  }
  return Status::OK();
}

}  // namespace

MaterializedVtJoinView::MaterializedVtJoinView(Disk* disk, std::string name)
    : disk_(disk), name_(std::move(name)) {
  TEMPO_CHECK(disk != nullptr);
}

MaterializedVtJoinView::~MaterializedVtJoinView() {
  auto drop = [&](std::vector<std::unique_ptr<StoredRelation>>& v) {
    for (auto& rel : v) {
      if (rel != nullptr) disk_->DeleteFile(rel->file_id()).ok();
    }
  };
  drop(r_side_.parts);
  drop(r_side_.caches);
  drop(s_side_.parts);
  drop(s_side_.caches);
  drop(results_);
}

Status MaterializedVtJoinView::Build(StoredRelation* r, StoredRelation* s,
                                     uint32_t buffer_pages, uint64_t seed,
                                     ExecContext* ctx) {
  if (built_) return Status::FailedPrecondition("view already built");
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&disk_->accountant());
  }
  TraceSpan build_span = SpanIf(ctx, Phase::kViewBuild);
  TEMPO_ASSIGN_OR_RETURN(layout_,
                         DeriveNaturalJoinLayout(r->schema(), s->schema()));

  // Plan the partitioning (sampling charged, as in the join itself).
  Random rng(seed);
  PartitionPlanOptions plan_options;
  plan_options.buffer_pages = buffer_pages;
  TEMPO_ASSIGN_OR_RETURN(PartitionPlan plan,
                         DeterminePartIntervals(r, plan_options, &rng, ctx));
  spec_ = plan.spec;
  const size_t n = spec_.num_partitions();

  auto init_side = [&](Side& side, const Schema& schema,
                       std::vector<size_t>* keys, const char* tag) {
    side.schema = schema;
    side.keys = keys;
    for (size_t i = 0; i < n; ++i) {
      side.parts.push_back(std::make_unique<StoredRelation>(
          disk_, schema, name_ + "." + tag + ".part" + std::to_string(i)));
      side.caches.push_back(std::make_unique<StoredRelation>(
          disk_, schema, name_ + "." + tag + ".cache" + std::to_string(i)));
    }
  };
  init_side(r_side_, r->schema(), &layout_.r_join_attrs, "r");
  init_side(s_side_, s->schema(), &layout_.s_join_attrs, "s");
  for (size_t i = 0; i < n; ++i) {
    results_.push_back(std::make_unique<StoredRelation>(
        disk_, layout_.output, name_ + ".result" + std::to_string(i)));
  }

  // Load base contents: last-overlap placement plus persistent caches for
  // every earlier overlapped partition.
  auto load = [&](Side& side, StoredRelation* input) -> Status {
    auto scan = input->Scan();
    Tuple t;
    while (true) {
      TEMPO_ASSIGN_OR_RETURN(bool more, scan.Next(&t));
      if (!more) break;
      size_t first = spec_.FirstOverlapping(t.interval());
      size_t last = spec_.LastOverlapping(t.interval());
      TEMPO_RETURN_IF_ERROR(side.parts[last]->Append(t));
      for (size_t i = first; i < last; ++i) {
        TEMPO_RETURN_IF_ERROR(side.caches[i]->Append(t));
      }
    }
    for (auto& p : side.parts) TEMPO_RETURN_IF_ERROR(p->Flush());
    for (auto& c : side.caches) TEMPO_RETURN_IF_ERROR(c->Flush());
    return Status::OK();
  };
  TEMPO_RETURN_IF_ERROR(load(r_side_, r));
  TEMPO_RETURN_IF_ERROR(load(s_side_, s));

  built_ = true;
  for (size_t i = 0; i < n; ++i) {
    TEMPO_RETURN_IF_ERROR(RecomputePartitionResult(i));
  }
  return Status::OK();
}

StatusOr<std::vector<Tuple>> MaterializedVtJoinView::VisibleTuples(Side& side,
                                                                   size_t i) {
  TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                         side.parts[i]->ReadAll());
  TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> cached,
                         side.caches[i]->ReadAll());
  tuples.insert(tuples.end(), cached.begin(), cached.end());
  return tuples;
}

Status MaterializedVtJoinView::RecomputePartitionResult(size_t i) {
  result_tuples_ -= results_[i]->num_tuples();
  TEMPO_RETURN_IF_ERROR(results_[i]->Clear());
  TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> r_tuples,
                         VisibleTuples(r_side_, i));
  const Interval& p_i = spec_.partition(i);
  HashedTupleIndex index(&r_tuples, &layout_.r_join_attrs);
  // Probe side streams as page-backed views in the same order
  // VisibleTuples would produce; only emitted results build tuples.
  TEMPO_RETURN_IF_ERROR(ForEachVisibleView(
      s_side_.parts[i].get(), s_side_.caches[i].get(),
      [&](const TupleView& y) -> Status {
        Status status = Status::OK();
        const Interval y_iv = y.interval();
        index.ForEachMatch(y, layout_.s_join_attrs, [&](const Tuple& x) {
          if (!status.ok()) return;
          auto common = Overlap(x.interval(), y_iv);
          if (!common) return;
          if (!p_i.Contains(common->end())) return;  // exactly-once rule
          status = results_[i]->Append(MakeJoinTuple(layout_, x, y, *common));
        });
        return status;
      }));
  TEMPO_RETURN_IF_ERROR(results_[i]->Flush());
  result_tuples_ += results_[i]->num_tuples();
  return Status::OK();
}

Status MaterializedVtJoinView::InsertInto(Side& side, Side& other,
                                          bool side_is_r, const Tuple& t,
                                          UpdateStats* stats) {
  if (!built_) return Status::FailedPrecondition("view not built");
  size_t first = spec_.FirstOverlapping(t.interval());
  size_t last = spec_.LastOverlapping(t.interval());
  stats->partitions_touched = last - first + 1;

  // Store: last-overlap partition plus the earlier caches.
  TEMPO_RETURN_IF_ERROR(side.parts[last]->Append(t));
  TEMPO_RETURN_IF_ERROR(side.parts[last]->Flush());
  for (size_t i = first; i < last; ++i) {
    TEMPO_RETURN_IF_ERROR(side.caches[i]->Append(t));
    TEMPO_RETURN_IF_ERROR(side.caches[i]->Flush());
  }

  // Delta join: t against the opposite side of each overlapped partition;
  // the exactly-once rule localizes each new pair to one partition.
  std::vector<Tuple> probe{t};
  HashedTupleIndex probe_index(&probe, side.keys);
  for (size_t i = first; i <= last; ++i) {
    const Interval& p_i = spec_.partition(i);
    TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> others,
                           VisibleTuples(other, i));
    Status status = Status::OK();
    for (const Tuple& y : others) {
      probe_index.ForEachMatch(y, *other.keys, [&](const Tuple& x) {
        if (!status.ok()) return;
        auto common = Overlap(x.interval(), y.interval());
        if (!common) return;
        if (!p_i.Contains(common->end())) return;
        Tuple result = side_is_r ? MakeJoinTuple(layout_, x, y, *common)
                                 : MakeJoinTuple(layout_, y, x, *common);
        status = results_[i]->Append(result);
        if (status.ok()) {
          ++stats->result_delta;
          ++result_tuples_;
        }
      });
      TEMPO_RETURN_IF_ERROR(status);
    }
    TEMPO_RETURN_IF_ERROR(results_[i]->Flush());
  }
  return Status::OK();
}

StatusOr<bool> MaterializedVtJoinView::RemoveTuple(StoredRelation* rel,
                                                   const Tuple& t) {
  TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> all, rel->ReadAll());
  bool removed = false;
  std::vector<Tuple> kept;
  kept.reserve(all.size());
  for (Tuple& existing : all) {
    if (!removed && existing == t) {
      removed = true;
      continue;
    }
    kept.push_back(std::move(existing));
  }
  if (!removed) return false;
  TEMPO_RETURN_IF_ERROR(rel->Clear());
  TEMPO_RETURN_IF_ERROR(rel->AppendAll(kept));
  return true;
}

Status MaterializedVtJoinView::DeleteFrom(Side& side, Side& other,
                                          bool side_is_r, const Tuple& t,
                                          UpdateStats* stats) {
  (void)other;
  (void)side_is_r;
  if (!built_) return Status::FailedPrecondition("view not built");
  size_t first = spec_.FirstOverlapping(t.interval());
  size_t last = spec_.LastOverlapping(t.interval());
  stats->partitions_touched = last - first + 1;

  TEMPO_ASSIGN_OR_RETURN(bool removed, RemoveTuple(side.parts[last].get(), t));
  if (!removed) return Status::NotFound("tuple not in view: " + t.ToString());
  for (size_t i = first; i < last; ++i) {
    TEMPO_ASSIGN_OR_RETURN(bool cache_removed,
                           RemoveTuple(side.caches[i].get(), t));
    if (!cache_removed) {
      return Status::Internal("cache out of sync with partition storage");
    }
  }
  // Partition-local recomputation (Section 3.1).
  for (size_t i = first; i <= last; ++i) {
    TEMPO_RETURN_IF_ERROR(RecomputePartitionResult(i));
    stats->result_delta += results_[i]->num_tuples();
  }
  return Status::OK();
}

StatusOr<MaterializedVtJoinView::UpdateStats> MaterializedVtJoinView::InsertR(
    const Tuple& t, ExecContext* ctx) {
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&disk_->accountant());
  }
  UpdateStats stats;
  IoStats before = disk_->accountant().stats();
  TraceSpan span = SpanIf(ctx, Phase::kViewInsert, "r");
  TEMPO_RETURN_IF_ERROR(
      InsertInto(r_side_, s_side_, /*side_is_r=*/true, t, &stats));
  stats.io = disk_->accountant().stats() - before;
  return stats;
}

StatusOr<MaterializedVtJoinView::UpdateStats> MaterializedVtJoinView::InsertS(
    const Tuple& t, ExecContext* ctx) {
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&disk_->accountant());
  }
  UpdateStats stats;
  IoStats before = disk_->accountant().stats();
  TraceSpan span = SpanIf(ctx, Phase::kViewInsert, "s");
  TEMPO_RETURN_IF_ERROR(
      InsertInto(s_side_, r_side_, /*side_is_r=*/false, t, &stats));
  stats.io = disk_->accountant().stats() - before;
  return stats;
}

StatusOr<MaterializedVtJoinView::UpdateStats> MaterializedVtJoinView::DeleteR(
    const Tuple& t, ExecContext* ctx) {
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&disk_->accountant());
  }
  UpdateStats stats;
  IoStats before = disk_->accountant().stats();
  TraceSpan span = SpanIf(ctx, Phase::kViewDelete, "r");
  TEMPO_RETURN_IF_ERROR(
      DeleteFrom(r_side_, s_side_, /*side_is_r=*/true, t, &stats));
  stats.io = disk_->accountant().stats() - before;
  return stats;
}

StatusOr<MaterializedVtJoinView::UpdateStats> MaterializedVtJoinView::DeleteS(
    const Tuple& t, ExecContext* ctx) {
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&disk_->accountant());
  }
  UpdateStats stats;
  IoStats before = disk_->accountant().stats();
  TraceSpan span = SpanIf(ctx, Phase::kViewDelete, "s");
  TEMPO_RETURN_IF_ERROR(
      DeleteFrom(s_side_, r_side_, /*side_is_r=*/false, t, &stats));
  stats.io = disk_->accountant().stats() - before;
  return stats;
}

StatusOr<std::vector<Tuple>> MaterializedVtJoinView::ReadResult() {
  if (!built_) return Status::FailedPrecondition("view not built");
  std::vector<Tuple> all;
  for (auto& part : results_) {
    TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> chunk, part->ReadAll());
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  return all;
}

}  // namespace tempo
