#ifndef TEMPO_COMMON_ASSERT_H_
#define TEMPO_COMMON_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace tempo::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "TEMPO_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace tempo::internal

/// Always-on invariant check. Used for programming errors that must never
/// occur regardless of input data (e.g. dereferencing an error StatusOr).
/// Data-dependent failures use Status returns instead.
#define TEMPO_CHECK(cond)                                      \
  do {                                                         \
    if (!(cond)) {                                             \
      ::tempo::internal::CheckFailed(#cond, __FILE__, __LINE__); \
    }                                                          \
  } while (false)

/// Debug-only invariant check; compiled out in NDEBUG builds. Used on hot
/// paths where the check cost matters.
#ifdef NDEBUG
#define TEMPO_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define TEMPO_DCHECK(cond) TEMPO_CHECK(cond)
#endif

#endif  // TEMPO_COMMON_ASSERT_H_
