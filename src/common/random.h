#ifndef TEMPO_COMMON_RANDOM_H_
#define TEMPO_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace tempo {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// All stochastic behaviour in the library (sampling, workload generation)
/// flows through an explicitly passed Random so experiments are reproducible
/// from a seed. Satisfies the UniformRandomBitGenerator concept.
class Random {
 public:
  using result_type = uint64_t;

  explicit Random(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator. Uses splitmix64 to expand the seed into the
  /// four 64-bit words of xoshiro state; any seed (including 0) is valid.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64-bit value.
  uint64_t operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// nearly-divisionless method.
  uint64_t Uniform(uint64_t bound) {
    TEMPO_DCHECK(bound > 0);
    while (true) {
      uint64_t x = (*this)();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      uint64_t low = static_cast<uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    TEMPO_DCHECK(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    // span == 0 means the full 64-bit range.
    uint64_t off = (span == 0) ? (*this)() : Uniform(span);
    return static_cast<int64_t>(static_cast<uint64_t>(lo) + off);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return ((*this)() >> 11) * 0x1.0p-53; }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Draws `k` distinct indices uniformly from [0, n) in O(k) expected time
  /// (Floyd's algorithm). Requires k <= n. The result is not sorted.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Zipf-distributed integer generator over [0, n) with exponent `theta`.
/// Precomputes the harmonic normalization once; each draw is O(log n) via
/// binary search over the CDF.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Random& rng) const;

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i)
};

}  // namespace tempo

#endif  // TEMPO_COMMON_RANDOM_H_
