#ifndef TEMPO_COMMON_ENV_H_
#define TEMPO_COMMON_ENV_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace tempo {

/// Strict positive-integer env parser, shared by the bench knobs
/// (TEMPO_BENCH_SCALE, TEMPO_BENCH_THREADS) and the runtime knobs
/// (TEMPO_RADIX_THRESHOLD_MB). The whole value must be a decimal integer
/// in [1, max] (strtoll endptr check): trailing garbage ("16x", "8 "),
/// overflow and non-numeric values are *rejected* with a stderr warning
/// naming the bad value rather than silently half-parsed, and `fallback`
/// is used instead.
inline uint64_t EnvStrictUint64(
    const char* name, uint64_t fallback,
    uint64_t max = static_cast<uint64_t>(
        std::numeric_limits<long long>::max())) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || v < 1 ||
      static_cast<uint64_t>(v) > max) {
    std::fprintf(stderr,
                 "warning: ignoring malformed %s=\"%s\" (want a positive "
                 "decimal integer); using %llu\n",
                 name, env, static_cast<unsigned long long>(fallback));
    return fallback;
  }
  return static_cast<uint64_t>(v);
}

}  // namespace tempo

#endif  // TEMPO_COMMON_ENV_H_
