#ifndef TEMPO_COMMON_ENV_H_
#define TEMPO_COMMON_ENV_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/statusor.h"

namespace tempo {

/// Strict positive-integer env parser, shared by the bench knobs
/// (TEMPO_BENCH_SCALE, TEMPO_BENCH_THREADS) and the runtime knobs
/// (TEMPO_RADIX_THRESHOLD_MB). The whole value must be a decimal integer
/// in [1, max] (strtoll endptr check): trailing garbage ("16x", "8 "),
/// overflow and non-numeric values are *rejected* with a stderr warning
/// naming the bad value rather than silently half-parsed, and `fallback`
/// is used instead.
inline uint64_t EnvStrictUint64(
    const char* name, uint64_t fallback,
    uint64_t max = static_cast<uint64_t>(
        std::numeric_limits<long long>::max())) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || v < 1 ||
      static_cast<uint64_t>(v) > max) {
    std::fprintf(stderr,
                 "warning: ignoring malformed %s=\"%s\" (want a positive "
                 "decimal integer); using %llu\n",
                 name, env, static_cast<unsigned long long>(fallback));
    return fallback;
  }
  return static_cast<uint64_t>(v);
}

/// Error-returning variant of the strict parser for knobs where a
/// malformed value must fail the caller instead of falling back (the
/// telemetry knobs: a typo'd TEMPO_SLOW_QUERY_MS silently logging nothing
/// would defeat the point of setting it). Unset or empty returns
/// `fallback`; anything else must be a whole decimal integer in
/// [min, max] or the result is InvalidArgument naming the variable and
/// the offending value. `min` may be 0 (TEMPO_SLOW_QUERY_MS=0 means "log
/// every query").
inline StatusOr<uint64_t> EnvStrictUint64Or(
    const char* name, uint64_t fallback, uint64_t min = 1,
    uint64_t max = static_cast<uint64_t>(
        std::numeric_limits<long long>::max())) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || v < 0 ||
      static_cast<uint64_t>(v) < min || static_cast<uint64_t>(v) > max) {
    return Status::InvalidArgument(
        std::string(name) + "=\"" + env + "\" is not a decimal integer in [" +
        std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return static_cast<uint64_t>(v);
}

}  // namespace tempo

#endif  // TEMPO_COMMON_ENV_H_
