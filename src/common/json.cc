#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace tempo {

namespace {

struct Parser {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos) + ": " + what);
  }

  Status Expect(char c) {
    if (AtEnd() || Peek() != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos;
    return Status::OK();
  }

  bool Consume(std::string_view token) {
    if (text.substr(pos, token.size()) != token) return false;
    pos += token.size();
    return true;
  }

  StatusOr<std::string> ParseString() {
    TEMPO_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          return Error("unescaped control character in string");
        }
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return Error("unterminated escape");
      char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return Error("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs in input are
          // encoded as two 3-byte sequences; fine for our own documents,
          // which never emit non-BMP escapes).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  StatusOr<Json> ParseValue(int depth) {
    if (depth > 64) return Error("nesting too deep");
    SkipWhitespace();
    if (AtEnd()) return Error("unexpected end of input");
    char c = Peek();
    if (c == '{') {
      ++pos;
      Json obj = Json::Object();
      SkipWhitespace();
      if (!AtEnd() && Peek() == '}') {
        ++pos;
        return obj;
      }
      while (true) {
        SkipWhitespace();
        TEMPO_ASSIGN_OR_RETURN(std::string key, ParseString());
        SkipWhitespace();
        TEMPO_RETURN_IF_ERROR(Expect(':'));
        TEMPO_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
        obj.Set(std::move(key), std::move(value));
        SkipWhitespace();
        if (AtEnd()) return Error("unterminated object");
        if (Peek() == ',') {
          ++pos;
          continue;
        }
        TEMPO_RETURN_IF_ERROR(Expect('}'));
        return obj;
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::Array();
      SkipWhitespace();
      if (!AtEnd() && Peek() == ']') {
        ++pos;
        return arr;
      }
      while (true) {
        TEMPO_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
        arr.Append(std::move(value));
        SkipWhitespace();
        if (AtEnd()) return Error("unterminated array");
        if (Peek() == ',') {
          ++pos;
          continue;
        }
        TEMPO_RETURN_IF_ERROR(Expect(']'));
        return arr;
      }
    }
    if (c == '"') {
      TEMPO_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json(std::move(s));
    }
    if (Consume("true")) return Json(true);
    if (Consume("false")) return Json(false);
    if (Consume("null")) return Json();
    // Number.
    size_t start = pos;
    if (!AtEnd() && (Peek() == '-' || Peek() == '+')) ++pos;
    while (!AtEnd()) {
      char d = Peek();
      if ((d >= '0' && d <= '9') || d == '.' || d == 'e' || d == 'E' ||
          d == '+' || d == '-') {
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) return Error("unexpected character");
    double value = 0.0;
    auto [end, ec] =
        std::from_chars(text.data() + start, text.data() + pos, value);
    if (ec != std::errc() || end != text.data() + pos) {
      return Error("malformed number");
    }
    return Json(value);
  }
};

}  // namespace

void JsonEscape(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonNumberToString(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  return std::string(buf, end);
}

Json& Json::Set(std::string key, Json value) {
  type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return members_.back().second;
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Json::NumberOr(const std::string& key, double fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

Json& Json::Append(Json value) {
  type_ = Type::kArray;
  elements_.push_back(std::move(value));
  return elements_.back();
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent < 0) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      out->append(JsonNumberToString(number_));
      return;
    case Type::kString:
      JsonEscape(string_, out);
      return;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& e : elements_) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        e.DumpTo(out, indent, depth + 1);
      }
      if (!elements_.empty()) newline(depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        JsonEscape(k, out);
        out->push_back(':');
        if (indent >= 0) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

StatusOr<Json> Json::Parse(std::string_view text) {
  Parser p{text};
  TEMPO_ASSIGN_OR_RETURN(Json value, p.ParseValue(0));
  p.SkipWhitespace();
  if (!p.AtEnd()) return p.Error("trailing content after document");
  return value;
}

}  // namespace tempo
