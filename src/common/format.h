#ifndef TEMPO_COMMON_FORMAT_H_
#define TEMPO_COMMON_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tempo {

/// Formats `n` with thousands separators: 1234567 -> "1,234,567".
std::string FormatWithCommas(int64_t n);

/// Formats a byte count using binary units: 33554432 -> "32 MiB".
std::string FormatBytes(uint64_t bytes);

/// Minimal fixed-width text table writer used by the benchmark harnesses to
/// print paper-style result tables.
///
///   TextTable t({"memory", "sort-merge", "partition"});
///   t.AddRow({"1 MiB", "123456", "65432"});
///   std::cout << t.ToString();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders the table with columns padded to their widest cell and a rule
  /// under the header.
  std::string ToString() const;

  /// Renders as comma-separated values (for plotting).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tempo

#endif  // TEMPO_COMMON_FORMAT_H_
