#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace tempo {

std::vector<uint64_t> Random::SampleWithoutReplacement(uint64_t n,
                                                       uint64_t k) {
  TEMPO_CHECK(k <= n);
  // Floyd's algorithm: for j in [n-k, n), pick t uniform in [0, j]; insert t
  // unless already present, else insert j. Produces a uniform k-subset.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  std::vector<uint64_t> result;
  result.reserve(static_cast<size_t>(k));
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = Uniform(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) {
  TEMPO_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

uint64_t ZipfGenerator::Next(Random& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace tempo
