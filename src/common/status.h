#ifndef TEMPO_COMMON_STATUS_H_
#define TEMPO_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace tempo {

/// Result codes used across the library. The library does not throw
/// exceptions on its regular control paths; fallible operations return a
/// Status (or StatusOr<T>, see statusor.h) instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kNotSupported,
  kCancelled,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument",
/// ...). Never returns null.
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success/error result.
///
/// The OK status carries no allocation. Error statuses carry a code and a
/// message. Typical use:
///
///   Status s = file.Read(page_no, &page);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  std::string_view message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace tempo

/// Propagates a non-OK Status to the caller. Usable in functions returning
/// Status or StatusOr<T>.
#define TEMPO_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::tempo::Status _tempo_status = (expr);        \
    if (!_tempo_status.ok()) return _tempo_status; \
  } while (false)

#endif  // TEMPO_COMMON_STATUS_H_
