#ifndef TEMPO_COMMON_JSON_H_
#define TEMPO_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/statusor.h"

namespace tempo {

/// A minimal JSON document: build, serialize, parse. This is the single
/// serialization substrate of the observability export layer (Perfetto
/// traces, metric snapshots, BENCH_*.json reports) and the parser behind
/// `tools/bench_compare` — no third-party JSON dependency.
///
/// Objects preserve insertion order (and parse order), so emitted
/// documents are deterministic and diffable; duplicate keys keep the
/// last value on Set and the first match on Find. Numbers are doubles,
/// serialized with the shortest round-trip representation
/// (std::to_chars), so Parse(Dump(x)) reproduces x exactly.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}                  // NOLINT
  Json(double v) : type_(Type::kNumber), number_(v) {}            // NOLINT
  Json(int v) : type_(Type::kNumber), number_(v) {}               // NOLINT
  Json(int64_t v)                                                 // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(uint64_t v)                                                // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}       // NOLINT
  Json(std::string s)                                             // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}

  static Json Object() { return Json(Type::kObject); }
  static Json Array() { return Json(Type::kArray); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  // --- Object access ---------------------------------------------------

  /// Sets `key` to `value` (replacing an existing entry); returns a
  /// reference to the stored value so nested documents chain naturally.
  Json& Set(std::string key, Json value);

  /// First value stored under `key`; null when absent or not an object.
  const Json* Find(const std::string& key) const;
  Json* Find(const std::string& key) {
    return const_cast<Json*>(std::as_const(*this).Find(key));
  }

  /// `Find` + number coercion; `fallback` when absent or non-numeric.
  double NumberOr(const std::string& key, double fallback) const;

  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  // --- Array access ----------------------------------------------------

  Json& Append(Json value);
  const std::vector<Json>& elements() const { return elements_; }
  std::vector<Json>& elements() { return elements_; }
  size_t size() const {
    return type_ == Type::kObject ? members_.size() : elements_.size();
  }

  // --- Serialization ---------------------------------------------------

  /// Serializes the document. `indent < 0` is compact (single line);
  /// `indent >= 0` pretty-prints with that many spaces per level.
  std::string Dump(int indent = -1) const;

  /// Strict parser: one JSON value, UTF-8 passed through verbatim,
  /// trailing non-whitespace rejected. No comments, no trailing commas.
  static StatusOr<Json> Parse(std::string_view text);

 private:
  explicit Json(Type t) : type_(t) {}
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Appends the JSON escaping of `s` (quotes included) to `*out`.
void JsonEscape(std::string_view s, std::string* out);

/// Shortest round-trip serialization of `v` ("1e+30", "0.1", "42").
/// Non-finite values serialize as null per the JSON grammar.
std::string JsonNumberToString(double v);

}  // namespace tempo

#endif  // TEMPO_COMMON_JSON_H_
