#ifndef TEMPO_COMMON_STATUSOR_H_
#define TEMPO_COMMON_STATUSOR_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/assert.h"
#include "common/status.h"

namespace tempo {

/// Holds either a value of type T or an error Status. Mirrors
/// absl::StatusOr / arrow::Result.
///
///   StatusOr<PageId> id = file.Append(page);
///   if (!id.ok()) return id.status();
///   Use(*id);
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK: an OK StatusOr must
  /// carry a value.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    TEMPO_CHECK(!status_.ok());
  }

  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors require ok(); checked in all builds.
  const T& value() const& {
    TEMPO_CHECK(ok());
    return *value_;
  }
  T& value() & {
    TEMPO_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    TEMPO_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    if (ok()) return *value_;
    return fallback;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tempo

/// Evaluates `expr` (a StatusOr<T>), propagating errors; on success binds the
/// value to `lhs`. `lhs` may include a declaration, e.g.
///   TEMPO_ASSIGN_OR_RETURN(auto page_id, file.Append(p));
#define TEMPO_ASSIGN_OR_RETURN(lhs, expr)                      \
  TEMPO_ASSIGN_OR_RETURN_IMPL_(                                \
      TEMPO_STATUS_CONCAT_(_tempo_statusor, __LINE__), lhs, expr)

#define TEMPO_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                 \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

#define TEMPO_STATUS_CONCAT_(a, b) TEMPO_STATUS_CONCAT_IMPL_(a, b)
#define TEMPO_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // TEMPO_COMMON_STATUSOR_H_
