#include "common/format.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace tempo {

std::string FormatWithCommas(int64_t n) {
  bool negative = n < 0;
  uint64_t v = negative ? (~static_cast<uint64_t>(n) + 1) : static_cast<uint64_t>(n);
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  uint64_t v = bytes;
  while (v >= 1024 && v % 1024 == 0 && unit < 4) {
    v /= 1024;
    ++unit;
  }
  if (v >= 1024) {  // Not an exact multiple; fall back to one decimal.
    double d = static_cast<double>(v);
    while (d >= 1024.0 && unit < 4) {
      d /= 1024.0;
      ++unit;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f %s", d, kUnits[unit]);
    return buf;
  }
  return std::to_string(v) + " " + kUnits[unit];
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  TEMPO_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) line += "  ";
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };
  std::string out = render_row(header_);
  size_t rule_len = 0;
  for (size_t i = 0; i < widths.size(); ++i) {
    rule_len += widths[i] + (i != 0 ? 2 : 0);
  }
  out.append(rule_len, '-');
  out.push_back('\n');
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::ToCsv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) line.push_back(',');
      line += row[i];
    }
    line.push_back('\n');
    return line;
  };
  std::string out = render(header_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

}  // namespace tempo
