#ifndef TEMPO_COMMON_HISTOGRAM_H_
#define TEMPO_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace tempo {

/// A log-bucketed histogram of non-negative samples (latencies in
/// microseconds, cache occupancies in tuples, morsel durations).
///
/// Bucket 0 holds samples < 1; bucket i (1 <= i < kNumBuckets-1) holds
/// samples in [2^(i-1), 2^i); the last bucket absorbs everything larger.
/// Doubling buckets keep the relative error of any quantile estimate
/// bounded by 2x over ~nine decades, which is all a regression harness
/// needs to spot a latency distribution shifting.
///
/// Thread-safe: Record and Merge may race with each other and with
/// readers (the morsel workers record concurrently into one histogram).
/// All counters are relaxed atomics — per-bucket counts are exact under
/// concurrency; count/sum/min/max are folded with CAS loops. Readers see
/// a possibly-torn-but-monotonic snapshot, which is fine for export
/// (exports happen after the run quiesces).
///
/// Copying takes a relaxed snapshot, so the histogram can live inside
/// freely-copied stat structs (MorselStats, MetricsRegistry).
class LogHistogram {
 public:
  static constexpr size_t kNumBuckets = 32;

  LogHistogram() = default;
  LogHistogram(const LogHistogram& other) { CopyFrom(other); }
  LogHistogram& operator=(const LogHistogram& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Index of the bucket `value` falls into (negatives clamp to 0).
  static size_t BucketIndex(double value) {
    if (!(value >= 1.0)) return 0;
    size_t i = 1;
    while (i + 1 < kNumBuckets &&
           value >= static_cast<double>(uint64_t{1} << i)) {
      ++i;
    }
    return i;
  }

  /// Exclusive upper bound of bucket `i`; +inf for the overflow bucket.
  static double BucketUpperBound(size_t i) {
    if (i + 1 >= kNumBuckets) return std::numeric_limits<double>::infinity();
    return static_cast<double>(uint64_t{1} << i);
  }

  void Record(double value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    AtomicAdd(&sum_, value);
    AtomicMin(&min_, value);
    AtomicMax(&max_, value);
  }

  void Merge(const LogHistogram& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
    uint64_t n = other.count_.load(std::memory_order_relaxed);
    if (n == 0) return;
    count_.fetch_add(n, std::memory_order_relaxed);
    AtomicAdd(&sum_, other.sum_.load(std::memory_order_relaxed));
    AtomicMin(&min_, other.min_.load(std::memory_order_relaxed));
    AtomicMax(&max_, other.max_.load(std::memory_order_relaxed));
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded sample; 0 when empty.
  double min() const {
    return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  }
  double max() const {
    return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  static void AtomicAdd(std::atomic<double>* target, double delta) {
    double cur = target->load(std::memory_order_relaxed);
    while (!target->compare_exchange_weak(cur, cur + delta,
                                          std::memory_order_relaxed)) {
    }
  }
  static void AtomicMin(std::atomic<double>* target, double value) {
    double cur = target->load(std::memory_order_relaxed);
    while (value < cur && !target->compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<double>* target, double value) {
    double cur = target->load(std::memory_order_relaxed);
    while (value > cur && !target->compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }

  void CopyFrom(const LogHistogram& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    count_.store(other.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(other.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    min_.store(other.min_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    max_.store(other.max_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Estimates the q-quantile (q in [0, 1]) from the bucket counts: walks
/// the buckets until the cumulative count reaches q * count and reports
/// that bucket's upper bound, clamped into [min, max]. The doubling
/// buckets bound the relative error by 2x — good enough for the p50/p99
/// latencies the bench harness and regression gate track. Returns 0 for
/// an empty histogram.
inline double ApproxQuantile(const LogHistogram& hist, double q) {
  const uint64_t n = hist.count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; ceil so p0 maps to the 1st sample.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (size_t i = 0; i < LogHistogram::kNumBuckets; ++i) {
    seen += hist.bucket_count(i);
    if (seen >= rank) {
      double upper = LogHistogram::BucketUpperBound(i);
      if (upper > hist.max()) upper = hist.max();
      if (upper < hist.min()) upper = hist.min();
      return upper;
    }
  }
  return hist.max();
}

}  // namespace tempo

#endif  // TEMPO_COMMON_HISTOGRAM_H_
