#ifndef TEMPO_OBS_EXPLAIN_H_
#define TEMPO_OBS_EXPLAIN_H_

#include <string>

#include "obs/exec_context.h"
#include "storage/io_accountant.h"

namespace tempo {

/// Rendering knobs for ExplainAnalyze.
struct ExplainOptions {
  /// Weights used for the "act cost" column (inclusive charged I/O priced
  /// like the planner prices it, so est and act are comparable).
  CostModel cost_model = CostModel::Ratio(5.0);

  /// When false, the wall-clock / morsel / worker columns are omitted.
  /// I/O columns are deterministic across thread counts (per-file head
  /// model), timing is not — golden tests set this to false so a serial
  /// and a 4-thread run render identical text.
  bool include_timing = true;
};

/// Renders the span tree as an EXPLAIN ANALYZE table: one row per phase,
/// indented by nesting, with planner-estimated cost next to the actual
/// (inclusive) charged-I/O cost, the random/sequential split, buffer
/// hit/miss deltas (omitted when no pool was registered), and — unless
/// include_timing is off — wall-clock and morsel/worker columns. Sibling
/// rows are ordered by (phase, label), not begin order, so trees built by
/// concurrent threads render deterministically. Ends with a TOTAL row
/// whose I/O equals the tree's inclusive I/O (== the run's charged
/// IoStats when every phase ran under a span), followed by the metrics
/// registry, one `name = value` line per set metric.
std::string ExplainAnalyze(const ExecContext& ctx,
                           const ExplainOptions& options = {});

}  // namespace tempo

#endif  // TEMPO_OBS_EXPLAIN_H_
