#ifndef TEMPO_OBS_METRICS_H_
#define TEMPO_OBS_METRICS_H_

#include <array>
#include <bitset>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/histogram.h"

namespace tempo {

/// The single declaration point for every scalar metric an executor may
/// emit:
///   TEMPO_METRIC(enumerator, "name", "unit", "owner", "doc")
///
/// The enumerator becomes Metric::k<enumerator>; the name is the stable
/// key the JSON exporters emit it under (and what
/// MetricsRegistry::Describe() documents). Adding a metric here is the
/// only way to emit one — the typed Set/Add API cannot name an undeclared
/// metric, which is the point of the registry.
#define TEMPO_METRIC_LIST(M)                                                  \
  M(OuterBlocks, "outer_blocks", "count", "NestedLoopVtJoin",                 \
    "Outer blocks loaded; each block triggers one full scan of the inner "    \
    "relation.")                                                              \
  M(SortIoOps, "sort_io_ops", "ops", "SortMergeVtJoin / IndexedVtJoin",       \
    "Unweighted I/O operations spent externally sorting the inputs by Vs.")   \
  M(BackupPageReads, "backup_page_reads", "pages", "SortMergeVtJoin",         \
    "Sorted-file pages physically re-read because a match hit a long-lived "  \
    "tuple evicted from the merge window (the paper's back-up cost).")        \
  M(MaxActiveTuples, "max_active_tuples", "tuples", "SortMergeVtJoin",        \
    "Peak combined size of the two active (not-yet-expired) sweep sets.")     \
  M(IndexNodePages, "index_node_pages", "pages", "IndexedVtJoin",             \
    "Node pages of the append-only tree built over the inner relation.")      \
  M(IndexBuildIoOps, "index_build_io_ops", "ops", "IndexedVtJoin",            \
    "Unweighted I/O operations of the index build (node writes).")            \
  M(InnerPagesScanned, "inner_pages_scanned", "pages", "IndexedVtJoin",       \
    "Inner data pages scanned across all probes (after index range "          \
    "pruning, through the LRU data pool).")                                   \
  M(Partitions, "partitions", "count", "PartitionVtJoin / PartitionCoalesce", \
    "Partitioning intervals chosen by the optimizer.")                        \
  M(PartSizePages, "part_size_pages", "pages", "PartitionVtJoin",             \
    "Estimated pages per outer partition of the chosen plan.")                \
  M(Samples, "samples", "count", "PartitionVtJoin",                           \
    "Interval samples drawn by the Kolmogorov-bounded sampler.")              \
  M(SampledByScan, "sampled_by_scan", "flag", "PartitionVtJoin",              \
    "1 when the sampler switched to one sequential scan (Section 4.2), 0 "    \
    "for per-sample random reads.")                                           \
  M(EstSampleCost, "est_sample_cost", "cost", "PartitionVtJoin",              \
    "Planner-estimated C_sample of the chosen partitioning.")                 \
  M(EstJoinCost, "est_join_cost", "cost", "PartitionVtJoin",                  \
    "Planner-estimated C_join (partition write+read plus tuple-cache "        \
    "paging) of the chosen partitioning.")                                    \
  M(PartitionPagesWritten, "partition_pages_written", "pages",                \
    "PartitionVtJoin",                                                        \
    "Pages written by Grace partitioning across both inputs.")                \
  M(TuplesWritten, "tuples_written", "tuples", "PartitionVtJoin",             \
    "Tuples written by Grace partitioning; exceeds the input cardinality "    \
    "only under the replication ablation policy.")                            \
  M(CachePagesSpilled, "cache_pages_spilled", "pages", "JoinPartitions",      \
    "Tuple-cache pages spilled to disk across all cache generations.")        \
  M(CacheTuples, "cache_tuples", "tuples", "JoinPartitions",                  \
    "Tuples migrated backwards through the tuple cache.")                     \
  M(OverflowChunks, "overflow_chunks", "count", "JoinPartitions",             \
    "Extra outer-area chunks processed because a partition overflowed the "   \
    "partition area (sampling-error thrashing).")                             \
  M(CarriedRuns, "carried_runs", "count", "PartitionCoalesce",                \
    "Coalescing runs carried across a partition boundary.")                   \
  M(DecodeMaterializationsAvoided, "decode_materializations_avoided",         \
    "tuples", "zero-copy record views",                                       \
    "Records processed as page-backed TupleViews instead of decoded into "    \
    "owning Tuples (partition routing plus hash-probe streaming).")           \
  M(MorselsDispatched, "morsels_dispatched", "count", "parallel layer",       \
    "Morsels dispatched to the worker pool (parallel mode only).")            \
  M(ParallelEfficiency, "parallel_efficiency", "ratio", "parallel layer",     \
    "Worker busy time / (wall time x threads) over the parallel regions.")    \
  M(PlannedAlgorithm, "planned_algorithm", "enum", "ExecuteVtJoin",           \
    "Algorithm the planner chose: 0 = nested-loops, 1 = sort-merge, 2 = "     \
    "partition, 3 = in-memory radix, 4 = endpoint sweep.")                    \
  M(PlannedCost, "planned_cost", "cost", "ExecuteVtJoin",                     \
    "Planner-estimated I/O cost of the chosen algorithm.")                    \
  M(RadixPasses, "radix_passes", "count", "RadixVtJoin",                      \
    "8-bit radix passes run over each side's columns (0 = single bucket; "    \
    "fan-out is 256^passes).")                                                \
  M(RadixFanout, "radix_fanout", "count", "RadixVtJoin",                      \
    "Total bucket fan-out of the multi-pass partitioning (256^passes).")      \
  M(RadixBuckets, "radix_buckets", "count", "RadixVtJoin",                    \
    "Aligned bucket pairs that were non-empty on both sides — the unit of "   \
    "parallel build/probe work.")                                             \
  M(RadixRowsRouted, "radix_rows_routed", "tuples", "RadixVtJoin",            \
    "Column entries moved by the radix passes, summed over both sides and "   \
    "all passes (each row moves once per pass).")                             \
  M(RadixEstFootprintBytes, "radix_est_footprint_bytes", "bytes",             \
    "PlanVtJoin / RadixVtJoin",                                               \
    "Planner-estimated in-memory footprint of the radix path: page bytes "    \
    "of both inputs (deliberately optimistic; the exact per-row overhead "    \
    "is only known at extraction).")                                          \
  M(RadixActFootprintBytes, "radix_act_footprint_bytes", "bytes",             \
    "RadixVtJoin",                                                            \
    "Exact pinned-page plus column/view bytes reached during extraction; "    \
    "on a budget abort, the footprint at the point extraction stopped.")      \
  M(RadixBudgetBytes, "radix_budget_bytes", "bytes", "RadixVtJoin",           \
    "Resolved in-memory budget the radix path was charged against "           \
    "(options field, TEMPO_RADIX_THRESHOLD_MB, or buffer_pages-derived).")    \
  M(RadixFallback, "radix_fallback", "flag", "ExecuteVtJoin",                 \
    "1 when the planner chose the radix path but extraction exceeded the "    \
    "memory budget and the run fell back to the paged Grace join.")           \
  M(AdmissionQueuePeak, "admission_queue_peak", "count", "QueryService",      \
    "Peak depth of the FIFO admission queue — queries that had to wait "      \
    "for buffer-pool reservations — over the service's lifetime.")            \
  M(QueriesCompleted, "queries_completed", "count", "QueryService",           \
    "Queries that ran to completion (successfully or with an execution "      \
    "error) after being admitted.")                                           \
  M(QueriesCancelled, "queries_cancelled", "count", "QueryService",           \
    "Queries cancelled while still waiting in the admission queue; their "    \
    "reservations were never granted.")                                       \
  M(SequencedJoinKind, "join_kind", "enum", "PartitionVtJoin / RunJoin",      \
    "Sequenced join variant evaluated: 0 = inner, 1 = left-outer, 2 = "       \
    "full-outer, 3 = anti. Set only by variant-capable runs.")                \
  M(OuterUnmatchedTuples, "outer_unmatched_tuples", "tuples",                 \
    "outer/anti join variants",                                               \
    "Input tuples (either preserved side) whose validity interval was not "   \
    "fully covered by key-matching partners and therefore produced at "       \
    "least one unmatched result row.")                                        \
  M(AntiEmittedIntervals, "anti_emitted_intervals", "count",                  \
    "outer/anti join variants",                                               \
    "Uncovered subintervals emitted by the anti join (its entire output; "    \
    "0 for the outer kinds, which count theirs under "                        \
    "uncovered_subintervals_emitted).")                                       \
  M(UncoveredSubintervalsEmitted, "uncovered_subintervals_emitted", "count",  \
    "outer/anti join variants",                                               \
    "Total uncovered subintervals computed by IntervalSet difference and "    \
    "emitted as NULL-padded (outer) or bare (anti) result rows, summed "      \
    "over both preserved sides.")                                             \
  M(JoinPredicateMask, "join_predicate_mask", "bitmask", "RunJoin",           \
    "TemporalPredicate evaluated by the run, as its 13-bit Allen-relation "   \
    "mask (bit i = relation i in enum order, before..after). Set by every "   \
    "sweep run and by any run whose predicate is not the default overlap "    \
    "disjunction (0x7fc).")                                                   \
  M(SweepActivePeak, "sweep_active_peak", "tuples", "SweepVtJoin",            \
    "Peak combined live-tuple count of the two gapless active maps during "   \
    "the sweep pass.")                                                        \
  M(SweepAppends, "sweep_appends", "tuples", "SweepVtJoin",                   \
    "Tuples appended to the active maps (every input tuple, once).")          \
  M(SweepCompactions, "sweep_compactions", "count", "SweepVtJoin",            \
    "Global compactions of the gapless active maps, triggered when expired "  \
    "entries exceed half of a map's append log.")                             \
  M(SweepProbeHits, "sweep_probe_hits", "tuples", "SweepVtJoin",              \
    "Active-map candidates visited across all probes (bucket walk length "    \
    "after the liveness filter).")

/// The declaration point for every histogram-kind metric, parallel to
/// TEMPO_METRIC_LIST:
///   TEMPO_HISTOGRAM(enumerator, "name", "unit", "owner", "doc")
///
/// Histograms are log-bucketed sample distributions (LogHistogram) rather
/// than single values: a run records many page-read latencies or morsel
/// durations, and the export layer snapshots the full distribution.
/// Like scalar metrics, the typed API cannot name an undeclared one.
#define TEMPO_HISTOGRAM_LIST(H)                                               \
  H(PageReadLatencyUs, "page_read_latency_us", "us", "Disk / IoAccountant",   \
    "Wall-clock latency of each charged or uncharged page read, captured at " \
    "the Disk boundary while an ExecContext has the accountant bound. "       \
    "Simulated storage, so this measures copy + lock time, not seeks.")       \
  H(MorselDurationUs, "morsel_duration_us", "us", "parallel layer",           \
    "Wall-clock duration of each morsel body dispatched by ParallelFor "      \
    "(parallel regions only); the skew of this distribution is what the "     \
    "morsel size knob trades against dispatch overhead.")                     \
  H(CacheOccupancyTuples, "cache_occupancy_tuples", "tuples",                 \
    "JoinPartitions",                                                         \
    "Tuples resident in the backwards tuple cache at the end of each "        \
    "partition — the per-partition footprint behind the aggregate "           \
    "cache_tuples counter. Deterministic for a fixed seed.")                  \
  H(AdmissionWaitUs, "admission_wait_us", "us", "QueryService",               \
    "Wall-clock time each admitted query spent queued for its buffer-pool "   \
    "reservation (0 for queries admitted immediately).")                      \
  H(QueryLatencyUs, "query_latency_us", "us", "QueryService",                 \
    "End-to-end wall-clock latency of each query: submission to result, "     \
    "including admission wait and execution.")

/// Compile-time-checked identifier of a declared metric.
enum class Metric : uint16_t {
#define TEMPO_METRIC_ENUM(id, name, unit, owner, doc) k##id,
  TEMPO_METRIC_LIST(TEMPO_METRIC_ENUM)
#undef TEMPO_METRIC_ENUM
};

/// Number of declared metrics.
inline constexpr size_t kNumMetrics = []() constexpr {
  size_t n = 0;
#define TEMPO_METRIC_COUNT(id, name, unit, owner, doc) ++n;
  TEMPO_METRIC_LIST(TEMPO_METRIC_COUNT)
#undef TEMPO_METRIC_COUNT
  return n;
}();

/// Compile-time-checked identifier of a declared histogram.
enum class Hist : uint16_t {
#define TEMPO_HISTOGRAM_ENUM(id, name, unit, owner, doc) k##id,
  TEMPO_HISTOGRAM_LIST(TEMPO_HISTOGRAM_ENUM)
#undef TEMPO_HISTOGRAM_ENUM
};

/// Number of declared histograms.
inline constexpr size_t kNumHistograms = []() constexpr {
  size_t n = 0;
#define TEMPO_HISTOGRAM_COUNT(id, name, unit, owner, doc) ++n;
  TEMPO_HISTOGRAM_LIST(TEMPO_HISTOGRAM_COUNT)
#undef TEMPO_HISTOGRAM_COUNT
  return n;
}();

/// One metric's declaration.
struct MetricDef {
  Metric id;
  const char* name;   ///< stable key (the metrics-JSON / bench-JSON key)
  const char* unit;   ///< count, pages, tuples, ops, bytes, cost, ratio, flag, enum
  const char* owner;  ///< executor(s) that emit it
  const char* doc;    ///< one-line description
};

/// One histogram's declaration.
struct HistogramDef {
  Hist id;
  const char* name;   ///< stable key (the metrics-JSON / bench-JSON key)
  const char* unit;   ///< unit of the recorded samples (us, tuples, ...)
  const char* owner;  ///< subsystem that records it
  const char* doc;    ///< one-line description
};

/// Declaration of `m`.
const MetricDef& GetMetricDef(Metric m);

/// All declared metrics, in declaration order.
const std::array<MetricDef, kNumMetrics>& AllMetricDefs();

/// Looks a metric up by its stable name; null when undeclared. Used by the
/// conformance test that asserts no executor emits an undeclared key.
const MetricDef* FindMetricByName(std::string_view name);

/// Declaration of `h`.
const HistogramDef& GetHistogramDef(Hist h);

/// All declared histograms, in declaration order.
const std::array<HistogramDef, kNumHistograms>& AllHistogramDefs();

/// Looks a histogram up by its stable name; null when undeclared.
const HistogramDef* FindHistogramByName(std::string_view name);

/// The typed store of executor counters: a fixed-slot value store over
/// the declared scalar metrics (unset metrics are distinguishable from
/// zero-valued ones) plus one LogHistogram slot per declared histogram.
class MetricsRegistry {
 public:
  void Set(Metric m, double value) {
    values_[Index(m)] = value;
    present_.set(Index(m));
  }

  void Add(Metric m, double delta) {
    values_[Index(m)] = Get(m) + delta;
    present_.set(Index(m));
  }

  bool Has(Metric m) const { return present_.test(Index(m)); }

  /// Value of `m`, or 0.0 when unset.
  double Get(Metric m) const {
    return present_.test(Index(m)) ? values_[Index(m)] : 0.0;
  }

  /// Copies every metric present in `other` into this registry and folds
  /// `other`'s histogram samples into this one's.
  void Merge(const MetricsRegistry& other) {
    for (size_t i = 0; i < kNumMetrics; ++i) {
      if (other.present_.test(i)) {
        values_[i] = other.values_[i];
        present_.set(i);
      }
    }
    for (size_t i = 0; i < kNumHistograms; ++i) {
      if (other.hists_[i].count() != 0) hists_[i].Merge(other.hists_[i]);
    }
  }

  size_t size() const { return present_.count(); }

  /// The histogram slot for `h`. Record() and Merge() on the returned
  /// reference are thread-safe; the registry itself never locks.
  LogHistogram& histogram(Hist h) { return hists_[HistIndex(h)]; }
  const LogHistogram& histogram(Hist h) const { return hists_[HistIndex(h)]; }

  /// Records one sample into histogram `h`.
  void Record(Hist h, double value) { histogram(h).Record(value); }

  /// Number of histograms with at least one sample.
  size_t num_histograms_set() const {
    size_t n = 0;
    for (const LogHistogram& hist : hists_) {
      if (hist.count() != 0) ++n;
    }
    return n;
  }

  /// Invokes `fn(const HistogramDef&, const LogHistogram&)` for each
  /// histogram with at least one sample, in declaration order.
  template <typename Fn>
  void ForEachHistogram(Fn&& fn) const {
    const auto& defs = AllHistogramDefs();
    for (size_t i = 0; i < kNumHistograms; ++i) {
      if (hists_[i].count() != 0) fn(defs[i], hists_[i]);
    }
  }

  /// Invokes `fn(const MetricDef&, double value)` for each set metric, in
  /// declaration order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const auto& defs = AllMetricDefs();
    for (size_t i = 0; i < kNumMetrics; ++i) {
      if (present_.test(i)) fn(defs[i], values_[i]);
    }
  }

  /// Markdown tables documenting every *declared* metric and histogram
  /// (name, unit, owner, description) — the generated source of the
  /// DESIGN.md observability appendix.
  static std::string Describe();

 private:
  static size_t Index(Metric m) { return static_cast<size_t>(m); }
  static size_t HistIndex(Hist h) { return static_cast<size_t>(h); }

  std::array<double, kNumMetrics> values_{};
  std::bitset<kNumMetrics> present_;
  std::array<LogHistogram, kNumHistograms> hists_;
};

}  // namespace tempo

#endif  // TEMPO_OBS_METRICS_H_
