#ifndef TEMPO_OBS_TRACE_H_
#define TEMPO_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "parallel/parallel_for.h"
#include "storage/buffer_manager.h"
#include "storage/io_accountant.h"

namespace tempo {

class FlightRecorder;
class IoAccountant;

/// Execution phases an executor may open a span for. One enumerator per
/// phase the paper's algorithms distinguish, so EXPLAIN ANALYZE output maps
/// directly onto the paper's cost formulas (sampling, chooseIntervals,
/// partitioning, joinPartitions, ...).
enum class Phase : uint8_t {
  kExecute,          ///< ExecuteVtJoin root (plan + chosen algorithm)
  kPlan,             ///< planner cost comparison
  kNestedLoop,       ///< block nested-loops executor root
  kSortMerge,        ///< sort-merge executor root
  kSortR,            ///< external sort of r by Vs
  kSortS,            ///< external sort of s by Vs
  kMergeSweep,       ///< the co-sweep over the two sorted files
  kIndexed,          ///< indexed executor root
  kIndexBuild,       ///< append-only tree build over the inner
  kIndexProbe,       ///< outer scan + index probes
  kPartitionJoin,    ///< partition executor root
  kChooseIntervals,  ///< optimizer sweep over candidate partitionings
  kSampling,         ///< interval sampling I/O (nested under chooseIntervals)
  kPartitionR,       ///< Grace partitioning of r
  kPartitionS,       ///< Grace partitioning of s
  kJoinPartitions,   ///< backwards partition-pair join with tuple cache
  kCoalesce,         ///< partition-based coalescing
  kViewBuild,        ///< materialized view initial build
  kViewInsert,       ///< incremental view maintenance, insertion
  kViewDelete,       ///< incremental view maintenance, deletion
  kRadixJoin,        ///< in-memory columnar radix executor root
  kRadixExtract,     ///< page scan + column extraction of both inputs
  kRadixPartition,   ///< multi-pass 8-bit radix partitioning
  kRadixProbe,       ///< per-bucket build/probe plus ordered emission
  kQuery,            ///< sequenced query root (src/query executor)
  kQuerySelect,      ///< sequenced selection over a materialized input
  kQueryProject,     ///< sequenced projection (change-preserving)
  kQueryDifference,  ///< sequenced union-compatible set difference
  kQueryJoin,        ///< sequenced join node (wraps RunJoin)
  kOuterPass,        ///< swapped anti pass of the full-outer partition join
  kSweepJoin,        ///< endpoint-sweep executor root
  kSweepPass,        ///< the single forward sweep over both sorted inputs
};

/// Stable lowercase display name ("partitioning r", "joinPartitions", ...).
const char* PhaseName(Phase p);

/// What one span measured. I/O and buffer traffic are *exclusive* — a
/// nested span's traffic is not repeated in its parent (the renderer sums
/// subtrees for inclusive columns).
struct SpanStats {
  /// Number of spans merged into this node (siblings with the same phase
  /// and label aggregate, e.g. one sampling node across all draws).
  uint64_t entered = 0;
  /// Summed wall-clock of the merged spans. Concurrent sibling spans (the
  /// r and s partitioning threads) therefore sum, not overlap.
  double wall_seconds = 0.0;
  /// Charged I/O issued by the span's own thread while it was innermost.
  IoStats io;
  /// Buffer-pool hit/miss delta over the span's duration, across the
  /// pools registered with the ExecContext. Duration-based, so unlike
  /// `io` it is inclusive of nested spans.
  BufferCounters buffers;
  /// Morsel dispatch counts and per-worker busy time attributed to this
  /// span via TraceSpan::AddMorsels.
  MorselStats morsels;
};

/// One node of the span tree. Nodes are created by Tracer::Begin and are
/// stable for the tracer's lifetime; re-entering the same (phase, label)
/// under the same parent merges into the existing node.
struct SpanNode {
  Phase phase;
  std::string label;  ///< optional qualifier, e.g. "partition 3"
  SpanStats stats;
  /// Planner-estimated cost for this phase; < 0 when no estimate exists.
  double estimated_cost = -1.0;
  std::vector<std::unique_ptr<SpanNode>> children;

  /// Exclusive I/O of this node plus all descendants.
  IoStats InclusiveIo() const;
  /// Morsel stats of this node plus all descendants.
  MorselStats InclusiveMorsels() const;
  /// Depth-first search for the first node (including this one) with the
  /// given phase; null when absent.
  const SpanNode* FindPhase(Phase p) const;

  double ActualCost(const CostModel& model) const {
    return InclusiveIo().Cost(model);
  }
};

/// Owns the span tree. Thread-safe: spans may begin and end on any thread
/// (the partition executor partitions r and s on two threads at once).
/// Parent resolution uses a per-thread span stack, so a span's parent is
/// the innermost open span *on the same thread*; cross-thread spans pass
/// their parent explicitly (ExecContext::SpanUnder).
class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span: resolves the parent (explicit > innermost-on-thread >
  /// root), finds or creates the (phase, label) child, pushes it on the
  /// calling thread's stack, and returns the node.
  SpanNode* Begin(Phase phase, std::string label,
                  SpanNode* explicit_parent = nullptr);

  /// Closes the innermost span on the calling thread (must be `node`) and
  /// folds the measured deltas into it.
  void End(SpanNode* node, double wall_seconds, const IoStats& io,
           const BufferCounters& buffers);

  /// Adds morsel stats to `node` (thread-safe).
  void AddMorsels(SpanNode* node, const MorselStats& morsels);

  /// Sets the planner estimate on `node` (thread-safe).
  void SetEstimate(SpanNode* node, double cost);

  /// Records a planner estimate for the first span of `phase`: applied to
  /// an existing node if one exists, otherwise remembered and attached
  /// when that phase first begins. Lets the planner annotate phases that
  /// have not started yet (est_sample_cost before sampling runs).
  void AnnotateEstimate(Phase phase, double cost);

  /// The synthetic root. Its children are the executor root spans.
  const SpanNode& root() const { return *root_; }

  /// Sum of exclusive I/O over the whole tree == all charged I/O recorded
  /// while any span was open.
  IoStats TotalIo() const;

  /// Wires every Begin to a service flight recorder: each opened span
  /// appends a kPhaseEntered event tagged with `query_id`. Set before
  /// execution starts (the query service sets it on each per-query
  /// context); null detaches. Also arms live_phase() below.
  void SetFlightRecorder(FlightRecorder* recorder, uint64_t query_id);

  /// Most recently entered phase, as a Phase value, or kNoLivePhase when
  /// no span has begun. A relaxed-atomic read, safe concurrently with
  /// execution — this is the "phase" field of QueryHandle::Progress().
  static constexpr uint8_t kNoLivePhase = 0xff;
  uint8_t live_phase() const {
    return live_phase_.load(std::memory_order_relaxed);
  }

 private:
  SpanNode* FindOrCreateChildLocked(SpanNode* parent, Phase phase,
                                    const std::string& label);
  SpanNode* FindPhaseLocked(SpanNode* node, Phase phase);

  mutable std::mutex mu_;
  std::unique_ptr<SpanNode> root_;
  std::unordered_map<uint8_t, double> pending_estimates_;

  /// Flight hook: set once before execution, read by Begin on any thread.
  std::atomic<FlightRecorder*> flight_{nullptr};
  uint64_t flight_query_ = 0;  // written before the recorder is attached
  std::atomic<uint8_t> live_phase_{kNoLivePhase};
};

/// RAII handle for one span. Move-only; inert when default-constructed or
/// created through a null ExecContext, so executors write
///   TraceSpan span = SpanIf(ctx, Phase::kSampling);
/// unconditionally and pay nothing when tracing is off.
///
/// While open, the span registers an I/O collector for the calling thread
/// on the bound accountant: charged accesses this thread issues are
/// attributed to this span (and not to any enclosing span — exclusive
/// attribution). End() (or destruction) stops the clock, pops the
/// collector, and folds everything into the tracer's node.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(Tracer* tracer, SpanNode* node, IoAccountant* accountant,
            BufferCounters buffers_at_begin);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan(TraceSpan&& other) noexcept;
  TraceSpan& operator=(TraceSpan&& other) noexcept;

  ~TraceSpan() { End(); }

  bool active() const { return tracer_ != nullptr; }

  /// The node this span writes to; null when inert. Used to parent
  /// cross-thread child spans explicitly.
  SpanNode* node() const { return node_; }

  /// Attributes morsel stats (dispatch counts, per-worker busy time) from
  /// a parallel region to this span. No-op when inert.
  void AddMorsels(const MorselStats& morsels);

  /// Sets the planner-estimated cost on this span's node. No-op when inert.
  void SetEstimate(double cost);

  /// Closes the span early (idempotent).
  void End();

  /// Buffer-pool totals at span begin; consumed by End(). Exposed for
  /// ExecContext, which snapshots the registered pools.
  void set_buffers_at_end_fn(std::function<BufferCounters()> fn) {
    buffers_at_end_fn_ = std::move(fn);
  }

 private:
  Tracer* tracer_ = nullptr;
  SpanNode* node_ = nullptr;
  IoAccountant* accountant_ = nullptr;
  IoStats io_sink_;
  BufferCounters buffers_at_begin_;
  std::function<BufferCounters()> buffers_at_end_fn_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace tempo

#endif  // TEMPO_OBS_TRACE_H_
