#ifndef TEMPO_OBS_EXEC_CONTEXT_H_
#define TEMPO_OBS_EXEC_CONTEXT_H_

#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/buffer_manager.h"
#include "storage/io_accountant.h"

namespace tempo {

class Scheduler;

/// Per-run observability context, threaded through every executor as an
/// optional `ExecContext* ctx` parameter. A null context is the
/// zero-overhead mode: SpanIf() returns an inert span, no collector is
/// registered on the accountant, and the executor's behavior — charged
/// I/O, output bytes — is bit-identical to a run without the context.
///
/// The context carries
///   - a Tracer of phase-scoped spans (wall-clock, exclusive charged I/O
///     split random/sequential, buffer hit/miss deltas, per-worker morsel
///     timings),
///   - a MetricsRegistry of typed counters and log-bucketed histograms,
/// and feeds the ExplainAnalyze renderer.
class ExecContext {
 public:
  ExecContext() = default;

  /// Uninstalls the page-read latency sink from the bound accountant (if
  /// still ours) so the accountant never dereferences a dead registry.
  ~ExecContext() {
    if (accountant_ != nullptr) {
      accountant_->ClearLatencySink(
          &metrics_.histogram(Hist::kPageReadLatencyUs));
    }
  }

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Binds the disk's accountant so spans can attribute charged I/O.
  /// Call once before execution; spans opened with no accountant bound
  /// still measure wall-clock but report zero I/O. Binding also installs
  /// this context's page-read latency histogram as the accountant's sink,
  /// so Disk starts timing reads; the destructor uninstalls it.
  void BindAccountant(IoAccountant* accountant) {
    if (accountant_ != nullptr && accountant_ != accountant) {
      accountant_->ClearLatencySink(
          &metrics_.histogram(Hist::kPageReadLatencyUs));
    }
    accountant_ = accountant;
    if (accountant_ != nullptr) {
      accountant_->SetLatencySink(
          &metrics_.histogram(Hist::kPageReadLatencyUs));
    }
  }
  IoAccountant* accountant() const { return accountant_; }

  /// Attaches the (non-owning) scheduler handle executors draw their
  /// parallelism from. Null — the default — is the paper-faithful serial
  /// mode. The Scheduler must outlive this context; the concurrent query
  /// service sets its shared scheduler on every per-query context it
  /// creates.
  void SetScheduler(Scheduler* scheduler) { scheduler_ = scheduler; }
  Scheduler* scheduler() const { return scheduler_; }

  /// Registers a buffer pool so spans can report hit/miss deltas.
  /// Unregister before destroying the pool; its final counters are folded
  /// into a retired total so deltas stay monotonic.
  void RegisterBufferPool(const BufferManager* pool);
  void UnregisterBufferPool(const BufferManager* pool);

  /// Combined counters of all pools ever registered (live + retired).
  BufferCounters TotalBufferCounters() const;

  /// Opens a span under the innermost open span on this thread (or the
  /// root). Prefer the null-safe free function SpanIf().
  TraceSpan Span(Phase phase, std::string label = "");

  /// Opens a span with an explicit parent, for spans that begin on a
  /// different thread than their logical parent (the r-partitioning
  /// thread parents its span under the partition-join root explicitly).
  TraceSpan SpanUnder(const TraceSpan& parent, Phase phase,
                      std::string label = "");

  /// Records a planner estimate against the first span of `phase`,
  /// whether or not it has started yet.
  void AnnotateEstimate(Phase phase, double cost) {
    tracer_.AnnotateEstimate(phase, cost);
  }

 private:
  TraceSpan MakeSpan(SpanNode* node);

  Tracer tracer_;
  MetricsRegistry metrics_;
  IoAccountant* accountant_ = nullptr;
  Scheduler* scheduler_ = nullptr;

  mutable std::mutex pools_mu_;
  std::vector<const BufferManager*> pools_;
  BufferCounters retired_;
};

/// RAII registration of a buffer pool with a (possibly null) context.
class ScopedPoolRegistration {
 public:
  ScopedPoolRegistration(ExecContext* ctx, const BufferManager* pool)
      : ctx_(ctx), pool_(pool) {
    if (ctx_ != nullptr) ctx_->RegisterBufferPool(pool_);
  }
  ~ScopedPoolRegistration() {
    if (ctx_ != nullptr) ctx_->UnregisterBufferPool(pool_);
  }
  ScopedPoolRegistration(const ScopedPoolRegistration&) = delete;
  ScopedPoolRegistration& operator=(const ScopedPoolRegistration&) = delete;

 private:
  ExecContext* ctx_;
  const BufferManager* pool_;
};

/// Null-safe span helper: an inert TraceSpan when `ctx` is null.
inline TraceSpan SpanIf(ExecContext* ctx, Phase phase, std::string label = "") {
  if (ctx == nullptr) return TraceSpan();
  return ctx->Span(phase, std::move(label));
}

/// Null-safe explicit-parent span helper. Falls back to thread-local
/// parenting when `parent` is inert (e.g. the serial path where the
/// "parent" span lives on the same thread anyway).
inline TraceSpan SpanUnderIf(ExecContext* ctx, const TraceSpan& parent,
                             Phase phase, std::string label = "") {
  if (ctx == nullptr) return TraceSpan();
  if (!parent.active()) return ctx->Span(phase, std::move(label));
  return ctx->SpanUnder(parent, phase, std::move(label));
}

/// Null-safe scheduler accessor: the serial fallback (null) when no
/// context was passed. Pair with SchedulerParallel()/SchedulerPool()
/// from parallel/scheduler.h to get concrete knobs.
inline Scheduler* SchedulerOf(ExecContext* ctx) {
  return ctx == nullptr ? nullptr : ctx->scheduler();
}

/// Null-safe metric write helpers.
inline void SetMetric(ExecContext* ctx, Metric m, double value) {
  if (ctx != nullptr) ctx->metrics().Set(m, value);
}
inline void AddMetric(ExecContext* ctx, Metric m, double delta) {
  if (ctx != nullptr) ctx->metrics().Add(m, delta);
}
inline void RecordHistogram(ExecContext* ctx, Hist h, double value) {
  if (ctx != nullptr) ctx->metrics().Record(h, value);
}
inline void MergeHistogram(ExecContext* ctx, Hist h, const LogHistogram& src) {
  if (ctx != nullptr) ctx->metrics().histogram(h).Merge(src);
}

}  // namespace tempo

#endif  // TEMPO_OBS_EXEC_CONTEXT_H_
