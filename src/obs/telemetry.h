#ifndef TEMPO_OBS_TELEMETRY_H_
#define TEMPO_OBS_TELEMETRY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/statusor.h"
#include "obs/metrics.h"

namespace tempo {

/// Live service telemetry (DESIGN.md §4k): everything PR 2/4 built is
/// post-hoc, per-run observability — this module is what a *running*
/// QueryService exposes continuously:
///
///   - FlightRecorder: an always-on, fixed-size, lock-free ring of recent
///     lifecycle events (query submitted/admitted/finished, admission
///     grants/releases, executor phase entries, fallbacks), dumpable as a
///     valid Perfetto trace on demand, on admission rejection, or from a
///     fatal-signal handler;
///   - MetricsSampler: a background thread appending periodic JSONL
///     snapshots (service gauges + metric scalars) to TEMPO_TELEMETRY_OUT;
///   - RenderPrometheus: the text-exposition renderer over the declared
///     metric/histogram/gauge lists (stable HELP/TYPE lines, declaration
///     order — golden-testable);
///   - TelemetrySink: the shared append-only JSONL writer the sampler and
///     the slow-query log both feed.
///
/// None of it touches charged I/O or output bytes: telemetry reads
/// snapshots, so enabling every piece leaves a query's output pages and
/// IoStats byte-identical to a telemetry-off run at any thread count.

// ---------------------------------------------------------------------
// Service gauges
// ---------------------------------------------------------------------

/// The single declaration point for every *sampled* service gauge — the
/// point-in-time values the MetricsSampler snapshots each tick and the
/// Prometheus renderer exposes. Scalar run metrics live in
/// TEMPO_METRIC_LIST; gauges differ in that they are instantaneous reads
/// of live service state, not accumulated per-run counters.
///   TEMPO_GAUGE_LIST(G): G(enumerator, "name", "unit", "owner", "doc")
#define TEMPO_GAUGE_LIST(G)                                                   \
  G(PoolPagesTotal, "pool_pages_total", "pages", "SharedBufferPool",          \
    "Capacity of the shared buffer-pool reservation ledger.")                 \
  G(PoolPagesAvailable, "pool_pages_available", "pages", "SharedBufferPool",  \
    "Unreserved pages of the shared pool at the sample instant.")             \
  G(AdmissionQueueDepth, "admission_queue_depth", "count",                    \
    "SharedBufferPool",                                                       \
    "Queries waiting in the FIFO admission queue at the sample instant.")     \
  G(SchedulerRunQueue, "scheduler_run_queue", "count", "Scheduler",           \
    "Morsel tasks queued on the work-stealing pool's deques, not yet "        \
    "picked up by a worker, at the sample instant.")                          \
  G(SchedulerThreads, "scheduler_threads", "count", "Scheduler",              \
    "Worker threads of the service's shared scheduler (constant).")           \
  G(QueriesQueued, "queries_queued", "count", "QueryService",                 \
    "Submitted queries still waiting for their buffer-pool reservation.")     \
  G(QueriesRunning, "queries_running", "count", "QueryService",               \
    "Admitted queries currently executing.")                                  \
  G(SessionsOpened, "sessions_opened", "count", "QueryService",               \
    "Sessions opened over the service's lifetime.")                          \
  G(SlowQueriesLogged, "slow_queries_logged", "count", "QueryService",        \
    "Queries whose wall latency exceeded TEMPO_SLOW_QUERY_MS and were "       \
    "captured into the slow-query log.")                                      \
  G(FlightEventsAppended, "flight_events_appended", "count",                  \
    "FlightRecorder",                                                         \
    "Lifecycle events appended to the flight recorder ring (monotonic; "      \
    "events beyond the ring capacity overwrite the oldest).")

/// Compile-time-checked identifier of a declared gauge.
enum class Gauge : uint16_t {
#define TEMPO_GAUGE_ENUM(id, name, unit, owner, doc) k##id,
  TEMPO_GAUGE_LIST(TEMPO_GAUGE_ENUM)
#undef TEMPO_GAUGE_ENUM
};

/// Number of declared gauges.
inline constexpr size_t kNumGauges = []() constexpr {
  size_t n = 0;
#define TEMPO_GAUGE_COUNT(id, name, unit, owner, doc) ++n;
  TEMPO_GAUGE_LIST(TEMPO_GAUGE_COUNT)
#undef TEMPO_GAUGE_COUNT
  return n;
}();

/// One gauge's declaration.
struct GaugeDef {
  Gauge id;
  const char* name;   ///< stable key (JSONL / Prometheus name)
  const char* unit;
  const char* owner;  ///< subsystem that is sampled
  const char* doc;
};

/// Declaration of `g`.
const GaugeDef& GetGaugeDef(Gauge g);

/// All declared gauges, in declaration order.
const std::vector<GaugeDef>& AllGaugeDefs();

/// Markdown table documenting every declared gauge — the generated source
/// of the DESIGN.md Appendix A gauge section.
std::string DescribeGauges();

/// One point-in-time reading of every declared gauge. A plain value
/// struct: the sampler fills one per tick from live service state.
struct GaugeSnapshot {
  std::array<double, kNumGauges> values{};

  void Set(Gauge g, double v) { values[static_cast<size_t>(g)] = v; }
  double Get(Gauge g) const { return values[static_cast<size_t>(g)]; }

  /// {"pool_pages_total": ..., ...} in declaration order.
  Json ToJson() const;
};

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// Kinds of lifecycle events the flight recorder captures.
enum class FlightEventKind : uint8_t {
  kQuerySubmitted = 0,   ///< Session::Submit accepted the request shape
  kQueryRejected = 1,    ///< Submit failed fast (infeasible reservation)
  kQueryAdmitted = 2,    ///< admission wait ended; execution begins
  kQueryCancelled = 3,   ///< cancelled while queued
  kQueryFinished = 4,    ///< execution ended (either status)
  kAdmissionGranted = 5, ///< pool granted a reservation (arg = pages)
  kAdmissionReleased = 6,///< reservation returned (arg = pages)
  kPhaseEntered = 7,     ///< executor opened a span (detail = Phase)
  kExecutorFallback = 8, ///< planner-chosen path fell back (radix → paged)
  kSlowQuery = 9,        ///< wall latency exceeded TEMPO_SLOW_QUERY_MS
};

/// Stable display name ("query submitted", "admission granted", ...).
const char* FlightEventKindName(FlightEventKind k);

/// A fixed-size lock-free ring buffer of recent lifecycle events. Any
/// thread appends with relaxed atomics (one fetch_add to claim a slot,
/// relaxed field stores, one release store to publish); readers validate
/// each slot's publication sequence before and after reading, so a dump
/// racing an append skips the slot being overwritten instead of reporting
/// a torn event. Appending never blocks, never allocates, and never takes
/// a lock — it is safe from executor hot paths and cheap enough to leave
/// always on.
///
/// The ring overwrites: with capacity C, a dump sees the most recent ≤ C
/// events; `events_appended() - C` older ones (when positive) have been
/// overwritten and are reported as `dropped_events` in the dump.
class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (minimum 16).
  explicit FlightRecorder(size_t capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event. Lock-free; callable from any thread, including
  /// (except for the steady_clock read) a signal handler.
  void Append(FlightEventKind kind, uint64_t query_id, uint64_t arg = 0,
              uint8_t detail = 0);

  /// Events appended over the recorder's lifetime (monotonic).
  uint64_t events_appended() const {
    return next_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return slots_.size(); }

  /// The surviving events as a valid Perfetto / chrome://tracing document:
  /// one "i" (instant) event per ring slot, in append order, with args
  /// carrying the sequence number, query id, event argument, and (for
  /// phase events) the phase name. Top level also reports schema_version
  /// and dropped_events.
  Json DumpJson() const;

  /// Serializes DumpJson() to `path` (pretty-printed).
  Status DumpFile(const std::string& path) const;

  /// Async-signal-safe dump: writes the same Perfetto document shape to
  /// `fd` using only atomic loads, stack buffers and write(2) — no
  /// allocation, no locks, no stdio. Used by the fatal-signal handler.
  void DumpToFdSignalSafe(int fd) const;

  /// Installs a fatal-signal handler (SIGSEGV, SIGABRT, SIGBUS, SIGFPE)
  /// that dumps `recorder` to `path` and then re-raises with the default
  /// disposition. Handlers are installed once per process; the recorder
  /// pointer is swapped atomically, so the most recently installed
  /// recorder wins and `InstallFatalSignalDump(nullptr, "")` disarms the
  /// dump (the handlers stay installed but do nothing).
  static void InstallFatalSignalDump(FlightRecorder* recorder,
                                     const std::string& path);

 private:
  struct Slot {
    /// 0 = never written; otherwise 1 + the sequence number of the event
    /// stored here. Written last (release) so readers can validate.
    std::atomic<uint64_t> seq{0};
    std::atomic<int64_t> ts_us{0};
    std::atomic<uint64_t> query_id{0};
    std::atomic<uint64_t> arg{0};
    std::atomic<uint8_t> kind{0};
    std::atomic<uint8_t> detail{0};
  };

  int64_t NowUs() const;

  std::vector<Slot> slots_;
  size_t mask_;
  std::atomic<uint64_t> next_{0};
  std::chrono::steady_clock::time_point birth_;
};

// ---------------------------------------------------------------------
// JSONL sink + sampler
// ---------------------------------------------------------------------

/// The shared append-only JSONL writer behind TEMPO_TELEMETRY_OUT: one
/// line per record, compact serialization, flushed per append so a reader
/// tailing the file (or a crashed process's last lines) sees whole
/// records. The sampler appends {"type":"sample",...} records and the
/// slow-query log appends {"type":"slow_query",...} records to the same
/// stream.
class TelemetrySink {
 public:
  /// Opens `path` for appending.
  static StatusOr<std::unique_ptr<TelemetrySink>> Open(
      const std::string& path);

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  /// Appends one record as a single compact line. Thread-safe.
  Status Append(const Json& record);

  const std::string& path() const { return path_; }
  uint64_t records_written() const {
    return records_.load(std::memory_order_relaxed);
  }

 private:
  explicit TelemetrySink(std::string path) : path_(std::move(path)) {}

  std::string path_;
  std::mutex mu_;
  std::ofstream out_;
  std::atomic<uint64_t> records_{0};
};

/// A background thread that snapshots live service state on a fixed
/// period and appends each snapshot as one JSONL record. The sample
/// callback runs on the sampler thread and must be safe to call
/// concurrently with execution (QueryService's callback only reads
/// mutex-guarded or atomic state). Stop() (and the destructor) takes one
/// final sample so short runs always produce at least one record.
class MetricsSampler {
 public:
  /// One sample: a JSON object; the sampler adds "type", "seq" and
  /// "ts_us" before appending.
  using SampleFn = std::function<Json()>;

  MetricsSampler(uint64_t period_ms, TelemetrySink* sink, SampleFn fn);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Stops the thread after one final sample. Idempotent.
  void Stop();

  /// Takes one sample synchronously on the calling thread.
  void SampleNow();

  /// Samples appended so far.
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  uint64_t period_ms() const { return period_ms_; }

 private:
  void Loop();

  const uint64_t period_ms_;
  TelemetrySink* sink_;
  SampleFn fn_;
  std::chrono::steady_clock::time_point birth_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<uint64_t> ticks_{0};
  std::thread thread_;
};

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

/// Renders a metrics snapshot (set scalars + non-empty histograms, both
/// in declaration order) and an optional gauge snapshot (all gauges, in
/// declaration order) in the Prometheus text exposition format:
///
///   # HELP tempo_<name> <doc>
///   # TYPE tempo_<name> gauge|counter|histogram
///   tempo_<name> <value>
///
/// Scalar metrics and gauges expose as gauges (single instantaneous
/// values); histograms expose cumulative le-buckets plus _sum and _count,
/// with the overflow bucket as le="+Inf". The ordering, HELP and TYPE
/// lines are deterministic functions of the x-macro declarations, which
/// is what the golden exposition test locks in.
std::string RenderPrometheus(const MetricsRegistry& metrics,
                             const GaugeSnapshot* gauges = nullptr);

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// The telemetry knobs of a QueryService, resolvable from the
/// environment. All numeric knobs go through the strict env parser
/// (common/env.h): trailing garbage, overflow and non-numeric values are
/// InvalidArgument naming the variable, never silently half-parsed.
struct TelemetryConfig {
  /// JSONL time-series path (TEMPO_TELEMETRY_OUT). Empty = no sampler,
  /// no JSONL slow-query records.
  std::string jsonl_path;

  /// Sampler period in milliseconds (TEMPO_TELEMETRY_PERIOD_MS).
  uint64_t sampler_period_ms = 100;

  /// When true, queries whose wall latency reaches `slow_query_ms` are
  /// captured (EXPLAIN ANALYZE tree + metric snapshot + request config).
  /// Set by the presence of TEMPO_SLOW_QUERY_MS; 0 logs every query.
  bool slow_query_log = false;
  uint64_t slow_query_ms = 0;

  /// Where the flight recorder dumps (TEMPO_FLIGHT_OUT): written on
  /// service shutdown, on a kResourceExhausted admission rejection, and
  /// from the fatal-signal handler. Empty = no dump file (the in-memory
  /// ring still records).
  std::string flight_path;

  /// Ring capacity in events (TEMPO_FLIGHT_EVENTS), rounded up to a
  /// power of two.
  uint64_t flight_events = 4096;

  /// True when any output is configured.
  bool enabled() const {
    return !jsonl_path.empty() || slow_query_log || !flight_path.empty();
  }

  /// Resolves TEMPO_TELEMETRY_OUT / TEMPO_TELEMETRY_PERIOD_MS /
  /// TEMPO_SLOW_QUERY_MS / TEMPO_FLIGHT_OUT / TEMPO_FLIGHT_EVENTS.
  static StatusOr<TelemetryConfig> FromEnv();
};

}  // namespace tempo

#endif  // TEMPO_OBS_TELEMETRY_H_
