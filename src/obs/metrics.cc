#include "obs/metrics.h"

#include <sstream>

namespace tempo {

namespace {

constexpr std::array<MetricDef, kNumMetrics> kMetricDefs = {{
#define TEMPO_METRIC_DEF(id, name, unit, owner, doc) \
  {Metric::k##id, name, unit, owner, doc},
    TEMPO_METRIC_LIST(TEMPO_METRIC_DEF)
#undef TEMPO_METRIC_DEF
}};

constexpr std::array<HistogramDef, kNumHistograms> kHistogramDefs = {{
#define TEMPO_HISTOGRAM_DEF(id, name, unit, owner, doc) \
  {Hist::k##id, name, unit, owner, doc},
    TEMPO_HISTOGRAM_LIST(TEMPO_HISTOGRAM_DEF)
#undef TEMPO_HISTOGRAM_DEF
}};

}  // namespace

const std::array<MetricDef, kNumMetrics>& AllMetricDefs() {
  return kMetricDefs;
}

const MetricDef& GetMetricDef(Metric m) {
  return kMetricDefs[static_cast<size_t>(m)];
}

const MetricDef* FindMetricByName(std::string_view name) {
  for (const MetricDef& def : kMetricDefs) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

const std::array<HistogramDef, kNumHistograms>& AllHistogramDefs() {
  return kHistogramDefs;
}

const HistogramDef& GetHistogramDef(Hist h) {
  return kHistogramDefs[static_cast<size_t>(h)];
}

const HistogramDef* FindHistogramByName(std::string_view name) {
  for (const HistogramDef& def : kHistogramDefs) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

std::string MetricsRegistry::Describe() {
  std::ostringstream out;
  out << "| Metric | Unit | Emitted by | Description |\n";
  out << "|--------|------|------------|-------------|\n";
  for (const MetricDef& def : kMetricDefs) {
    out << "| `" << def.name << "` | " << def.unit << " | " << def.owner
        << " | " << def.doc << " |\n";
  }
  out << "\n| Histogram | Unit | Recorded by | Description |\n";
  out << "|-----------|------|-------------|-------------|\n";
  for (const HistogramDef& def : kHistogramDefs) {
    out << "| `" << def.name << "` | " << def.unit << " | " << def.owner
        << " | " << def.doc << " |\n";
  }
  return out.str();
}

}  // namespace tempo
