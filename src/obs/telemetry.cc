#include "obs/telemetry.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#include "common/env.h"
#include "obs/trace.h"

namespace tempo {

// ---------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------

const std::vector<GaugeDef>& AllGaugeDefs() {
  static const std::vector<GaugeDef> defs = {
#define TEMPO_GAUGE_DEF(id, name, unit, owner, doc) \
  GaugeDef{Gauge::k##id, name, unit, owner, doc},
      TEMPO_GAUGE_LIST(TEMPO_GAUGE_DEF)
#undef TEMPO_GAUGE_DEF
  };
  return defs;
}

const GaugeDef& GetGaugeDef(Gauge g) {
  return AllGaugeDefs()[static_cast<size_t>(g)];
}

std::string DescribeGauges() {
  std::string out;
  out += "| Gauge | Unit | Sampled from | Description |\n";
  out += "|-------|------|--------------|-------------|\n";
  for (const GaugeDef& def : AllGaugeDefs()) {
    out += "| `";
    out += def.name;
    out += "` | ";
    out += def.unit;
    out += " | ";
    out += def.owner;
    out += " | ";
    out += def.doc;
    out += " |\n";
  }
  return out;
}

Json GaugeSnapshot::ToJson() const {
  Json j = Json::Object();
  for (const GaugeDef& def : AllGaugeDefs()) {
    j.Set(def.name, Get(def.id));
  }
  return j;
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

const char* FlightEventKindName(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::kQuerySubmitted:
      return "query submitted";
    case FlightEventKind::kQueryRejected:
      return "query rejected";
    case FlightEventKind::kQueryAdmitted:
      return "query admitted";
    case FlightEventKind::kQueryCancelled:
      return "query cancelled";
    case FlightEventKind::kQueryFinished:
      return "query finished";
    case FlightEventKind::kAdmissionGranted:
      return "admission granted";
    case FlightEventKind::kAdmissionReleased:
      return "admission released";
    case FlightEventKind::kPhaseEntered:
      return "phase entered";
    case FlightEventKind::kExecutorFallback:
      return "executor fallback";
    case FlightEventKind::kSlowQuery:
      return "slow query";
  }
  return "?";
}

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 16;
  while (p < n && p < (size_t{1} << 31)) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : slots_(RoundUpPow2(capacity)),
      mask_(slots_.size() - 1),
      birth_(std::chrono::steady_clock::now()) {}

int64_t FlightRecorder::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - birth_)
      .count();
}

void FlightRecorder::Append(FlightEventKind kind, uint64_t query_id,
                            uint64_t arg, uint8_t detail) {
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];
  // Invalidate first so a concurrent reader never pairs the old seq with
  // the new fields, then publish the new seq with release ordering.
  slot.seq.store(0, std::memory_order_relaxed);
  slot.ts_us.store(NowUs(), std::memory_order_relaxed);
  slot.query_id.store(query_id, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  slot.detail.store(detail, std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);
}

Json FlightRecorder::DumpJson() const {
  const uint64_t appended = next_.load(std::memory_order_acquire);
  const uint64_t window = std::min<uint64_t>(appended, slots_.size());
  const uint64_t first = appended - window;

  Json events = Json::Array();
  for (uint64_t seq = first; seq < appended; ++seq) {
    const Slot& slot = slots_[seq & mask_];
    if (slot.seq.load(std::memory_order_acquire) != seq + 1) {
      continue;  // being overwritten by a racing append
    }
    const auto kind =
        static_cast<FlightEventKind>(slot.kind.load(std::memory_order_relaxed));
    const uint8_t detail = slot.detail.load(std::memory_order_relaxed);
    const int64_t ts = slot.ts_us.load(std::memory_order_relaxed);
    const uint64_t query = slot.query_id.load(std::memory_order_relaxed);
    const uint64_t arg = slot.arg.load(std::memory_order_relaxed);
    // Re-validate: if the slot was recycled mid-read the fields above may
    // belong to a newer event — drop it rather than emit a torn record.
    if (slot.seq.load(std::memory_order_acquire) != seq + 1) continue;

    Json e = Json::Object();
    if (kind == FlightEventKind::kPhaseEntered) {
      e.Set("name", std::string("phase ") +
                        PhaseName(static_cast<Phase>(detail)));
    } else {
      e.Set("name", FlightEventKindName(kind));
    }
    e.Set("cat", "flight");
    e.Set("ph", "i");
    e.Set("ts", ts);
    e.Set("pid", 1);
    e.Set("tid", 1);
    e.Set("s", "g");
    Json args = Json::Object();
    args.Set("seq", seq);
    args.Set("query", query);
    if (arg != 0) args.Set("arg", arg);
    e.Set("args", std::move(args));
    events.Append(std::move(e));
  }

  Json doc = Json::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  doc.Set("schema_version", 1);
  doc.Set("events_appended", appended);
  doc.Set("dropped_events", first);
  return doc;
}

Status FlightRecorder::DumpFile(const std::string& path) const {
  const std::string text = DumpJson().Dump(2) + "\n";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open flight-recorder dump file: " + path);
  }
  out << text;
  out.flush();
  if (!out) {
    return Status::Internal("short write to flight-recorder dump file: " +
                            path);
  }
  return Status::OK();
}

namespace {

// --- async-signal-safe formatting helpers ----------------------------

void SafeWrite(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) {
      if (errno == EINTR) continue;
      return;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

void SafeWriteStr(int fd, const char* s) { SafeWrite(fd, s, std::strlen(s)); }

void SafeWriteU64(int fd, uint64_t v) {
  char buf[21];
  char* p = buf + sizeof(buf);
  *--p = '\0';
  if (v == 0) {
    *--p = '0';
  } else {
    while (v != 0) {
      *--p = static_cast<char>('0' + v % 10);
      v /= 10;
    }
  }
  SafeWriteStr(fd, p);
}

void SafeWriteI64(int fd, int64_t v) {
  if (v < 0) {
    SafeWriteStr(fd, "-");
    SafeWriteU64(fd, static_cast<uint64_t>(-v));
  } else {
    SafeWriteU64(fd, static_cast<uint64_t>(v));
  }
}

}  // namespace

void FlightRecorder::DumpToFdSignalSafe(int fd) const {
  const uint64_t appended = next_.load(std::memory_order_acquire);
  const uint64_t window =
      appended < slots_.size() ? appended : slots_.size();
  const uint64_t first = appended - window;

  SafeWriteStr(fd, "{\"traceEvents\":[");
  bool any = false;
  for (uint64_t seq = first; seq < appended; ++seq) {
    const Slot& slot = slots_[seq & mask_];
    if (slot.seq.load(std::memory_order_acquire) != seq + 1) continue;
    const auto kind =
        static_cast<FlightEventKind>(slot.kind.load(std::memory_order_relaxed));
    const uint8_t detail = slot.detail.load(std::memory_order_relaxed);
    const int64_t ts = slot.ts_us.load(std::memory_order_relaxed);
    const uint64_t query = slot.query_id.load(std::memory_order_relaxed);
    const uint64_t arg = slot.arg.load(std::memory_order_relaxed);
    if (slot.seq.load(std::memory_order_acquire) != seq + 1) continue;

    if (any) SafeWriteStr(fd, ",");
    any = true;
    SafeWriteStr(fd, "{\"name\":\"");
    if (kind == FlightEventKind::kPhaseEntered) {
      SafeWriteStr(fd, "phase ");
      SafeWriteStr(fd, PhaseName(static_cast<Phase>(detail)));
    } else {
      SafeWriteStr(fd, FlightEventKindName(kind));
    }
    SafeWriteStr(fd, "\",\"cat\":\"flight\",\"ph\":\"i\",\"ts\":");
    SafeWriteI64(fd, ts);
    SafeWriteStr(fd, ",\"pid\":1,\"tid\":1,\"s\":\"g\",\"args\":{\"seq\":");
    SafeWriteU64(fd, seq);
    SafeWriteStr(fd, ",\"query\":");
    SafeWriteU64(fd, query);
    SafeWriteStr(fd, ",\"arg\":");
    SafeWriteU64(fd, arg);
    SafeWriteStr(fd, "}}");
  }
  SafeWriteStr(fd, "],\"displayTimeUnit\":\"ms\",\"schema_version\":1,"
                   "\"events_appended\":");
  SafeWriteU64(fd, appended);
  SafeWriteStr(fd, ",\"dropped_events\":");
  SafeWriteU64(fd, first);
  SafeWriteStr(fd, "}\n");
}

namespace {

// Fatal-signal dump state. The recorder pointer is swapped atomically;
// the path lives in a fixed buffer so the handler never allocates.
std::atomic<FlightRecorder*> g_signal_recorder{nullptr};
char g_signal_path[512] = {0};

void FlightSignalHandler(int signo) {
  FlightRecorder* recorder =
      g_signal_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr && g_signal_path[0] != '\0') {
    const int fd = ::open(g_signal_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      recorder->DumpToFdSignalSafe(fd);
      ::close(fd);
    }
  }
  // Restore the default disposition and re-raise so the process still
  // dies with the original signal (core dumps, exit codes unchanged).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void FlightRecorder::InstallFatalSignalDump(FlightRecorder* recorder,
                                            const std::string& path) {
  if (recorder == nullptr || path.empty()) {
    g_signal_recorder.store(nullptr, std::memory_order_release);
    return;
  }
  std::snprintf(g_signal_path, sizeof(g_signal_path), "%s", path.c_str());
  g_signal_recorder.store(recorder, std::memory_order_release);
  static bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &FlightSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND;
    for (int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
      ::sigaction(signo, &sa, nullptr);
    }
    return true;
  }();
  (void)installed;
}

// ---------------------------------------------------------------------
// TelemetrySink
// ---------------------------------------------------------------------

StatusOr<std::unique_ptr<TelemetrySink>> TelemetrySink::Open(
    const std::string& path) {
  std::unique_ptr<TelemetrySink> sink(new TelemetrySink(path));
  sink->out_.open(path, std::ios::binary | std::ios::app);
  if (!sink->out_) {
    return Status::Internal("cannot open telemetry output file: " + path);
  }
  return sink;
}

Status TelemetrySink::Append(const Json& record) {
  const std::string line = record.Dump() + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line;
  out_.flush();
  if (!out_) {
    return Status::Internal("short write to telemetry output file: " + path_);
  }
  records_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// ---------------------------------------------------------------------
// MetricsSampler
// ---------------------------------------------------------------------

MetricsSampler::MetricsSampler(uint64_t period_ms, TelemetrySink* sink,
                               SampleFn fn)
    : period_ms_(period_ms == 0 ? 1 : period_ms),
      sink_(sink),
      fn_(std::move(fn)),
      birth_(std::chrono::steady_clock::now()) {
  thread_ = std::thread([this] { Loop(); });
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  SampleNow();  // final sample: short runs still produce >= 1 record
}

void MetricsSampler::SampleNow() {
  Json sample = fn_();
  sample.Set("type", "sample");
  sample.Set("seq", ticks_.fetch_add(1, std::memory_order_relaxed));
  sample.Set("ts_us",
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - birth_)
                 .count());
  if (sink_ != nullptr) (void)sink_->Append(sample);
}

void MetricsSampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                     [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

namespace {

void AppendHelpType(std::string* out, const std::string& name,
                    const char* doc, const char* type) {
  *out += "# HELP " + name + " ";
  // The exposition format escapes backslash and newline in HELP text;
  // the declared docs contain neither, but stay correct if one ever does.
  for (const char* p = doc; *p != '\0'; ++p) {
    if (*p == '\\') {
      *out += "\\\\";
    } else if (*p == '\n') {
      *out += "\\n";
    } else {
      *out += *p;
    }
  }
  *out += "\n# TYPE " + name + " ";
  *out += type;
  *out += "\n";
}

}  // namespace

std::string RenderPrometheus(const MetricsRegistry& metrics,
                             const GaugeSnapshot* gauges) {
  std::string out;
  if (gauges != nullptr) {
    for (const GaugeDef& def : AllGaugeDefs()) {
      const std::string name = std::string("tempo_") + def.name;
      AppendHelpType(&out, name, def.doc, "gauge");
      out += name + " " + JsonNumberToString(gauges->Get(def.id)) + "\n";
    }
  }
  metrics.ForEach([&](const MetricDef& def, double value) {
    const std::string name = std::string("tempo_") + def.name;
    AppendHelpType(&out, name, def.doc, "gauge");
    out += name + " " + JsonNumberToString(value) + "\n";
  });
  metrics.ForEachHistogram([&](const HistogramDef& def,
                               const LogHistogram& hist) {
    const std::string name = std::string("tempo_") + def.name;
    AppendHelpType(&out, name, def.doc, "histogram");
    // Prometheus buckets are cumulative; the log buckets are not. Empty
    // finite buckets are elided (sparse expositions are legal); the +Inf
    // bucket below always carries the total.
    uint64_t cumulative = 0;
    for (size_t i = 0; i + 1 < LogHistogram::kNumBuckets; ++i) {
      const uint64_t n = hist.bucket_count(i);
      if (n == 0) continue;
      cumulative += n;
      out += name + "_bucket{le=\"";
      out += JsonNumberToString(LogHistogram::BucketUpperBound(i));
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count()) +
           "\n";
    out += name + "_sum " + JsonNumberToString(hist.sum()) + "\n";
    out += name + "_count " + std::to_string(hist.count()) + "\n";
  });
  return out;
}

// ---------------------------------------------------------------------
// TelemetryConfig
// ---------------------------------------------------------------------

StatusOr<TelemetryConfig> TelemetryConfig::FromEnv() {
  TelemetryConfig config;
  const char* out = std::getenv("TEMPO_TELEMETRY_OUT");
  if (out != nullptr && *out != '\0') config.jsonl_path = out;
  TEMPO_ASSIGN_OR_RETURN(
      config.sampler_period_ms,
      EnvStrictUint64Or("TEMPO_TELEMETRY_PERIOD_MS",
                        config.sampler_period_ms, 1, 3600 * 1000));
  const char* slow = std::getenv("TEMPO_SLOW_QUERY_MS");
  if (slow != nullptr && *slow != '\0') {
    TEMPO_ASSIGN_OR_RETURN(
        config.slow_query_ms,
        EnvStrictUint64Or("TEMPO_SLOW_QUERY_MS", 0, 0,
                          std::numeric_limits<int64_t>::max()));
    config.slow_query_log = true;
  }
  const char* flight = std::getenv("TEMPO_FLIGHT_OUT");
  if (flight != nullptr && *flight != '\0') config.flight_path = flight;
  TEMPO_ASSIGN_OR_RETURN(
      config.flight_events,
      EnvStrictUint64Or("TEMPO_FLIGHT_EVENTS", config.flight_events, 16,
                        uint64_t{1} << 22));
  return config;
}

}  // namespace tempo
