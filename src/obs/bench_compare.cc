#include "obs/bench_compare.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/bench_report.h"

namespace tempo {

namespace {

bool Contains(std::string_view key, std::string_view needle) {
  return key.find(needle) != std::string_view::npos;
}

bool EndsWith(std::string_view key, std::string_view suffix) {
  return key.size() >= suffix.size() &&
         key.substr(key.size() - suffix.size()) == suffix;
}

const Json* FindPoint(const Json& points, const std::string& label) {
  for (const Json& point : points.elements()) {
    const Json* l = point.Find("label");
    if (l != nullptr && l->is_string() && l->AsString() == label) {
      return &point;
    }
  }
  return nullptr;
}

/// Config keys that must match for a comparison to be meaningful: a
/// baseline at one scale or seed says nothing about a run at another.
constexpr const char* kIdentityKeys[] = {"scale", "threads", "seed",
                                         "cost_model_ratio"};

}  // namespace

bool IsVolatileBenchKey(std::string_view key) {
  // "queue" covers the service's admission-queue depth/peak values, which
  // depend on how far submission outruns completion — scheduling, not
  // correctness. The telemetry keys ("telemetry_*" sampler tallies, "ts_"
  // timestamps, slow-query and flight-event counts) are wall-clock
  // functions of the sampler period and query latency, so a report that
  // carries them stays comparable against a pre-telemetry baseline.
  // Deliberately NOT matched: "samples" (the paper's seeded Kolmogorov
  // sampler draw count, a deterministic gated key in the fig4 baseline).
  return Contains(key, "wall") || Contains(key, "second") ||
         Contains(key, "time") || Contains(key, "latency") ||
         Contains(key, "efficiency") || EndsWith(key, "_ns") ||
         EndsWith(key, "_us") || Contains(key, "iterations") ||
         Contains(key, "queue") || Contains(key, "telemetry") ||
         Contains(key, "ts_") || Contains(key, "slow_quer") ||
         Contains(key, "flight_events");
}

StatusOr<BenchCompareResult> CompareBenchReports(
    const Json& baseline, const Json& current,
    const BenchCompareOptions& options) {
  TEMPO_RETURN_IF_ERROR(BenchReport::Validate(baseline));
  TEMPO_RETURN_IF_ERROR(BenchReport::Validate(current));

  BenchCompareResult result;

  const std::string& base_name = baseline.Find("bench")->AsString();
  const std::string& cur_name = current.Find("bench")->AsString();
  if (base_name != cur_name) {
    result.comparable = false;
    result.notes.push_back("different benches: baseline=" + base_name +
                           " current=" + cur_name);
    return result;
  }

  const Json* base_config = baseline.Find("config");
  const Json* cur_config = current.Find("config");
  for (const char* key : kIdentityKeys) {
    const Json* b = base_config->Find(key);
    const Json* c = cur_config->Find(key);
    if (b == nullptr && c == nullptr) continue;
    const bool match = b != nullptr && c != nullptr && b->is_number() &&
                       c->is_number() && b->AsNumber() == c->AsNumber();
    if (!match) {
      result.comparable = false;
      result.notes.push_back(
          std::string("config mismatch on ") + key + ": baseline=" +
          (b == nullptr ? "<absent>" : JsonNumberToString(b->AsNumber())) +
          " current=" +
          (c == nullptr ? "<absent>" : JsonNumberToString(c->AsNumber())));
    }
  }
  if (!result.comparable) return result;

  const Json* base_points = baseline.Find("points");
  const Json* cur_points = current.Find("points");
  for (const Json& base_point : base_points->elements()) {
    const std::string& label = base_point.Find("label")->AsString();
    const Json* cur_point = FindPoint(*cur_points, label);
    if (cur_point == nullptr) {
      result.notes.push_back("point only in baseline: " + label);
      continue;
    }
    ++result.points_compared;
    const Json* base_values = base_point.Find("values");
    const Json* cur_values = cur_point->Find("values");
    for (const auto& [key, base_value] : base_values->members()) {
      if (IsVolatileBenchKey(key)) {
        ++result.values_skipped_volatile;
        continue;
      }
      const Json* cur_value = cur_values->Find(key);
      if (cur_value == nullptr) {
        result.notes.push_back("value only in baseline: " + label + "/" + key);
        continue;
      }
      ++result.values_compared;
      const double b = base_value.AsNumber();
      const double c = cur_value->AsNumber();
      const double rel = (c - b) / std::max(std::fabs(b), 1.0);
      if (std::fabs(rel) <= options.tolerance) continue;
      BenchCompareDiff diff;
      diff.point = label;
      diff.key = key;
      diff.baseline = b;
      diff.current = c;
      diff.relative = rel;
      diff.regression = c > b;
      result.diffs.push_back(std::move(diff));
    }
  }
  for (const Json& cur_point : cur_points->elements()) {
    const std::string& label = cur_point.Find("label")->AsString();
    if (FindPoint(*base_points, label) == nullptr) {
      result.notes.push_back("point only in current: " + label);
    }
  }
  return result;
}

std::string BenchCompareResult::Render() const {
  std::ostringstream out;
  if (!comparable) {
    out << "NOT COMPARABLE\n";
  } else {
    out << points_compared << " points, " << values_compared
        << " values compared (" << values_skipped_volatile
        << " volatile skipped): " << num_regressions() << " regressions, "
        << diffs.size() - num_regressions() << " improvements\n";
  }
  for (const std::string& note : notes) out << "  note: " << note << "\n";
  for (const BenchCompareDiff& d : diffs) {
    out << "  " << (d.regression ? "REGRESSION" : "improvement") << " "
        << d.point << "/" << d.key << ": " << JsonNumberToString(d.baseline)
        << " -> " << JsonNumberToString(d.current) << " ("
        << (d.relative >= 0 ? "+" : "")
        << JsonNumberToString(d.relative * 100.0) << "%)\n";
  }
  if (ok()) out << "OK\n";
  return out.str();
}

}  // namespace tempo
