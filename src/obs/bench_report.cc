#include "obs/bench_report.h"

#include <cstdlib>
#include <fstream>
#include <unordered_set>

#include "obs/export.h"

namespace tempo {

Json& BenchReport::Point(const std::string& label) {
  for (Json& element : points_.elements()) {
    const Json* l = element.Find("label");
    if (l != nullptr && l->is_string() && l->AsString() == label) {
      return *element.Find("values");
    }
  }
  Json point = Json::Object();
  point.Set("label", label);
  Json& stored = points_.Append(std::move(point));
  return stored.Set("values", Json::Object());
}

void BenchReport::AttachMetrics(const MetricsRegistry& metrics,
                                bool include_timing) {
  metrics_ = MetricsToJson(metrics, include_timing);
}

Json BenchReport::ToJson() const {
  Json doc = Json::Object();
  doc.Set("schema_version", kSchemaVersion);
  doc.Set("bench", name_);
  doc.Set("config", config_);
  doc.Set("points", points_);
  if (!metrics_.is_null()) doc.Set("metrics", metrics_);
  return doc;
}

Status BenchReport::Validate(const Json& doc) {
  if (!doc.is_object()) return Status::InvalidArgument("report is not an object");
  const Json* version = doc.Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return Status::InvalidArgument("missing numeric schema_version");
  }
  if (version->AsNumber() != kSchemaVersion) {
    return Status::InvalidArgument(
        "unsupported schema_version " + JsonNumberToString(version->AsNumber()) +
        " (expected " + std::to_string(kSchemaVersion) + ")");
  }
  const Json* bench = doc.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->AsString().empty()) {
    return Status::InvalidArgument("missing bench name");
  }
  const Json* config = doc.Find("config");
  if (config == nullptr || !config->is_object()) {
    return Status::InvalidArgument("missing config object");
  }
  const Json* points = doc.Find("points");
  if (points == nullptr || !points->is_array()) {
    return Status::InvalidArgument("missing points array");
  }
  std::unordered_set<std::string> labels;
  for (const Json& point : points->elements()) {
    if (!point.is_object()) {
      return Status::InvalidArgument("point is not an object");
    }
    const Json* label = point.Find("label");
    if (label == nullptr || !label->is_string() || label->AsString().empty()) {
      return Status::InvalidArgument("point without a label");
    }
    if (!labels.insert(label->AsString()).second) {
      return Status::InvalidArgument("duplicate point label: " +
                                     label->AsString());
    }
    const Json* values = point.Find("values");
    if (values == nullptr || !values->is_object()) {
      return Status::InvalidArgument("point without a values object: " +
                                     label->AsString());
    }
    for (const auto& [key, value] : values->members()) {
      if (!value.is_number()) {
        return Status::InvalidArgument("non-numeric value " + key +
                                       " in point " + label->AsString());
      }
    }
  }
  return Status::OK();
}

StatusOr<std::string> BenchReport::WriteFile(const std::string& dir) const {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "BENCH_" + name_ + ".json";
  const std::string text = ToJson().Dump(2) + "\n";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open bench report file: " + path);
  out << text;
  out.flush();
  if (!out) return Status::Internal("short write to bench report: " + path);
  return path;
}

std::string BenchJsonDir() {
  const char* env = std::getenv("TEMPO_BENCH_JSON");
  if (env == nullptr || env[0] == '\0') return "";
  std::string dir(env);
  return dir == "1" ? "." : dir;
}

}  // namespace tempo
