#include "obs/trace.h"

#include <utility>

#include "obs/telemetry.h"

namespace tempo {

namespace {

/// Per-thread stack of open spans, keyed by tracer so independent tracers
/// (nested tests) never see each other's spans.
thread_local std::vector<std::pair<const Tracer*, SpanNode*>> t_span_stack;

SpanNode* InnermostOnThread(const Tracer* tracer) {
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (it->first == tracer) return it->second;
  }
  return nullptr;
}

}  // namespace

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kExecute:
      return "execute";
    case Phase::kPlan:
      return "plan";
    case Phase::kNestedLoop:
      return "nested-loop join";
    case Phase::kSortMerge:
      return "sort-merge join";
    case Phase::kSortR:
      return "sort r";
    case Phase::kSortS:
      return "sort s";
    case Phase::kMergeSweep:
      return "merge sweep";
    case Phase::kIndexed:
      return "indexed join";
    case Phase::kIndexBuild:
      return "index build";
    case Phase::kIndexProbe:
      return "index probe";
    case Phase::kPartitionJoin:
      return "partition join";
    case Phase::kChooseIntervals:
      return "chooseIntervals";
    case Phase::kSampling:
      return "sampling";
    case Phase::kPartitionR:
      return "partitioning r";
    case Phase::kPartitionS:
      return "partitioning s";
    case Phase::kJoinPartitions:
      return "joinPartitions";
    case Phase::kCoalesce:
      return "coalesce";
    case Phase::kViewBuild:
      return "view build";
    case Phase::kViewInsert:
      return "view insert";
    case Phase::kViewDelete:
      return "view delete";
    case Phase::kRadixJoin:
      return "radix join";
    case Phase::kRadixExtract:
      return "radix_extract";
    case Phase::kRadixPartition:
      return "radix_partition";
    case Phase::kRadixProbe:
      return "radix_probe";
    case Phase::kQuery:
      return "sequenced query";
    case Phase::kQuerySelect:
      return "select";
    case Phase::kQueryProject:
      return "project";
    case Phase::kQueryDifference:
      return "difference";
    case Phase::kQueryJoin:
      return "join";
    case Phase::kOuterPass:
      return "outer pass (swapped)";
    case Phase::kSweepJoin:
      return "sweep join";
    case Phase::kSweepPass:
      return "sweep pass";
  }
  return "?";
}

IoStats SpanNode::InclusiveIo() const {
  IoStats total = stats.io;
  for (const auto& child : children) total = total + child->InclusiveIo();
  return total;
}

MorselStats SpanNode::InclusiveMorsels() const {
  MorselStats total = stats.morsels;
  for (const auto& child : children) total.Merge(child->InclusiveMorsels());
  return total;
}

const SpanNode* SpanNode::FindPhase(Phase p) const {
  if (phase == p) return this;
  for (const auto& child : children) {
    if (const SpanNode* found = child->FindPhase(p)) return found;
  }
  return nullptr;
}

Tracer::Tracer() : root_(std::make_unique<SpanNode>()) {
  root_->phase = Phase::kExecute;
  root_->label = "<root>";
}

Tracer::~Tracer() = default;

SpanNode* Tracer::FindOrCreateChildLocked(SpanNode* parent, Phase phase,
                                          const std::string& label) {
  for (const auto& child : parent->children) {
    if (child->phase == phase && child->label == label) return child.get();
  }
  auto node = std::make_unique<SpanNode>();
  node->phase = phase;
  node->label = label;
  auto pending = pending_estimates_.find(static_cast<uint8_t>(phase));
  if (pending != pending_estimates_.end()) {
    node->estimated_cost = pending->second;
    pending_estimates_.erase(pending);
  }
  SpanNode* raw = node.get();
  parent->children.push_back(std::move(node));
  return raw;
}

SpanNode* Tracer::FindPhaseLocked(SpanNode* node, Phase phase) {
  if (node->phase == phase && node != root_.get()) return node;
  for (const auto& child : node->children) {
    if (SpanNode* found = FindPhaseLocked(child.get(), phase)) return found;
  }
  return nullptr;
}

SpanNode* Tracer::Begin(Phase phase, std::string label,
                        SpanNode* explicit_parent) {
  SpanNode* node;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SpanNode* parent = explicit_parent;
    if (parent == nullptr) parent = InnermostOnThread(this);
    if (parent == nullptr) parent = root_.get();
    node = FindOrCreateChildLocked(parent, phase, label);
    ++node->stats.entered;
  }
  t_span_stack.emplace_back(this, node);
  live_phase_.store(static_cast<uint8_t>(phase), std::memory_order_relaxed);
  if (FlightRecorder* flight = flight_.load(std::memory_order_acquire)) {
    flight->Append(FlightEventKind::kPhaseEntered, flight_query_, 0,
                   static_cast<uint8_t>(phase));
  }
  return node;
}

void Tracer::SetFlightRecorder(FlightRecorder* recorder, uint64_t query_id) {
  flight_query_ = query_id;
  flight_.store(recorder, std::memory_order_release);
}

void Tracer::End(SpanNode* node, double wall_seconds, const IoStats& io,
                 const BufferCounters& buffers) {
  // Pop this tracer's innermost entry; spans are scoped objects, so the
  // calling thread closes them in LIFO order.
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (it->first == this) {
      t_span_stack.erase(std::next(it).base());
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  node->stats.wall_seconds += wall_seconds;
  node->stats.io = node->stats.io + io;
  node->stats.buffers = node->stats.buffers + buffers;
}

void Tracer::AddMorsels(SpanNode* node, const MorselStats& morsels) {
  std::lock_guard<std::mutex> lock(mu_);
  node->stats.morsels.Merge(morsels);
}

void Tracer::SetEstimate(SpanNode* node, double cost) {
  std::lock_guard<std::mutex> lock(mu_);
  node->estimated_cost = cost;
}

void Tracer::AnnotateEstimate(Phase phase, double cost) {
  std::lock_guard<std::mutex> lock(mu_);
  if (SpanNode* node = FindPhaseLocked(root_.get(), phase)) {
    node->estimated_cost = cost;
    return;
  }
  pending_estimates_[static_cast<uint8_t>(phase)] = cost;
}

IoStats Tracer::TotalIo() const {
  std::lock_guard<std::mutex> lock(mu_);
  return root_->InclusiveIo();
}

TraceSpan::TraceSpan(Tracer* tracer, SpanNode* node, IoAccountant* accountant,
                     BufferCounters buffers_at_begin)
    : tracer_(tracer),
      node_(node),
      accountant_(accountant),
      buffers_at_begin_(buffers_at_begin),
      start_(std::chrono::steady_clock::now()) {
  if (accountant_ != nullptr) accountant_->PushThreadCollector(&io_sink_);
}

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : tracer_(other.tracer_),
      node_(other.node_),
      accountant_(other.accountant_),
      io_sink_(other.io_sink_),
      buffers_at_begin_(other.buffers_at_begin_),
      buffers_at_end_fn_(std::move(other.buffers_at_end_fn_)),
      start_(other.start_) {
  // The collector stack holds a pointer to the sink; repoint it at the
  // new home. Moves happen on the owning thread (returning SpanIf), so
  // the stack entry being repointed belongs to this thread.
  if (accountant_ != nullptr) {
    accountant_->PopThreadCollector(&other.io_sink_);
    accountant_->PushThreadCollector(&io_sink_);
  }
  other.tracer_ = nullptr;
  other.node_ = nullptr;
  other.accountant_ = nullptr;
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    node_ = other.node_;
    accountant_ = other.accountant_;
    io_sink_ = other.io_sink_;
    buffers_at_begin_ = other.buffers_at_begin_;
    buffers_at_end_fn_ = std::move(other.buffers_at_end_fn_);
    start_ = other.start_;
    if (accountant_ != nullptr) {
      accountant_->PopThreadCollector(&other.io_sink_);
      accountant_->PushThreadCollector(&io_sink_);
    }
    other.tracer_ = nullptr;
    other.node_ = nullptr;
    other.accountant_ = nullptr;
  }
  return *this;
}

void TraceSpan::AddMorsels(const MorselStats& morsels) {
  if (tracer_ != nullptr) tracer_->AddMorsels(node_, morsels);
}

void TraceSpan::SetEstimate(double cost) {
  if (tracer_ != nullptr) tracer_->SetEstimate(node_, cost);
}

void TraceSpan::End() {
  if (tracer_ == nullptr) return;
  if (accountant_ != nullptr) accountant_->PopThreadCollector(&io_sink_);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  BufferCounters delta;
  if (buffers_at_end_fn_) {
    delta = buffers_at_end_fn_() - buffers_at_begin_;
  }
  tracer_->End(node_, wall, io_sink_, delta);
  tracer_ = nullptr;
  node_ = nullptr;
  accountant_ = nullptr;
  io_sink_ = IoStats{};
  buffers_at_end_fn_ = nullptr;
}

}  // namespace tempo
