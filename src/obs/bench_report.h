#ifndef TEMPO_OBS_BENCH_REPORT_H_
#define TEMPO_OBS_BENCH_REPORT_H_

#include <string>

#include "common/json.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace tempo {

/// Builder for the schema-versioned machine-readable bench report every
/// figure/ablation/micro binary emits (BENCH_<name>.json). Layout:
///
///   {
///     "schema_version": 1,
///     "bench": "<name>",
///     "config": { "scale": ..., "threads": ..., "seed": ...,
///                 "cost_model_ratio": ..., ... },
///     "points": [
///       { "label": "<unique per report>",
///         "values": { "<key>": <number>, ... } },
///       ...
///     ],
///     "metrics": { "scalars": {...}, "histograms": {...} }   // optional
///   }
///
/// Point labels are the join keys `tools/bench_compare` matches on, so
/// they must be stable across runs (derive them from sweep parameters,
/// never from timing or iteration counts). Value keys whose name implies
/// wall-clock (wall/seconds/time/latency/efficiency/_ns/_us) are treated
/// as volatile by the comparer; everything else — charged I/O, costs,
/// output cardinalities — is expected to reproduce within tolerance.
class BenchReport {
 public:
  static constexpr int kSchemaVersion = 1;

  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Sets one config entry (scale, threads, seed, ...).
  void SetConfig(const std::string& key, Json value) {
    config_.Set(key, std::move(value));
  }

  /// The values object of point `label`, created on first use (so a sweep
  /// can accumulate several keyed values into one point). Labels keep
  /// insertion order in the emitted JSON.
  Json& Point(const std::string& label);

  /// Shorthand: Point(label).Set(key, value).
  void Add(const std::string& label, const std::string& key, Json value) {
    Point(label).Set(key, std::move(value));
  }

  /// Attaches a metrics snapshot (MetricsToJson) to the report.
  void AttachMetrics(const MetricsRegistry& metrics, bool include_timing);

  size_t num_points() const { return points_.size(); }

  Json ToJson() const;

  /// Structural check of a parsed report: schema version, bench name,
  /// config object, points array of {label, values-object-of-numbers}
  /// with unique labels. The round-trip test and bench_compare both call
  /// this before trusting a document.
  static Status Validate(const Json& doc);

  /// Writes ToJson() pretty-printed to `<dir>/BENCH_<name>.json` and
  /// returns the path written.
  StatusOr<std::string> WriteFile(const std::string& dir) const;

 private:
  std::string name_;
  Json config_ = Json::Object();
  Json points_ = Json::Array();
  Json metrics_;  // null until attached
};

/// Destination directory for bench JSON reports, from TEMPO_BENCH_JSON:
/// unset/empty => "" (no reports written, output byte-identical to before
/// the export layer existed); "1" => "." (current directory); anything
/// else => that directory.
std::string BenchJsonDir();

}  // namespace tempo

#endif  // TEMPO_OBS_BENCH_REPORT_H_
