#ifndef TEMPO_OBS_EXEC_OPTIONS_H_
#define TEMPO_OBS_EXEC_OPTIONS_H_

#include <cstdint>

#include "storage/io_accountant.h"

namespace tempo {

/// The options every join executor shares, factored out so VtJoinOptions
/// and PartitionJoinOptions no longer duplicate (and silently fork) the
/// same four knobs. Executor option structs inherit from this, so a
/// partition-specific options value can be sliced down to the common core
/// (`static_cast<ExecOptions&>(part_opts) = opts;`) instead of copying
/// field by field.
struct ExecOptions {
  /// Buffer pages available to the algorithm (the paper's M).
  uint32_t buffer_pages = 2048;

  /// Random/sequential weights for cost formulas (the paper's default
  /// 5:1 trial ratio).
  CostModel cost_model = CostModel::Ratio(5.0);

  /// Seed for sampling and any randomized placement decisions.
  uint64_t seed = 42;

  // Threading deliberately has no knob here: executors read the Scheduler
  // handle on their ExecContext (serial when absent), so one resolved
  // scheduler config governs every concurrent query instead of each
  // options value carrying its own thread count.

  /// In-memory footprint budget (bytes) for the columnar radix fast path.
  /// 0 resolves at run time: TEMPO_RADIX_THRESHOLD_MB when set (strictly
  /// parsed), else buffer_pages * kPageSize — i.e. by default the radix
  /// path may pin exactly the memory the paper's buffSize grants the
  /// algorithm. See ResolveRadixBudgetBytes (core/radix_join.h).
  uint64_t radix_budget_bytes = 0;
};

}  // namespace tempo

#endif  // TEMPO_OBS_EXEC_OPTIONS_H_
