#ifndef TEMPO_OBS_EXEC_OPTIONS_H_
#define TEMPO_OBS_EXEC_OPTIONS_H_

#include <cstdint>

#include "storage/io_accountant.h"
#include "temporal/temporal_predicate.h"

namespace tempo {

/// The sequenced join variants a request may name. kInner is the paper's
/// valid-time natural join; the outer and anti variants additionally emit,
/// for every input tuple of the preserved side(s), the *uncovered
/// subintervals* of its validity — the portions of its interval not
/// overlapped by any key-matching partner — computed with the
/// IntervalSet difference arithmetic (src/temporal/interval_set.h):
///
///   kLeftOuter  — matches plus unmatched r subintervals, s-only
///                 attributes padded with NULLs;
///   kFullOuter  — matches plus unmatched subintervals of both sides,
///                 the other side's private attributes padded with NULLs;
///   kAnti       — *only* the unmatched r subintervals, in r's own schema
///                 (no padding; the sequenced NOT EXISTS).
///
/// Only the partition executor and the reference oracle evaluate the
/// non-inner kinds; their output is emitted in the canonical sequenced
/// result order (sorted serialized records) so executor and oracle runs
/// are byte-identical at any thread count.
enum class JoinKind : uint8_t {
  kInner = 0,
  kLeftOuter = 1,
  kFullOuter = 2,
  kAnti = 3,
};

inline const char* JoinKindName(JoinKind k) {
  switch (k) {
    case JoinKind::kInner:
      return "inner";
    case JoinKind::kLeftOuter:
      return "left-outer";
    case JoinKind::kFullOuter:
      return "full-outer";
    case JoinKind::kAnti:
      return "anti";
  }
  return "?";
}

/// The options every join executor shares, factored out so VtJoinOptions
/// and PartitionJoinOptions no longer duplicate (and silently fork) the
/// same four knobs. Executor option structs inherit from this, so a
/// partition-specific options value can be sliced down to the common core
/// (`static_cast<ExecOptions&>(part_opts) = opts;`) instead of copying
/// field by field.
struct ExecOptions {
  /// Buffer pages available to the algorithm (the paper's M).
  uint32_t buffer_pages = 2048;

  /// Random/sequential weights for cost formulas (the paper's default
  /// 5:1 trial ratio).
  CostModel cost_model = CostModel::Ratio(5.0);

  /// Seed for sampling and any randomized placement decisions.
  uint64_t seed = 42;

  // Threading deliberately has no knob here: executors read the Scheduler
  // handle on their ExecContext (serial when absent), so one resolved
  // scheduler config governs every concurrent query instead of each
  // options value carrying its own thread count.

  /// Which sequenced join variant to evaluate. Which (executor, kind,
  /// predicate) combinations are admissible is enforced centrally by
  /// ValidateExecOptions (src/service/join_request.h) — e.g. non-inner
  /// kinds are only accepted by the partition executor and the reference
  /// oracle, and require the default overlap predicate.
  JoinKind join_kind = JoinKind::kInner;

  /// The temporal matching condition: a disjunction of Allen relations.
  /// Defaults to `overlap`, the valid-time natural join's condition.
  /// Predicates whose relations all imply a shared chronon run on any
  /// executor; adjacency predicates (meets/met-by) need the sweep
  /// executor; predicates containing before/after only run on the
  /// reference oracle. See ValidateExecOptions.
  TemporalPredicate predicate;

  /// In-memory footprint budget (bytes) for the columnar radix fast path.
  /// 0 resolves at run time: TEMPO_RADIX_THRESHOLD_MB when set (strictly
  /// parsed), else buffer_pages * kPageSize — i.e. by default the radix
  /// path may pin exactly the memory the paper's buffSize grants the
  /// algorithm. See ResolveRadixBudgetBytes (core/radix_join.h).
  uint64_t radix_budget_bytes = 0;
};

}  // namespace tempo

#endif  // TEMPO_OBS_EXEC_OPTIONS_H_
