#include "obs/exec_context.h"

#include <algorithm>

namespace tempo {

void ExecContext::RegisterBufferPool(const BufferManager* pool) {
  std::lock_guard<std::mutex> lock(pools_mu_);
  pools_.push_back(pool);
}

void ExecContext::UnregisterBufferPool(const BufferManager* pool) {
  std::lock_guard<std::mutex> lock(pools_mu_);
  auto it = std::find(pools_.begin(), pools_.end(), pool);
  if (it == pools_.end()) return;
  retired_ = retired_ + pool->counters();
  pools_.erase(it);
}

BufferCounters ExecContext::TotalBufferCounters() const {
  std::lock_guard<std::mutex> lock(pools_mu_);
  BufferCounters total = retired_;
  for (const BufferManager* pool : pools_) total = total + pool->counters();
  return total;
}

TraceSpan ExecContext::MakeSpan(SpanNode* node) {
  TraceSpan span(&tracer_, node, accountant_, TotalBufferCounters());
  span.set_buffers_at_end_fn([this] { return TotalBufferCounters(); });
  return span;
}

TraceSpan ExecContext::Span(Phase phase, std::string label) {
  return MakeSpan(tracer_.Begin(phase, std::move(label)));
}

TraceSpan ExecContext::SpanUnder(const TraceSpan& parent, Phase phase,
                                 std::string label) {
  return MakeSpan(tracer_.Begin(phase, std::move(label), parent.node()));
}

}  // namespace tempo
