#include "obs/export.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <string_view>

#include "obs/trace.h"

namespace tempo {

namespace {

// Synthetic-timeline process/thread ids: all span events live on one
// "thread" so viewers nest them by duration; counter events get their own
// track.
constexpr int kPid = 1;
constexpr int kSpanTid = 1;
constexpr int kCounterTid = 0;

Json MetadataEvent(const char* name, int tid, const char* value) {
  Json e = Json::Object();
  e.Set("name", name);
  e.Set("ph", "M");
  e.Set("pid", kPid);
  e.Set("tid", tid);
  Json args = Json::Object();
  args.Set("name", value);
  e.Set("args", std::move(args));
  return e;
}

struct Exporter {
  const TraceExportOptions& options;
  Json events = Json::Array();

  /// Lays `node` out at timestamp `ts` (microseconds), appends its events,
  /// and returns the node's duration so the caller can advance its cursor.
  ///
  /// include_timing: a span's duration is its measured wall-clock, widened
  /// to cover its children (concurrent siblings sum, so a parent's clock
  /// can undershoot the sequential layout of its subtree).
  /// !include_timing: duration is the span's exclusive charged I/O ops
  /// (min 1) plus its children — deterministic under the per-file head
  /// model, and still proportional to where the cost went.
  double Layout(const SpanNode& node, double ts) {
    const double self_us =
        options.include_timing
            ? node.stats.wall_seconds * 1e6
            : static_cast<double>(
                  std::max<uint64_t>(1, node.stats.io.total_ops()));
    double cursor = options.include_timing ? ts : ts + self_us;
    double children_us = 0.0;
    for (const auto& child : node.children) {
      const double d = Layout(*child, cursor);
      cursor += d;
      children_us += d;
    }
    const double dur = options.include_timing
                           ? std::max(self_us, children_us)
                           : self_us + children_us;
    events.Append(SpanEvent(node, ts, dur));
    if (options.include_timing && !node.stats.morsels.per_worker_busy.empty()) {
      events.Append(WorkerCounterEvent(node, ts));
    }
    return dur;
  }

  Json SpanEvent(const SpanNode& node, double ts, double dur) const {
    Json e = Json::Object();
    std::string name = PhaseName(node.phase);
    if (!node.label.empty()) name += " [" + node.label + "]";
    e.Set("name", std::move(name));
    e.Set("cat", "phase");
    e.Set("ph", "X");
    e.Set("ts", ts);
    e.Set("dur", dur);
    e.Set("pid", kPid);
    e.Set("tid", kSpanTid);

    Json args = Json::Object();
    args.Set("phase", PhaseName(node.phase));
    if (!node.label.empty()) args.Set("label", node.label);
    args.Set("entered", node.stats.entered);
    args.Set("io_excl", IoStatsToJson(node.stats.io));
    args.Set("cost_excl", node.stats.io.Cost(options.cost_model));
    args.Set("cost_incl", node.InclusiveIo().Cost(options.cost_model));
    if (node.estimated_cost >= 0.0) args.Set("est_cost", node.estimated_cost);
    if (node.stats.buffers.total() != 0) {
      Json buffers = Json::Object();
      buffers.Set("hits", node.stats.buffers.hits);
      buffers.Set("misses", node.stats.buffers.misses);
      args.Set("buffers", std::move(buffers));
    }
    if (node.stats.morsels.morsels_dispatched != 0) {
      args.Set("morsels_dispatched", node.stats.morsels.morsels_dispatched);
      if (options.include_timing) {
        args.Set("morsel_busy_seconds", node.stats.morsels.busy_seconds);
        args.Set("morsel_wall_seconds", node.stats.morsels.wall_seconds);
      }
    }
    e.Set("args", std::move(args));
    return e;
  }

  Json WorkerCounterEvent(const SpanNode& node, double ts) const {
    Json e = Json::Object();
    e.Set("name", std::string("worker busy s [") + PhaseName(node.phase) + "]");
    e.Set("ph", "C");
    e.Set("ts", ts);
    e.Set("pid", kPid);
    e.Set("tid", kCounterTid);
    Json args = Json::Object();
    const auto& busy = node.stats.morsels.per_worker_busy;
    for (size_t w = 0; w < busy.size(); ++w) {
      args.Set("w" + std::to_string(w), busy[w]);
    }
    e.Set("args", std::move(args));
    return e;
  }
};

}  // namespace

Json IoStatsToJson(const IoStats& io) {
  Json j = Json::Object();
  j.Set("random_reads", io.random_reads);
  j.Set("sequential_reads", io.sequential_reads);
  j.Set("random_writes", io.random_writes);
  j.Set("sequential_writes", io.sequential_writes);
  return j;
}

Json HistogramToJson(const HistogramDef& def, const LogHistogram& hist) {
  Json j = Json::Object();
  j.Set("unit", def.unit);
  j.Set("count", hist.count());
  j.Set("sum", hist.sum());
  j.Set("min", hist.min());
  j.Set("max", hist.max());
  j.Set("mean", hist.mean());
  Json buckets = Json::Array();
  for (size_t i = 0; i < LogHistogram::kNumBuckets; ++i) {
    const uint64_t n = hist.bucket_count(i);
    if (n == 0) continue;
    Json b = Json::Object();
    const double le = LogHistogram::BucketUpperBound(i);
    if (le == std::numeric_limits<double>::infinity()) {
      b.Set("le", "inf");
    } else {
      b.Set("le", le);
    }
    b.Set("count", n);
    buckets.Append(std::move(b));
  }
  j.Set("buckets", std::move(buckets));
  return j;
}

Json MetricsToJson(const MetricsRegistry& metrics, bool include_timing) {
  Json j = Json::Object();
  Json scalars = Json::Object();
  metrics.ForEach([&](const MetricDef& def, double value) {
    scalars.Set(def.name, value);
  });
  j.Set("scalars", std::move(scalars));
  Json hists = Json::Object();
  metrics.ForEachHistogram([&](const HistogramDef& def,
                               const LogHistogram& hist) {
    if (!include_timing && std::string_view(def.unit) == "us") {
      // Wall-clock-valued distribution: only the sample count is
      // deterministic, so that is all the golden/baseline mode keeps.
      Json reduced = Json::Object();
      reduced.Set("unit", def.unit);
      reduced.Set("count", hist.count());
      hists.Set(def.name, std::move(reduced));
    } else {
      hists.Set(def.name, HistogramToJson(def, hist));
    }
  });
  j.Set("histograms", std::move(hists));
  return j;
}

Json TraceToJson(const ExecContext& ctx, const TraceExportOptions& options) {
  Exporter exporter{options};
  exporter.events.Append(MetadataEvent("process_name", kSpanTid, "tempo"));
  exporter.events.Append(MetadataEvent("thread_name", kSpanTid, "span tree"));
  exporter.events.Append(
      MetadataEvent("thread_name", kCounterTid, "worker counters"));

  // Top-level spans (the executor roots) laid out back to back from t=0;
  // the synthetic root itself is not an event.
  double cursor = 0.0;
  for (const auto& child : ctx.tracer().root().children) {
    cursor += exporter.Layout(*child, cursor);
  }

  Json doc = Json::Object();
  doc.Set("traceEvents", std::move(exporter.events));
  doc.Set("displayTimeUnit", "ms");
  doc.Set("schema_version", 1);
  Json config = Json::Object();
  config.Set("cost_model_random_weight", options.cost_model.random_weight);
  config.Set("cost_model_sequential_weight",
             options.cost_model.sequential_weight);
  config.Set("include_timing", options.include_timing);
  doc.Set("config", std::move(config));
  doc.Set("total_io", IoStatsToJson(ctx.tracer().TotalIo()));
  doc.Set("metrics", MetricsToJson(ctx.metrics(), options.include_timing));
  return doc;
}

std::string TraceOutPath() {
  const char* path = std::getenv("TEMPO_TRACE_OUT");
  return path == nullptr ? std::string() : std::string(path);
}

Status WriteTraceFile(const ExecContext& ctx, const std::string& path,
                      const TraceExportOptions& options) {
  const std::string text = TraceToJson(ctx, options).Dump(2) + "\n";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  out << text;
  out.flush();
  if (!out) {
    return Status::Internal("short write to trace output file: " + path);
  }
  return Status::OK();
}

Status MaybeWriteTraceFromEnv(const ExecContext& ctx,
                              const TraceExportOptions& options) {
  const std::string path = TraceOutPath();
  if (path.empty()) return Status::OK();
  return WriteTraceFile(ctx, path, options);
}

std::string PerQueryTracePath(const std::string& base, uint64_t query_id) {
  const std::string suffix = ".q" + std::to_string(query_id);
  const size_t dot = base.rfind('.');
  const size_t slash = base.find_last_of('/');
  // A dot inside a directory component ("./trace") is not an extension.
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + suffix;
  }
  return base.substr(0, dot) + suffix + base.substr(dot);
}

}  // namespace tempo
