#ifndef TEMPO_OBS_EXPORT_H_
#define TEMPO_OBS_EXPORT_H_

#include <string>

#include "common/json.h"
#include "common/status.h"
#include "obs/exec_context.h"
#include "storage/io_accountant.h"

namespace tempo {

/// Knobs for the machine-readable trace export.
struct TraceExportOptions {
  /// Weights used to price each span's charged I/O into the `cost` args,
  /// matching the EXPLAIN ANALYZE "act cost" column.
  CostModel cost_model = CostModel::Ratio(5.0);

  /// When true, span timestamps/durations come from measured wall-clock
  /// and the export includes busy-time counters and latency histograms.
  /// When false, the timeline is *synthesized from charged I/O op counts*
  /// (1 us per op, minimum 1 us per span) and every wall-clock-derived
  /// field is omitted — under the per-file head model this makes the
  /// entire document deterministic for a fixed seed, which is what the
  /// golden-trace test and bench_compare baselines rely on.
  bool include_timing = true;
};

/// Serializes the context's span tree as a Chrome trace-event JSON
/// document (the "JSON Array Format" object flavor) loadable by Perfetto
/// and chrome://tracing:
///
///   - one "X" (complete) event per span node, nested via the synthetic
///     timeline, with args carrying phase, label, entry count, exclusive
///     charged I/O split random/sequential, priced exclusive+inclusive
///     cost, planner estimate, buffer hit/miss deltas, and morsel counts;
///   - "C" (counter) events per parallel span exposing per-worker busy
///     seconds (include_timing mode only);
///   - "M" metadata naming the process/threads;
///   - non-event top-level keys (ignored by trace viewers): the schema
///     version, export config, the run's metrics snapshot
///     (MetricsToJson), and the tree's total inclusive I/O.
Json TraceToJson(const ExecContext& ctx, const TraceExportOptions& options = {});

/// Snapshot of a metrics registry: scalar metrics under "scalars" (stable
/// declared names, declaration order) and histogram distributions under
/// "histograms". With include_timing false, wall-clock-valued ("us")
/// histograms are reduced to their deterministic sample count.
Json MetricsToJson(const MetricsRegistry& metrics, bool include_timing = true);

/// One histogram's snapshot: unit, count, sum/min/max/mean, and the
/// non-empty log buckets as {le, count} pairs (`le` is the exclusive
/// upper bound; the overflow bucket serializes le as the string "inf").
Json HistogramToJson(const HistogramDef& def, const LogHistogram& hist);

/// {"random_reads": ..., "sequential_reads": ..., "random_writes": ...,
///  "sequential_writes": ...} — the four charged counters.
Json IoStatsToJson(const IoStats& io);

/// Value of TEMPO_TRACE_OUT, or "" when unset/empty. When set, bench
/// runners (and anything else that calls MaybeWriteTraceFromEnv) write
/// the Perfetto trace of each traced run there.
std::string TraceOutPath();

/// Serializes TraceToJson(ctx, options) to `path` (pretty-printed).
Status WriteTraceFile(const ExecContext& ctx, const std::string& path,
                      const TraceExportOptions& options = {});

/// Derives the per-query trace path the concurrent service writes under
/// one TEMPO_TRACE_OUT setting: inserts ".q<query_id>" before the file
/// extension ("trace.json" -> "trace.q7.json"; extensionless paths get
/// the suffix appended), so N concurrent queries produce N trace files
/// instead of clobbering a single one.
std::string PerQueryTracePath(const std::string& base, uint64_t query_id);

/// Writes the trace to TraceOutPath() if the env var is set; returns the
/// write status (OK when the env var is unset — the common no-export
/// path costs one getenv).
Status MaybeWriteTraceFromEnv(const ExecContext& ctx,
                              const TraceExportOptions& options = {});

}  // namespace tempo

#endif  // TEMPO_OBS_EXPORT_H_
