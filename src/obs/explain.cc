#include "obs/explain.h"

#include <algorithm>

#include "obs/exec_options.h"
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

namespace tempo {

namespace {

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatValue(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return FormatDouble(v, 0);
  }
  return FormatDouble(v, 3);
}

struct Row {
  std::vector<std::string> cells;
};

/// Stable render order for siblings: phase enum order, then label. Makes
/// trees whose siblings were begun by concurrent threads (partitioning r
/// on a spawned thread, s on the coordinator) render identically to the
/// serial run.
std::vector<const SpanNode*> SortedChildren(const SpanNode& node) {
  std::vector<const SpanNode*> out;
  out.reserve(node.children.size());
  for (const auto& child : node.children) out.push_back(child.get());
  std::sort(out.begin(), out.end(), [](const SpanNode* a, const SpanNode* b) {
    if (a->phase != b->phase) return a->phase < b->phase;
    return a->label < b->label;
  });
  return out;
}

bool AnyBuffers(const SpanNode& node) {
  if (node.stats.buffers.total() != 0) return true;
  for (const auto& child : node.children) {
    if (AnyBuffers(*child)) return true;
  }
  return false;
}

void RenderNode(const SpanNode& node, int depth, const ExplainOptions& options,
                bool with_buffers, std::vector<Row>* rows) {
  Row row;
  std::string name(2 * depth, ' ');
  name += PhaseName(node.phase);
  if (!node.label.empty()) {
    name += " [";
    name += node.label;
    name += "]";
  }
  row.cells.push_back(std::move(name));

  const IoStats inclusive = node.InclusiveIo();
  row.cells.push_back(node.estimated_cost < 0.0
                          ? "-"
                          : FormatDouble(node.estimated_cost, 1));
  row.cells.push_back(FormatDouble(inclusive.Cost(options.cost_model), 1));
  row.cells.push_back(FormatDouble(inclusive.total_random(), 0));
  row.cells.push_back(FormatDouble(inclusive.total_sequential(), 0));
  if (with_buffers) {
    row.cells.push_back(FormatDouble(node.stats.buffers.hits, 0));
    row.cells.push_back(FormatDouble(node.stats.buffers.misses, 0));
  }
  if (options.include_timing) {
    row.cells.push_back(FormatDouble(node.stats.wall_seconds * 1e3, 2));
    const MorselStats morsels = node.InclusiveMorsels();
    row.cells.push_back(FormatDouble(morsels.morsels_dispatched, 0));
    row.cells.push_back(FormatDouble(morsels.per_worker_busy.size(), 0));
  }
  rows->push_back(std::move(row));

  for (const SpanNode* child : SortedChildren(node)) {
    RenderNode(*child, depth + 1, options, with_buffers, rows);
  }
}

std::string FormatBytes(double bytes) {
  if (bytes >= 1024.0 * 1024.0) {
    return FormatDouble(bytes / (1024.0 * 1024.0), 1) + " MiB";
  }
  if (bytes >= 1024.0) return FormatDouble(bytes / 1024.0, 1) + " KiB";
  return FormatDouble(bytes, 0) + " B";
}

/// The "physical path" line: which executor actually ran, with the
/// footprint-vs-budget numbers behind the radix-vs-paged decision. A
/// mid-extract fallback renders as paged-grace with the radix abort noted,
/// so fallback decisions are debuggable from the EXPLAIN output alone.
std::string PhysicalPathLine(const MetricsRegistry& metrics) {
  if (!metrics.Has(Metric::kPlannedAlgorithm)) return "";
  const int algo = static_cast<int>(metrics.Get(Metric::kPlannedAlgorithm));
  const bool fallback = metrics.Get(Metric::kRadixFallback) == 1.0;
  static const char* kNames[] = {"nested-loops", "sort-merge", "paged-grace",
                                 "in-memory-radix"};
  std::string line = "physical path: ";
  if (algo == 3 && fallback) {
    line += "paged-grace (radix fallback: budget exceeded mid-extract)";
  } else if (algo >= 0 && algo < 4) {
    line += kNames[algo];
  } else {
    line += "?";
  }
  if (metrics.Has(Metric::kRadixEstFootprintBytes)) {
    line += " — footprint est " +
            FormatBytes(metrics.Get(Metric::kRadixEstFootprintBytes));
    if (metrics.Has(Metric::kRadixActFootprintBytes)) {
      line += " / act " +
              FormatBytes(metrics.Get(Metric::kRadixActFootprintBytes));
    }
    if (metrics.Has(Metric::kRadixBudgetBytes)) {
      line +=
          ", budget " + FormatBytes(metrics.Get(Metric::kRadixBudgetBytes));
    }
  }
  line += "\n";
  return line;
}

/// Names the sequenced join variant when the run evaluated one beyond the
/// default inner join, so EXPLAIN output states up front that unmatched
/// uncovered subintervals were part of the result.
std::string JoinKindLine(const MetricsRegistry& metrics) {
  if (!metrics.Has(Metric::kSequencedJoinKind)) return "";
  const int kind = static_cast<int>(metrics.Get(Metric::kSequencedJoinKind));
  if (kind == 0) return "";  // inner: the default, not worth a line
  std::string line = "join kind: ";
  line += JoinKindName(static_cast<JoinKind>(kind));
  line += " (canonical sequenced result order)\n";
  return line;
}

std::string AlignRows(const std::vector<Row>& rows) {
  std::vector<size_t> widths;
  for (const Row& row : rows) {
    if (widths.size() < row.cells.size()) widths.resize(row.cells.size(), 0);
    for (size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }
  std::ostringstream out;
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.cells.size(); ++i) {
      const std::string& cell = row.cells[i];
      if (i == 0) {
        // Phase column: left-aligned.
        out << cell;
        if (i + 1 < row.cells.size()) {
          out << std::string(widths[i] - cell.size(), ' ');
        }
      } else {
        out << "  " << std::string(widths[i] - cell.size(), ' ') << cell;
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace

std::string ExplainAnalyze(const ExecContext& ctx,
                           const ExplainOptions& options) {
  const SpanNode& root = ctx.tracer().root();
  const bool with_buffers = AnyBuffers(root);

  std::vector<Row> rows;
  Row header;
  header.cells = {"phase", "est cost", "act cost", "random", "seq"};
  if (with_buffers) {
    header.cells.push_back("buf hit");
    header.cells.push_back("buf miss");
  }
  if (options.include_timing) {
    header.cells.push_back("wall ms");
    header.cells.push_back("morsels");
    header.cells.push_back("workers");
  }
  rows.push_back(std::move(header));

  for (const SpanNode* child : SortedChildren(root)) {
    RenderNode(*child, 0, options, with_buffers, &rows);
  }

  // TOTAL: the tree's inclusive I/O. When every phase of the run executed
  // under a span this equals the run's charged IoStats exactly.
  const IoStats total = root.InclusiveIo();
  Row total_row;
  total_row.cells = {"TOTAL", "-", FormatDouble(total.Cost(options.cost_model), 1),
                     FormatDouble(total.total_random(), 0),
                     FormatDouble(total.total_sequential(), 0)};
  if (with_buffers) {
    const BufferCounters buffers = ctx.TotalBufferCounters();
    total_row.cells.push_back(FormatDouble(buffers.hits, 0));
    total_row.cells.push_back(FormatDouble(buffers.misses, 0));
  }
  if (options.include_timing) {
    double wall = 0.0;
    for (const auto& child : root.children) {
      wall += child->stats.wall_seconds;
    }
    const MorselStats morsels = root.InclusiveMorsels();
    total_row.cells.push_back(FormatDouble(wall * 1e3, 2));
    total_row.cells.push_back(FormatDouble(morsels.morsels_dispatched, 0));
    total_row.cells.push_back(FormatDouble(morsels.per_worker_busy.size(), 0));
  }
  rows.push_back(std::move(total_row));

  std::ostringstream out;
  out << PhysicalPathLine(ctx.metrics());
  out << JoinKindLine(ctx.metrics());
  out << AlignRows(rows);

  if (ctx.metrics().size() > 0) {
    out << "\nmetrics:\n";
    ctx.metrics().ForEach([&out](const MetricDef& def, double value) {
      out << "  " << def.name << " = " << FormatValue(value) << " ("
          << def.unit << ")\n";
    });
  }
  return out.str();
}

}  // namespace tempo
