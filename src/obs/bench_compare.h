#ifndef TEMPO_OBS_BENCH_COMPARE_H_
#define TEMPO_OBS_BENCH_COMPARE_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/statusor.h"

namespace tempo {

/// Comparison knobs for two BENCH_*.json reports.
struct BenchCompareOptions {
  /// Maximum tolerated relative increase of a deterministic value before
  /// it is flagged as a regression. Charged I/O and costs reproduce
  /// exactly for a fixed seed under the per-file head model, so the
  /// default only forgives rounding-level drift.
  double tolerance = 0.02;
};

/// One value that moved beyond tolerance between baseline and current.
struct BenchCompareDiff {
  std::string point;  ///< point label
  std::string key;    ///< value key within the point
  double baseline = 0.0;
  double current = 0.0;
  /// (current - baseline) / max(|baseline|, 1): positive means the
  /// current run is more expensive.
  double relative = 0.0;
  bool regression = false;  ///< true when current > baseline (worse)
};

/// Outcome of CompareBenchReports. `ok()` is the CI gate: false when the
/// reports are not comparable (different bench / scale / seed) or any
/// deterministic value regressed beyond tolerance. Improvements are
/// reported but do not fail.
struct BenchCompareResult {
  bool comparable = true;
  std::vector<std::string> notes;  ///< config mismatches, unmatched points
  std::vector<BenchCompareDiff> diffs;
  size_t points_compared = 0;
  size_t values_compared = 0;
  size_t values_skipped_volatile = 0;

  size_t num_regressions() const {
    size_t n = 0;
    for (const BenchCompareDiff& d : diffs) n += d.regression ? 1 : 0;
    return n;
  }
  bool ok() const { return comparable && num_regressions() == 0; }

  /// Human-readable multi-line report.
  std::string Render() const;
};

/// True for value keys whose name implies wall-clock measurement
/// (wall/second/time/latency/efficiency, or an _ns/_us suffix) — those
/// never reproduce across machines and are excluded from comparison.
bool IsVolatileBenchKey(std::string_view key);

/// Compares two parsed bench reports (both must pass
/// BenchReport::Validate). Points are matched by label; keys present in
/// only one side are noted, not failed, so adding a new column does not
/// break an old baseline.
StatusOr<BenchCompareResult> CompareBenchReports(
    const Json& baseline, const Json& current,
    const BenchCompareOptions& options = {});

}  // namespace tempo

#endif  // TEMPO_OBS_BENCH_COMPARE_H_
