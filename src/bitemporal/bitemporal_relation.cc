#include "bitemporal/bitemporal_relation.h"

namespace tempo {

namespace {
constexpr const char* kTxStartAttr = "__tx_start";
constexpr const char* kTxEndAttr = "__tx_end";
}  // namespace

BitemporalRelation::BitemporalRelation(Disk* disk, Schema user_schema,
                                       std::string name)
    : disk_(disk), user_schema_(std::move(user_schema)) {
  std::vector<Attribute> attrs = user_schema_.attributes();
  attrs.push_back(Attribute{kTxStartAttr, ValueType::kInt64});
  attrs.push_back(Attribute{kTxEndAttr, ValueType::kInt64});
  store_ = std::make_unique<StoredRelation>(disk, Schema(std::move(attrs)),
                                            std::move(name));
}

Tuple BitemporalRelation::ToStored(const Tuple& t, TxTime tx_start,
                                   TxTime tx_end) const {
  std::vector<Value> values = t.values();
  values.emplace_back(tx_start);
  values.emplace_back(tx_end);
  return Tuple(std::move(values), t.interval());
}

void BitemporalRelation::FromStored(const Tuple& stored, Tuple* user,
                                    TxTime* tx_start, TxTime* tx_end) const {
  const size_t n = user_schema_.num_attributes();
  std::vector<Value> values(stored.values().begin(),
                            stored.values().begin() + n);
  *user = Tuple(std::move(values), stored.interval());
  *tx_start = stored.value(n).AsInt64();
  *tx_end = stored.value(n + 1).AsInt64();
}

Status BitemporalRelation::CheckClock(TxTime now) {
  if (now == kTxUntilChanged) {
    return Status::InvalidArgument(
        "transaction time must be a real instant");
  }
  if (last_tx_ != INT64_MIN && now < last_tx_) {
    return Status::InvalidArgument(
        "transaction time must be non-decreasing (got " +
        std::to_string(now) + " after " + std::to_string(last_tx_) + ")");
  }
  last_tx_ = now;
  return Status::OK();
}

Status BitemporalRelation::Insert(const Tuple& t, TxTime now) {
  if (t.num_values() != user_schema_.num_attributes()) {
    return Status::InvalidArgument("tuple does not match the user schema");
  }
  TEMPO_RETURN_IF_ERROR(CheckClock(now));
  TEMPO_RETURN_IF_ERROR(store_->Append(ToStored(t, now, kTxUntilChanged)));
  return store_->Flush();
}

Status BitemporalRelation::Delete(const Tuple& t, TxTime now) {
  TEMPO_RETURN_IF_ERROR(CheckClock(now));
  // Find the current version equal to `t` and close its transaction
  // interval in place: the record layout does not change (tx_end is a
  // fixed-width attribute), so the page is decoded, patched and written
  // back — the append-plus-close discipline of transaction time.
  const size_t n = user_schema_.num_attributes();
  for (uint32_t page_no = 0; page_no < store_->num_pages(); ++page_no) {
    Page page;
    TEMPO_RETURN_IF_ERROR(store_->ReadPage(page_no, &page));
    std::vector<Tuple> decoded;
    TEMPO_RETURN_IF_ERROR(
        StoredRelation::DecodePage(store_->schema(), page, &decoded));
    for (size_t slot = 0; slot < decoded.size(); ++slot) {
      const Tuple& stored = decoded[slot];
      if (stored.value(n + 1).AsInt64() != kTxUntilChanged) continue;
      Tuple user(std::vector<Value>(stored.values().begin(),
                                    stored.values().begin() + n),
                 stored.interval());
      if (!(user == t)) continue;
      // Rebuild the page with the closed version.
      Page rebuilt;
      for (size_t s = 0; s < decoded.size(); ++s) {
        const Tuple& to_write =
            s == slot ? ToStored(t, stored.value(n).AsInt64(), now - 1)
                      : decoded[s];
        std::string record;
        to_write.SerializeTo(store_->schema(), &record);
        TEMPO_CHECK(rebuilt.AddRecord(record).has_value());
      }
      return disk_->WritePage(store_->file_id(), page_no, rebuilt);
    }
  }
  return Status::NotFound("no current version matches " + t.ToString());
}

Status BitemporalRelation::Update(const Tuple& old_t, const Tuple& new_t,
                                  TxTime now) {
  TEMPO_RETURN_IF_ERROR(Delete(old_t, now));
  return Insert(new_t, now);
}

Status BitemporalRelation::ForEachCurrentVersion(
    TxTime as_of, const std::function<Status(const TupleView&)>& fn) {
  TEMPO_RETURN_IF_ERROR(store_->Flush());
  const RecordLayout& layout = store_->schema().layout();
  const size_t n = user_schema_.num_attributes();
  for (uint32_t page_no = 0; page_no < store_->num_pages(); ++page_no) {
    Page page;
    TEMPO_RETURN_IF_ERROR(store_->ReadPage(page_no, &page));
    for (uint16_t slot = 0; slot < page.num_records(); ++slot) {
      std::string_view rec = page.GetRecord(slot);
      TEMPO_ASSIGN_OR_RETURN(TupleView v,
                             TupleView::Make(layout, rec.data(), rec.size()));
      // The transaction bounds are read in place; most versions are
      // filtered out here without ever decoding the user payload.
      TxTime tx_start = v.Int64At(n);
      TxTime tx_end = v.Int64At(n + 1);
      if (tx_start <= as_of && as_of <= tx_end) {
        TEMPO_RETURN_IF_ERROR(fn(v));
      }
    }
  }
  return Status::OK();
}

Tuple BitemporalRelation::UserTupleOf(const TupleView& stored) const {
  const size_t n = user_schema_.num_attributes();
  std::vector<Value> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(stored.ValueAt(i));
  return Tuple(std::move(values), stored.interval());
}

StatusOr<std::vector<Tuple>> BitemporalRelation::SnapshotAsOf(TxTime as_of) {
  std::vector<Tuple> out;
  TEMPO_RETURN_IF_ERROR(
      ForEachCurrentVersion(as_of, [&](const TupleView& v) -> Status {
        out.push_back(UserTupleOf(v));
        return Status::OK();
      }));
  return out;
}

StatusOr<std::unique_ptr<StoredRelation>> BitemporalRelation::MaterializeAsOf(
    TxTime as_of, const std::string& name) {
  // Streams the snapshot straight into the output relation: one page of
  // the store in memory at a time, never the whole snapshot vector.
  auto rel = std::make_unique<StoredRelation>(disk_, user_schema_, name);
  TEMPO_RETURN_IF_ERROR(
      ForEachCurrentVersion(as_of, [&](const TupleView& v) -> Status {
        return rel->Append(UserTupleOf(v));
      }));
  TEMPO_RETURN_IF_ERROR(rel->Flush());
  return rel;
}

StatusOr<std::vector<Tuple>> BitemporalRelation::Timeslice(TxTime as_of,
                                                           Chronon vt) {
  std::vector<Tuple> out;
  TEMPO_RETURN_IF_ERROR(
      ForEachCurrentVersion(as_of, [&](const TupleView& v) -> Status {
        // Valid-time filter on the view's interval; only passing
        // versions materialize, already stamped with the slice instant.
        if (!v.interval().Contains(vt)) return Status::OK();
        Tuple t = UserTupleOf(v);
        t.set_interval(Interval::At(vt));
        out.push_back(std::move(t));
        return Status::OK();
      }));
  return out;
}

StatusOr<std::vector<Tuple>> BitemporalRelation::ReadAllVersions() {
  return store_->ReadAll();
}

StatusOr<JoinRunStats> BitemporalJoinAsOf(BitemporalRelation* r,
                                          BitemporalRelation* s, TxTime as_of,
                                          StoredRelation* out,
                                          const PartitionJoinOptions& options) {
  TEMPO_ASSIGN_OR_RETURN(auto r_snap,
                         r->MaterializeAsOf(as_of, "bt.r.asof"));
  TEMPO_ASSIGN_OR_RETURN(auto s_snap,
                         s->MaterializeAsOf(as_of, "bt.s.asof"));
  auto stats = PartitionVtJoin(r_snap.get(), s_snap.get(), out, options);
  Disk* disk = r_snap->disk();
  disk->DeleteFile(r_snap->file_id()).ok();
  disk->DeleteFile(s_snap->file_id()).ok();
  return stats;
}

}  // namespace tempo
