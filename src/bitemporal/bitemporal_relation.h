#ifndef TEMPO_BITEMPORAL_BITEMPORAL_RELATION_H_
#define TEMPO_BITEMPORAL_BITEMPORAL_RELATION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/partition_join.h"
#include "relation/tuple_view.h"
#include "storage/stored_relation.h"

namespace tempo {

/// Transaction time: when a fact was current *in the database* [SA86,
/// JCG+92]. Monotone, supplied by the caller (a commit clock).
using TxTime = int64_t;

/// Open transaction end: the version is current ("until changed").
inline constexpr TxTime kTxUntilChanged = INT64_MAX;

/// A bitemporal relation: every version carries BOTH a valid-time
/// interval (when the fact held in the modelled world — the Tuple's
/// regular interval) and a transaction-time interval (when the version
/// was part of the database state).
///
/// This is the paper's Section 5 destination: "this work can be
/// considered as the first step towards the construction of an
/// incremental evaluation system for a bitemporal database management
/// system, that is, a DBMS that supports both valid and transaction
/// time". The valid-time machinery of this library applies per
/// transaction-time snapshot: SnapshotAsOf materializes the valid-time
/// relation current at any past transaction instant, and every join /
/// operator of the library runs on it unchanged.
///
/// Storage: the user schema is augmented with two int64 attributes
/// `__tx_start` / `__tx_end` and stored in an ordinary heap file.
/// Transaction semantics:
///  - Insert(t, now) appends a version with tx = [now, until-changed);
///  - Delete(t, now) *closes* the current version's tx interval in place
///    (tx_end = now - 1): nothing is ever physically removed — the
///    append-plus-close discipline is what makes transaction-time
///    queries possible;
///  - transaction time is required to be non-decreasing across calls.
class BitemporalRelation {
 public:
  /// Creates an empty bitemporal relation over the *user* schema (the
  /// transaction attributes are managed internally).
  BitemporalRelation(Disk* disk, Schema user_schema, std::string name);

  const Schema& user_schema() const { return user_schema_; }
  const Schema& stored_schema() const { return store_->schema(); }
  StoredRelation* store() { return store_.get(); }

  /// Number of versions ever written (including closed ones).
  uint64_t num_versions() const { return store_->num_tuples(); }
  /// Latest transaction time seen.
  TxTime last_tx() const { return last_tx_; }

  /// Records `t` (a user-schema tuple with its valid-time interval) as
  /// current from transaction time `now` on.
  Status Insert(const Tuple& t, TxTime now);

  /// Logically deletes the current version equal to `t` (user attributes
  /// and valid-time interval): its transaction interval is closed at
  /// `now - 1`. NotFound if no current version matches.
  Status Delete(const Tuple& t, TxTime now);

  /// Logical update: Delete(old_t) + Insert(new_t) at the same instant.
  Status Update(const Tuple& old_t, const Tuple& new_t, TxTime now);

  /// The valid-time relation current at transaction time `as_of`
  /// (transaction timeslice): user-schema tuples whose version's
  /// transaction interval contains `as_of`.
  StatusOr<std::vector<Tuple>> SnapshotAsOf(TxTime as_of);

  /// Materializes SnapshotAsOf into a StoredRelation (user schema) so
  /// disk-based operators — the partition join above all — can run on
  /// it. The output is created on the same disk.
  StatusOr<std::unique_ptr<StoredRelation>> MaterializeAsOf(
      TxTime as_of, const std::string& name);

  /// Bitemporal timeslice: the user tuples current at transaction time
  /// `as_of` AND valid at chronon `vt` — "what did the database believe
  /// at as_of about the world at vt?".
  StatusOr<std::vector<Tuple>> Timeslice(TxTime as_of, Chronon vt);

  /// Every version, with its transaction interval exposed as two extra
  /// int64 values (for auditing / tests).
  StatusOr<std::vector<Tuple>> ReadAllVersions();

 private:
  /// Converts user tuple + tx interval to the stored representation.
  Tuple ToStored(const Tuple& t, TxTime tx_start, TxTime tx_end) const;
  /// Splits a stored tuple into (user tuple, tx_start, tx_end).
  void FromStored(const Tuple& stored, Tuple* user, TxTime* tx_start,
                  TxTime* tx_end) const;

  /// Streams every version current at `as_of` as a zero-copy view over
  /// the store's pages (one page in memory at a time, no full-relation
  /// materialization). The transaction attributes are read in place; `fn`
  /// materializes only the versions it keeps.
  Status ForEachCurrentVersion(
      TxTime as_of, const std::function<Status(const TupleView&)>& fn);

  /// User-schema tuple of a stored version view (drops the two
  /// transaction attributes).
  Tuple UserTupleOf(const TupleView& stored) const;

  Status CheckClock(TxTime now);

  Disk* disk_;
  Schema user_schema_;
  std::unique_ptr<StoredRelation> store_;
  TxTime last_tx_ = INT64_MIN;
};

/// Joins two bitemporal relations as of one transaction instant: both
/// sides' snapshots are materialized and evaluated with the partition
/// valid-time natural join. Output is an ordinary valid-time relation
/// (user schemas joined). The materialization I/O is charged.
StatusOr<JoinRunStats> BitemporalJoinAsOf(BitemporalRelation* r,
                                          BitemporalRelation* s, TxTime as_of,
                                          StoredRelation* out,
                                          const PartitionJoinOptions& options);

}  // namespace tempo

#endif  // TEMPO_BITEMPORAL_BITEMPORAL_RELATION_H_
