#include "temporal/interval.h"

namespace tempo {

std::string Interval::ToString() const {
  auto fmt = [](Chronon t) -> std::string {
    if (t == kChrononMin) return "-inf";
    if (t == kChrononMax) return "+inf";
    return std::to_string(t);
  };
  return "[" + fmt(start_) + ", " + fmt(end_) + "]";
}

}  // namespace tempo
