#ifndef TEMPO_TEMPORAL_CHRONON_H_
#define TEMPO_TEMPORAL_CHRONON_H_

#include <cstdint>

namespace tempo {

/// A chronon is the minimal-duration indivisible unit of the valid-time line
/// [DS93]. The time line is modelled as the integers; timestamps are closed
/// intervals of chronons (see interval.h).
using Chronon = int64_t;

/// Smallest / largest representable chronons. Used as the open ends of the
/// first and last partitioning intervals so a partitioning covers the whole
/// valid-time line (paper Section 3.3: "P ... completely covers the
/// valid-time line").
inline constexpr Chronon kChrononMin = INT64_MIN;
inline constexpr Chronon kChrononMax = INT64_MAX;

}  // namespace tempo

#endif  // TEMPO_TEMPORAL_CHRONON_H_
