#ifndef TEMPO_TEMPORAL_TEMPORAL_PREDICATE_H_
#define TEMPO_TEMPORAL_TEMPORAL_PREDICATE_H_

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

#include "temporal/allen.h"
#include "temporal/interval.h"
#include "temporal/interval_predicate.h"

namespace tempo {

/// A first-class temporal join predicate: a non-empty disjunction of
/// Allen's thirteen basic interval relations, represented as a 13-bit
/// mask. Because exactly one Allen relation holds between any pair of
/// intervals, any interval predicate expressible as "the relation of x
/// to y is one of this set" — which covers the whole family the paper
/// surveys in Section 4.1 (time-join, intersect-join, contain-join) as
/// well as the extended Allen-relation joins of Piatov et al. — is one
/// TemporalPredicate value, and evaluating it is a classify + mask test.
///
/// The default-constructed predicate is `overlap`: the disjunction of
/// the nine chronon-sharing relations, i.e. the valid-time natural
/// join's matching condition. The legacy IntervalJoinPredicate enum maps
/// losslessly onto this type via FromJoinPredicate.
///
/// Taxonomy used by executors and the planner:
///   - ImpliesSharedChronon(): every relation in the set shares a
///     chronon, so any overlap-driven executor (nested-loop, sort-merge,
///     indexed, partition, radix, sweep) can serve it by filtering at
///     its emission site.
///   - NeedsAdjacency(): the set includes meets/met-by. Only the sweep
///     executor (whose active-map expiry keeps adjacent tuples alive one
///     extra chronon) and the reference oracle serve these.
///   - HasDisjointNonAdjacent(): the set includes before/after. Such
///     predicates match unboundedly separated tuples; only the
///     brute-force reference oracle serves them.
class TemporalPredicate {
 public:
  /// Default: the nine-relation `overlap` disjunction.
  constexpr TemporalPredicate() : mask_(kOverlapMask) {}

  /// Predicate holding for exactly one Allen relation.
  static constexpr TemporalPredicate Exactly(AllenRelation r) {
    return TemporalPredicate(Bit(r));
  }

  /// Disjunction of the given relations. The list must be non-empty.
  static constexpr TemporalPredicate AnyOf(
      std::initializer_list<AllenRelation> rs) {
    uint16_t m = 0;
    for (AllenRelation r : rs) m |= Bit(r);
    return TemporalPredicate(m);
  }

  /// The nine chronon-sharing relations (the valid-time natural join).
  static constexpr TemporalPredicate Overlap() {
    return TemporalPredicate(kOverlapMask);
  }

  /// x[V] ⊇ y[V] (contain-join): {finished-by, contains, equals,
  /// started-by}.
  static constexpr TemporalPredicate ContainJoin() {
    return AnyOf({AllenRelation::kFinishedBy, AllenRelation::kContains,
                  AllenRelation::kEquals, AllenRelation::kStartedBy});
  }

  /// x[V] ⊆ y[V]: {starts, equals, during, finishes}.
  static constexpr TemporalPredicate ContainedJoin() {
    return AnyOf({AllenRelation::kStarts, AllenRelation::kEquals,
                  AllenRelation::kDuring, AllenRelation::kFinishes});
  }

  /// x[V] = y[V]: {equals}.
  static constexpr TemporalPredicate EqualJoin() {
    return Exactly(AllenRelation::kEquals);
  }

  /// Lossless embedding of the legacy leaf enum. Verified equivalent to
  /// EvalIntervalPredicate over exhaustive interval grids in
  /// temporal_test.cc.
  static constexpr TemporalPredicate FromJoinPredicate(
      IntervalJoinPredicate pred) {
    switch (pred) {
      case IntervalJoinPredicate::kOverlap:
        return Overlap();
      case IntervalJoinPredicate::kContains:
        return ContainJoin();
      case IntervalJoinPredicate::kContainedIn:
        return ContainedJoin();
      case IntervalJoinPredicate::kEqual:
        return EqualJoin();
    }
    return Overlap();
  }

  /// Reconstructs a predicate from a raw mask (e.g. a metric value).
  /// Returns nullopt for an empty mask or bits beyond the 13 relations.
  static constexpr std::optional<TemporalPredicate> FromMask(uint16_t mask) {
    if (mask == 0 || (mask & ~kAllMask) != 0) return std::nullopt;
    return TemporalPredicate(mask);
  }

  /// True iff relation `r` is in the disjunction.
  constexpr bool Test(AllenRelation r) const {
    return (mask_ & Bit(r)) != 0;
  }

  /// Full predicate evaluation: does the relation of `x` to `y` belong
  /// to the set? The default overlap mask short-circuits to the plain
  /// shared-chronon test without classifying.
  bool Matches(const Interval& x, const Interval& y) const {
    if (mask_ == kOverlapMask) return x.Overlaps(y);
    return Test(ClassifyAllen(x, y));
  }

  constexpr bool IsOverlapDefault() const { return mask_ == kOverlapMask; }

  /// Every relation in the set implies a shared chronon (set ⊆ the nine
  /// overlap relations). Such predicates can be served by any executor.
  constexpr bool ImpliesSharedChronon() const {
    return (mask_ & ~kOverlapMask) == 0;
  }

  /// The set includes meets or met-by (endpoint adjacency, no shared
  /// chronon).
  constexpr bool NeedsAdjacency() const {
    return (mask_ & (Bit(AllenRelation::kMeets) |
                     Bit(AllenRelation::kMetBy))) != 0;
  }

  /// The set includes before or after (a gap of unbounded width).
  constexpr bool HasDisjointNonAdjacent() const {
    return (mask_ & (Bit(AllenRelation::kBefore) |
                     Bit(AllenRelation::kAfter))) != 0;
  }

  constexpr uint16_t mask() const { return mask_; }

  constexpr bool operator==(const TemporalPredicate& o) const {
    return mask_ == o.mask_;
  }
  constexpr bool operator!=(const TemporalPredicate& o) const {
    return mask_ != o.mask_;
  }

  /// Stable display name: "overlap" for the default mask, "contains-join"
  /// / "contained-in-join" / the Allen relation name for the other named
  /// shapes, otherwise '|'-joined relation names ("meets|met-by").
  std::string Name() const;

  /// Inverse of Name(): accepts every string Name() can produce plus
  /// bare Allen relation names. Returns nullopt for unknown names.
  static std::optional<TemporalPredicate> Parse(std::string_view name);

 private:
  static constexpr uint16_t Bit(AllenRelation r) {
    return static_cast<uint16_t>(uint16_t{1} << static_cast<int>(r));
  }

  // All relations except before, meets, met-by, after — exactly the set
  // for which ImpliesOverlap() returns true.
  static constexpr uint16_t kOverlapMask =
      static_cast<uint16_t>(0x1FFF & ~(uint16_t{1} << 0) &
                            ~(uint16_t{1} << 1) & ~(uint16_t{1} << 11) &
                            ~(uint16_t{1} << 12));
  static constexpr uint16_t kAllMask = 0x1FFF;

  explicit constexpr TemporalPredicate(uint16_t mask) : mask_(mask) {}

  uint16_t mask_;
};

/// The valid-time stamp carried by a joined result tuple for a matching
/// pair: the chronon intersection when the intervals share chronons
/// (the paper's overlap(U, V)), otherwise — for the adjacency and
/// disjoint relations, which have no intersection — the covering span.
/// The reference oracle and every executor stamp through this single
/// helper so outputs agree byte-for-byte.
inline Interval PredicateResultInterval(const Interval& x, const Interval& y) {
  if (std::optional<Interval> common = x.Intersect(y)) return *common;
  return x.Span(y);
}

}  // namespace tempo

#endif  // TEMPO_TEMPORAL_TEMPORAL_PREDICATE_H_
