#ifndef TEMPO_TEMPORAL_INTERVAL_SET_H_
#define TEMPO_TEMPORAL_INTERVAL_SET_H_

#include <vector>

#include "temporal/interval.h"

namespace tempo {

/// A set of chronons represented as sorted, pairwise-disjoint,
/// non-adjacent closed intervals. Used by the TE-outerjoin (event join) to
/// compute the subintervals of a tuple's validity not covered by any
/// matching tuple, and by coalescing.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Constructs from arbitrary (possibly overlapping, unsorted) intervals;
  /// normalizes by merging overlapping and adjacent ones.
  explicit IntervalSet(std::vector<Interval> intervals);

  /// Adds an interval, keeping the representation normalized. O(n).
  void Add(const Interval& iv);

  bool empty() const { return intervals_.empty(); }
  size_t size() const { return intervals_.size(); }

  /// The normalized intervals in increasing order.
  const std::vector<Interval>& intervals() const { return intervals_; }

  bool Contains(Chronon t) const;

  /// Total number of chronons covered.
  int64_t TotalDuration() const;

  /// Set union / intersection / difference. All O(n + m).
  IntervalSet Union(const IntervalSet& other) const;
  IntervalSet Intersection(const IntervalSet& other) const;
  IntervalSet Difference(const IntervalSet& other) const;

  bool operator==(const IntervalSet& other) const {
    return intervals_ == other.intervals_;
  }

 private:
  void Normalize();

  std::vector<Interval> intervals_;
};

/// Subintervals of `universe` not covered by any interval in `covered`.
/// This is the TE-outerjoin's "unmatched portion" computation.
IntervalSet SubtractAll(const Interval& universe,
                        const std::vector<Interval>& covered);

}  // namespace tempo

#endif  // TEMPO_TEMPORAL_INTERVAL_SET_H_
