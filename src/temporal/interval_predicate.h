#ifndef TEMPO_TEMPORAL_INTERVAL_PREDICATE_H_
#define TEMPO_TEMPORAL_INTERVAL_PREDICATE_H_

#include "temporal/interval.h"

namespace tempo {

/// Timestamp predicates of the valid-time join family the paper surveys in
/// Section 4.1 (time-join, intersect-join, overlap-join, contain-join
/// [SG89, LM92a]). Every one of these implies that the two intervals share
/// at least one chronon, which is exactly why the partition framework
/// evaluates them all: tuples satisfying the predicate necessarily meet in
/// some partition (Section 1: "the techniques presented are also
/// applicable to other valid-time joins").
enum class IntervalJoinPredicate {
  /// x[V] and y[V] share a chronon (intersect-join / overlap-join /
  /// time-join condition; the valid-time natural join's condition).
  kOverlap,
  /// x[V] contains y[V] (contain-join, left side containing).
  kContains,
  /// x[V] is contained in y[V].
  kContainedIn,
  /// x[V] = y[V].
  kEqual,
};

inline bool EvalIntervalPredicate(IntervalJoinPredicate pred,
                                  const Interval& x, const Interval& y) {
  switch (pred) {
    case IntervalJoinPredicate::kOverlap:
      return x.Overlaps(y);
    case IntervalJoinPredicate::kContains:
      return x.Contains(y);
    case IntervalJoinPredicate::kContainedIn:
      return y.Contains(x);
    case IntervalJoinPredicate::kEqual:
      return x == y;
  }
  return false;
}

inline const char* IntervalJoinPredicateName(IntervalJoinPredicate pred) {
  switch (pred) {
    case IntervalJoinPredicate::kOverlap:
      return "overlap";
    case IntervalJoinPredicate::kContains:
      return "contains";
    case IntervalJoinPredicate::kContainedIn:
      return "contained-in";
    case IntervalJoinPredicate::kEqual:
      return "equal";
  }
  return "unknown";
}

}  // namespace tempo

#endif  // TEMPO_TEMPORAL_INTERVAL_PREDICATE_H_
