#ifndef TEMPO_TEMPORAL_ALLEN_H_
#define TEMPO_TEMPORAL_ALLEN_H_

#include <string>

#include "temporal/interval.h"

namespace tempo {

/// Allen's thirteen basic interval relations [All83], adapted to the
/// discrete closed-chronon-interval model: "meets" holds when one interval
/// ends exactly one chronon before the other starts (there is no shared
/// chronon, but no gap either).
///
/// Exactly one relation holds between any two intervals.
enum class AllenRelation {
  kBefore,        // a ends, gap, b starts
  kMeets,         // a.end + 1 == b.start
  kOverlaps,      // a starts first, they share chronons, a ends inside b
  kFinishedBy,    // b is a suffix of a (same end, a starts earlier)
  kContains,      // b strictly inside a
  kStarts,        // a is a proper prefix of b
  kEquals,        // identical
  kStartedBy,     // b is a proper prefix of a
  kDuring,        // a strictly inside b
  kFinishes,      // a is a proper suffix of b
  kOverlappedBy,  // inverse of kOverlaps
  kMetBy,         // inverse of kMeets
  kAfter,         // inverse of kBefore
};

/// Classifies the relation of `a` to `b`.
AllenRelation ClassifyAllen(const Interval& a, const Interval& b);

/// Inverse relation: ClassifyAllen(b, a) == Invert(ClassifyAllen(a, b)).
AllenRelation InvertAllen(AllenRelation r);

/// True iff the relation implies the intervals share at least one chronon.
/// Every relation except before/meets/met-by/after does. Join predicates
/// built from such relations can be evaluated through the partition
/// framework (paper Section 1: "the techniques presented are also applicable
/// to other valid-time joins").
bool ImpliesOverlap(AllenRelation r);

/// Stable lowercase name: "before", "meets", ...
const char* AllenRelationName(AllenRelation r);

}  // namespace tempo

#endif  // TEMPO_TEMPORAL_ALLEN_H_
