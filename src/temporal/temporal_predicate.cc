#include "temporal/temporal_predicate.h"

namespace tempo {
namespace {

struct NamedMask {
  const char* name;
  TemporalPredicate pred;
};

// Named shapes checked before falling back to '|'-joined relation names.
// Order matters for Name(): the first match wins.
constexpr NamedMask kNamedMasks[] = {
    {"overlap", TemporalPredicate::Overlap()},
    {"contains-join", TemporalPredicate::ContainJoin()},
    {"contained-in-join", TemporalPredicate::ContainedJoin()},
};

}  // namespace

std::string TemporalPredicate::Name() const {
  for (const NamedMask& nm : kNamedMasks) {
    if (*this == nm.pred) return nm.name;
  }
  std::string out;
  for (int i = 0; i <= static_cast<int>(AllenRelation::kAfter); ++i) {
    const AllenRelation r = static_cast<AllenRelation>(i);
    if (!Test(r)) continue;
    if (!out.empty()) out += '|';
    out += AllenRelationName(r);
  }
  return out;
}

std::optional<TemporalPredicate> TemporalPredicate::Parse(
    std::string_view name) {
  for (const NamedMask& nm : kNamedMasks) {
    if (name == nm.name) return nm.pred;
  }
  uint16_t mask = 0;
  size_t pos = 0;
  while (pos <= name.size()) {
    const size_t bar = name.find('|', pos);
    const std::string_view part =
        name.substr(pos, bar == std::string_view::npos ? bar : bar - pos);
    bool found = false;
    for (int i = 0; i <= static_cast<int>(AllenRelation::kAfter); ++i) {
      const AllenRelation r = static_cast<AllenRelation>(i);
      if (part == AllenRelationName(r)) {
        mask |= Bit(r);
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
    if (bar == std::string_view::npos) break;
    pos = bar + 1;
  }
  return FromMask(mask);
}

}  // namespace tempo
