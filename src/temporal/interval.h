#ifndef TEMPO_TEMPORAL_INTERVAL_H_
#define TEMPO_TEMPORAL_INTERVAL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/assert.h"
#include "temporal/chronon.h"

namespace tempo {

/// A closed interval of chronons [start, end], start <= end, denoting a
/// tuple's time of validity (the paper's V = [Vs, Ve]).
///
/// Interval is a value type; all operations are pure. An *empty* result
/// (the paper's ⊥) is represented by std::optional<Interval> == nullopt in
/// Intersect(), never by an Interval with start > end — such a value is
/// invalid and rejected by the constructor in debug builds.
class Interval {
 public:
  /// Constructs [start, end]. Requires start <= end (checked in debug
  /// builds; use Interval::Make for a Status-checked construction path).
  constexpr Interval(Chronon start, Chronon end) : start_(start), end_(end) {
    TEMPO_DCHECK(start <= end);
  }

  /// Single-chronon interval [t, t].
  static constexpr Interval At(Chronon t) { return Interval(t, t); }

  /// The whole valid-time line.
  static constexpr Interval All() {
    return Interval(kChrononMin, kChrononMax);
  }

  /// Validating factory: returns nullopt iff start > end.
  static constexpr std::optional<Interval> Make(Chronon start, Chronon end) {
    if (start > end) return std::nullopt;
    return Interval(start, end);
  }

  constexpr Chronon start() const { return start_; }
  constexpr Chronon end() const { return end_; }

  /// Number of chronons covered. Saturates at kChrononMax on overflow
  /// (only possible for intervals spanning nearly the whole line).
  constexpr int64_t duration() const {
    uint64_t d = static_cast<uint64_t>(end_) - static_cast<uint64_t>(start_);
    if (d >= static_cast<uint64_t>(kChrononMax)) return kChrononMax;
    return static_cast<int64_t>(d) + 1;
  }

  constexpr bool Contains(Chronon t) const { return start_ <= t && t <= end_; }

  constexpr bool Contains(const Interval& other) const {
    return start_ <= other.start_ && other.end_ <= end_;
  }

  /// True iff the two intervals share at least one chronon. This is the
  /// temporal matching condition of the valid-time natural join.
  constexpr bool Overlaps(const Interval& other) const {
    return start_ <= other.end_ && other.start_ <= end_;
  }

  /// True iff this interval ends strictly before `other` starts.
  constexpr bool Before(const Interval& other) const {
    return end_ < other.start_;
  }

  /// True iff this interval ends exactly one chronon before `other` starts
  /// (Allen's "meets" adapted to the discrete closed-interval model).
  constexpr bool Meets(const Interval& other) const {
    return end_ != kChrononMax && end_ + 1 == other.start_;
  }

  /// The paper's overlap(U, V): maximal interval contained in both, or
  /// nullopt (⊥) if the intervals are disjoint. The procedural definition in
  /// the paper enumerates chronons; this closed form is equivalent:
  /// [max(starts), min(ends)] when non-empty.
  constexpr std::optional<Interval> Intersect(const Interval& other) const {
    Chronon s = start_ > other.start_ ? start_ : other.start_;
    Chronon e = end_ < other.end_ ? end_ : other.end_;
    if (s > e) return std::nullopt;
    return Interval(s, e);
  }

  /// Smallest interval containing both inputs (they need not overlap).
  constexpr Interval Span(const Interval& other) const {
    Chronon s = start_ < other.start_ ? start_ : other.start_;
    Chronon e = end_ > other.end_ ? end_ : other.end_;
    return Interval(s, e);
  }

  constexpr bool operator==(const Interval& other) const {
    return start_ == other.start_ && end_ == other.end_;
  }
  constexpr bool operator!=(const Interval& other) const {
    return !(*this == other);
  }

  /// "[start, end]"; the infinite ends print as "-inf" / "+inf".
  std::string ToString() const;

 private:
  Chronon start_;
  Chronon end_;
};

/// The paper's overlap(U, V) as a free function, matching the paper's name.
inline constexpr std::optional<Interval> Overlap(const Interval& u,
                                                 const Interval& v) {
  return u.Intersect(v);
}

/// Orders by start, then end. Sort-merge join sorts relations with this.
struct IntervalStartLess {
  constexpr bool operator()(const Interval& a, const Interval& b) const {
    if (a.start() != b.start()) return a.start() < b.start();
    return a.end() < b.end();
  }
};

}  // namespace tempo

#endif  // TEMPO_TEMPORAL_INTERVAL_H_
