#include "temporal/allen.h"

namespace tempo {

AllenRelation ClassifyAllen(const Interval& a, const Interval& b) {
  if (a.end() < b.start()) {
    return a.Meets(b) ? AllenRelation::kMeets : AllenRelation::kBefore;
  }
  if (b.end() < a.start()) {
    return b.Meets(a) ? AllenRelation::kMetBy : AllenRelation::kAfter;
  }
  // The intervals share at least one chronon.
  if (a.start() == b.start()) {
    if (a.end() == b.end()) return AllenRelation::kEquals;
    return a.end() < b.end() ? AllenRelation::kStarts
                             : AllenRelation::kStartedBy;
  }
  if (a.end() == b.end()) {
    return a.start() < b.start() ? AllenRelation::kFinishedBy
                                 : AllenRelation::kFinishes;
  }
  if (a.start() < b.start()) {
    return a.end() > b.end() ? AllenRelation::kContains
                             : AllenRelation::kOverlaps;
  }
  return a.end() < b.end() ? AllenRelation::kDuring
                           : AllenRelation::kOverlappedBy;
}

AllenRelation InvertAllen(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore:
      return AllenRelation::kAfter;
    case AllenRelation::kMeets:
      return AllenRelation::kMetBy;
    case AllenRelation::kOverlaps:
      return AllenRelation::kOverlappedBy;
    case AllenRelation::kFinishedBy:
      return AllenRelation::kFinishes;
    case AllenRelation::kContains:
      return AllenRelation::kDuring;
    case AllenRelation::kStarts:
      return AllenRelation::kStartedBy;
    case AllenRelation::kEquals:
      return AllenRelation::kEquals;
    case AllenRelation::kStartedBy:
      return AllenRelation::kStarts;
    case AllenRelation::kDuring:
      return AllenRelation::kContains;
    case AllenRelation::kFinishes:
      return AllenRelation::kFinishedBy;
    case AllenRelation::kOverlappedBy:
      return AllenRelation::kOverlaps;
    case AllenRelation::kMetBy:
      return AllenRelation::kMeets;
    case AllenRelation::kAfter:
      return AllenRelation::kBefore;
  }
  return AllenRelation::kEquals;
}

bool ImpliesOverlap(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore:
    case AllenRelation::kMeets:
    case AllenRelation::kMetBy:
    case AllenRelation::kAfter:
      return false;
    default:
      return true;
  }
}

const char* AllenRelationName(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore:
      return "before";
    case AllenRelation::kMeets:
      return "meets";
    case AllenRelation::kOverlaps:
      return "overlaps";
    case AllenRelation::kFinishedBy:
      return "finished-by";
    case AllenRelation::kContains:
      return "contains";
    case AllenRelation::kStarts:
      return "starts";
    case AllenRelation::kEquals:
      return "equals";
    case AllenRelation::kStartedBy:
      return "started-by";
    case AllenRelation::kDuring:
      return "during";
    case AllenRelation::kFinishes:
      return "finishes";
    case AllenRelation::kOverlappedBy:
      return "overlapped-by";
    case AllenRelation::kMetBy:
      return "met-by";
    case AllenRelation::kAfter:
      return "after";
  }
  return "unknown";
}

}  // namespace tempo
