#include "temporal/interval_set.h"

#include <algorithm>

namespace tempo {

namespace {

// True when a and b overlap or are adjacent (no gap between them), i.e.
// their union is a single interval.
bool Mergeable(const Interval& a, const Interval& b) {
  return a.Overlaps(b) || a.Meets(b) || b.Meets(a);
}

}  // namespace

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  Normalize();
}

void IntervalSet::Normalize() {
  if (intervals_.empty()) return;
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) {
              return IntervalStartLess()(a, b);
            });
  std::vector<Interval> merged;
  merged.reserve(intervals_.size());
  merged.push_back(intervals_.front());
  for (size_t i = 1; i < intervals_.size(); ++i) {
    Interval& last = merged.back();
    const Interval& cur = intervals_[i];
    if (Mergeable(last, cur)) {
      last = last.Span(cur);
    } else {
      merged.push_back(cur);
    }
  }
  intervals_ = std::move(merged);
}

void IntervalSet::Add(const Interval& iv) {
  intervals_.push_back(iv);
  Normalize();
}

bool IntervalSet::Contains(Chronon t) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Chronon v, const Interval& iv) { return v < iv.start(); });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Contains(t);
}

int64_t IntervalSet::TotalDuration() const {
  int64_t total = 0;
  for (const auto& iv : intervals_) total += iv.duration();
  return total;
}

IntervalSet IntervalSet::Union(const IntervalSet& other) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  return IntervalSet(std::move(all));
}

IntervalSet IntervalSet::Intersection(const IntervalSet& other) const {
  std::vector<Interval> out;
  size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    if (auto common = a.Intersect(b)) out.push_back(*common);
    // Advance whichever interval ends first.
    if (a.end() < b.end()) {
      ++i;
    } else {
      ++j;
    }
  }
  IntervalSet result;
  result.intervals_ = std::move(out);  // Already disjoint, sorted, non-adjacent.
  return result;
}

IntervalSet IntervalSet::Difference(const IntervalSet& other) const {
  std::vector<Interval> out;
  size_t j = 0;
  for (const Interval& a : intervals_) {
    Chronon lo = a.start();
    // Skip subtrahend intervals entirely before this one.
    while (j < other.intervals_.size() && other.intervals_[j].end() < lo) ++j;
    size_t k = j;
    bool exhausted = false;
    while (!exhausted && k < other.intervals_.size() &&
           other.intervals_[k].start() <= a.end()) {
      const Interval& b = other.intervals_[k];
      if (b.start() > lo) {
        out.push_back(Interval(lo, b.start() - 1));
      }
      if (b.end() >= a.end()) {
        exhausted = true;  // Remainder of `a` is covered.
      } else {
        lo = b.end() + 1;
        ++k;
      }
    }
    if (!exhausted && lo <= a.end()) {
      out.push_back(Interval(lo, a.end()));
    }
  }
  IntervalSet result;
  result.intervals_ = std::move(out);
  return result;
}

IntervalSet SubtractAll(const Interval& universe,
                        const std::vector<Interval>& covered) {
  IntervalSet u(std::vector<Interval>{universe});
  return u.Difference(IntervalSet(covered));
}

}  // namespace tempo
