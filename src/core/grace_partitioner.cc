#include "core/grace_partitioner.h"

namespace tempo {

void PartitionedRelation::Drop() {
  for (auto& p : parts) {
    if (p != nullptr) p->disk()->DeleteFile(p->file_id()).ok();
  }
  parts.clear();
}

StatusOr<PartitionedRelation> GracePartition(StoredRelation* input,
                                             const PartitionSpec& spec,
                                             uint32_t buffer_pages,
                                             PlacementPolicy policy,
                                             const std::string& name_prefix) {
  const size_t n = spec.num_partitions();
  if (buffer_pages < n + 1) {
    return Status::InvalidArgument(
        "partitioning " + std::to_string(n) +
        " ways needs at least " + std::to_string(n + 1) + " buffer pages");
  }
  if (input->HasUnflushedAppends()) {
    return Status::FailedPrecondition(
        "input must be flushed before partitioning");
  }

  PartitionedRelation result;
  result.parts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    result.parts.push_back(std::make_unique<StoredRelation>(
        input->disk(), input->schema(),
        name_prefix + ".part" + std::to_string(i)));
  }

  // One input page at a time; each StoredRelation buffers one output page
  // per partition and flushes it as it fills — the paper's "when the pages
  // for a given partition become filled they are flushed to disk".
  const uint32_t pages = input->num_pages();
  std::vector<Tuple> decoded;
  for (uint32_t p = 0; p < pages; ++p) {
    Page page;
    TEMPO_RETURN_IF_ERROR(input->ReadPage(p, &page));
    decoded.clear();
    TEMPO_RETURN_IF_ERROR(
        StoredRelation::DecodePage(input->schema(), page, &decoded));
    for (const Tuple& t : decoded) {
      if (policy == PlacementPolicy::kLastOverlap) {
        size_t idx = spec.LastOverlapping(t.interval());
        TEMPO_RETURN_IF_ERROR(result.parts[idx]->Append(t));
        ++result.tuples_written;
      } else {
        size_t first = spec.FirstOverlapping(t.interval());
        size_t last = spec.LastOverlapping(t.interval());
        for (size_t idx = first; idx <= last; ++idx) {
          TEMPO_RETURN_IF_ERROR(result.parts[idx]->Append(t));
          ++result.tuples_written;
        }
      }
    }
  }
  for (auto& part : result.parts) {
    TEMPO_RETURN_IF_ERROR(part->Flush());
  }
  return result;
}

}  // namespace tempo
