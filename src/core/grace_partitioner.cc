#include "core/grace_partitioner.h"

#include <algorithm>

#include "relation/tuple_view.h"

namespace tempo {

namespace {

/// One morsel of routed input: raw record bytes in page order (views into
/// the coordinator's wave pages, which stay pinned until the wave's appends
/// are replayed) plus the partition range [first, last] each record lands
/// in. Computed on workers; consumed (appended) by the coordinator in
/// morsel order. No Tuple is ever materialized — records are routed by
/// interval, which a TupleView reads with two loads.
struct RoutedMorsel {
  std::vector<std::string_view> records;
  std::vector<std::pair<uint32_t, uint32_t>> dests;
};

}  // namespace

void PartitionedRelation::Drop() {
  for (auto& p : parts) {
    if (p != nullptr) p->disk()->DeleteFile(p->file_id()).ok();
  }
  parts.clear();
}

StatusOr<PartitionedRelation> GracePartition(StoredRelation* input,
                                             const PartitionSpec& spec,
                                             uint32_t buffer_pages,
                                             PlacementPolicy policy,
                                             const std::string& name_prefix,
                                             Scheduler* scheduler,
                                             MorselStats* morsel_stats) {
  const ParallelOptions parallel = SchedulerParallel(scheduler);
  ThreadPool* pool = SchedulerPool(scheduler);
  const size_t n = spec.num_partitions();
  if (buffer_pages < n + 1) {
    return Status::InvalidArgument(
        "partitioning " + std::to_string(n) +
        " ways needs at least " + std::to_string(n + 1) + " buffer pages");
  }
  if (input->HasUnflushedAppends()) {
    return Status::FailedPrecondition(
        "input must be flushed before partitioning");
  }

  PartitionedRelation result;
  result.parts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    result.parts.push_back(std::make_unique<StoredRelation>(
        input->disk(), input->schema(),
        name_prefix + ".part" + std::to_string(i)));
  }

  const RecordLayout& layout = input->schema().layout();
  auto route_of = [&](const TupleView& v) -> std::pair<uint32_t, uint32_t> {
    Interval iv = v.interval();
    uint32_t last = static_cast<uint32_t>(spec.LastOverlapping(iv));
    uint32_t first = policy == PlacementPolicy::kLastOverlap
                         ? last
                         : static_cast<uint32_t>(spec.FirstOverlapping(iv));
    return {first, last};
  };
  auto append_routed = [&](std::string_view record, uint32_t first,
                           uint32_t last) -> Status {
    for (uint32_t idx = first; idx <= last; ++idx) {
      TEMPO_RETURN_IF_ERROR(result.parts[idx]->AppendRecord(record));
      ++result.tuples_written;
    }
    ++result.records_routed_zero_copy;
    return Status::OK();
  };

  const uint32_t pages = input->num_pages();

  if (parallel.enabled() && pool != nullptr) {
    // Morsel-parallel: the coordinator reads a wave of pages in scan order,
    // workers decode each morsel and compute destinations, then the
    // coordinator replays the appends in page order.
    const size_t morsel_pages = std::max<uint32_t>(1, parallel.morsel_pages);
    const size_t wave_pages =
        morsel_pages * std::max<uint32_t>(1, 4 * parallel.num_threads);
    std::vector<Page> wave;
    std::vector<RoutedMorsel> routed;
    for (uint32_t wave_start = 0; wave_start < pages;
         wave_start += static_cast<uint32_t>(wave_pages)) {
      const uint32_t wave_end = std::min<uint32_t>(
          pages, wave_start + static_cast<uint32_t>(wave_pages));
      wave.resize(wave_end - wave_start);
      for (uint32_t p = wave_start; p < wave_end; ++p) {
        TEMPO_RETURN_IF_ERROR(input->ReadPage(p, &wave[p - wave_start]));
      }
      const size_t num_morsels =
          (wave.size() + morsel_pages - 1) / morsel_pages;
      routed.assign(num_morsels, RoutedMorsel{});
      TEMPO_RETURN_IF_ERROR(ParallelFor(
          pool, wave.size(), morsel_pages,
          [&](size_t m, size_t begin, size_t end) -> Status {
            RoutedMorsel& out = routed[m];
            for (size_t i = begin; i < end; ++i) {
              const Page& page = wave[i];
              for (uint16_t slot = 0; slot < page.num_records(); ++slot) {
                std::string_view rec = page.GetRecord(slot);
                TEMPO_ASSIGN_OR_RETURN(
                    TupleView v,
                    TupleView::Make(layout, rec.data(), rec.size()));
                out.records.push_back(rec);
                out.dests.push_back(route_of(v));
              }
            }
            return Status::OK();
          },
          morsel_stats));
      for (const RoutedMorsel& m : routed) {
        for (size_t i = 0; i < m.records.size(); ++i) {
          TEMPO_RETURN_IF_ERROR(
              append_routed(m.records[i], m.dests[i].first, m.dests[i].second));
        }
      }
    }
  } else {
    // One input page at a time; each StoredRelation buffers one output page
    // per partition and flushes it as it fills — the paper's "when the
    // pages for a given partition become filled they are flushed to disk".
    // Records are routed straight off the input page: the view reads the
    // interval in place and the raw bytes are re-appended verbatim.
    for (uint32_t p = 0; p < pages; ++p) {
      Page page;
      TEMPO_RETURN_IF_ERROR(input->ReadPage(p, &page));
      for (uint16_t slot = 0; slot < page.num_records(); ++slot) {
        std::string_view rec = page.GetRecord(slot);
        TEMPO_ASSIGN_OR_RETURN(TupleView v,
                               TupleView::Make(layout, rec.data(), rec.size()));
        auto [first, last] = route_of(v);
        TEMPO_RETURN_IF_ERROR(append_routed(rec, first, last));
      }
    }
  }
  for (auto& part : result.parts) {
    TEMPO_RETURN_IF_ERROR(part->Flush());
  }
  return result;
}

}  // namespace tempo
