#include "core/partition_coalesce.h"

#include <map>

#include "relation/tuple_view.h"

#include "core/determine_part_intervals.h"
#include "core/grace_partitioner.h"
#include "temporal/interval_set.h"

namespace tempo {

namespace {

/// Value-equivalence key: the serialized explicit attributes. Built from
/// the record view through the same Value::ToString per attribute, so the
/// key bytes — and hence the std::map iteration (output) order — are
/// identical to keying the decoded tuple.
std::string ValueKey(const TupleView& v) {
  std::string key;
  for (size_t i = 0; i < v.num_values(); ++i) {
    key += v.ValueAt(i).ToString();
    key.push_back('\x1f');
  }
  return key;
}

struct Group {
  std::vector<Value> values;
  std::vector<Interval> intervals;
};

/// Owning values of one record, materialized only when its group is first
/// seen.
std::vector<Value> MaterializeValues(const TupleView& v) {
  std::vector<Value> out;
  out.reserve(v.num_values());
  for (size_t i = 0; i < v.num_values(); ++i) out.push_back(v.ValueAt(i));
  return out;
}

}  // namespace

StatusOr<JoinRunStats> PartitionCoalesce(StoredRelation* in,
                                         StoredRelation* out,
                                         const PartitionJoinOptions& options,
                                         ExecContext* ctx) {
  if (in == nullptr || out == nullptr) {
    return Status::InvalidArgument("inputs must be non-null");
  }
  if (!(out->schema() == in->schema())) {
    return Status::InvalidArgument("output schema must match the input's");
  }
  if (in->HasUnflushedAppends()) {
    return Status::FailedPrecondition("input must be flushed");
  }
  Disk* disk = in->disk();
  IoAccountant& acct = disk->accountant();
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&acct);
  }
  IoStats before = acct.stats();
  TraceSpan coalesce_span = SpanIf(ctx, Phase::kCoalesce);

  Random rng(options.seed);
  PartitionPlanOptions plan_options;
  plan_options.buffer_pages = options.buffer_pages;
  plan_options.cost_model = options.cost_model;
  plan_options.kolmogorov_critical = options.kolmogorov_critical;
  plan_options.in_scan_sampling = options.in_scan_sampling;
  plan_options.forced_num_partitions = options.forced_num_partitions;
  StatusOr<PartitionPlan> plan_or = Status::Internal("unset");
  {
    TraceSpan plan_span = SpanIf(ctx, Phase::kChooseIntervals);
    plan_or = DeterminePartIntervals(in, plan_options, &rng, ctx);
  }
  TEMPO_RETURN_IF_ERROR(plan_or.status());
  PartitionPlan plan = std::move(plan_or).value();

  JoinRunStats stats;
  uint64_t carried_runs = 0;
  uint64_t views_folded = 0;
  const RecordLayout& layout = in->schema().layout();

  // Folds every record on `page` into `groups`, viewing each in place;
  // owning values materialize only when a group is first seen.
  auto fold_page = [&](const Page& page,
                       std::map<std::string, Group>& groups) -> Status {
    for (uint16_t slot = 0; slot < page.num_records(); ++slot) {
      std::string_view rec = page.GetRecord(slot);
      TEMPO_ASSIGN_OR_RETURN(TupleView v,
                             TupleView::Make(layout, rec.data(), rec.size()));
      ++views_folded;
      Group& g = groups[ValueKey(v)];
      if (g.values.empty()) g.values = MaterializeValues(v);
      g.intervals.push_back(v.interval());
    }
    return Status::OK();
  };

  // Helper shared by the single- and multi-partition paths: merge one
  // bucket of tuples and split the merged runs into emitted / carried.
  auto process_group = [&](Group& group, const Interval& p_i, bool last_step,
                           std::map<std::string, Group>* carry,
                           const std::string& key) -> Status {
    IntervalSet merged(std::move(group.intervals));
    std::vector<Interval> kept;
    for (const Interval& run : merged.intervals()) {
      if (last_step || run.start() > p_i.start()) {
        TEMPO_RETURN_IF_ERROR(out->Append(Tuple(group.values, run)));
      } else {
        kept.push_back(run);
        ++carried_runs;
      }
    }
    if (!kept.empty()) {
      Group g;
      g.values = std::move(group.values);
      g.intervals = std::move(kept);
      (*carry)[key] = std::move(g);
    }
    return Status::OK();
  };

  if (plan.num_partitions <= 1) {
    // Fits in memory: one pass over the input pages, folding records in
    // place (same page-read sequence as the scanner it replaces).
    std::map<std::string, Group> groups;
    for (uint32_t p = 0; p < in->num_pages(); ++p) {
      Page page;
      TEMPO_RETURN_IF_ERROR(in->ReadPage(p, &page));
      TEMPO_RETURN_IF_ERROR(fold_page(page, groups));
    }
    for (auto& [key, group] : groups) {
      TEMPO_RETURN_IF_ERROR(process_group(group, Interval::All(),
                                          /*last_step=*/true, nullptr, key));
    }
  } else {
    TEMPO_ASSIGN_OR_RETURN(
        PartitionedRelation parts,
        GracePartition(in, plan.spec, options.buffer_pages,
                       PlacementPolicy::kLastOverlap, in->name() + ".co"));
    views_folded += parts.records_routed_zero_copy;

    std::map<std::string, Group> carry;
    const size_t n = plan.spec.num_partitions();
    for (size_t ii = n; ii-- > 0;) {
      const Interval& p_i = plan.spec.partition(ii);
      const bool last_step = ii == 0;
      // Fold this partition's tuples into the carried groups.
      std::map<std::string, Group> groups = std::move(carry);
      carry.clear();
      StoredRelation* part = parts.parts[ii].get();
      for (uint32_t p = 0; p < part->num_pages(); ++p) {
        Page page;
        TEMPO_RETURN_IF_ERROR(part->ReadPage(p, &page));
        TEMPO_RETURN_IF_ERROR(fold_page(page, groups));
      }
      for (auto& [key, group] : groups) {
        TEMPO_RETURN_IF_ERROR(
            process_group(group, p_i, last_step, &carry, key));
      }
    }
    parts.Drop();
  }
  TEMPO_RETURN_IF_ERROR(out->Flush());

  stats.io = acct.stats() - before;
  stats.output_tuples = out->num_tuples();
  stats.Set(Metric::kPartitions, static_cast<double>(plan.num_partitions));
  stats.Set(Metric::kCarriedRuns, static_cast<double>(carried_runs));
  stats.Set(Metric::kDecodeMaterializationsAvoided,
            static_cast<double>(views_folded));
  ExportMetrics(stats, ctx);
  return stats;
}

}  // namespace tempo
