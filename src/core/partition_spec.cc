#include "core/partition_spec.h"

#include <algorithm>

namespace tempo {

PartitionSpec::PartitionSpec() : parts_{Interval::All()} {}

StatusOr<PartitionSpec> PartitionSpec::FromBoundaries(
    const std::vector<Chronon>& boundaries) {
  for (size_t i = 1; i < boundaries.size(); ++i) {
    if (boundaries[i] <= boundaries[i - 1]) {
      return Status::InvalidArgument(
          "partition boundaries must be strictly increasing");
    }
  }
  if (!boundaries.empty() && boundaries.back() == kChrononMax) {
    return Status::InvalidArgument(
        "boundary at +inf would create an empty partition");
  }
  std::vector<Interval> parts;
  parts.reserve(boundaries.size() + 1);
  Chronon lo = kChrononMin;
  for (Chronon b : boundaries) {
    parts.push_back(Interval(lo, b));
    lo = b + 1;
  }
  parts.push_back(Interval(lo, kChrononMax));
  return PartitionSpec(std::move(parts));
}

StatusOr<PartitionSpec> PartitionSpec::FromIntervals(
    std::vector<Interval> parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("partitioning must be non-empty");
  }
  if (parts.front().start() != kChrononMin ||
      parts.back().end() != kChrononMax) {
    return Status::InvalidArgument(
        "partitioning must cover the whole valid-time line");
  }
  for (size_t i = 1; i < parts.size(); ++i) {
    if (parts[i - 1].end() == kChrononMax ||
        parts[i].start() != parts[i - 1].end() + 1) {
      return Status::InvalidArgument(
          "partitions must be adjacent and non-overlapping");
    }
  }
  return PartitionSpec(std::move(parts));
}

size_t PartitionSpec::IndexOf(Chronon t) const {
  // First partition whose end >= t.
  auto it = std::lower_bound(
      parts_.begin(), parts_.end(), t,
      [](const Interval& p, Chronon v) { return p.end() < v; });
  TEMPO_DCHECK(it != parts_.end());
  TEMPO_DCHECK(it->Contains(t));
  return static_cast<size_t>(it - parts_.begin());
}

std::string PartitionSpec::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i != 0) out += ", ";
    out += parts_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace tempo
