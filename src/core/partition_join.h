#ifndef TEMPO_CORE_PARTITION_JOIN_H_
#define TEMPO_CORE_PARTITION_JOIN_H_

#include "core/determine_part_intervals.h"
#include "core/grace_partitioner.h"
#include "join/join_common.h"
#include "temporal/temporal_predicate.h"

namespace tempo {

/// Options for the partition-based valid-time natural join. The shared
/// knobs (buffer_pages — Figure 3's buffSize pages of outer partition
/// area plus one page each for the inner buffer, tuple cache and result —
/// cost_model, seed) live in the ExecOptions base; callers
/// holding a VtJoinOptions transfer them with one slice-assignment:
///   PartitionJoinOptions part;
///   static_cast<ExecOptions&>(part) = options;
struct PartitionJoinOptions : ExecOptions {
  /// See PartitionPlanOptions.
  double kolmogorov_critical = KolmogorovCritical::k99;
  bool in_scan_sampling = true;
  uint32_t forced_num_partitions = 0;

  /// kLastOverlap is the paper's algorithm; kReplicate is the
  /// Leung-Muntz ablation baseline.
  PlacementPolicy placement = PlacementPolicy::kLastOverlap;

  // The timestamp predicate lives in the ExecOptions base (`predicate`, a
  // TemporalPredicate). The partition machinery serves any predicate whose
  // relations all imply a shared chronon — matching pairs necessarily meet
  // in the partition holding their overlap's end (Section 4.1) — and
  // rejects the rest (RequireSharedChrononPredicate).

  /// In-memory pages reserved for the tuple cache (Figure 3 reserves one).
  /// Raising this trades outer-partition area for cache space, the
  /// Section 5 future-work knob (see bench/ablation_cache_reserve).
  uint32_t tuple_cache_memory_pages = 1;
};

/// Mutable state of one sequenced outer/anti pass, shared between
/// PartitionVtJoin and JoinPartitions (null = plain inner join). The pass
/// accumulates, per outer-area tuple, the union of its overlap intervals
/// with key-matching partners (an IntervalSet); when a tuple retires from
/// the area its uncovered subintervals are emitted through `writer`. The
/// dedup rule already guarantees each (x, y) overlap is observed in
/// exactly one partition, and IntervalSet union is order-independent, so
/// coverage — and hence the emitted unmatched rows — is deterministic at
/// any thread count.
struct JoinVariant {
  JoinKind kind = JoinKind::kInner;
  /// When false, matched pairs feed coverage only and are not emitted
  /// (the anti join, and the swapped second pass of the full outer).
  bool emit_matches = true;
  /// Orientation of unmatched emission: true when the build side of this
  /// pass is the original r.
  bool preserved_is_r = true;
  /// Layout of the ORIGINAL (r, s) pair, used to assemble NULL-padded
  /// unmatched rows. The swapped full-outer pass runs the probe machinery
  /// under the (s, r) layout but emits unmatched rows under this one.
  const NaturalJoinLayout* emit_layout = nullptr;
  /// Canonical writer shared by match and unmatched emission (and, for
  /// the full outer, by both passes). The caller finishes it.
  ResultWriter* writer = nullptr;

  /// Preserved-side tuples that retired with a non-empty uncovered set.
  uint64_t unmatched_tuples = 0;
  /// Total uncovered subinterval rows emitted.
  uint64_t uncovered_subintervals = 0;
};

/// Joins two already-partitioned relations (algorithm joinPartitions,
/// Appendix A.1), processing partitions from p_n down to p_1:
///
///   for i = n .. 1:
///     purge outer-area tuples not overlapping p_i; read partition r_i
///     join the outer area with the in-memory cache page, then with each
///       spilled tuple-cache page, then with each page of s_i;
///     inner tuples overlapping p_{i-1} are retained into the next cache
///       generation (spilling page-by-page);
///     outer tuples overlapping p_{i-1} stay in the outer area.
///
/// Every result pair is emitted exactly once: a pair is produced only in
/// the partition containing the *end* of its overlap interval — both
/// tuples are guaranteed present there, and in no earlier-processed
/// partition is the rule satisfied. (The paper does not spell out its
/// de-duplication rule; DESIGN.md discusses this choice.)
///
/// If an outer partition exceeds the partition area (a sampling-error
/// overflow — "the correctness of the join algorithm is not affected —
/// only performance will suffer", Section 3.4), the partition is processed
/// in area-sized chunks, re-reading s_i and the spilled cache for each
/// extra chunk: that re-reading is precisely the thrashing cost.
///
/// Metrics in JoinRunStats: kCachePagesSpilled, kCacheTuples,
/// kOverflowChunks; with a multi-threaded scheduler additionally
/// kMorselsDispatched and kParallelEfficiency.
///
/// Parallelism comes from the Scheduler handle on `ctx` (serial when the
/// context or its handle is null): probe work inside each partition fans
/// out over the scheduler's shared workers — the coordinator still
/// performs every page read in the paper's order; workers decode and probe
/// batches, and their buffered results are appended in batch order, so the
/// output and charged I/O match the serial run exactly. The partition loop
/// itself stays sequential — generation i's tuple cache feeds generation
/// i-1.
StatusOr<JoinRunStats> JoinPartitions(const NaturalJoinLayout& layout,
                                      const PartitionSpec& spec,
                                      PartitionedRelation* pr,
                                      PartitionedRelation* ps,
                                      StoredRelation* out,
                                      uint32_t buffer_pages,
                                      PlacementPolicy placement,
                                      TemporalPredicate predicate =
                                          TemporalPredicate::Overlap(),
                                      uint32_t cache_memory_pages = 1,
                                      ExecContext* ctx = nullptr,
                                      MorselStats* morsel_stats = nullptr,
                                      JoinVariant* variant = nullptr);

/// The paper's contribution, end to end (Figure 2):
///
///   partInterals  <- determinePartIntervals(buffSize, |r|, |s|)
///   r_parts       <- doPartitioning(r, partIntervals)
///   s_parts       <- doPartitioning(s, partIntervals)
///   return joinPartitions(r_parts, s_parts, partIntervals)
///
/// A relation that fits in memory short-circuits to a single in-memory
/// pass (no partitioning I/O at all). All sampling, partitioning and join
/// I/O is charged to the disk's accountant and reported in the returned
/// stats.
///
/// Metrics (in addition to JoinPartitions'): kPartitions, kPartSizePages,
/// kSamples, kSampledByScan, kEstSampleCost, kEstJoinCost,
/// kPartitionPagesWritten, kTuplesWritten.
///
/// With a non-null `ctx`, execution is traced as a span tree
/// (chooseIntervals with nested sampling, partitioning r, partitioning s,
/// joinPartitions) and the typed metrics are exported into the context;
/// with a null `ctx`, charged I/O and output bytes are bit-identical to a
/// run without observability.
StatusOr<JoinRunStats> PartitionVtJoin(StoredRelation* r, StoredRelation* s,
                                       StoredRelation* out,
                                       const PartitionJoinOptions& options,
                                       ExecContext* ctx = nullptr);

}  // namespace tempo

#endif  // TEMPO_CORE_PARTITION_JOIN_H_
