#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/radix_join.h"
#include "join/nested_loop_join.h"
#include "join/sort_merge_join.h"
#include "join/sweep_join.h"

namespace tempo {

const char* JoinAlgorithmName(JoinAlgorithm a) {
  switch (a) {
    case JoinAlgorithm::kNestedLoop:
      return "nested-loops";
    case JoinAlgorithm::kSortMerge:
      return "sort-merge";
    case JoinAlgorithm::kPartition:
      return "partition";
    case JoinAlgorithm::kInMemoryRadix:
      return "in-memory-radix";
    case JoinAlgorithm::kSweep:
      return "sweep";
  }
  return "?";
}

double EstimateNestedLoopCost(uint32_t pages_r, uint32_t pages_s,
                              uint32_t buffer_pages, const CostModel& model) {
  return NestedLoopAnalyticCost(pages_r, pages_s, buffer_pages, model);
}

namespace {

/// Sort cost for one relation: whole-relation read+write when it fits,
/// else run formation plus ceil(log_fanin(runs)) merge passes, each a
/// read+write of every page. Random seeks: one per run/refill chunk —
/// approximated as one random per buffer-full on each pass.
double EstimateSortCost(uint32_t pages, uint32_t buffer_pages,
                        const CostModel& model) {
  if (pages == 0) return 0.0;
  auto pass_cost = [&](double chunks) {
    // One pass = read all pages + write all pages, with `chunks` seeks on
    // each side.
    return 2.0 * (chunks * model.random_weight +
                  (static_cast<double>(pages) - chunks) *
                      model.sequential_weight);
  };
  double chunks = std::ceil(static_cast<double>(pages) / buffer_pages);
  if (pages <= buffer_pages) {
    return pass_cost(1.0);  // read, sort in memory, write
  }
  double cost = pass_cost(chunks);  // run formation
  double runs = chunks;
  double fanin = std::max<double>(2.0, buffer_pages - 1);
  while (runs > 1.0) {
    cost += pass_cost(std::max(1.0, runs));
    runs = std::ceil(runs / fanin);
    if (runs <= 1.0) break;
  }
  return cost;
}

}  // namespace

double EstimateSortMergeCost(uint32_t pages_r, uint32_t pages_s,
                             uint32_t buffer_pages, const CostModel& model) {
  double sort = EstimateSortCost(pages_r, buffer_pages, model) +
                EstimateSortCost(pages_s, buffer_pages, model);
  double coscan = model.Cost(2, pages_r + pages_s >= 2
                                    ? pages_r + pages_s - 2
                                    : 0);
  return sort + coscan;
}

double EstimatePartitionJoinCost(uint32_t pages_r, uint32_t pages_s,
                                 uint32_t buffer_pages,
                                 const CostModel& model) {
  uint32_t area = buffer_pages > 3 ? buffer_pages - 3 : 1;
  if (pages_r <= area) {
    // In-memory path: one pass over each input.
    return model.Cost(2, pages_r + pages_s >= 2 ? pages_r + pages_s - 2 : 0);
  }
  double num_partitions =
      std::ceil(static_cast<double>(pages_r) / area);
  // Sampling (bounded by one scan), Grace write+read of both inputs
  // (one seek per partition per phase per relation), inner read.
  double sampling = model.Cost(1, pages_r > 0 ? pages_r - 1 : 0);
  double partition_io =
      2.0 * (2.0 * num_partitions * model.random_weight +
             static_cast<double>(pages_r + pages_s) *
                 model.sequential_weight);
  return sampling + partition_io;
}

double EstimateRadixJoinCost(uint32_t pages_r, uint32_t pages_s,
                             const CostModel& model) {
  return model.Cost(2, pages_r + pages_s >= 2 ? pages_r + pages_s - 2 : 0);
}

double EstimateSweepJoinCost(uint32_t pages_r, uint32_t pages_s,
                             uint32_t buffer_pages, const CostModel& model) {
  // Sort both + one co-scan — the sweep pays exactly sort-merge's I/O;
  // its advantage (gapless active maps, no back-up re-reads) is CPU/cache
  // work the I/O model does not price.
  return EstimateSortMergeCost(pages_r, pages_s, buffer_pages, model);
}

JoinPlan PlanVtJoin(StoredRelation* r, StoredRelation* s,
                    const VtJoinOptions& options) {
  const uint32_t pr = r->num_pages();
  const uint32_t ps = s->num_pages();
  const uint32_t b = options.buffer_pages;
  const CostModel& m = options.cost_model;
  const TemporalPredicate& pred = options.predicate;
  // Overlap-driven executors only see pairs that meet in a partition /
  // active window, so they can serve exactly the predicates whose
  // relations all share a chronon. The sweep additionally serves the
  // adjacency relations (meets/met-by) and is the only executor that does.
  const bool overlap_family = pred.ImpliesSharedChronon();
  const bool sweep_eligible = !pred.HasDisjointNonAdjacent();
  const std::string pred_rationale =
      "ineligible: predicate '" + pred.Name() +
      "' needs the adjacency-aware sweep executor";

  JoinPlan plan;
  // The radix candidate goes first: at equal estimated I/O (it ties
  // nested-loops and the in-memory partition path when everything fits),
  // stable_sort keeps it ahead — flat columnar probing beats the
  // tuple-at-a-time paths on CPU, which the I/O cost model cannot see.
  const uint64_t budget = ResolveRadixBudgetBytes(options);
  const uint64_t footprint = EstimateRadixFootprintBytes(pr, ps);
  if (!overlap_family) {
    plan.candidates.push_back({JoinAlgorithm::kInMemoryRadix,
                               std::numeric_limits<double>::infinity(),
                               pred_rationale});
  } else if (footprint <= budget) {
    plan.candidates.push_back(
        {JoinAlgorithm::kInMemoryRadix, EstimateRadixJoinCost(pr, ps, m),
         "columnar in-memory radix; est footprint " +
             std::to_string(footprint) + " B <= budget " +
             std::to_string(budget) + " B"});
  } else {
    plan.candidates.push_back(
        {JoinAlgorithm::kInMemoryRadix,
         std::numeric_limits<double>::infinity(),
         "ineligible: est footprint " + std::to_string(footprint) +
             " B exceeds budget " + std::to_string(budget) + " B"});
  }
  if (overlap_family) {
    plan.candidates.push_back(
        {JoinAlgorithm::kNestedLoop, EstimateNestedLoopCost(pr, ps, b, m),
         "blocks(r) x scan(s); exact closed form"});
    plan.candidates.push_back(
        {JoinAlgorithm::kSortMerge, EstimateSortMergeCost(pr, ps, b, m),
         "sort both + co-scan; back-up not modelled"});
    plan.candidates.push_back(
        {JoinAlgorithm::kPartition, EstimatePartitionJoinCost(pr, ps, b, m),
         "sample + Grace partition both + join scan; cache not modelled"});
  } else {
    plan.candidates.push_back({JoinAlgorithm::kNestedLoop,
                               std::numeric_limits<double>::infinity(),
                               pred_rationale});
    plan.candidates.push_back({JoinAlgorithm::kSortMerge,
                               std::numeric_limits<double>::infinity(),
                               pred_rationale});
    plan.candidates.push_back({JoinAlgorithm::kPartition,
                               std::numeric_limits<double>::infinity(),
                               pred_rationale});
  }
  // The sweep is listed after sort-merge, whose estimated I/O it ties:
  // under the default predicate stable_sort preserves every established
  // pick, while a meets/during/starts/... predicate leaves the sweep as
  // the only finite candidate.
  plan.candidates.push_back(
      {JoinAlgorithm::kSweep,
       sweep_eligible ? EstimateSweepJoinCost(pr, ps, b, m)
                      : std::numeric_limits<double>::infinity(),
       sweep_eligible
           ? "sort both + one sweep; active maps are in-memory"
           : "ineligible: predicate '" + pred.Name() +
                 "' contains before/after (reference oracle only)"});
  std::stable_sort(plan.candidates.begin(), plan.candidates.end(),
                   [](const JoinEstimate& a, const JoinEstimate& b2) {
                     return a.estimated_cost < b2.estimated_cost;
                   });
  plan.algorithm = plan.candidates.front().algorithm;
  return plan;
}

StatusOr<JoinRunStats> ExecuteVtJoin(StoredRelation* r, StoredRelation* s,
                                     StoredRelation* out,
                                     const VtJoinOptions& options,
                                     ExecContext* ctx) {
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&r->disk()->accountant());
  }
  if (options.predicate.HasDisjointNonAdjacent()) {
    return Status::InvalidArgument(
        "no plannable executor evaluates predicate '" +
        options.predicate.Name() +
        "': before/after match unboundedly separated tuples (use the "
        "reference oracle, JoinExecutor::kReference)");
  }
  if (options.join_kind != JoinKind::kInner) {
    // The sequenced outer/anti variants are implemented only by the
    // partition executor (coverage tracking rides on its dedup rule), so
    // the plan is forced rather than costed.
    SetMetric(ctx, Metric::kPlannedAlgorithm,
              static_cast<double>(static_cast<int>(JoinAlgorithm::kPartition)));
    PartitionJoinOptions pj;
    static_cast<ExecOptions&>(pj) = options;
    StatusOr<JoinRunStats> stats = PartitionVtJoin(r, s, out, pj, ctx);
    if (stats.ok()) {
      stats->Set(Metric::kPlannedAlgorithm,
                 static_cast<double>(static_cast<int>(
                     JoinAlgorithm::kPartition)));
      ExportMetrics(*stats, ctx);
    }
    return stats;
  }
  JoinPlan plan;
  {
    TraceSpan plan_span = SpanIf(ctx, Phase::kPlan);
    plan = PlanVtJoin(r, s, options);
  }
  if (ctx != nullptr) {
    // Pre-annotate the chosen executor's root span so ExplainAnalyze
    // prints the planner's estimate next to the phase's actual cost.
    const double est = plan.candidates.front().estimated_cost;
    switch (plan.algorithm) {
      case JoinAlgorithm::kNestedLoop:
        ctx->AnnotateEstimate(Phase::kNestedLoop, est);
        break;
      case JoinAlgorithm::kSortMerge:
        ctx->AnnotateEstimate(Phase::kSortMerge, est);
        break;
      case JoinAlgorithm::kPartition:
        ctx->AnnotateEstimate(Phase::kPartitionJoin, est);
        break;
      case JoinAlgorithm::kInMemoryRadix:
        ctx->AnnotateEstimate(Phase::kRadixJoin, est);
        break;
      case JoinAlgorithm::kSweep:
        ctx->AnnotateEstimate(Phase::kSweepJoin, est);
        break;
    }
    // Record the footprint-vs-budget decision inputs whichever path was
    // chosen, so EXPLAIN ANALYZE can show why the radix path was (not)
    // taken.
    SetMetric(ctx, Metric::kRadixEstFootprintBytes,
              static_cast<double>(
                  EstimateRadixFootprintBytes(r->num_pages(), s->num_pages())));
    SetMetric(ctx, Metric::kRadixBudgetBytes,
              static_cast<double>(ResolveRadixBudgetBytes(options)));
  }
  StatusOr<JoinRunStats> stats = Status::Internal("unreachable");
  bool radix_fallback = false;
  switch (plan.algorithm) {
    case JoinAlgorithm::kNestedLoop:
      stats = NestedLoopVtJoin(r, s, out, options, ctx);
      break;
    case JoinAlgorithm::kSortMerge:
      stats = SortMergeVtJoin(r, s, out, options, ctx);
      break;
    case JoinAlgorithm::kPartition: {
      PartitionJoinOptions pj;
      static_cast<ExecOptions&>(pj) = options;
      stats = PartitionVtJoin(r, s, out, pj, ctx);
      break;
    }
    case JoinAlgorithm::kInMemoryRadix: {
      RadixJoinOptions rj;
      static_cast<ExecOptions&>(rj) = options;
      stats = RadixVtJoin(r, s, out, rj, ctx);
      if (!stats.ok() &&
          stats.status().code() == StatusCode::kResourceExhausted) {
        // The optimistic plan-time footprint was wrong: extraction hit the
        // budget. Nothing was emitted yet, so clear and rerun on the paged
        // Grace path.
        radix_fallback = true;
        TEMPO_RETURN_IF_ERROR(out->Clear());
        PartitionJoinOptions pj;
        static_cast<ExecOptions&>(pj) = options;
        stats = PartitionVtJoin(r, s, out, pj, ctx);
      }
      break;
    }
    case JoinAlgorithm::kSweep:
      stats = SweepVtJoin(r, s, out, options, ctx);
      break;
  }
  if (stats.ok()) {
    if (radix_fallback) stats->Set(Metric::kRadixFallback, 1.0);
    stats->Set(Metric::kPlannedAlgorithm,
               static_cast<double>(static_cast<int>(plan.algorithm)));
    stats->Set(Metric::kPlannedCost, plan.candidates.front().estimated_cost);
    ExportMetrics(*stats, ctx);
  }
  return stats;
}

}  // namespace tempo
