#ifndef TEMPO_CORE_PARTITION_SPEC_H_
#define TEMPO_CORE_PARTITION_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "temporal/interval.h"

namespace tempo {

/// A partitioning P of valid time (paper Section 3.3): an ordered set of n
/// non-overlapping intervals p_1 < p_2 < ... < p_n that completely covers
/// the valid-time line. Every tuple therefore overlaps at least one
/// partitioning interval; a tuple overlapping several is the paper's
/// *long-lived tuple*.
class PartitionSpec {
 public:
  /// The trivial single-partition spec (whole line).
  PartitionSpec();

  /// Builds the spec from interior boundary chronons b_1 < ... < b_{n-1}:
  /// partitions are [-inf, b_1], [b_1+1, b_2], ..., [b_{n-1}+1, +inf].
  /// Duplicate or unsorted boundaries are rejected.
  static StatusOr<PartitionSpec> FromBoundaries(
      const std::vector<Chronon>& boundaries);

  /// Validates an explicit interval list: ordered, disjoint, gap-free,
  /// covering [-inf, +inf].
  static StatusOr<PartitionSpec> FromIntervals(std::vector<Interval> parts);

  size_t num_partitions() const { return parts_.size(); }
  const Interval& partition(size_t i) const { return parts_[i]; }
  const std::vector<Interval>& partitions() const { return parts_; }

  /// Index of the unique partition containing chronon `t`. O(log n).
  size_t IndexOf(Chronon t) const;

  /// First (earliest) partition overlapping `iv` — the paper's
  /// earliestOverlap. O(log n).
  size_t FirstOverlapping(const Interval& iv) const { return IndexOf(iv.start()); }

  /// Last (latest) partition overlapping `iv` — the paper's latestOverlap,
  /// and the partition a tuple is physically stored in (Section 3.3).
  size_t LastOverlapping(const Interval& iv) const { return IndexOf(iv.end()); }

  /// Number of partitions `iv` overlaps (>= 1). A result > 1 makes the
  /// tuple long-lived under this spec.
  size_t OverlapCount(const Interval& iv) const {
    return LastOverlapping(iv) - FirstOverlapping(iv) + 1;
  }

  std::string ToString() const;

  bool operator==(const PartitionSpec& other) const {
    return parts_ == other.parts_;
  }

 private:
  explicit PartitionSpec(std::vector<Interval> parts)
      : parts_(std::move(parts)) {}

  std::vector<Interval> parts_;
};

}  // namespace tempo

#endif  // TEMPO_CORE_PARTITION_SPEC_H_
