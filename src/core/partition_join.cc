#include "core/partition_join.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "core/tuple_cache.h"
#include "temporal/interval_set.h"

namespace tempo {

namespace {

// Conservative per-record page overhead used to convert the outer-area
// page budget into bytes.
constexpr size_t kSlotOverhead = 4;
constexpr size_t kPagePayload = kPageSize - 4;

/// Emits the uncovered subintervals of a retiring outer-area tuple:
/// SubtractAll of the accumulated coverage from the tuple's validity,
/// one output row per uncovered subinterval. Anti rows carry x itself
/// (r's own schema); outer rows are NULL-padded into the join schema.
Status EmitUncovered(JoinVariant* v, const Tuple& x,
                     const std::vector<Interval>& covered) {
  const IntervalSet uncovered = SubtractAll(x.interval(), covered);
  if (uncovered.empty()) return Status::OK();
  ++v->unmatched_tuples;
  for (const Interval& iv : uncovered.intervals()) {
    ++v->uncovered_subintervals;
    Tuple t = v->kind == JoinKind::kAnti
                  ? MakeAntiTuple(x, iv)
                  : MakeUnmatchedTuple(*v->emit_layout, v->preserved_is_r, x,
                                       iv);
    TEMPO_RETURN_IF_ERROR(v->writer->EmitAssembled(t));
  }
  return Status::OK();
}

/// The outer partition area: decoded tuples plus byte accounting, with a
/// probe index over the current contents. The index tracks a dirty flag so
/// a partition that neither purged nor added tuples (an empty r_i under
/// migration) skips the full rebuild.
///
/// Under a sequenced outer/anti variant the area additionally carries, per
/// tuple, the intervals its key-matching partners covered; a tuple leaving
/// the area (purge, or RetireAll at the end of the run) passes through
/// EmitUncovered before being dropped.
class OuterArea {
 public:
  explicit OuterArea(const std::vector<size_t>* key_attrs)
      : index_(&tuples_, key_attrs) {}

  /// Turns on per-tuple coverage tracking and unmatched emission.
  void TrackCoverage(JoinVariant* variant) { variant_ = variant; }

  Status Clear() {
    if (variant_ != nullptr) TEMPO_RETURN_IF_ERROR(RetireAll());
    if (!tuples_.empty()) dirty_ = true;
    tuples_.clear();
    coverage_.clear();
    bytes_ = 0;
    return Status::OK();
  }

  Status PurgeNotOverlapping(const Interval& p) {
    size_t kept = 0;
    for (size_t i = 0; i < tuples_.size(); ++i) {
      if (tuples_[i].interval().Overlaps(p)) {
        if (kept != i) {
          tuples_[kept] = std::move(tuples_[i]);
          if (variant_ != nullptr) coverage_[kept] = std::move(coverage_[i]);
        }
        ++kept;
      } else if (variant_ != nullptr) {
        TEMPO_RETURN_IF_ERROR(
            EmitUncovered(variant_, tuples_[i], coverage_[i]));
      }
    }
    if (kept != tuples_.size()) dirty_ = true;
    tuples_.resize(kept);
    if (variant_ != nullptr) coverage_.resize(kept);
    return Status::OK();
  }

  /// Retires every remaining tuple (end of the partition loop / fast
  /// path): emits each one's uncovered subintervals.
  Status RetireAll() {
    if (variant_ == nullptr) return Status::OK();
    for (size_t i = 0; i < tuples_.size(); ++i) {
      TEMPO_RETURN_IF_ERROR(EmitUncovered(variant_, tuples_[i], coverage_[i]));
    }
    coverage_.assign(tuples_.size(), {});
    return Status::OK();
  }

  void Add(Tuple t, const Schema& schema) {
    bytes_ += t.SerializedSize(schema) + kSlotOverhead;
    tuples_.push_back(std::move(t));
    if (variant_ != nullptr) coverage_.emplace_back();
    dirty_ = true;
  }

  /// Folds one key-matching overlap into tuple `i`'s coverage. Called only
  /// by the coordinating thread (serial probes inline; parallel probes
  /// buffer per batch and fold at wave flush).
  void AddCoverage(size_t i, const Interval& overlap) {
    coverage_[i].push_back(overlap);
  }

  void RecomputeBytes(const Schema& schema) {
    bytes_ = 0;
    for (const Tuple& t : tuples_) {
      bytes_ += t.SerializedSize(schema) + kSlotOverhead;
    }
  }

  /// Rebuilds the probe index if the area changed since the last rebuild.
  void RebuildIndex() {
    if (!dirty_) return;
    index_.Rebuild(&tuples_);
    dirty_ = false;
  }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t bytes() const { return bytes_; }
  HashedTupleIndex& index() { return index_; }

 private:
  std::vector<Tuple> tuples_;
  size_t bytes_ = 0;
  HashedTupleIndex index_;
  // The index is built over an empty area at construction, so it starts
  // clean.
  bool dirty_ = false;
  // Non-null while a sequenced outer/anti variant is running; coverage_
  // then parallels tuples_ (the raw overlap intervals seen so far).
  JoinVariant* variant_ = nullptr;
  std::vector<std::vector<Interval>> coverage_;
};

/// Shared parameters of one probe pass (one chunk of one partition).
struct ProbeContext {
  const NaturalJoinLayout* layout = nullptr;
  const Schema* inner_schema = nullptr;
  TemporalPredicate predicate;
  /// De-duplication partition p_i: emit only pairs whose overlap ends in
  /// it. Null in the single-partition fast path (no duplicates possible).
  const Interval* dedup_interval = nullptr;
  /// Previous partition p_{i-1}; probe tuples overlapping it are retained
  /// into `retain_cache`. Null disables retention.
  const Interval* retain_interval = nullptr;
  ResultWriter* writer = nullptr;
  TupleCache* retain_cache = nullptr;
  /// Sequenced outer/anti variant of this run (null = inner join). When
  /// set, every dedup-accepted overlap is folded into `coverage_area`'s
  /// per-tuple coverage at index `coverage_base + build_index`, and match
  /// emission is gated on variant->emit_matches.
  JoinVariant* variant = nullptr;
  OuterArea* coverage_area = nullptr;
  size_t coverage_base = 0;  ///< chunk offset into the outer area
};

/// Invokes `fn(x, build_index, overlap)` for every pair the probe record
/// view `y` must emit, in index iteration order (deterministic for a fixed
/// index build — the view hashes bit-compatibly with the tuple it would
/// decode into, so the bucket walk matches the owning-tuple probe
/// exactly). `build_index` is x's position in the indexed tuple vector;
/// the outer/anti variants use it to attribute coverage.
template <typename Fn>
void ForEachEmission(const ProbeContext& ctx, const HashedTupleIndex& index,
                     const TupleView& y, Fn&& fn) {
  const Interval y_iv = y.interval();
  index.ForEachMatchIndexed(
      y, ctx.layout->s_join_attrs, [&](const Tuple& x, size_t idx) {
        auto common = Overlap(x.interval(), y_iv);
        if (!common) return;
        if (ctx.dedup_interval != nullptr &&
            !ctx.dedup_interval->Contains(common->end())) {
          return;
        }
        if (!PredicateAdmitsOverlapping(ctx.predicate, x.interval(), y_iv)) {
          return;
        }
        fn(x, idx, *common);
      });
}

/// Streams probe-side input — raw inner pages and tuple-cache views —
/// against a read-only hash index. Every probe runs on a zero-copy
/// TupleView: pages are pinned in a PageTupleArena and their records
/// hashed/compared in place; cache records are probed as views over the
/// cache's own memory. Owning Tuples are materialized only for emitted
/// results (and as serialized bytes for retained records).
///
/// Serial mode (no pool): each batch is viewed and probed inline, in
/// arrival order, emitting directly — byte-for-byte the original
/// tuple-at-a-time loop.
///
/// Parallel mode: the coordinator keeps reading pages (all charged I/O
/// stays on the calling thread, in stream order) while accumulated batches
/// fan out to pool workers, which pin pages into a per-worker arena, probe
/// views, and buffer assembled result tuples. After each wave the
/// coordinator appends the per-batch buffers in batch order, so the output
/// relation and the next cache generation receive tuples in exactly the
/// serial order.
class ProbeStream {
 public:
  ProbeStream(const ProbeContext& ctx, const HashedTupleIndex* index,
              ThreadPool* pool, const ParallelOptions& parallel,
              MorselStats* stats)
      : ctx_(ctx), index_(index), pool_(pool), stats_(stats) {
    if (pool_ != nullptr && parallel.enabled()) {
      batch_pages_ = std::max<uint32_t>(1, parallel.morsel_pages);
      wave_limit_ = std::max<size_t>(1, 4 * parallel.num_threads);
    }
  }

  ProbeStream(const ProbeStream&) = delete;
  ProbeStream& operator=(const ProbeStream&) = delete;

  /// Streams one raw inner page (pinned and viewed on a worker in parallel
  /// mode).
  Status AddPage(const Page& page, bool allow_retain) {
    views_probed_ += page.num_records();
    if (wave_limit_ == 0) {
      arena_.Clear();
      TEMPO_RETURN_IF_ERROR(
          StoredRelation::DecodePageViews(*ctx_.inner_schema, page, &arena_)
              .status());
      for (const TupleView& y : arena_.views()) {
        TEMPO_RETURN_IF_ERROR(ProbeOneSerial(y, allow_retain));
      }
      return Status::OK();
    }
    if (!wave_.empty() && wave_.back().views.empty() &&
        wave_.back().allow_retain == allow_retain &&
        wave_.back().pages.size() < batch_pages_) {
      wave_.back().pages.push_back(page);
      return Status::OK();
    }
    Batch b;
    b.pages.push_back(page);
    b.allow_retain = allow_retain;
    return PushBatch(std::move(b));
  }

  /// Streams probe views over storage that outlives the stream (the tuple
  /// cache's in-memory records).
  Status AddViews(const std::vector<TupleView>& views, bool allow_retain) {
    views_probed_ += views.size();
    if (wave_limit_ == 0) {
      for (const TupleView& y : views) {
        TEMPO_RETURN_IF_ERROR(ProbeOneSerial(y, allow_retain));
      }
      return Status::OK();
    }
    Batch b;
    b.views = views;
    b.allow_retain = allow_retain;
    return PushBatch(std::move(b));
  }

  /// Drains any pending parallel wave. Must be called before destruction.
  Status Finish() { return FlushWave(); }

  /// Records probed as views (no owning decode); feeds the
  /// decode_materializations_avoided metric.
  uint64_t views_probed() const { return views_probed_; }

 private:
  struct Batch {
    std::vector<Page> pages;      // raw pages, pinned+viewed on the worker…
    std::vector<TupleView> views;  // …or views into stable cache memory
    bool allow_retain = false;
  };
  struct BatchResult {
    std::vector<Tuple> results;  // assembled output tuples, emission order
    // Raw record bytes for the next cache generation (views into the
    // worker's arena die with the wave, so the bytes are copied out).
    std::vector<std::string> retained;
    // Variant runs: (build index, overlap) per dedup-accepted pair. The
    // coordinator folds these into the outer area's coverage at wave
    // flush — workers never touch shared coverage state.
    std::vector<std::pair<size_t, Interval>> covered;
  };

  bool WantsRetention(const TupleView& y, bool allow_retain) const {
    return allow_retain && ctx_.retain_cache != nullptr &&
           ctx_.retain_interval != nullptr &&
           y.interval().Overlaps(*ctx_.retain_interval);
  }

  bool EmitsMatches() const {
    return ctx_.variant == nullptr || ctx_.variant->emit_matches;
  }

  Status ProbeOneSerial(const TupleView& y, bool allow_retain) {
    Status status = Status::OK();
    ForEachEmission(ctx_, *index_, y,
                    [&](const Tuple& x, size_t idx, const Interval& common) {
                      if (!status.ok()) return;
                      if (ctx_.coverage_area != nullptr) {
                        ctx_.coverage_area->AddCoverage(
                            ctx_.coverage_base + idx, common);
                      }
                      if (!EmitsMatches()) return;
                      status = ctx_.writer->Emit(*ctx_.layout, x, y, common);
                    });
    TEMPO_RETURN_IF_ERROR(status);
    if (WantsRetention(y, allow_retain)) {
      TEMPO_RETURN_IF_ERROR(ctx_.retain_cache->AddRecord(y.record()));
    }
    return Status::OK();
  }

  Status PushBatch(Batch b) {
    wave_.push_back(std::move(b));
    if (wave_.size() >= wave_limit_) return FlushWave();
    return Status::OK();
  }

  /// Worker side: pin+view (if needed) and probe one batch into `out`.
  Status ProbeBatchWorker(const Batch& b, BatchResult* out) const {
    thread_local PageTupleArena arena;
    const std::vector<TupleView>* src = &b.views;
    if (!b.pages.empty()) {
      arena.Clear();
      for (const Page& p : b.pages) {
        TEMPO_RETURN_IF_ERROR(
            StoredRelation::DecodePageViews(*ctx_.inner_schema, p, &arena)
                .status());
      }
      src = &arena.views();
    }
    for (const TupleView& y : *src) {
      ForEachEmission(ctx_, *index_, y,
                      [&](const Tuple& x, size_t idx, const Interval& common) {
                        if (ctx_.coverage_area != nullptr) {
                          out->covered.emplace_back(idx, common);
                        }
                        if (!EmitsMatches()) return;
                        out->results.push_back(
                            MakeJoinTuple(*ctx_.layout, x, y, common));
                      });
      if (WantsRetention(y, b.allow_retain)) {
        out->retained.emplace_back(y.record());
      }
    }
    return Status::OK();
  }

  Status FlushWave() {
    if (wave_.empty()) return Status::OK();
    std::vector<BatchResult> results(wave_.size());
    Status st = ParallelFor(
        pool_, wave_.size(), 1,
        [&](size_t m, size_t begin, size_t end) -> Status {
          (void)end;
          (void)m;
          return ProbeBatchWorker(wave_[begin], &results[begin]);
        },
        stats_);
    TEMPO_RETURN_IF_ERROR(st);
    for (BatchResult& r : results) {
      for (const auto& [idx, overlap] : r.covered) {
        ctx_.coverage_area->AddCoverage(ctx_.coverage_base + idx, overlap);
      }
      for (const Tuple& t : r.results) {
        TEMPO_RETURN_IF_ERROR(ctx_.writer->EmitAssembled(t));
      }
      for (const std::string& rec : r.retained) {
        TEMPO_RETURN_IF_ERROR(ctx_.retain_cache->AddRecord(rec));
      }
    }
    wave_.clear();
    return Status::OK();
  }

  ProbeContext ctx_;
  const HashedTupleIndex* index_;
  ThreadPool* pool_;
  MorselStats* stats_;
  uint32_t batch_pages_ = 1;
  size_t wave_limit_ = 0;  // 0 = serial
  std::vector<Batch> wave_;
  PageTupleArena arena_;  // serial pin+view arena, cleared per page
  uint64_t views_probed_ = 0;
};

}  // namespace

StatusOr<JoinRunStats> JoinPartitions(const NaturalJoinLayout& layout,
                                      const PartitionSpec& spec,
                                      PartitionedRelation* pr,
                                      PartitionedRelation* ps,
                                      StoredRelation* out,
                                      uint32_t buffer_pages,
                                      PlacementPolicy placement,
                                      TemporalPredicate predicate,
                                      uint32_t cache_memory_pages,
                                      ExecContext* ctx,
                                      MorselStats* morsel_stats,
                                      JoinVariant* variant) {
  const size_t n = spec.num_partitions();
  if (pr->parts.size() != n || ps->parts.size() != n) {
    return Status::InvalidArgument(
        "partitioned relations do not match the partition spec");
  }
  if (buffer_pages < 4) {
    return Status::InvalidArgument(
        "joinPartitions needs at least 4 buffer pages");
  }
  Scheduler* scheduler = SchedulerOf(ctx);
  const ParallelOptions parallel = SchedulerParallel(scheduler);
  ThreadPool* pool = SchedulerPool(scheduler);
  Disk* disk = out->disk();
  IoAccountant& acct = disk->accountant();
  IoStats before = acct.stats();
  TraceSpan join_span = SpanIf(ctx, Phase::kJoinPartitions);

  const Schema& r_schema = pr->parts.empty() ? out->schema()
                                             : pr->parts[0]->schema();
  const Schema& s_schema = ps->parts.empty() ? out->schema()
                                             : ps->parts[0]->schema();
  if (cache_memory_pages == 0) cache_memory_pages = 1;
  // Figure 3 layout: one inner page, one result page, cache_memory_pages
  // for the tuple cache (normally 1), and the rest is partition area.
  const uint32_t reserved = 2 + cache_memory_pages;
  const size_t area_bytes =
      static_cast<size_t>(
          buffer_pages > reserved ? buffer_pages - reserved : 1) *
      kPagePayload;
  const bool migrate = placement == PlacementPolicy::kLastOverlap;

  // Variant passes share the caller's canonical writer (the full outer
  // feeds two passes into one writer); the caller finishes it.
  ResultWriter local_writer(out);
  ResultWriter* writer = variant != nullptr ? variant->writer : &local_writer;
  OuterArea outer(&layout.r_join_attrs);
  if (variant != nullptr) outer.TrackCoverage(variant);
  TupleCache cache(disk, s_schema, out->name() + ".gen",
                   cache_memory_pages);  // consumed generation
  uint64_t cache_pages_spilled = 0;
  uint64_t cache_tuples = 0;
  uint64_t overflow_chunks = 0;
  uint64_t views_probed = 0;
  MorselStats probe_stats;

  // Computation proceeds from r_n |X| s_n down to r_1 |X| s_1. The
  // generation loop is inherently sequential — partition i's cache
  // generation feeds partition i-1 — so parallelism lives *inside* each
  // partition: page decode and hash probe fan out across the pool while
  // this coordinator performs all I/O in the paper's order.
  for (size_t ii = n; ii-- > 0;) {
    const Interval& p_i = spec.partition(ii);
    const bool has_prev = ii > 0;
    const Interval* p_prev = has_prev ? &spec.partition(ii - 1) : nullptr;

    // 1. Purge retained outer tuples that do not overlap p_i, then read
    //    the physical partition r_i into the area.
    if (migrate) {
      TEMPO_RETURN_IF_ERROR(outer.PurgeNotOverlapping(p_i));
      outer.RecomputeBytes(r_schema);
    } else {
      // Replicated partitions are self-contained (variants require
      // last-overlap placement, so no coverage retires here).
      TEMPO_RETURN_IF_ERROR(outer.Clear());
    }
    {
      StoredRelation* part = pr->parts[ii].get();
      const uint32_t pages = part->num_pages();
      std::vector<Tuple> decoded;
      for (uint32_t p = 0; p < pages; ++p) {
        Page page;
        TEMPO_RETURN_IF_ERROR(part->ReadPage(p, &page));
        decoded.clear();
        TEMPO_RETURN_IF_ERROR(
            StoredRelation::DecodePageAppend(r_schema, page, &decoded)
                .status());
        for (Tuple& t : decoded) outer.Add(std::move(t), r_schema);
      }
    }

    // Overflow handling: process the outer area in memory-sized chunks;
    // each chunk beyond the first re-reads the inner inputs (thrashing).
    const size_t total = outer.tuples().size();
    size_t chunk_tuples = total;
    if (outer.bytes() > area_bytes && total > 0) {
      double avg = static_cast<double>(outer.bytes()) / total;
      chunk_tuples = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(area_bytes) / avg));
    }

    TupleCache next_gen(disk, s_schema,
                        out->name() + ".gen" + std::to_string(ii),
                        cache_memory_pages);

    for (size_t chunk_start = 0; chunk_start < std::max<size_t>(total, 1);
         chunk_start += std::max<size_t>(chunk_tuples, 1)) {
      const bool first_chunk = chunk_start == 0;
      if (!first_chunk) ++overflow_chunks;
      // Chunk view: rebuild the index over [chunk_start, chunk_end).
      std::vector<Tuple> chunk_vec;
      HashedTupleIndex* index = &outer.index();
      HashedTupleIndex chunk_index(&chunk_vec, &layout.r_join_attrs);
      if (chunk_tuples < total) {
        size_t chunk_end = std::min(total, chunk_start + chunk_tuples);
        chunk_vec.assign(outer.tuples().begin() + chunk_start,
                         outer.tuples().begin() + chunk_end);
        chunk_index.Rebuild(&chunk_vec);
        index = &chunk_index;
      } else {
        outer.RebuildIndex();  // no-op when the area is unchanged
      }

      ProbeContext probe_ctx;
      probe_ctx.layout = &layout;
      probe_ctx.inner_schema = &s_schema;
      probe_ctx.predicate = predicate;
      probe_ctx.dedup_interval = &p_i;
      probe_ctx.retain_interval = p_prev;
      probe_ctx.writer = writer;
      probe_ctx.retain_cache = &next_gen;
      if (variant != nullptr) {
        probe_ctx.variant = variant;
        probe_ctx.coverage_area = &outer;
        probe_ctx.coverage_base = chunk_start;
      }
      ProbeStream stream(probe_ctx, index, pool, parallel, &probe_stats);

      // 2. Join with the in-memory cache page of the consumed generation,
      //    probing its records in place.
      const bool retain = first_chunk && has_prev;
      if (migrate) {
        TEMPO_RETURN_IF_ERROR(stream.AddViews(cache.memory_views(), retain));
        // 3. Join with each spilled page of the consumed generation (read
        //    raw; records are viewed, never decoded).
        for (uint32_t c = 0; c < cache.spilled_pages(); ++c) {
          Page cached;
          TEMPO_RETURN_IF_ERROR(cache.ReadSpilledPageRaw(c, &cached));
          TEMPO_RETURN_IF_ERROR(stream.AddPage(cached, retain));
        }
      }

      // 4. Join with each page of s_i.
      {
        StoredRelation* part = ps->parts[ii].get();
        const uint32_t pages = part->num_pages();
        for (uint32_t p = 0; p < pages; ++p) {
          Page page;
          TEMPO_RETURN_IF_ERROR(part->ReadPage(p, &page));
          TEMPO_RETURN_IF_ERROR(stream.AddPage(page, migrate && retain));
        }
      }
      TEMPO_RETURN_IF_ERROR(stream.Finish());
      views_probed += stream.views_probed();
      if (total == 0) break;
    }

    cache_pages_spilled += next_gen.spilled_pages();
    cache_tuples += next_gen.num_tuples();
    RecordHistogram(ctx, Hist::kCacheOccupancyTuples,
                    static_cast<double>(next_gen.num_tuples()));
    TEMPO_RETURN_IF_ERROR(cache.Discard());
    cache = std::move(next_gen);
  }
  TEMPO_RETURN_IF_ERROR(cache.Discard());
  // Tuples still in the area saw every partition they overlap; retire
  // them (unmatched emission) before the caller finishes the writer.
  TEMPO_RETURN_IF_ERROR(outer.RetireAll());
  if (variant == nullptr) TEMPO_RETURN_IF_ERROR(writer->Finish());

  JoinRunStats stats;
  stats.io = acct.stats() - before;
  stats.output_tuples = writer->count();
  stats.Set(Metric::kCachePagesSpilled,
            static_cast<double>(cache_pages_spilled));
  stats.Set(Metric::kCacheTuples, static_cast<double>(cache_tuples));
  stats.Set(Metric::kOverflowChunks, static_cast<double>(overflow_chunks));
  stats.Set(Metric::kDecodeMaterializationsAvoided,
            static_cast<double>(views_probed));
  if (parallel.enabled()) {
    stats.Set(Metric::kMorselsDispatched,
              static_cast<double>(probe_stats.morsels_dispatched));
    stats.Set(Metric::kParallelEfficiency,
              probe_stats.Efficiency(parallel.num_threads));
  }
  join_span.AddMorsels(probe_stats);
  MergeHistogram(ctx, Hist::kMorselDurationUs, probe_stats.duration_hist);
  if (morsel_stats != nullptr) morsel_stats->Merge(probe_stats);
  ExportMetrics(stats, ctx);
  return stats;
}

namespace {

/// One full partition-executor pass — plan, (maybe) Grace partition, join —
/// over (r, s) with r as the build/outer side. `layout` is the natural-join
/// layout of (r, s) *as passed*: the swapped full-outer pass hands in the
/// (s, r) layout. Output-schema validation is the caller's job.
StatusOr<JoinRunStats> RunPartitionPass(StoredRelation* r, StoredRelation* s,
                                        StoredRelation* out,
                                        const NaturalJoinLayout& layout,
                                        const PartitionJoinOptions& options,
                                        ExecContext* ctx,
                                        JoinVariant* variant) {
  if (options.buffer_pages < 4) {
    return Status::InvalidArgument(
        "partition join needs at least 4 buffer pages");
  }
  TEMPO_RETURN_IF_ERROR(RequireSharedChrononPredicate(options, "partition"));
  Disk* disk = r->disk();
  IoAccountant& acct = disk->accountant();
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&acct);
  }
  IoStats before = acct.stats();
  TraceSpan root_span = SpanIf(ctx, Phase::kPartitionJoin);
  Random rng(options.seed);

  Scheduler* scheduler = SchedulerOf(ctx);
  const ParallelOptions parallel = SchedulerParallel(scheduler);
  ThreadPool* pool = SchedulerPool(scheduler);
  MorselStats total_morsels;

  // Phase 1: determine the partitioning intervals (samples are charged).
  PartitionPlanOptions plan_options;
  plan_options.buffer_pages = options.buffer_pages;
  plan_options.cost_model = options.cost_model;
  plan_options.kolmogorov_critical = options.kolmogorov_critical;
  plan_options.in_scan_sampling = options.in_scan_sampling;
  plan_options.forced_num_partitions = options.forced_num_partitions;
  StatusOr<PartitionPlan> plan_or = Status::Internal("unset");
  {
    TraceSpan plan_span = SpanIf(ctx, Phase::kChooseIntervals);
    plan_or = DeterminePartIntervals(r, plan_options, &rng, ctx);
  }
  TEMPO_RETURN_IF_ERROR(plan_or.status());
  PartitionPlan plan = std::move(plan_or).value();
  if (ctx != nullptr) {
    // The optimizer's cost split maps onto the span tree: C_sample onto
    // the sampling phase, C_join onto joinPartitions (which re-reads the
    // partitions and pages the tuple cache), their sum onto the root.
    ctx->AnnotateEstimate(Phase::kSampling, plan.est_sample_cost);
    ctx->AnnotateEstimate(Phase::kJoinPartitions, plan.est_join_cost);
    root_span.SetEstimate(plan.est_sample_cost + plan.est_join_cost);
  }

  JoinRunStats stats;
  if (plan.num_partitions <= 1) {
    // The outer relation fits in the partition area: no partitioning I/O;
    // read r into memory and stream s past it.
    TraceSpan fast_span = SpanIf(ctx, Phase::kJoinPartitions);
    OuterArea outer(&layout.r_join_attrs);
    if (variant != nullptr) outer.TrackCoverage(variant);
    const uint32_t pages = r->num_pages();
    std::vector<Tuple> decoded;
    for (uint32_t p = 0; p < pages; ++p) {
      Page page;
      TEMPO_RETURN_IF_ERROR(r->ReadPage(p, &page));
      decoded.clear();
      TEMPO_RETURN_IF_ERROR(
          StoredRelation::DecodePageAppend(r->schema(), page, &decoded)
              .status());
      for (Tuple& t : decoded) outer.Add(std::move(t), r->schema());
    }
    outer.RebuildIndex();
    ResultWriter local_writer(out);
    ResultWriter* writer =
        variant != nullptr ? variant->writer : &local_writer;

    ProbeContext probe_ctx;
    probe_ctx.layout = &layout;
    probe_ctx.inner_schema = &s->schema();
    probe_ctx.predicate = options.predicate;
    probe_ctx.writer = writer;
    if (variant != nullptr) {
      probe_ctx.variant = variant;
      probe_ctx.coverage_area = &outer;
    }
    ProbeStream stream(probe_ctx, &outer.index(), pool, parallel,
                       &total_morsels);
    const uint32_t s_pages = s->num_pages();
    for (uint32_t p = 0; p < s_pages; ++p) {
      Page page;
      TEMPO_RETURN_IF_ERROR(s->ReadPage(p, &page));
      TEMPO_RETURN_IF_ERROR(stream.AddPage(page, /*allow_retain=*/false));
    }
    TEMPO_RETURN_IF_ERROR(stream.Finish());
    TEMPO_RETURN_IF_ERROR(outer.RetireAll());
    if (variant == nullptr) TEMPO_RETURN_IF_ERROR(writer->Finish());
    fast_span.AddMorsels(total_morsels);
    stats.output_tuples = writer->count();
    stats.Set(Metric::kDecodeMaterializationsAvoided,
              static_cast<double>(stream.views_probed()));
  } else {
    // Phase 2: Grace-partition both inputs with the same intervals. With a
    // pool, r and s are partitioned concurrently — each input has its own
    // coordinating thread reading its pages in scan order and its own
    // output files, so charged per-file I/O is unchanged — and each
    // coordinator fans decode/route morsels across the shared workers.
    StatusOr<PartitionedRelation> pr_or = Status::Internal("unset");
    StatusOr<PartitionedRelation> ps_or = Status::Internal("unset");
    MorselStats r_morsels, s_morsels;
    if (pool != nullptr) {
      // The r coordinator runs on a spawned thread whose span stack is
      // empty, so its span names the partition-join root as parent
      // explicitly; the tree shape matches the serial run. The thread also
      // re-binds this query's per-thread accountant (if one is bound):
      // r's charged I/O must land on the same per-query ledger as the
      // coordinator's, not on the disk's base accountant.
      IoAccountant* bound = disk->BoundAccountant();
      MorselProgress* progress = ScopedMorselProgress::Current();
      std::thread r_thread([&, bound, progress] {
        ScopedAccountantBinding rebind(disk, bound);
        // Like the accountant, the query's live morsel counter is a
        // per-thread binding: rebind it so r's regions count toward the
        // same query's Progress().
        ScopedMorselProgress reprogress(progress);
        TraceSpan r_span =
            SpanUnderIf(ctx, root_span, Phase::kPartitionR);
        pr_or = GracePartition(r, plan.spec, options.buffer_pages,
                               options.placement, r->name(), scheduler,
                               &r_morsels);
        r_span.AddMorsels(r_morsels);
      });
      {
        TraceSpan s_span = SpanIf(ctx, Phase::kPartitionS);
        ps_or = GracePartition(s, plan.spec, options.buffer_pages,
                               options.placement, s->name(), scheduler,
                               &s_morsels);
        s_span.AddMorsels(s_morsels);
      }
      r_thread.join();
    } else {
      {
        TraceSpan r_span = SpanIf(ctx, Phase::kPartitionR);
        pr_or = GracePartition(r, plan.spec, options.buffer_pages,
                               options.placement, r->name());
      }
      TraceSpan s_span = SpanIf(ctx, Phase::kPartitionS);
      ps_or = GracePartition(s, plan.spec, options.buffer_pages,
                             options.placement, s->name());
    }
    TEMPO_RETURN_IF_ERROR(pr_or.status());
    TEMPO_RETURN_IF_ERROR(ps_or.status());
    PartitionedRelation pr = std::move(pr_or).value();
    PartitionedRelation ps = std::move(ps_or).value();
    total_morsels.Merge(r_morsels);
    total_morsels.Merge(s_morsels);
    stats.Set(Metric::kPartitionPagesWritten,
              static_cast<double>(pr.TotalPages() + ps.TotalPages()));
    stats.Set(Metric::kTuplesWritten,
              static_cast<double>(pr.tuples_written + ps.tuples_written));

    // Phase 3: join corresponding partitions.
    TEMPO_ASSIGN_OR_RETURN(
        JoinRunStats join_stats,
        JoinPartitions(layout, plan.spec, &pr, &ps, out, options.buffer_pages,
                       options.placement, options.predicate,
                       options.tuple_cache_memory_pages, ctx,
                       &total_morsels, variant));
    stats.output_tuples = join_stats.output_tuples;
    stats.metrics.Merge(join_stats.metrics);
    stats.Add(Metric::kDecodeMaterializationsAvoided,
              static_cast<double>(pr.records_routed_zero_copy +
                                  ps.records_routed_zero_copy));
    pr.Drop();
    ps.Drop();
  }

  stats.io = acct.stats() - before;
  stats.Set(Metric::kPartitions, static_cast<double>(plan.num_partitions));
  stats.Set(Metric::kPartSizePages,
            static_cast<double>(plan.part_size_pages));
  stats.Set(Metric::kSamples, static_cast<double>(plan.samples_drawn));
  stats.Set(Metric::kSampledByScan, plan.sampled_by_scan ? 1.0 : 0.0);
  stats.Set(Metric::kEstSampleCost, plan.est_sample_cost);
  stats.Set(Metric::kEstJoinCost, plan.est_join_cost);
  if (parallel.enabled()) {
    stats.Set(Metric::kMorselsDispatched,
              static_cast<double>(total_morsels.morsels_dispatched));
    stats.Set(Metric::kParallelEfficiency,
              total_morsels.Efficiency(parallel.num_threads));
  }
  ExportMetrics(stats, ctx);
  return stats;
}

}  // namespace

StatusOr<JoinRunStats> PartitionVtJoin(StoredRelation* r, StoredRelation* s,
                                       StoredRelation* out,
                                       const PartitionJoinOptions& options,
                                       ExecContext* ctx) {
  if (options.join_kind == JoinKind::kInner) {
    TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout, PrepareJoin(r, s, out));
    return RunPartitionPass(r, s, out, layout, options, ctx, nullptr);
  }

  // Sequenced outer/anti variant. The uncovered-subinterval arithmetic
  // assumes every key-matching overlap is observed exactly once, which the
  // dedup rule guarantees only under last-overlap placement and the plain
  // overlap predicate.
  if (!options.predicate.IsOverlapDefault()) {
    return Status::InvalidArgument(
        "outer/anti join variants require the overlap predicate");
  }
  if (options.placement != PlacementPolicy::kLastOverlap) {
    return Status::InvalidArgument(
        "outer/anti join variants require last-overlap placement");
  }
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         PrepareJoinForKind(r, s, out, options.join_kind));
  Disk* disk = r->disk();
  IoAccountant& acct = disk->accountant();
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&acct);
  }
  IoStats before = acct.stats();

  // One canonical writer across all passes: emission is buffered and
  // sorted at Finish, so output bytes are a pure function of the result
  // multiset — identical for any thread count and for the oracle.
  ResultWriter writer = ResultWriter::Canonical(out);
  JoinVariant pass1;
  pass1.kind = options.join_kind;
  pass1.emit_matches = options.join_kind != JoinKind::kAnti;
  pass1.preserved_is_r = true;
  pass1.emit_layout = &layout;
  pass1.writer = &writer;
  TEMPO_ASSIGN_OR_RETURN(
      JoinRunStats stats,
      RunPartitionPass(r, s, out, layout, options, ctx, &pass1));
  uint64_t unmatched = pass1.unmatched_tuples;
  uint64_t uncovered = pass1.uncovered_subintervals;

  if (options.join_kind == JoinKind::kFullOuter) {
    // Second pass, swapped: s becomes the outer side in coverage-only mode
    // (all matches were emitted by pass 1), contributing s's unmatched
    // rows — assembled under the ORIGINAL layout — to the shared writer.
    TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout swapped,
                           DeriveNaturalJoinLayout(s->schema(), r->schema()));
    TraceSpan outer_span = SpanIf(ctx, Phase::kOuterPass);
    JoinVariant pass2;
    pass2.kind = options.join_kind;
    pass2.emit_matches = false;
    pass2.preserved_is_r = false;
    pass2.emit_layout = &layout;
    pass2.writer = &writer;
    TEMPO_ASSIGN_OR_RETURN(
        JoinRunStats pass2_stats,
        RunPartitionPass(s, r, out, swapped, options, ctx, &pass2));
    stats.metrics.Merge(pass2_stats.metrics);
    unmatched += pass2.unmatched_tuples;
    uncovered += pass2.uncovered_subintervals;
  }

  TEMPO_RETURN_IF_ERROR(writer.Finish());
  stats.io = acct.stats() - before;
  stats.output_tuples = writer.count();
  stats.Set(Metric::kSequencedJoinKind,
            static_cast<double>(static_cast<uint8_t>(options.join_kind)));
  stats.Set(Metric::kOuterUnmatchedTuples, static_cast<double>(unmatched));
  stats.Set(Metric::kUncoveredSubintervalsEmitted,
            static_cast<double>(uncovered));
  if (options.join_kind == JoinKind::kAnti) {
    stats.Set(Metric::kAntiEmittedIntervals, static_cast<double>(uncovered));
  }
  ExportMetrics(stats, ctx);
  return stats;
}

}  // namespace tempo
