#include "core/partition_join.h"

#include <algorithm>

#include "core/tuple_cache.h"

namespace tempo {

namespace {

// Conservative per-record page overhead used to convert the outer-area
// page budget into bytes.
constexpr size_t kSlotOverhead = 4;
constexpr size_t kPagePayload = kPageSize - 4;

/// The outer partition area: decoded tuples plus byte accounting, with a
/// probe index over the current contents.
class OuterArea {
 public:
  explicit OuterArea(const std::vector<size_t>* key_attrs)
      : index_(&tuples_, key_attrs) {}

  void Clear() {
    tuples_.clear();
    bytes_ = 0;
  }

  void PurgeNotOverlapping(const Interval& p) {
    size_t kept = 0;
    for (size_t i = 0; i < tuples_.size(); ++i) {
      if (tuples_[i].interval().Overlaps(p)) {
        if (kept != i) tuples_[kept] = std::move(tuples_[i]);
        ++kept;
      }
    }
    tuples_.resize(kept);
  }

  void Add(Tuple t, const Schema& schema) {
    bytes_ += t.SerializedSize(schema) + kSlotOverhead;
    tuples_.push_back(std::move(t));
  }

  void RecomputeBytes(const Schema& schema) {
    bytes_ = 0;
    for (const Tuple& t : tuples_) {
      bytes_ += t.SerializedSize(schema) + kSlotOverhead;
    }
  }

  void RebuildIndex() { index_.Rebuild(&tuples_); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t bytes() const { return bytes_; }
  HashedTupleIndex& index() { return index_; }

 private:
  std::vector<Tuple> tuples_;
  size_t bytes_ = 0;
  HashedTupleIndex index_;
};

}  // namespace

StatusOr<JoinRunStats> JoinPartitions(const NaturalJoinLayout& layout,
                                      const PartitionSpec& spec,
                                      PartitionedRelation* pr,
                                      PartitionedRelation* ps,
                                      StoredRelation* out,
                                      uint32_t buffer_pages,
                                      PlacementPolicy placement,
                                      IntervalJoinPredicate predicate,
                                      uint32_t cache_memory_pages) {
  const size_t n = spec.num_partitions();
  if (pr->parts.size() != n || ps->parts.size() != n) {
    return Status::InvalidArgument(
        "partitioned relations do not match the partition spec");
  }
  if (buffer_pages < 4) {
    return Status::InvalidArgument(
        "joinPartitions needs at least 4 buffer pages");
  }
  Disk* disk = out->disk();
  IoAccountant& acct = disk->accountant();
  IoStats before = acct.stats();

  const Schema& r_schema = pr->parts.empty() ? out->schema()
                                             : pr->parts[0]->schema();
  const Schema& s_schema = ps->parts.empty() ? out->schema()
                                             : ps->parts[0]->schema();
  if (cache_memory_pages == 0) cache_memory_pages = 1;
  // Figure 3 layout: one inner page, one result page, cache_memory_pages
  // for the tuple cache (normally 1), and the rest is partition area.
  const uint32_t reserved = 2 + cache_memory_pages;
  const size_t area_bytes =
      static_cast<size_t>(
          buffer_pages > reserved ? buffer_pages - reserved : 1) *
      kPagePayload;
  const bool migrate = placement == PlacementPolicy::kLastOverlap;

  ResultWriter writer(out);
  OuterArea outer(&layout.r_join_attrs);
  TupleCache cache(disk, s_schema, out->name() + ".gen",
                   cache_memory_pages);  // consumed generation
  uint64_t cache_pages_spilled = 0;
  uint64_t cache_tuples = 0;
  uint64_t overflow_chunks = 0;

  // Computation proceeds from r_n |X| s_n down to r_1 |X| s_1.
  for (size_t ii = n; ii-- > 0;) {
    const Interval& p_i = spec.partition(ii);
    const bool has_prev = ii > 0;
    const Interval* p_prev = has_prev ? &spec.partition(ii - 1) : nullptr;

    // 1. Purge retained outer tuples that do not overlap p_i, then read
    //    the physical partition r_i into the area.
    if (migrate) {
      outer.PurgeNotOverlapping(p_i);
      outer.RecomputeBytes(r_schema);
    } else {
      outer.Clear();  // replicated partitions are self-contained
    }
    {
      StoredRelation* part = pr->parts[ii].get();
      const uint32_t pages = part->num_pages();
      std::vector<Tuple> decoded;
      for (uint32_t p = 0; p < pages; ++p) {
        Page page;
        TEMPO_RETURN_IF_ERROR(part->ReadPage(p, &page));
        decoded.clear();
        TEMPO_RETURN_IF_ERROR(
            StoredRelation::DecodePage(r_schema, page, &decoded));
        for (Tuple& t : decoded) outer.Add(std::move(t), r_schema);
      }
    }

    // Overflow handling: process the outer area in memory-sized chunks;
    // each chunk beyond the first re-reads the inner inputs (thrashing).
    const size_t total = outer.tuples().size();
    size_t chunk_tuples = total;
    if (outer.bytes() > area_bytes && total > 0) {
      double avg = static_cast<double>(outer.bytes()) / total;
      chunk_tuples = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(area_bytes) / avg));
    }

    TupleCache next_gen(disk, s_schema,
                        out->name() + ".gen" + std::to_string(ii),
                        cache_memory_pages);

    auto emit_matches = [&](const HashedTupleIndex& index,
                            const Tuple& y) -> Status {
      Status status = Status::OK();
      index.ForEachMatch(y, layout.s_join_attrs, [&](const Tuple& x) {
        if (!status.ok()) return;
        auto common = Overlap(x.interval(), y.interval());
        if (!common) return;
        // De-duplication: emit only in the partition containing the end
        // of the overlap — both tuples are present there exactly once.
        if (!p_i.Contains(common->end())) return;
        if (!EvalIntervalPredicate(predicate, x.interval(), y.interval())) {
          return;
        }
        status = writer.Emit(layout, x, y, *common);
      });
      return status;
    };

    for (size_t chunk_start = 0; chunk_start < std::max<size_t>(total, 1);
         chunk_start += std::max<size_t>(chunk_tuples, 1)) {
      const bool first_chunk = chunk_start == 0;
      if (!first_chunk) ++overflow_chunks;
      // Chunk view: rebuild the index over [chunk_start, chunk_end).
      std::vector<Tuple> chunk_vec;
      HashedTupleIndex* index = &outer.index();
      HashedTupleIndex chunk_index(&chunk_vec, &layout.r_join_attrs);
      if (chunk_tuples < total) {
        size_t chunk_end = std::min(total, chunk_start + chunk_tuples);
        chunk_vec.assign(outer.tuples().begin() + chunk_start,
                         outer.tuples().begin() + chunk_end);
        chunk_index.Rebuild(&chunk_vec);
        index = &chunk_index;
      } else {
        outer.RebuildIndex();
      }

      // 2. Join with the in-memory cache page of the consumed generation.
      if (migrate) {
        for (const Tuple& y : cache.memory_tuples()) {
          TEMPO_RETURN_IF_ERROR(emit_matches(*index, y));
          if (first_chunk && has_prev && y.interval().Overlaps(*p_prev)) {
            TEMPO_RETURN_IF_ERROR(next_gen.Add(y));
          }
        }
        // 3. Join with each spilled page of the consumed generation.
        for (uint32_t c = 0; c < cache.spilled_pages(); ++c) {
          TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> cached,
                                 cache.ReadSpilledPage(c));
          for (const Tuple& y : cached) {
            TEMPO_RETURN_IF_ERROR(emit_matches(*index, y));
            if (first_chunk && has_prev && y.interval().Overlaps(*p_prev)) {
              TEMPO_RETURN_IF_ERROR(next_gen.Add(y));
            }
          }
        }
      }

      // 4. Join with each page of s_i.
      {
        StoredRelation* part = ps->parts[ii].get();
        const uint32_t pages = part->num_pages();
        std::vector<Tuple> decoded;
        for (uint32_t p = 0; p < pages; ++p) {
          Page page;
          TEMPO_RETURN_IF_ERROR(part->ReadPage(p, &page));
          decoded.clear();
          TEMPO_RETURN_IF_ERROR(
              StoredRelation::DecodePage(s_schema, page, &decoded));
          for (const Tuple& y : decoded) {
            TEMPO_RETURN_IF_ERROR(emit_matches(*index, y));
            if (migrate && first_chunk && has_prev &&
                y.interval().Overlaps(*p_prev)) {
              TEMPO_RETURN_IF_ERROR(next_gen.Add(y));
            }
          }
        }
      }
      if (total == 0) break;
    }

    cache_pages_spilled += next_gen.spilled_pages();
    cache_tuples += next_gen.num_tuples();
    TEMPO_RETURN_IF_ERROR(cache.Discard());
    cache = std::move(next_gen);
  }
  TEMPO_RETURN_IF_ERROR(cache.Discard());
  TEMPO_RETURN_IF_ERROR(writer.Finish());

  JoinRunStats stats;
  stats.io = acct.stats() - before;
  stats.output_tuples = writer.count();
  stats.details["cache_pages_spilled"] =
      static_cast<double>(cache_pages_spilled);
  stats.details["cache_tuples"] = static_cast<double>(cache_tuples);
  stats.details["overflow_chunks"] = static_cast<double>(overflow_chunks);
  return stats;
}

StatusOr<JoinRunStats> PartitionVtJoin(StoredRelation* r, StoredRelation* s,
                                       StoredRelation* out,
                                       const PartitionJoinOptions& options) {
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout, PrepareJoin(r, s, out));
  if (options.buffer_pages < 4) {
    return Status::InvalidArgument(
        "partition join needs at least 4 buffer pages");
  }
  Disk* disk = r->disk();
  IoAccountant& acct = disk->accountant();
  IoStats before = acct.stats();
  Random rng(options.seed);

  // Phase 1: determine the partitioning intervals (samples are charged).
  PartitionPlanOptions plan_options;
  plan_options.buffer_pages = options.buffer_pages;
  plan_options.cost_model = options.cost_model;
  plan_options.kolmogorov_critical = options.kolmogorov_critical;
  plan_options.in_scan_sampling = options.in_scan_sampling;
  plan_options.forced_num_partitions = options.forced_num_partitions;
  TEMPO_ASSIGN_OR_RETURN(PartitionPlan plan,
                         DeterminePartIntervals(r, plan_options, &rng));

  JoinRunStats stats;
  if (plan.num_partitions <= 1) {
    // The outer relation fits in the partition area: no partitioning I/O;
    // read r into memory and stream s past it.
    OuterArea outer(&layout.r_join_attrs);
    const uint32_t pages = r->num_pages();
    std::vector<Tuple> decoded;
    for (uint32_t p = 0; p < pages; ++p) {
      Page page;
      TEMPO_RETURN_IF_ERROR(r->ReadPage(p, &page));
      decoded.clear();
      TEMPO_RETURN_IF_ERROR(
          StoredRelation::DecodePage(r->schema(), page, &decoded));
      for (Tuple& t : decoded) outer.Add(std::move(t), r->schema());
    }
    outer.RebuildIndex();
    ResultWriter writer(out);
    const uint32_t s_pages = s->num_pages();
    for (uint32_t p = 0; p < s_pages; ++p) {
      Page page;
      TEMPO_RETURN_IF_ERROR(s->ReadPage(p, &page));
      decoded.clear();
      TEMPO_RETURN_IF_ERROR(
          StoredRelation::DecodePage(s->schema(), page, &decoded));
      for (const Tuple& y : decoded) {
        Status status = Status::OK();
        outer.index().ForEachMatch(y, layout.s_join_attrs,
                                   [&](const Tuple& x) {
          if (!status.ok()) return;
          auto common = Overlap(x.interval(), y.interval());
          if (!common) return;
          if (!EvalIntervalPredicate(options.predicate, x.interval(),
                                     y.interval())) {
            return;
          }
          status = writer.Emit(layout, x, y, *common);
        });
        TEMPO_RETURN_IF_ERROR(status);
      }
    }
    TEMPO_RETURN_IF_ERROR(writer.Finish());
    stats.output_tuples = writer.count();
  } else {
    // Phase 2: Grace-partition both inputs with the same intervals.
    TEMPO_ASSIGN_OR_RETURN(
        PartitionedRelation pr,
        GracePartition(r, plan.spec, options.buffer_pages, options.placement,
                       r->name()));
    TEMPO_ASSIGN_OR_RETURN(
        PartitionedRelation ps,
        GracePartition(s, plan.spec, options.buffer_pages, options.placement,
                       s->name()));
    stats.details["partition_pages_written"] =
        static_cast<double>(pr.TotalPages() + ps.TotalPages());
    stats.details["tuples_written"] =
        static_cast<double>(pr.tuples_written + ps.tuples_written);

    // Phase 3: join corresponding partitions.
    TEMPO_ASSIGN_OR_RETURN(
        JoinRunStats join_stats,
        JoinPartitions(layout, plan.spec, &pr, &ps, out, options.buffer_pages,
                       options.placement, options.predicate,
                       options.tuple_cache_memory_pages));
    stats.output_tuples = join_stats.output_tuples;
    for (const auto& [k, v] : join_stats.details) stats.details[k] = v;
    pr.Drop();
    ps.Drop();
  }

  stats.io = acct.stats() - before;
  stats.details["partitions"] = static_cast<double>(plan.num_partitions);
  stats.details["part_size_pages"] =
      static_cast<double>(plan.part_size_pages);
  stats.details["samples"] = static_cast<double>(plan.samples_drawn);
  stats.details["sampled_by_scan"] = plan.sampled_by_scan ? 1.0 : 0.0;
  stats.details["est_sample_cost"] = plan.est_sample_cost;
  stats.details["est_join_cost"] = plan.est_join_cost;
  return stats;
}

}  // namespace tempo
