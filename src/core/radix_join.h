#ifndef TEMPO_CORE_RADIX_JOIN_H_
#define TEMPO_CORE_RADIX_JOIN_H_

#include "join/join_common.h"
#include "relation/column_extract.h"

namespace tempo {

/// Options for the in-memory columnar radix join. The shared knobs live in
/// the ExecOptions base (slice-assign to transfer them); the radix path
/// additionally honors radix_budget_bytes from the base — see
/// ResolveRadixBudgetBytes — and the bucket sizing knob below.
struct RadixJoinOptions : ExecOptions {
  /// Target bytes of build-side column state per final bucket. The number
  /// of 8-bit radix passes is the smallest that brings the smaller side's
  /// columns under this per bucket (clamped to 4 passes); the default
  /// keeps each bucket's working set L2-resident.
  uint32_t bucket_target_bytes = 256 * 1024;
};

/// Resolves the in-memory footprint budget the radix path may pin,
/// by precedence:
///   1. options.radix_budget_bytes, when non-zero;
///   2. TEMPO_RADIX_THRESHOLD_MB (strictly parsed; malformed values are
///      rejected with a warning naming the bad value), when set;
///   3. buffer_pages * kPageSize — the paper's buffSize, expressed in
///      bytes: by default the fast path may hold exactly the memory the
///      buffer pool grants the algorithm.
uint64_t ResolveRadixBudgetBytes(const ExecOptions& options);

/// Planner-side footprint estimate: the page bytes of both inputs. This is
/// deliberately optimistic — the exact per-row column/view overhead
/// (kColumnRowBytes) is only known once extraction counts rows — so the
/// estimate errs toward trying the fast path, and RadixVtJoin enforces the
/// budget exactly, page by page, during extraction; ExecuteVtJoin falls
/// back to the paged Grace join on kResourceExhausted.
uint64_t EstimateRadixFootprintBytes(uint32_t pages_r, uint32_t pages_s);

/// In-memory columnar radix evaluation of r |X|_v s.
///
/// Phases (each a span under the kRadixJoin root):
///   - radix_extract: one sequential page scan of each input (all charged
///     I/O of the run: 1 random + (pages-1) sequential per input, the same
///     charge as two ReadAll scans), pinning pages and extracting
///     join-key-hash / Vs / Ve / row-ordinal columns into flat arrays
///     (relation/column_extract.h). The memory budget is enforced
///     incrementally; exceeding it aborts with kResourceExhausted before
///     anything is emitted.
///   - radix_partition: multi-pass LSD 8-bit counting sort of both sides'
///     columns on the low hash bits, down to L2-sized buckets. Both sides
///     use the same pass count, so equal keys land in aligned buckets.
///   - radix_probe: per aligned bucket pair, a dense 256-way position
///     table on the next 8 hash bits over the smaller side, probed with
///     the larger side under the interval-overlap quick test straight on
///     the columns; survivors are verified on the record bytes
///     (TupleView::EqualOnAttrs — hash collisions and NULL == NULL
///     semantics). Bucket pairs fan out over the morsel ThreadPool.
///
/// Output determinism: match pairs are collected as (r_row, s_row) row
/// ordinals and globally sorted before emission, so the output is emitted
/// in exactly the reference join's r-outer/s-inner order — byte-identical
/// pages at any thread count, with identical charged IoStats.
///
/// Metrics: kRadixPasses, kRadixFanout, kRadixBuckets, kRadixRowsRouted,
/// kRadixEstFootprintBytes, kRadixActFootprintBytes, kRadixBudgetBytes;
/// with parallel mode additionally kMorselsDispatched and
/// kParallelEfficiency.
StatusOr<JoinRunStats> RadixVtJoin(StoredRelation* r, StoredRelation* s,
                                   StoredRelation* out,
                                   const RadixJoinOptions& options,
                                   ExecContext* ctx = nullptr);

}  // namespace tempo

#endif  // TEMPO_CORE_RADIX_JOIN_H_
