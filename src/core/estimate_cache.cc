#include "core/estimate_cache.h"

#include <cmath>

#include "common/assert.h"

namespace tempo {

std::vector<uint64_t> EstimateCacheSizes(const std::vector<Interval>& samples,
                                         uint64_t relation_tuples,
                                         double tuples_per_page,
                                         const PartitionSpec& spec) {
  TEMPO_CHECK(tuples_per_page > 0);
  const size_t n = spec.num_partitions();
  std::vector<uint64_t> counts(n, 0);
  if (samples.empty() || n <= 1) {
    return std::vector<uint64_t>(n, 0);
  }
  // Count, per partition, the samples that overlap it without being stored
  // in it (i.e. every overlapped partition except the last). A difference
  // array keeps this O(1) per sample.
  std::vector<int64_t> diff(n + 1, 0);
  for (const Interval& iv : samples) {
    size_t first = spec.FirstOverlapping(iv);
    size_t last = spec.LastOverlapping(iv);
    if (first < last) {
      diff[first] += 1;
      diff[last] -= 1;  // partitions [first, last-1]
    }
  }
  double scale =
      static_cast<double>(relation_tuples) / static_cast<double>(samples.size());
  std::vector<uint64_t> pages(n, 0);
  int64_t running = 0;
  for (size_t p = 0; p < n; ++p) {
    running += diff[p];
    TEMPO_DCHECK(running >= 0);
    double est_tuples = static_cast<double>(running) * scale;
    pages[p] =
        static_cast<uint64_t>(std::ceil(est_tuples / tuples_per_page));
  }
  return pages;
}

}  // namespace tempo
