#ifndef TEMPO_CORE_TUPLE_CACHE_H_
#define TEMPO_CORE_TUPLE_CACHE_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "relation/tuple_view.h"
#include "storage/stored_relation.h"

namespace tempo {

/// One generation of the long-lived tuple cache (Figure 3, Appendix A.1).
///
/// While partition i is being joined, inner tuples that also overlap
/// partition i-1 are retained into the *next* generation's cache: they
/// accumulate in a single in-memory page (the paper's newCachePage) and
/// spill to a disk file page-by-page as it fills. During step i-1 the
/// generation built at step i is consumed: its in-memory page is probed
/// directly and its spilled pages are read back (1 random + (k-1)
/// sequential under the per-file head model).
///
/// This is how the algorithm keeps every long-lived tuple available in
/// every partition it overlaps *without replicating it in the base
/// relation files* — the paper's central storage-saving device.
///
/// The in-memory area holds *serialized records* (a deque of strings, so
/// addresses are stable as the cache grows) and hands out zero-copy
/// TupleViews over them: retaining a probe-side view copies only the raw
/// record bytes, and consuming the generation probes the views in place —
/// no Tuple is materialized on either side of the cache.
class TupleCache {
 public:
  /// Creates an empty generation holding up to `memory_pages` pages of
  /// tuples in memory before spilling (the paper's default is one page;
  /// Section 5 suggests trading outer-partition area for cache space to
  /// cut cache paging — the cache-reserve ablation exercises this).
  /// The spill file is created lazily on first overflow.
  TupleCache(Disk* disk, const Schema& schema, std::string name,
             uint32_t memory_pages = 1);

  TupleCache(TupleCache&&) = default;
  TupleCache& operator=(TupleCache&&) = default;

  /// Retains a tuple into this generation. Spills a full page to disk.
  Status Add(const Tuple& t);

  /// Retains an already-serialized record (e.g. TupleView::record()) —
  /// the zero-copy retention path; only the record bytes are copied.
  Status AddRecord(std::string_view record);

  /// Views over the records still in the in-memory area (never spilled),
  /// in retention order. Valid until the cache spills, is discarded, or is
  /// destroyed; moving the cache preserves them.
  const std::vector<TupleView>& memory_views() const { return memory_views_; }

  /// Materialized copies of the in-memory records (tests and diagnostics;
  /// the hot path probes memory_views() instead).
  std::vector<Tuple> memory_tuples() const;

  /// Number of spilled pages on disk.
  uint32_t spilled_pages() const {
    return spill_ == nullptr ? 0 : spill_->num_pages();
  }

  /// Reads back one spilled page (charged I/O) and decodes it.
  StatusOr<std::vector<Tuple>> ReadSpilledPage(uint32_t page_no);

  /// Reads back one spilled page (charged I/O) without decoding; callers
  /// pin it in a PageTupleArena and probe views.
  Status ReadSpilledPageRaw(uint32_t page_no, Page* out);

  /// Total tuples in this generation.
  uint64_t num_tuples() const { return total_tuples_; }

  /// Drops the spill file (generation fully consumed).
  Status Discard();

 private:
  Disk* disk_;
  Schema schema_;
  std::string name_;
  uint32_t memory_pages_;
  // Serialized records; deque growth never moves existing elements, so
  // views into them stay valid until the next spill or Discard().
  std::deque<std::string> memory_records_;
  std::vector<TupleView> memory_views_;
  size_t memory_bytes_ = 0;
  std::unique_ptr<StoredRelation> spill_;
  uint64_t total_tuples_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_CORE_TUPLE_CACHE_H_
