#include "core/determine_part_intervals.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "core/choose_intervals.h"
#include "core/estimate_cache.h"
#include "sampling/relation_sampler.h"

namespace tempo {

namespace {

/// Outer-partition write+read component of C_join (Appendix A.2).
double PartitionComponent(uint32_t num_partitions, uint32_t part_size,
                          const CostModel& model) {
  return 2.0 * (static_cast<double>(num_partitions) * model.random_weight +
                static_cast<double>(part_size - 1) *
                    static_cast<double>(num_partitions) *
                    model.sequential_weight);
}

/// Tuple-cache write+read component of C_join (Appendix A.2).
double CacheComponent(const std::vector<uint64_t>& cache_pages,
                      const CostModel& model) {
  double cost = 0.0;
  for (uint64_t m : cache_pages) {
    if (m == 0) continue;
    cost += 2.0 * (model.random_weight +
                   static_cast<double>(m - 1) * model.sequential_weight);
  }
  return cost;
}

/// Shared sweep state: incremental sampling plus a coverage index rebuilt
/// only when the sample set has grown.
class CandidateSweep {
 public:
  CandidateSweep(StoredRelation* r, const PartitionPlanOptions& options,
                 Random* rng, ExecContext* ctx = nullptr)
      : options_(options),
        ctx_(ctx),
        pages_(r->num_pages()),
        tuples_(r->num_tuples()),
        tuples_per_page_(static_cast<double>(tuples_) /
                         static_cast<double>(pages_)),
        sampler_(r, rng),
        scan_cost_(sampler_.ScanCost(options.cost_model.random_weight)) {}

  /// Candidate partition sizes, ascending (see header notes).
  std::vector<uint32_t> Candidates() const {
    const uint32_t area = options_.buffer_pages - 3;
    const uint32_t k_max = options_.buffer_pages - 1;
    uint32_t k_fit = area > 0 ? (pages_ + area - 1) / area : pages_;
    k_fit = std::max<uint32_t>(2, k_fit);
    const uint32_t k_lo = std::min(k_fit, k_max);
    std::vector<uint32_t> candidates;
    for (uint32_t k = k_max; k >= k_lo && k >= 2; --k) {
      uint32_t ps = (pages_ + k - 1) / k;
      if (!candidates.empty() && candidates.back() == ps) continue;
      candidates.push_back(ps);
    }
    if (candidates.empty()) candidates.push_back((pages_ + k_lo - 1) / k_lo);
    return candidates;
  }

  /// Section 4.2's optimization, applied up front: the sweep will
  /// eventually need the sample count of its *largest* candidate, so if
  /// that already exceeds the sequential-scan break-even point, scan now
  /// instead of paying for random draws that the scan would supersede.
  Status PlanSampling(const std::vector<uint32_t>& candidates) {
    if (!options_.in_scan_sampling || candidates.empty()) {
      return Status::OK();
    }
    const uint32_t area = options_.buffer_pages - 3;
    uint32_t max_ps = candidates.back();
    uint32_t error_size = area > max_ps ? area - max_ps : 1;
    uint64_t m = RequiredKolmogorovSamples(pages_, error_size,
                                           options_.kolmogorov_critical);
    m = std::min<uint64_t>(m, sampler_.population());
    if (static_cast<double>(m) * options_.cost_model.random_weight >
        scan_cost_) {
      TraceSpan span = SpanIf(ctx_, Phase::kSampling);
      TEMPO_RETURN_IF_ERROR(sampler_.SwitchToScan());
    }
    return Status::OK();
  }

  /// Ensures the Kolmogorov-required samples for `part_size` are drawn
  /// (random reads, or one scan once that is cheaper) and returns the
  /// estimated C_sample.
  StatusOr<double> EnsureSamples(uint32_t part_size) {
    const uint32_t area = options_.buffer_pages - 3;
    uint32_t error_size = area > part_size ? area - part_size : 1;
    uint64_t m = RequiredKolmogorovSamples(pages_, error_size,
                                           options_.kolmogorov_critical);
    m = std::min<uint64_t>(m, sampler_.population());
    double est = static_cast<double>(m) * options_.cost_model.random_weight;
    if (options_.in_scan_sampling && est > scan_cost_) {
      TraceSpan span = SpanIf(ctx_, Phase::kSampling);
      TEMPO_RETURN_IF_ERROR(sampler_.SwitchToScan());
      est = scan_cost_;
    }
    if (m > sampler_.num_drawn()) {
      TraceSpan span = SpanIf(ctx_, Phase::kSampling);
      TEMPO_RETURN_IF_ERROR(
          sampler_.DrawRandom(m - sampler_.num_drawn()).status());
    }
    return est;
  }

  /// Cost-model view of one candidate. Rebuilds the coverage index only
  /// when the sample set has grown since the last call.
  StatusOr<PartitionCostPoint> Evaluate(uint32_t part_size) {
    PartitionCostPoint point;
    point.part_size_pages = part_size;
    TEMPO_ASSIGN_OR_RETURN(point.c_sample, EnsureSamples(part_size));
    point.required_samples = sampler_.num_drawn();
    if (index_ == nullptr || indexed_samples_ != sampler_.num_drawn()) {
      index_ = std::make_unique<CoverageIndex>(sampler_.samples());
      indexed_samples_ = sampler_.num_drawn();
    }
    uint32_t k = (pages_ + part_size - 1) / part_size;
    PartitionSpec spec = index_->Choose(k);
    std::vector<uint64_t> cache = EstimateCacheSizes(
        sampler_.samples(), tuples_, tuples_per_page_, spec);
    // The paper's formula uses the *nominal* partition count
    // numPartitions = |r| / partSize (Appendix A.2), not the possibly
    // collapsed count of the sample-derived spec: early candidates are
    // evaluated from few samples, and a collapsed spec would make many
    // small partitions look spuriously cheap.
    point.num_partitions = k;
    point.c_partition =
        PartitionComponent(k, part_size, options_.cost_model);
    point.c_cache = CacheComponent(cache, options_.cost_model);
    return point;
  }

  RelationSampler& sampler() { return sampler_; }
  double tuples_per_page() const { return tuples_per_page_; }
  uint32_t pages() const { return pages_; }
  uint64_t tuples() const { return tuples_; }

 private:
  const PartitionPlanOptions& options_;
  ExecContext* ctx_;
  const uint32_t pages_;
  const uint64_t tuples_;
  const double tuples_per_page_;
  RelationSampler sampler_;
  const double scan_cost_;
  std::unique_ptr<CoverageIndex> index_;
  uint64_t indexed_samples_ = 0;
};

/// True when the relation needs no partitioning under these options.
bool TrivialFit(StoredRelation* r, const PartitionPlanOptions& options) {
  return options.forced_num_partitions <= 1 &&
         r->num_pages() <= options.buffer_pages - 3;
}

PartitionPlan TrivialPlan(StoredRelation* r,
                          const PartitionPlanOptions& options) {
  PartitionPlan plan;
  plan.part_size_pages = r->num_pages();
  plan.num_partitions = 1;
  plan.est_join_cost = r->num_pages() == 0
                           ? 0.0
                           : options.cost_model.random_weight +
                                 static_cast<double>(r->num_pages() - 1);
  plan.est_cache_pages.assign(1, 0);
  return plan;
}

}  // namespace

StatusOr<PartitionPlan> DeterminePartIntervals(
    StoredRelation* r, const PartitionPlanOptions& options, Random* rng,
    ExecContext* ctx) {
  if (options.buffer_pages < 4) {
    return Status::InvalidArgument(
        "partition planning needs at least 4 buffer pages");
  }
  if (r->num_pages() == 0 || r->num_tuples() == 0 ||
      TrivialFit(r, options)) {
    return TrivialPlan(r, options);
  }

  CandidateSweep sweep(r, options, rng, ctx);

  // Forced partition count: sample for the corresponding size and return.
  if (options.forced_num_partitions > 1) {
    uint32_t k = options.forced_num_partitions;
    uint32_t part_size = (sweep.pages() + k - 1) / k;
    TEMPO_ASSIGN_OR_RETURN(PartitionCostPoint point, sweep.Evaluate(part_size));
    PartitionPlan plan;
    plan.spec = ChooseIntervals(sweep.sampler().samples(), k);
    plan.num_partitions = static_cast<uint32_t>(plan.spec.num_partitions());
    plan.part_size_pages = part_size;
    plan.samples_drawn = sweep.sampler().num_drawn();
    plan.sampled_by_scan = sweep.sampler().scanned();
    plan.est_sample_cost = point.c_sample;
    plan.est_join_cost = point.c_partition + point.c_cache;
    plan.est_cache_pages =
        EstimateCacheSizes(sweep.sampler().samples(), sweep.tuples(),
                           sweep.tuples_per_page(), plan.spec);
    return plan;
  }

  double best_cost = std::numeric_limits<double>::infinity();
  PartitionCostPoint best;
  const std::vector<uint32_t> candidates = sweep.Candidates();
  TEMPO_RETURN_IF_ERROR(sweep.PlanSampling(candidates));
  for (uint32_t part_size : candidates) {
    TEMPO_ASSIGN_OR_RETURN(PartitionCostPoint point, sweep.Evaluate(part_size));
    if (point.total() <= best_cost) {
      best_cost = point.total();
      best = point;
    }
  }

  // Rebuild the winning spec from the full sample set (a free refinement:
  // every sample has been paid for by now).
  uint32_t k = (sweep.pages() + best.part_size_pages - 1) /
               best.part_size_pages;
  PartitionPlan plan;
  plan.spec = ChooseIntervals(sweep.sampler().samples(), k);
  plan.num_partitions = static_cast<uint32_t>(plan.spec.num_partitions());
  plan.part_size_pages = best.part_size_pages;
  plan.samples_drawn = sweep.sampler().num_drawn();
  plan.sampled_by_scan = sweep.sampler().scanned();
  plan.est_sample_cost = best.c_sample;
  plan.est_join_cost = best.c_partition + best.c_cache;
  plan.est_cache_pages =
      EstimateCacheSizes(sweep.sampler().samples(), sweep.tuples(),
                         sweep.tuples_per_page(), plan.spec);
  return plan;
}

StatusOr<std::vector<PartitionCostPoint>> PartitionCostCurve(
    StoredRelation* r, const PartitionPlanOptions& options, Random* rng) {
  if (options.buffer_pages < 4) {
    return Status::InvalidArgument(
        "partition planning needs at least 4 buffer pages");
  }
  std::vector<PartitionCostPoint> curve;
  if (r->num_pages() == 0 || r->num_tuples() == 0 ||
      TrivialFit(r, options)) {
    return curve;
  }
  CandidateSweep sweep(r, options, rng);
  const std::vector<uint32_t> candidates = sweep.Candidates();
  TEMPO_RETURN_IF_ERROR(sweep.PlanSampling(candidates));
  for (uint32_t part_size : candidates) {
    TEMPO_ASSIGN_OR_RETURN(PartitionCostPoint point, sweep.Evaluate(part_size));
    curve.push_back(point);
  }
  return curve;
}

}  // namespace tempo
