#ifndef TEMPO_CORE_GRACE_PARTITIONER_H_
#define TEMPO_CORE_GRACE_PARTITIONER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/partition_spec.h"
#include "parallel/parallel_for.h"
#include "parallel/scheduler.h"
#include "storage/stored_relation.h"

namespace tempo {

/// How a tuple overlapping several partitioning intervals is placed.
enum class PlacementPolicy {
  /// The paper's strategy (Section 3.3): store the tuple only in the
  /// *last* partition it overlaps; the join migrates it backwards through
  /// the tuple cache. No secondary-storage redundancy.
  kLastOverlap,
  /// The Leung-Muntz strategy the paper argues against [LM92b]: replicate
  /// the tuple into every partition it overlaps. Costs extra storage and
  /// write I/O but needs no migration. Kept as the ablation comparator.
  kReplicate,
};

/// A relation split into per-partition heap files, aligned with a
/// PartitionSpec.
struct PartitionedRelation {
  std::vector<std::unique_ptr<StoredRelation>> parts;
  /// Tuples written across all partitions (> input cardinality only under
  /// kReplicate — the replication overhead the paper avoids).
  uint64_t tuples_written = 0;
  /// Input records routed as zero-copy views (raw record bytes appended
  /// straight to the destination partition, no decode/re-encode). Feeds the
  /// decode_materializations_avoided metric.
  uint64_t records_routed_zero_copy = 0;

  /// Pages across all partition files.
  uint32_t TotalPages() const {
    uint32_t total = 0;
    for (const auto& p : parts) total += p->num_pages();
    return total;
  }

  /// Deletes the partition files from disk.
  void Drop();
};

/// Grace partitioning (Section 3.2, [KTMo83]): scans `input` once through
/// a single input page, routing each tuple to its partition's output
/// buffer; buffers flush to the partition files as their pages fill.
/// Requires one output buffer page per partition within `buffer_pages`
/// ("We assume that the number of partitions is small, and therefore, that
/// sufficient main memory is available to perform the partitioning").
///
/// With a multi-threaded `scheduler`, input pages are read by the calling
/// thread in scan order (charged I/O unchanged under the per-file head
/// model) while morsels of pages are decoded and routed — destination
/// partitions computed — on the scheduler's shared workers; the appends
/// are then replayed in page order, so partition files are byte-identical
/// to the serial run. A null scheduler is the serial mode.
/// `morsel_stats`, when non-null, accumulates dispatch counters.
StatusOr<PartitionedRelation> GracePartition(StoredRelation* input,
                                             const PartitionSpec& spec,
                                             uint32_t buffer_pages,
                                             PlacementPolicy policy,
                                             const std::string& name_prefix,
                                             Scheduler* scheduler = nullptr,
                                             MorselStats* morsel_stats =
                                                 nullptr);

}  // namespace tempo

#endif  // TEMPO_CORE_GRACE_PARTITIONER_H_
