#include "core/radix_join.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>

#include "common/env.h"
#include "parallel/scheduler.h"
#include "parallel/thread_pool.h"

namespace tempo {

uint64_t ResolveRadixBudgetBytes(const ExecOptions& options) {
  if (options.radix_budget_bytes > 0) return options.radix_budget_bytes;
  // Fallback 0 = "unset": fall through to the buffer-derived default
  // (also what a rejected malformed value resolves to, after the parser's
  // warning).
  const uint64_t mb =
      EnvStrictUint64("TEMPO_RADIX_THRESHOLD_MB", 0,
                      std::numeric_limits<uint64_t>::max() >> 20);
  if (mb > 0) return mb << 20;
  return static_cast<uint64_t>(options.buffer_pages) * kPageSize;
}

uint64_t EstimateRadixFootprintBytes(uint32_t pages_r, uint32_t pages_s) {
  return (static_cast<uint64_t>(pages_r) + pages_s) * kPageSize;
}

namespace {

/// One aligned pair of non-empty buckets: index ranges into the two sides'
/// radix-sorted column arrays.
struct BucketTask {
  size_t r_begin, r_end;
  size_t s_begin, s_end;
};

/// One verified match, by original row ordinals. The global sort of these
/// is what pins the emission order to the reference join's.
struct MatchPair {
  uint32_t r_row;
  uint32_t s_row;
};

/// Sequential page scan + column extraction of one input, with the memory
/// budget enforced after every page: `used_bytes` accumulates across both
/// sides, so the abort happens mid-extract at the first page that pushes
/// the combined exact footprint past the budget.
Status ExtractSide(StoredRelation* rel, ColumnExtractor* extractor,
                   uint64_t budget_bytes, uint64_t other_side_bytes) {
  Page page;
  const uint32_t pages = rel->num_pages();
  for (uint32_t p = 0; p < pages; ++p) {
    TEMPO_RETURN_IF_ERROR(rel->ReadPage(p, &page));
    TEMPO_RETURN_IF_ERROR(extractor->AddPage(page).status());
    const uint64_t used = other_side_bytes + extractor->footprint_bytes();
    if (used > budget_bytes) {
      return Status::ResourceExhausted(
          "radix join footprint " + std::to_string(used) +
          " B exceeds budget " + std::to_string(budget_bytes) +
          " B after page " + std::to_string(p) + " of " + rel->name());
    }
  }
  return Status::OK();
}

/// Number of 8-bit passes so the smaller side's per-bucket column state
/// fits `bucket_target_bytes` (assuming even spread; skewed keys simply
/// overflow their bucket, which the probe handles — correctness never
/// depends on the split).
uint32_t ChoosePasses(size_t build_rows, uint32_t bucket_target_bytes) {
  const uint64_t bytes = static_cast<uint64_t>(build_rows) * kColumnRowBytes;
  uint32_t passes = 0;
  while (passes < 4 && (bytes >> (8 * passes)) > bucket_target_bytes) {
    ++passes;
  }
  return passes;
}

/// LSD radix sort of the columns by the low 8*passes bits of the key hash:
/// one stable counting-sort scatter per pass, ping-ponging through
/// `scratch`. After the final pass the arrays are grouped by
/// (hash & ((1 << 8*passes) - 1)) — each final bucket is a contiguous run.
/// Returns the rows moved (for the rows-routed metric).
uint64_t RadixPartition(JoinColumns* cols, JoinColumns* scratch,
                        uint32_t passes) {
  const size_t n = cols->num_rows();
  scratch->Resize(n);
  for (uint32_t pass = 0; pass < passes; ++pass) {
    const uint32_t shift = 8 * pass;
    size_t counts[256] = {};
    for (size_t i = 0; i < n; ++i) {
      ++counts[(cols->key_hashes[i] >> shift) & 0xFF];
    }
    size_t offsets[256];
    size_t sum = 0;
    for (size_t d = 0; d < 256; ++d) {
      offsets[d] = sum;
      sum += counts[d];
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t dst = offsets[(cols->key_hashes[i] >> shift) & 0xFF]++;
      scratch->key_hashes[dst] = cols->key_hashes[i];
      scratch->starts[dst] = cols->starts[i];
      scratch->ends[dst] = cols->ends[i];
      scratch->rows[dst] = cols->rows[i];
    }
    std::swap(*cols, *scratch);
  }
  return static_cast<uint64_t>(n) * passes;
}

/// Aligns the two radix-sorted sides into bucket-pair tasks with one
/// two-pointer sweep; buckets empty on either side produce no task.
std::vector<BucketTask> AlignBuckets(const JoinColumns& rc,
                                     const JoinColumns& sc, uint64_t mask) {
  std::vector<BucketTask> tasks;
  const size_t nr = rc.num_rows();
  const size_t ns = sc.num_rows();
  auto run_end = [mask](const JoinColumns& c, size_t i) {
    const uint64_t b = c.key_hashes[i] & mask;
    const size_t n = c.num_rows();
    while (i < n && (c.key_hashes[i] & mask) == b) ++i;
    return i;
  };
  size_t i = 0, j = 0;
  while (i < nr && j < ns) {
    const uint64_t bi = rc.key_hashes[i] & mask;
    const uint64_t bj = sc.key_hashes[j] & mask;
    if (bi < bj) {
      i = run_end(rc, i);
    } else if (bj < bi) {
      j = run_end(sc, j);
    } else {
      const size_t ie = run_end(rc, i);
      const size_t je = run_end(sc, j);
      tasks.push_back({i, ie, j, je});
      i = ie;
      j = je;
    }
  }
  return tasks;
}

/// Joins one aligned bucket pair: dense 256-way position table on the next
/// 8 hash bits over the smaller side, probed with the larger side. The
/// interval-overlap quick test and the full-hash compare run entirely on
/// the flat columns; only survivors touch record bytes, to verify key
/// equality with Value semantics (hash collisions, NULL == NULL).
void BucketJoin(const BucketTask& t, const JoinColumns& rc,
                const JoinColumns& sc, const std::vector<TupleView>& r_views,
                const std::vector<TupleView>& s_views,
                const NaturalJoinLayout& layout, uint32_t shift,
                std::vector<MatchPair>* out) {
  const size_t nr = t.r_end - t.r_begin;
  const size_t ns = t.s_end - t.s_begin;
  const bool build_r = nr <= ns;
  const JoinColumns& bc = build_r ? rc : sc;
  const size_t b_begin = build_r ? t.r_begin : t.s_begin;
  const size_t nb = build_r ? nr : ns;
  const JoinColumns& pc = build_r ? sc : rc;
  const size_t p_begin = build_r ? t.s_begin : t.r_begin;
  const size_t np = build_r ? ns : nr;

  // Dense sub-bucket table (the 165DB shape): counts/offsets over the
  // digit above the partition bits, then a position scatter.
  uint32_t counts[256] = {};
  for (size_t i = 0; i < nb; ++i) {
    ++counts[(bc.key_hashes[b_begin + i] >> shift) & 0xFF];
  }
  uint32_t offsets[256];
  uint32_t sum = 0;
  for (size_t d = 0; d < 256; ++d) {
    offsets[d] = sum;
    sum += counts[d];
  }
  std::vector<uint32_t> positions(nb);
  {
    uint32_t fill[256];
    std::memcpy(fill, offsets, sizeof(fill));
    for (size_t i = 0; i < nb; ++i) {
      positions[fill[(bc.key_hashes[b_begin + i] >> shift) & 0xFF]++] =
          static_cast<uint32_t>(i);
    }
  }

  for (size_t p = 0; p < np; ++p) {
    const size_t pi = p_begin + p;
    const uint64_t h = pc.key_hashes[pi];
    const uint32_t d = (h >> shift) & 0xFF;
    const uint32_t lo = offsets[d];
    const uint32_t hi = lo + counts[d];
    for (uint32_t k = lo; k < hi; ++k) {
      const size_t bi = b_begin + positions[k];
      if (bc.key_hashes[bi] != h) continue;
      // Interval-overlap quick test on the columns.
      if (bc.starts[bi] > pc.ends[pi] || pc.starts[pi] > bc.ends[bi]) {
        continue;
      }
      const uint32_t r_row = build_r ? bc.rows[bi] : pc.rows[pi];
      const uint32_t s_row = build_r ? pc.rows[pi] : bc.rows[bi];
      if (!r_views[r_row].EqualOnAttrs(layout.r_join_attrs,
                                       layout.s_join_attrs, s_views[s_row])) {
        continue;
      }
      out->push_back({r_row, s_row});
    }
  }
}

}  // namespace

StatusOr<JoinRunStats> RadixVtJoin(StoredRelation* r, StoredRelation* s,
                                   StoredRelation* out,
                                   const RadixJoinOptions& options,
                                   ExecContext* ctx) {
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout, PrepareJoin(r, s, out));
  TEMPO_RETURN_IF_ERROR(RequireSharedChrononPredicate(options, "radix"));
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&r->disk()->accountant());
  }
  IoAccountant& accountant = r->disk()->accountant();
  const IoStats io_before = accountant.stats();

  JoinRunStats stats;
  const uint64_t budget = ResolveRadixBudgetBytes(options);
  const uint64_t est =
      EstimateRadixFootprintBytes(r->num_pages(), s->num_pages());
  stats.Set(Metric::kRadixBudgetBytes, static_cast<double>(budget));
  stats.Set(Metric::kRadixEstFootprintBytes, static_cast<double>(est));

  TraceSpan root = SpanIf(ctx, Phase::kRadixJoin);

  // --- radix_extract: the run's only charged I/O -------------------------
  ColumnExtractor r_extract(&r->schema(), &layout.r_join_attrs);
  ColumnExtractor s_extract(&s->schema(), &layout.s_join_attrs);
  {
    TraceSpan extract_span = SpanUnderIf(ctx, root, Phase::kRadixExtract);
    Status st = ExtractSide(r, &r_extract, budget, 0);
    if (st.ok()) {
      st = ExtractSide(s, &s_extract, budget, r_extract.footprint_bytes());
    }
    if (!st.ok()) {
      // Surface how far extraction got before the abort, so EXPLAIN can
      // show the fallback decision even though no stats are returned.
      SetMetric(ctx, Metric::kRadixBudgetBytes, static_cast<double>(budget));
      SetMetric(ctx, Metric::kRadixEstFootprintBytes,
                static_cast<double>(est));
      SetMetric(ctx, Metric::kRadixActFootprintBytes,
                static_cast<double>(r_extract.footprint_bytes() +
                                    s_extract.footprint_bytes()));
      return st;
    }
  }
  const uint64_t actual =
      r_extract.footprint_bytes() + s_extract.footprint_bytes();
  stats.Set(Metric::kRadixActFootprintBytes, static_cast<double>(actual));

  JoinColumns& rc = r_extract.columns();
  JoinColumns& sc = s_extract.columns();
  const size_t build_rows = std::min(rc.num_rows(), sc.num_rows());
  const uint32_t passes = ChoosePasses(build_rows, options.bucket_target_bytes);
  const uint64_t mask = passes == 0 ? 0 : (uint64_t{1} << (8 * passes)) - 1;
  stats.Set(Metric::kRadixPasses, passes);
  stats.Set(Metric::kRadixFanout,
            static_cast<double>(uint64_t{1} << (8 * passes)));

  // --- radix_partition ---------------------------------------------------
  std::vector<BucketTask> tasks;
  {
    TraceSpan part_span = SpanUnderIf(ctx, root, Phase::kRadixPartition);
    JoinColumns scratch;
    uint64_t routed = RadixPartition(&rc, &scratch, passes);
    routed += RadixPartition(&sc, &scratch, passes);
    stats.Set(Metric::kRadixRowsRouted, static_cast<double>(routed));
    tasks = AlignBuckets(rc, sc, mask);
  }
  stats.Set(Metric::kRadixBuckets, static_cast<double>(tasks.size()));

  // --- radix_probe: parallel bucket build/probe, ordered emission --------
  {
    TraceSpan probe_span = SpanUnderIf(ctx, root, Phase::kRadixProbe);
    Scheduler* scheduler = SchedulerOf(ctx);
    const ParallelOptions parallel = SchedulerParallel(scheduler);
    const uint32_t shift = 8 * passes;
    std::vector<std::vector<MatchPair>> per_task(tasks.size());
    MorselStats morsels;
    Status st = ParallelFor(
        SchedulerPool(scheduler), tasks.size(), /*morsel_size=*/1,
        [&](size_t, size_t begin, size_t end) {
          for (size_t t = begin; t < end; ++t) {
            BucketJoin(tasks[t], rc, sc, r_extract.views(), s_extract.views(),
                       layout, shift, &per_task[t]);
          }
          return Status::OK();
        },
        &morsels);
    TEMPO_RETURN_IF_ERROR(st);
    if (parallel.enabled()) {
      probe_span.AddMorsels(morsels);
      stats.Set(Metric::kMorselsDispatched,
                static_cast<double>(morsels.morsels_dispatched));
      stats.Set(Metric::kParallelEfficiency,
                morsels.Efficiency(parallel.num_threads));
    }

    // Deterministic output: merge the per-bucket matches and sort globally
    // by (r_row, s_row) — exactly the reference join's r-outer/s-inner
    // emission order, independent of bucket layout and thread count.
    size_t total = 0;
    for (const auto& v : per_task) total += v.size();
    std::vector<MatchPair> pairs;
    pairs.reserve(total);
    for (const auto& v : per_task) {
      pairs.insert(pairs.end(), v.begin(), v.end());
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const MatchPair& a, const MatchPair& b) {
                if (a.r_row != b.r_row) return a.r_row < b.r_row;
                return a.s_row < b.s_row;
              });

    ResultWriter writer(out);
    for (const MatchPair& p : pairs) {
      const TupleView& xv = r_extract.views()[p.r_row];
      const TupleView& yv = s_extract.views()[p.s_row];
      const std::optional<Interval> overlap =
          Overlap(xv.interval(), yv.interval());
      if (!PredicateAdmitsOverlapping(options.predicate, xv.interval(),
                                      yv.interval())) {
        continue;
      }
      TEMPO_RETURN_IF_ERROR(writer.Emit(layout, xv, yv, *overlap));
    }
    TEMPO_RETURN_IF_ERROR(writer.Finish());
    stats.output_tuples = writer.count();
  }

  root.End();
  stats.io = accountant.stats() - io_before;
  ExportMetrics(stats, ctx);
  return stats;
}

}  // namespace tempo
