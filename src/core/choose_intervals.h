#ifndef TEMPO_CORE_CHOOSE_INTERVALS_H_
#define TEMPO_CORE_CHOOSE_INTERVALS_H_

#include <cstdint>
#include <vector>

#include "core/partition_spec.h"
#include "temporal/interval.h"

namespace tempo {

/// Algorithm chooseIntervals (Appendix A.3): derives a partitioning of
/// valid time from a set of sampled validity intervals such that each
/// partition covers (approximately) an equal share of the sampled
/// *chronon-coverage multiset* — the multiset containing every chronon of
/// every sampled interval. Long-lived samples therefore pull boundaries
/// apart in their region, equalizing expected partition cardinality.
///
/// The paper's pseudocode materializes and sorts that multiset; for
/// long-lived tuples that is O(duration) per sample, so this
/// implementation computes the same equi-depth quantile boundaries with an
/// endpoint sweep in O(samples · log samples): coverage is piecewise
/// constant between interval endpoints, and the q-th boundary is found by
/// walking the accumulated weight. The resulting spec is identical to what
/// the pseudocode's sorted multiset would yield.
///
/// The first and last partitions are extended to ±inf so the spec covers
/// the whole line even where no sample fell (the inner relation may have
/// tuples outside the sampled range).
///
/// Degenerate inputs collapse gracefully: fewer distinct boundary chronons
/// than requested partitions yields fewer partitions; empty samples or
/// num_partitions <= 1 yield the trivial single-partition spec.
PartitionSpec ChooseIntervals(const std::vector<Interval>& samples,
                              uint32_t num_partitions);

/// Precomputed form of ChooseIntervals: builds the coverage segments once
/// (O(m log m)) and answers Choose(k) for any k in O(k + segments). The
/// optimizer examines many candidate partition counts over the same
/// growing sample set, so it rebuilds this index only when new samples
/// arrive instead of re-sorting per candidate.
class CoverageIndex {
 public:
  explicit CoverageIndex(const std::vector<Interval>& samples);

  /// Same result as ChooseIntervals(samples, num_partitions).
  PartitionSpec Choose(uint32_t num_partitions) const;

  bool empty() const { return segments_.empty(); }

 private:
  struct Segment {
    Chronon start;
    Chronon end;                   // inclusive
    int64_t coverage;              // > 0
    unsigned __int128 cum_before;  // multiset positions before this segment
  };

  std::vector<Segment> segments_;
  unsigned __int128 total_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_CORE_CHOOSE_INTERVALS_H_
