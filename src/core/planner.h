#ifndef TEMPO_CORE_PLANNER_H_
#define TEMPO_CORE_PLANNER_H_

#include <string>

#include "core/partition_join.h"
#include "join/join_common.h"

namespace tempo {

/// The evaluation strategies for the valid-time natural join. Enumerator
/// order is the kPlannedAlgorithm metric encoding (0 = NL, 1 = SM, 2 = PJ,
/// 3 = radix, 4 = sweep); append only.
enum class JoinAlgorithm {
  kNestedLoop,
  kSortMerge,
  kPartition,
  kInMemoryRadix,
  kSweep,
};

const char* JoinAlgorithmName(JoinAlgorithm a);

/// One algorithm's planner estimate.
struct JoinEstimate {
  JoinAlgorithm algorithm;
  double estimated_cost = 0.0;
  std::string rationale;
};

/// The planner's decision: the chosen algorithm plus every candidate's
/// estimate (sorted best-first) for EXPLAIN-style introspection.
struct JoinPlan {
  JoinAlgorithm algorithm;
  std::vector<JoinEstimate> candidates;
};

/// Analytic I/O cost estimates, catalog-only (no data access):
///
///  - nested-loops: the paper's exact closed form
///    (NestedLoopAnalyticCost);
///  - sort-merge: run formation + merge passes + co-scan, assuming no
///    back-up (optimistic for long-lived-heavy data — the planner cannot
///    see interval distributions without sampling, which is exactly the
///    partition join's own planning trick);
///  - partition join: one sampling scan bound + Grace write/read of both
///    inputs + inner scan (cache traffic unknown, omitted; also
///    optimistic, to the same degree).
///
/// The estimates are deliberately cheap and coarse; tests pin their
/// regime behaviour (nested-loops wins when an input fits in memory,
/// partition join wins in the paper's big-inputs/modest-memory regime).
double EstimateNestedLoopCost(uint32_t pages_r, uint32_t pages_s,
                              uint32_t buffer_pages, const CostModel& model);
double EstimateSortMergeCost(uint32_t pages_r, uint32_t pages_s,
                             uint32_t buffer_pages, const CostModel& model);
double EstimatePartitionJoinCost(uint32_t pages_r, uint32_t pages_s,
                                 uint32_t buffer_pages,
                                 const CostModel& model);

/// I/O cost of the in-memory radix path when it is eligible: one
/// sequential pass over each input (all other work is CPU/cache traffic,
/// which the I/O cost model does not price — the point of the fast path).
/// Eligibility is a memory question, not a cost one: PlanVtJoin only
/// offers this candidate when EstimateRadixFootprintBytes fits the
/// resolved budget (see core/radix_join.h).
double EstimateRadixJoinCost(uint32_t pages_r, uint32_t pages_s,
                             const CostModel& model);

/// I/O cost of the endpoint-sweep executor: sort both inputs plus one
/// co-scan — identical to the sort-merge formula (the sweep's active maps
/// are in-memory state the I/O model does not price). It is listed after
/// sort-merge, so at equal estimated I/O the default overlap predicate
/// keeps the established pick; the sweep wins outright whenever the
/// predicate rules the other executors out.
double EstimateSweepJoinCost(uint32_t pages_r, uint32_t pages_s,
                             uint32_t buffer_pages, const CostModel& model);

/// Ranks the algorithms for r |X|_v s under `options` and returns the
/// full ranking (the in-memory radix path included; when its estimated
/// footprint exceeds the memory budget it is ranked last at infinite cost
/// with the footprint-vs-budget rationale). The ranking is predicate-
/// aware: predicates whose relations all imply a shared chronon admit
/// every executor; adjacency predicates (meets/met-by) rank every
/// non-sweep executor ineligible at infinite cost; predicates containing
/// before/after are not plannable at all (ExecuteVtJoin rejects them —
/// only the reference oracle evaluates those).
JoinPlan PlanVtJoin(StoredRelation* r, StoredRelation* s,
                    const VtJoinOptions& options);

/// Plans, then executes the chosen algorithm. The returned stats carry
/// the usual executor metrics plus kPlannedAlgorithm (0=NL, 1=SM, 2=PJ,
/// 3=radix) and kPlannedCost. If the radix path was chosen but exceeded
/// its memory budget mid-extract, execution transparently falls back to
/// the paged Grace join and sets kRadixFallback=1.
///
/// With a non-null `ctx`, planning runs under a kPlan span, the planner's
/// estimate is annotated onto the chosen executor's root span (so
/// ExplainAnalyze prints estimated vs. actual cost side by side), and the
/// executor's phases are traced as usual.
StatusOr<JoinRunStats> ExecuteVtJoin(StoredRelation* r, StoredRelation* s,
                                     StoredRelation* out,
                                     const VtJoinOptions& options,
                                     ExecContext* ctx = nullptr);

}  // namespace tempo

#endif  // TEMPO_CORE_PLANNER_H_
