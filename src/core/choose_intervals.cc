#include "core/choose_intervals.h"

#include <algorithm>
#include <map>

namespace tempo {

CoverageIndex::CoverageIndex(const std::vector<Interval>& samples) {
  if (samples.empty()) return;

  // Coverage deltas at interval endpoints: +1 at start, -1 past end.
  std::map<Chronon, int64_t> deltas;
  for (const Interval& iv : samples) {
    deltas[iv.start()] += 1;
    if (iv.end() != kChrononMax) deltas[iv.end() + 1] -= 1;
  }

  // Piecewise-constant coverage segments [b_k, b_{k+1} - 1]; the total is
  // the size of the covered-chronon multiset the paper's pseudocode
  // materializes.
  int64_t coverage = 0;
  auto it = deltas.begin();
  while (it != deltas.end()) {
    Chronon seg_start = it->first;
    coverage += it->second;
    ++it;
    Chronon seg_end = (it == deltas.end()) ? seg_start : it->first - 1;
    if (coverage > 0 && seg_end >= seg_start) {
      Segment seg;
      seg.start = seg_start;
      seg.end = seg_end;
      seg.coverage = coverage;
      seg.cum_before = total_;
      segments_.push_back(seg);
      unsigned __int128 len =
          static_cast<unsigned __int128>(seg_end - seg_start) + 1;
      total_ += len * static_cast<unsigned __int128>(coverage);
    }
  }
}

PartitionSpec CoverageIndex::Choose(uint32_t num_partitions) const {
  if (segments_.empty() || total_ == 0 || num_partitions <= 1) {
    return PartitionSpec();
  }
  // Equi-depth boundaries: the chronon at multiset position
  // ceil(W * q / n) for q = 1 .. n-1.
  std::vector<Chronon> boundaries;
  size_t seg_idx = 0;
  const Chronon global_max = segments_.back().end;
  for (uint32_t q = 1; q < num_partitions; ++q) {
    unsigned __int128 target =
        (total_ * q + num_partitions - 1) / num_partitions;  // ceil
    if (target == 0) target = 1;
    // Segments and targets are both increasing; advance monotonically.
    while (seg_idx + 1 < segments_.size() &&
           segments_[seg_idx + 1].cum_before < target) {
      ++seg_idx;
    }
    const Segment& seg = segments_[seg_idx];
    unsigned __int128 offset =
        (target - seg.cum_before - 1) /
        static_cast<unsigned __int128>(seg.coverage);
    Chronon boundary = seg.start + static_cast<Chronon>(offset);
    if (boundary >= global_max) continue;  // would create an empty tail
    if (!boundaries.empty() && boundary <= boundaries.back()) continue;
    boundaries.push_back(boundary);
  }
  auto spec = PartitionSpec::FromBoundaries(boundaries);
  TEMPO_CHECK(spec.ok());
  return *std::move(spec);
}

PartitionSpec ChooseIntervals(const std::vector<Interval>& samples,
                              uint32_t num_partitions) {
  return CoverageIndex(samples).Choose(num_partitions);
}

}  // namespace tempo
