#include "core/tuple_cache.h"

namespace tempo {

namespace {
// Conservative per-record page overhead: 4-byte slot.
constexpr size_t kSlotOverhead = 4;
constexpr size_t kPagePayload = kPageSize - 4;
}  // namespace

TupleCache::TupleCache(Disk* disk, const Schema& schema, std::string name,
                       uint32_t memory_pages)
    : disk_(disk),
      schema_(schema),
      name_(std::move(name)),
      memory_pages_(memory_pages == 0 ? 1 : memory_pages) {}

Status TupleCache::Add(const Tuple& t) {
  std::string record;
  t.SerializeTo(schema_, &record);
  return AddRecord(record);
}

Status TupleCache::AddRecord(std::string_view record) {
  size_t bytes = record.size() + kSlotOverhead;
  if (memory_bytes_ + bytes > kPagePayload * memory_pages_ &&
      !memory_records_.empty()) {
    // The in-memory cache area is full: flush it to the spill file and
    // start afresh. This invalidates outstanding memory views — spills
    // only happen while a generation is being *built*; the consumption
    // pass never adds to the generation it probes.
    if (spill_ == nullptr) {
      spill_ = std::make_unique<StoredRelation>(disk_, schema_,
                                                name_ + ".cache");
    }
    for (const std::string& cached : memory_records_) {
      TEMPO_RETURN_IF_ERROR(spill_->AppendRecord(cached));
    }
    TEMPO_RETURN_IF_ERROR(spill_->Flush());
    memory_records_.clear();
    memory_views_.clear();
    memory_bytes_ = 0;
  }
  memory_records_.emplace_back(record);
  const std::string& pinned = memory_records_.back();
  memory_views_.push_back(
      TupleView::Trusted(schema_.layout(), pinned.data(), pinned.size()));
  memory_bytes_ += bytes;
  ++total_tuples_;
  return Status::OK();
}

std::vector<Tuple> TupleCache::memory_tuples() const {
  std::vector<Tuple> out;
  out.reserve(memory_views_.size());
  for (const TupleView& v : memory_views_) out.push_back(v.Materialize());
  return out;
}

StatusOr<std::vector<Tuple>> TupleCache::ReadSpilledPage(uint32_t page_no) {
  TEMPO_CHECK(spill_ != nullptr);
  return spill_->ReadPageTuples(page_no);
}

Status TupleCache::ReadSpilledPageRaw(uint32_t page_no, Page* out) {
  TEMPO_CHECK(spill_ != nullptr);
  return spill_->ReadPage(page_no, out);
}

Status TupleCache::Discard() {
  if (spill_ != nullptr) {
    TEMPO_RETURN_IF_ERROR(disk_->DeleteFile(spill_->file_id()));
    spill_.reset();
  }
  memory_records_.clear();
  memory_views_.clear();
  memory_bytes_ = 0;
  total_tuples_ = 0;
  return Status::OK();
}

}  // namespace tempo
