#include "core/tuple_cache.h"

namespace tempo {

namespace {
// Conservative per-record page overhead: 4-byte slot.
constexpr size_t kSlotOverhead = 4;
constexpr size_t kPagePayload = kPageSize - 4;
}  // namespace

TupleCache::TupleCache(Disk* disk, const Schema& schema, std::string name,
                       uint32_t memory_pages)
    : disk_(disk),
      schema_(schema),
      name_(std::move(name)),
      memory_pages_(memory_pages == 0 ? 1 : memory_pages) {}

Status TupleCache::Add(const Tuple& t) {
  size_t bytes = t.SerializedSize(schema_) + kSlotOverhead;
  if (memory_bytes_ + bytes > kPagePayload * memory_pages_ &&
      !memory_.empty()) {
    // The in-memory cache area is full: flush it to the spill file and
    // start afresh.
    if (spill_ == nullptr) {
      spill_ = std::make_unique<StoredRelation>(disk_, schema_,
                                                name_ + ".cache");
    }
    for (const Tuple& cached : memory_) {
      TEMPO_RETURN_IF_ERROR(spill_->Append(cached));
    }
    TEMPO_RETURN_IF_ERROR(spill_->Flush());
    memory_.clear();
    memory_bytes_ = 0;
  }
  memory_.push_back(t);
  memory_bytes_ += bytes;
  ++total_tuples_;
  return Status::OK();
}

StatusOr<std::vector<Tuple>> TupleCache::ReadSpilledPage(uint32_t page_no) {
  TEMPO_CHECK(spill_ != nullptr);
  return spill_->ReadPageTuples(page_no);
}

Status TupleCache::Discard() {
  if (spill_ != nullptr) {
    TEMPO_RETURN_IF_ERROR(disk_->DeleteFile(spill_->file_id()));
    spill_.reset();
  }
  memory_.clear();
  memory_bytes_ = 0;
  total_tuples_ = 0;
  return Status::OK();
}

}  // namespace tempo
