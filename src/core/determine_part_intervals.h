#ifndef TEMPO_CORE_DETERMINE_PART_INTERVALS_H_
#define TEMPO_CORE_DETERMINE_PART_INTERVALS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "core/partition_spec.h"
#include "obs/exec_context.h"
#include "sampling/kolmogorov.h"
#include "storage/io_accountant.h"
#include "storage/stored_relation.h"

namespace tempo {

/// Options for the partition-interval optimizer.
struct PartitionPlanOptions {
  /// Total main-memory budget in pages. The outer-partition area gets
  /// buffer_pages - 3 of them (Figure 3 reserves one page each for the
  /// inner relation, the tuple cache, and the result).
  uint32_t buffer_pages = 2048;

  CostModel cost_model = CostModel::Ratio(5.0);

  /// Kolmogorov critical value; 1.63 = the paper's 99% confidence.
  double kolmogorov_critical = KolmogorovCritical::k99;

  /// Section 4.2 optimization: when the Kolmogorov bound asks for more
  /// random samples than a sequential scan costs, scan instead. Disabling
  /// this reproduces the paper's "initial assumption" (one random access
  /// per sample) for the sampling ablation.
  bool in_scan_sampling = true;

  /// If nonzero, skip cost optimization and build a spec with exactly this
  /// many (sample-equi-depth) partitions.
  uint32_t forced_num_partitions = 0;
};

/// The optimizer's output: the partitioning plus the estimates that chose
/// it.
struct PartitionPlan {
  PartitionSpec spec;
  uint32_t part_size_pages = 0;  ///< estimated pages per outer partition
  uint32_t num_partitions = 1;
  uint64_t samples_drawn = 0;
  bool sampled_by_scan = false;
  double est_sample_cost = 0.0;       ///< C_sample of the chosen plan
  double est_join_cost = 0.0;         ///< C_join of the chosen plan
  /// Estimated tuple-cache pages per partition (EstimateCacheSizes).
  std::vector<uint64_t> est_cache_pages;
};

/// Algorithm determinePartIntervals (Appendix A.2): examines candidate
/// partition sizes, drawing Kolmogorov-sized sample sets incrementally
/// (each sample is a charged random page read — or free once in-scan mode
/// has paid for one sequential scan), estimates
///     C_sample(partSize) + C_join(partSize)
/// for each, and returns the partitioning intervals of the minimum.
///
/// C_join follows the paper:
///   2 * (numPartitions * w_ran + (partSize-1) * numPartitions * w_seq)
///   + sum over partitions with cache m > 0 of 2 * (w_ran + (m-1) * w_seq)
/// i.e. write+read of the outer partitions plus write+read of the tuple
/// caches. (Grace partitioning's input-scan cost is the same for every
/// candidate and is omitted, as in the paper.)
///
/// Implementation refinements over the pseudocode, documented in DESIGN.md:
/// only partition sizes that change ceil(pages/partSize) are examined (the
/// cost is constant between them), partition counts are capped so Grace
/// partitioning keeps >= 1 output buffer page per partition, and the final
/// spec is rebuilt from the full sample set.
///
/// A relation that fits in the partition area yields the trivial
/// single-partition plan with no sampling.
///
/// With a non-null `ctx`, the sampling I/O (random draws or the
/// break-even sequential scan) is traced as kSampling spans, nested under
/// whatever span the caller holds open (PartitionVtJoin wraps this call
/// in kChooseIntervals).
StatusOr<PartitionPlan> DeterminePartIntervals(StoredRelation* r,
                                               const PartitionPlanOptions& options,
                                               Random* rng,
                                               ExecContext* ctx = nullptr);

/// One point of the Figure-4 cost curve: the optimizer's view of a
/// candidate partition size.
struct PartitionCostPoint {
  uint32_t part_size_pages = 0;
  uint32_t num_partitions = 0;
  uint64_t required_samples = 0;
  double c_sample = 0.0;     ///< sampling cost (rises with partSize)
  double c_cache = 0.0;      ///< tuple-cache paging component of C_join
  double c_partition = 0.0;  ///< outer partition write+read component
  double total() const { return c_sample + c_cache + c_partition; }
};

/// Evaluates the optimizer's cost model at every candidate partition size
/// and returns the full curve — the data behind the paper's Figure 4
/// ("I/O Cost for Partition Size"): C_sample increases monotonically with
/// partSize while tuple-cache paging decreases, and the optimizer picks
/// the minimum of the sum. Performs the same (charged) sampling the
/// optimizer would.
StatusOr<std::vector<PartitionCostPoint>> PartitionCostCurve(
    StoredRelation* r, const PartitionPlanOptions& options, Random* rng);

}  // namespace tempo

#endif  // TEMPO_CORE_DETERMINE_PART_INTERVALS_H_
