#ifndef TEMPO_CORE_PARTITION_COALESCE_H_
#define TEMPO_CORE_PARTITION_COALESCE_H_

#include "core/partition_join.h"

namespace tempo {

/// Disk-based coalescing via the paper's partition framework — a
/// demonstration that the valid-time partitioning machinery generalizes
/// beyond joins (the paper: "the techniques presented are also applicable
/// to other valid-time joins"; coalescing is the other staple operation
/// on valid-time relations [JSS92a]).
///
/// The input is Grace-partitioned by validity interval with last-overlap
/// placement and processed from the latest partition to the earliest,
/// exactly like joinPartitions. Within a step, value-equivalent tuples
/// merge into maximal runs. A run is *emitted* once no tuple in an
/// earlier partition could extend it — every potential extender ends at
/// run.start-1 or later, so once run.start-1 lies inside the current
/// partition all extenders have already been processed. Runs starting at
/// the partition boundary are *carried* to the next (earlier) step, the
/// coalescer's analogue of the long-lived tuple migration.
///
/// The output is the coalesced relation (same schema); I/O is charged as
/// usual. Metrics: kPartitions, kCarriedRuns. With a non-null `ctx`, the
/// run is traced as a kCoalesce span with the usual chooseIntervals /
/// sampling children.
StatusOr<JoinRunStats> PartitionCoalesce(StoredRelation* in,
                                         StoredRelation* out,
                                         const PartitionJoinOptions& options,
                                         ExecContext* ctx = nullptr);

}  // namespace tempo

#endif  // TEMPO_CORE_PARTITION_COALESCE_H_
