#ifndef TEMPO_CORE_ESTIMATE_CACHE_H_
#define TEMPO_CORE_ESTIMATE_CACHE_H_

#include <cstdint>
#include <vector>

#include "core/partition_spec.h"
#include "temporal/interval.h"

namespace tempo {

/// Algorithm estimateCacheSizes (Appendix A.4): estimates, for each
/// partition, how many pages of the tuple cache the join step will write
/// and re-read.
///
/// A tuple stored in its last overlapping partition `max` is migrated into
/// every earlier partition it overlaps — it occupies the tuple cache of
/// partitions [min, max-1]. Each sample therefore increments the count of
/// those partitions; the counts are scaled by the inverse sampling
/// fraction (relation_tuples / |samples|) and converted to pages with the
/// relation's observed tuples-per-page density.
///
/// Per the paper's similarity assumption (Section 3.4), samples come from
/// the *outer* relation but estimate the *inner* relation's cache — a
/// single sample set serves both purposes. (Note: the pseudocode in the
/// paper prints the scaling factor as |samples|/|r|, which would scale the
/// counts *down*; the prose — "a scaling factor to account for the
/// percentage of the relation sampled" — requires |r|/|samples|, which is
/// what this implements.)
///
/// Returns one page count per partition (the count for the last partition
/// is always 0 — nothing is migrated past partition 1 since evaluation
/// proceeds from p_n down to p_1; index i of the result corresponds to the
/// cache written *while joining* partition i+1 and read while joining
/// partition i... in short: result[i] = estimated pages of tuples cached
/// *for* partition i).
std::vector<uint64_t> EstimateCacheSizes(const std::vector<Interval>& samples,
                                         uint64_t relation_tuples,
                                         double tuples_per_page,
                                         const PartitionSpec& spec);

}  // namespace tempo

#endif  // TEMPO_CORE_ESTIMATE_CACHE_H_
