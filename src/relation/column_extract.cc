#include "relation/column_extract.h"

namespace tempo {

StatusOr<size_t> ColumnExtractor::AddPage(const Page& page) {
  pages_.push_back(page);
  const Page& pinned = pages_.back();
  const RecordLayout& layout = schema_->layout();
  const size_t before = views_.size();
  const size_t after = before + pinned.num_records();
  views_.reserve(after);
  cols_.Reserve(after);
  for (uint16_t slot = 0; slot < pinned.num_records(); ++slot) {
    std::string_view rec = pinned.GetRecord(slot);
    auto view = TupleView::Make(layout, rec.data(), rec.size());
    if (!view.ok()) {
      // Drop the partially extracted page so the extractor stays
      // consistent.
      views_.resize(before);
      cols_.Resize(before);
      pages_.pop_back();
      return view.status();
    }
    const Interval iv = view->interval();
    cols_.key_hashes.push_back(view->HashAttrs(*key_attrs_));
    cols_.starts.push_back(iv.start());
    cols_.ends.push_back(iv.end());
    cols_.rows.push_back(static_cast<uint32_t>(views_.size()));
    views_.push_back(*view);
  }
  return views_.size() - before;
}

}  // namespace tempo
