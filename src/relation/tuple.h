#ifndef TEMPO_RELATION_TUPLE_H_
#define TEMPO_RELATION_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "relation/schema.h"
#include "relation/value.h"
#include "temporal/interval.h"

namespace tempo {

/// A tuple of a valid-time relation: explicit attribute values (in schema
/// order) stamped with a validity interval (paper Section 2).
class Tuple {
 public:
  Tuple() : interval_(Interval::At(0)) {}
  Tuple(std::vector<Value> values, Interval interval)
      : values_(std::move(values)), interval_(interval) {}

  size_t num_values() const { return values_.size(); }
  const Value& value(size_t i) const {
    TEMPO_DCHECK(i < values_.size());
    return values_[i];
  }
  const std::vector<Value>& values() const { return values_; }

  const Interval& interval() const { return interval_; }
  void set_interval(Interval iv) { interval_ = iv; }

  /// Value equality on explicit attributes AND timestamps.
  bool operator==(const Tuple& other) const {
    return interval_ == other.interval_ && values_ == other.values_;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  /// Value equivalence [JSS92a]: equal on explicit attributes, timestamps
  /// ignored. Coalescing merges value-equivalent tuples.
  bool ValueEquivalent(const Tuple& other) const {
    return values_ == other.values_;
  }

  /// Combined hash over a subset of attribute positions; the equi-join key
  /// hash of the paper's A attributes.
  size_t HashAttrs(const std::vector<size_t>& positions) const;

  /// True iff this tuple and `other` agree on the aligned attribute
  /// positions (the snapshot equi-join condition x[A] = y[A]).
  bool EqualOnAttrs(const std::vector<size_t>& mine,
                    const std::vector<size_t>& theirs,
                    const Tuple& other) const;

  /// "(v1, v2, ...) @ [s, e]"
  std::string ToString() const;

  // --- Serialization --------------------------------------------------
  // Record wire format (little-endian):
  //   int64 Vs, int64 Ve,
  //   for each attribute (schema order):
  //     int64 / double: 8 raw bytes
  //     string: uint32 length + bytes
  // Schemas are stored out-of-band (in the RelationFile metadata); records
  // carry no type tags.

  /// Number of bytes Serialize() will produce under `schema`.
  size_t SerializedSize(const Schema& schema) const;

  /// Appends the serialized record to `out`. The tuple must match the
  /// schema (checked in debug builds).
  void SerializeTo(const Schema& schema, std::string* out) const;

  /// Parses one record of `schema` from `data` (exactly `size` bytes of a
  /// record, as returned by a page slot). Corruption (short buffer,
  /// trailing bytes, invalid interval) yields a Status error.
  static StatusOr<Tuple> Deserialize(const Schema& schema, const char* data,
                                     size_t size);

 private:
  std::vector<Value> values_;
  Interval interval_;
};

}  // namespace tempo

#endif  // TEMPO_RELATION_TUPLE_H_
