#ifndef TEMPO_RELATION_VALUE_H_
#define TEMPO_RELATION_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "common/assert.h"

namespace tempo {

/// Attribute types supported by the relational layer.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

const char* ValueTypeName(ValueType t);

/// A single attribute value. Small, copyable, hashable.
///
/// A Value may be NULL (e.g. the padded side of a TE-outerjoin result).
/// NULL is a value state, not a type: a NULL still occupies an attribute
/// position whose declared type is in the schema, and is serialized via a
/// per-record null bitmap.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  static Value Null() {
    Value v;
    v.v_ = std::monostate{};
    return v;
  }

  bool is_null() const {
    return std::holds_alternative<std::monostate>(v_);
  }

  /// Type of a non-null value. Must not be called on NULL.
  ValueType type() const {
    TEMPO_DCHECK(!is_null());
    return static_cast<ValueType>(v_.index());
  }

  int64_t AsInt64() const {
    TEMPO_DCHECK(type() == ValueType::kInt64);
    return std::get<int64_t>(v_);
  }
  double AsDouble() const {
    TEMPO_DCHECK(type() == ValueType::kDouble);
    return std::get<double>(v_);
  }
  const std::string& AsString() const {
    TEMPO_DCHECK(type() == ValueType::kString);
    return std::get<std::string>(v_);
  }

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return v_ < other.v_; }

  /// Hash suitable for join-key hashing; values of different types never
  /// compare equal, so mixing the index is fine.
  size_t Hash() const;

  std::string ToString() const;

 private:
  // Alternative order defines ValueType's numeric values; monostate (NULL)
  // is deliberately last so type() == index() for non-null values.
  std::variant<int64_t, double, std::string, std::monostate> v_;
};

}  // namespace tempo

#endif  // TEMPO_RELATION_VALUE_H_
