#ifndef TEMPO_RELATION_VALUE_H_
#define TEMPO_RELATION_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <variant>

#include "common/assert.h"

namespace tempo {

/// Attribute types supported by the relational layer.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

const char* ValueTypeName(ValueType t);

/// A single attribute value. Small, copyable, hashable.
///
/// A Value may be NULL (e.g. the padded side of a TE-outerjoin result).
/// NULL is a value state, not a type: a NULL still occupies an attribute
/// position whose declared type is in the schema, and is serialized via a
/// per-record null bitmap.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  static Value Null() {
    Value v;
    v.v_ = std::monostate{};
    return v;
  }

  bool is_null() const {
    return std::holds_alternative<std::monostate>(v_);
  }

  /// Type of a non-null value. Must not be called on NULL.
  ValueType type() const {
    TEMPO_DCHECK(!is_null());
    return static_cast<ValueType>(v_.index());
  }

  int64_t AsInt64() const {
    TEMPO_DCHECK(type() == ValueType::kInt64);
    return std::get<int64_t>(v_);
  }
  double AsDouble() const {
    TEMPO_DCHECK(type() == ValueType::kDouble);
    return std::get<double>(v_);
  }
  const std::string& AsString() const {
    TEMPO_DCHECK(type() == ValueType::kString);
    return std::get<std::string>(v_);
  }

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return v_ < other.v_; }

  /// Hash suitable for join-key hashing; values of different types never
  /// compare equal, so mixing the index is fine.
  size_t Hash() const;

  // Per-type hash primitives. These define the *canonical* hash of a typed
  // value: Value::Hash() delegates to them, and the zero-copy TupleView
  // hashes record bytes through the same functions, so a view and the
  // owning tuple it would materialize into always land in the same hash
  // bucket. C++17 guarantees HashString matches std::hash<std::string>
  // over the same characters.
  static size_t HashNull() { return 0xdeadbeefcafef00dull; }
  static size_t HashInt64(int64_t v) {
    return FinishHash(std::hash<int64_t>()(v), ValueType::kInt64);
  }
  static size_t HashDouble(double v) {
    return FinishHash(std::hash<double>()(v), ValueType::kDouble);
  }
  static size_t HashString(std::string_view v) {
    return FinishHash(std::hash<std::string_view>()(v), ValueType::kString);
  }

  std::string ToString() const;

 private:
  // Mix in the alternative index so equal bit patterns of different types
  // hash apart, then finalize (splitmix-style).
  static size_t FinishHash(size_t h, ValueType t) {
    h ^= static_cast<size_t>(t) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
    return h;
  }

  // Alternative order defines ValueType's numeric values; monostate (NULL)
  // is deliberately last so type() == index() for non-null values.
  std::variant<int64_t, double, std::string, std::monostate> v_;
};

/// The seed and per-attribute mixing step of the combined join-key hash
/// (Tuple::HashAttrs / TupleView::HashAttrs). Shared so both paths produce
/// the same bucket for the same key values.
inline constexpr size_t kAttrHashSeed = 0x243f6a8885a308d3ull;
inline size_t MixAttrHash(size_t h, size_t value_hash) {
  return h ^ (value_hash + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

}  // namespace tempo

#endif  // TEMPO_RELATION_VALUE_H_
