#ifndef TEMPO_RELATION_CSV_H_
#define TEMPO_RELATION_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "relation/schema.h"
#include "relation/tuple.h"

namespace tempo {

/// CSV interchange for valid-time relations.
///
/// Layout: a header row with the explicit attribute names followed by the
/// timestamp columns `__vs,__ve`; then one row per tuple. Strings are
/// always double-quoted with `""` escaping (so commas, quotes and
/// newlines survive); numbers are bare; NULL is the bare keyword `NULL`.
///
///   id,name,__vs,__ve
///   1,"ada",0,120
///   2,"grace, etc.",50,300
///   3,NULL,10,20

/// Renders tuples as CSV text. Tuples must match the schema.
std::string ToCsv(const Schema& schema, const std::vector<Tuple>& tuples);

/// Parses CSV text against an expected schema. The header must match the
/// schema's attribute names followed by `__vs,__ve` exactly. Malformed
/// rows yield InvalidArgument with the line number.
StatusOr<std::vector<Tuple>> FromCsv(const Schema& schema,
                                     std::string_view csv);

/// File convenience wrappers (real filesystem I/O, not the simulated
/// disk).
Status ExportCsvFile(const Schema& schema, const std::vector<Tuple>& tuples,
                     const std::string& path);
StatusOr<std::vector<Tuple>> ImportCsvFile(const Schema& schema,
                                           const std::string& path);

}  // namespace tempo

#endif  // TEMPO_RELATION_CSV_H_
