#ifndef TEMPO_RELATION_RECORD_LAYOUT_H_
#define TEMPO_RELATION_RECORD_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "relation/value.h"

namespace tempo {

/// Precomputed byte layout of one serialized record under a fixed schema
/// (the wire format documented on Tuple): interval header, null bitmap,
/// then the attribute payloads in schema order with NULL payloads elided.
///
/// The layout is derived once per Schema (Schema caches it) so the
/// zero-copy TupleView can interpret record bytes in place: for the common
/// all-fixed-width, no-NULL prefix the payload offsets are compile-time
/// arithmetic on this struct, and only records with NULLs or preceding
/// strings need a forward walk.
struct RecordLayout {
  /// Byte offset of the null bitmap (the interval header is fixed).
  static constexpr uint32_t kBitmapOffset = 16;

  /// Bytes of the per-record null bitmap: ceil(num_attributes / 8).
  uint32_t bitmap_bytes = 0;

  /// Byte offset of the first attribute payload: 16 + bitmap_bytes.
  uint32_t values_offset = 16;

  /// Attribute count and declared types, in schema order.
  uint32_t num_attributes = 0;
  std::vector<ValueType> types;

  /// Index of the first variable-width (string) attribute, or
  /// num_attributes when every attribute is fixed-width. Attributes before
  /// this index sit at values_offset + 8 * (i - nulls before i); with no
  /// NULLs the offset is a pure layout constant.
  uint32_t first_var_attr = 0;

  /// Serialized record size when no attribute is NULL and the schema has
  /// no strings; 0 when the schema has variable-width attributes.
  uint32_t fixed_record_size = 0;

  /// True when the schema has no string attribute.
  bool all_fixed_width() const { return first_var_attr == num_attributes; }
};

/// Derives the layout of `types` (taken in schema order).
RecordLayout MakeRecordLayout(const std::vector<ValueType>& types);

}  // namespace tempo

#endif  // TEMPO_RELATION_RECORD_LAYOUT_H_
