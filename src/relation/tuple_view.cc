#include "relation/tuple_view.h"

namespace tempo {

namespace {

/// Walks one attribute's payload starting at `pos`; returns false on a
/// short buffer. On success `*len` holds the payload bytes (strings:
/// excluding the 4-byte length prefix) and `pos` is advanced past it.
bool WalkAttr(ValueType type, bool null, const char* data, size_t size,
              uint32_t* pos, uint32_t* len) {
  if (null) {
    *len = 0;
    return true;
  }
  switch (type) {
    case ValueType::kInt64:
    case ValueType::kDouble:
      if (size - *pos < 8) return false;
      *len = 8;
      *pos += 8;
      return true;
    case ValueType::kString: {
      if (size - *pos < 4) return false;
      uint32_t slen;
      std::memcpy(&slen, data + *pos, 4);
      *pos += 4;
      if (size - *pos < slen) return false;
      *len = slen;
      *pos += slen;
      return true;
    }
  }
  return false;
}

}  // namespace

StatusOr<TupleView> TupleView::Make(const RecordLayout& layout,
                                    const char* data, size_t size) {
  if (size < RecordLayout::kBitmapOffset) {
    return Status::Corruption("record too short for interval");
  }
  TupleView view;
  view.layout_ = &layout;
  view.data_ = data;
  view.size_ = static_cast<uint32_t>(size);
  if (view.LoadChronon(0) > view.LoadChronon(8)) {
    return Status::Corruption("record has invalid interval");
  }
  if (size < layout.values_offset) {
    return Status::Corruption("record too short for null bitmap");
  }
  bool any_null = false;
  for (uint32_t b = 0; b < layout.bitmap_bytes; ++b) {
    any_null |= data[RecordLayout::kBitmapOffset + b] != 0;
  }
  // Padding bits past the last attribute must be zero (round-trip
  // canonicality, as in Tuple::Deserialize).
  for (size_t bit = layout.num_attributes; bit < layout.bitmap_bytes * 8;
       ++bit) {
    if ((data[RecordLayout::kBitmapOffset + bit / 8] >> (bit % 8)) & 1) {
      return Status::Corruption("null bitmap has nonzero padding bits");
    }
  }
  view.no_nulls_ = !any_null;
  // One validation walk over the payloads.
  uint32_t pos = layout.values_offset;
  for (uint32_t i = 0; i < layout.num_attributes; ++i) {
    uint32_t len;
    if (!WalkAttr(layout.types[i], view.is_null(i), data, size, &pos, &len)) {
      return Status::Corruption("record too short for attribute payload");
    }
  }
  if (pos != size) {
    return Status::Corruption("record has trailing bytes");
  }
  return view;
}

TupleView TupleView::Trusted(const RecordLayout& layout, const char* data,
                             size_t size) {
#ifndef NDEBUG
  auto checked = Make(layout, data, size);
  TEMPO_DCHECK(checked.ok());
  return *checked;
#else
  TupleView view;
  view.layout_ = &layout;
  view.data_ = data;
  view.size_ = static_cast<uint32_t>(size);
  bool any_null = false;
  for (uint32_t b = 0; b < layout.bitmap_bytes; ++b) {
    any_null |= data[RecordLayout::kBitmapOffset + b] != 0;
  }
  view.no_nulls_ = !any_null;
  return view;
#endif
}

TupleView::Extent TupleView::ExtentOf(size_t i) const {
  TEMPO_DCHECK(i < layout_->num_attributes);
  if (is_null(i)) return Extent{0, 0, true};
  if (no_nulls_ && i <= layout_->first_var_attr) {
    uint32_t offset =
        layout_->values_offset + 8 * static_cast<uint32_t>(i);
    if (i < layout_->first_var_attr) return Extent{offset, 8, false};
    // i == first_var_attr: the first string also sits at a fixed offset.
    uint32_t slen;
    std::memcpy(&slen, data_ + offset, 4);
    return Extent{offset + 4, slen, false};
  }
  uint32_t pos = layout_->values_offset;
  uint32_t len = 0;
  for (size_t a = 0; a <= i; ++a) {
    bool ok = WalkAttr(layout_->types[a], is_null(a), data_, size_, &pos,
                       &len);
    TEMPO_DCHECK(ok);
    (void)ok;
  }
  // `pos` is now past attribute i's payload of `len` bytes.
  return Extent{pos - len, len, false};
}

int64_t TupleView::Int64At(size_t i) const {
  TEMPO_DCHECK(layout_->types[i] == ValueType::kInt64);
  Extent e = ExtentOf(i);
  TEMPO_DCHECK(!e.null);
  uint64_t bits;
  std::memcpy(&bits, data_ + e.offset, 8);
  return static_cast<int64_t>(bits);
}

double TupleView::DoubleAt(size_t i) const {
  TEMPO_DCHECK(layout_->types[i] == ValueType::kDouble);
  Extent e = ExtentOf(i);
  TEMPO_DCHECK(!e.null);
  double d;
  std::memcpy(&d, data_ + e.offset, 8);
  return d;
}

std::string_view TupleView::StringAt(size_t i) const {
  TEMPO_DCHECK(layout_->types[i] == ValueType::kString);
  Extent e = ExtentOf(i);
  TEMPO_DCHECK(!e.null);
  return std::string_view(data_ + e.offset, e.length);
}

Value TupleView::ValueAt(size_t i) const {
  if (is_null(i)) return Value::Null();
  switch (layout_->types[i]) {
    case ValueType::kInt64:
      return Value(Int64At(i));
    case ValueType::kDouble:
      return Value(DoubleAt(i));
    case ValueType::kString:
      return Value(std::string(StringAt(i)));
  }
  return Value::Null();
}

Tuple TupleView::Materialize() const {
  std::vector<Value> values;
  values.reserve(layout_->num_attributes);
  for (size_t i = 0; i < layout_->num_attributes; ++i) {
    values.push_back(ValueAt(i));
  }
  return Tuple(std::move(values), interval());
}

size_t TupleView::HashAttr(size_t i) const {
  if (is_null(i)) return Value::HashNull();
  switch (layout_->types[i]) {
    case ValueType::kInt64:
      return Value::HashInt64(Int64At(i));
    case ValueType::kDouble:
      return Value::HashDouble(DoubleAt(i));
    case ValueType::kString:
      return Value::HashString(StringAt(i));
  }
  return Value::HashNull();
}

size_t TupleView::HashAttrs(const std::vector<size_t>& positions) const {
  size_t h = kAttrHashSeed;
  for (size_t pos : positions) h = MixAttrHash(h, HashAttr(pos));
  return h;
}

bool TupleView::EqualOnAttrs(const std::vector<size_t>& mine,
                             const std::vector<size_t>& theirs,
                             const TupleView& other) const {
  TEMPO_DCHECK(mine.size() == theirs.size());
  for (size_t i = 0; i < mine.size(); ++i) {
    size_t a = mine[i];
    size_t b = theirs[i];
    bool a_null = is_null(a);
    if (a_null != other.is_null(b)) return false;
    if (a_null) continue;  // NULL == NULL, as for owning Values
    ValueType t = layout_->types[a];
    if (t != other.layout_->types[b]) return false;
    switch (t) {
      case ValueType::kInt64:
        if (Int64At(a) != other.Int64At(b)) return false;
        break;
      case ValueType::kDouble:
        if (DoubleAt(a) != other.DoubleAt(b)) return false;
        break;
      case ValueType::kString:
        if (StringAt(a) != other.StringAt(b)) return false;
        break;
    }
  }
  return true;
}

bool TupleView::EqualOnAttrs(const std::vector<size_t>& mine,
                             const std::vector<size_t>& theirs,
                             const Tuple& other) const {
  TEMPO_DCHECK(mine.size() == theirs.size());
  for (size_t i = 0; i < mine.size(); ++i) {
    size_t a = mine[i];
    const Value& v = other.value(theirs[i]);
    bool a_null = is_null(a);
    if (a_null != v.is_null()) return false;
    if (a_null) continue;
    ValueType t = layout_->types[a];
    if (t != v.type()) return false;
    switch (t) {
      case ValueType::kInt64:
        if (Int64At(a) != v.AsInt64()) return false;
        break;
      case ValueType::kDouble:
        if (DoubleAt(a) != v.AsDouble()) return false;
        break;
      case ValueType::kString:
        if (StringAt(a) != v.AsString()) return false;
        break;
    }
  }
  return true;
}

}  // namespace tempo
