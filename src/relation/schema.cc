#include "relation/schema.h"

#include <unordered_map>
#include <unordered_set>

namespace tempo {

namespace {

std::shared_ptr<const RecordLayout> LayoutFor(
    const std::vector<Attribute>& attributes) {
  std::vector<ValueType> types;
  types.reserve(attributes.size());
  for (const auto& a : attributes) types.push_back(a.type);
  return std::make_shared<const RecordLayout>(MakeRecordLayout(types));
}

}  // namespace

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)), layout_(LayoutFor(attributes_)) {}

const RecordLayout& Schema::layout() const {
  // Default-constructed Schema: an empty layout (interval + empty bitmap).
  static const RecordLayout kEmpty = MakeRecordLayout({});
  return layout_ ? *layout_ : kEmpty;
}

StatusOr<Schema> Schema::Make(std::vector<Attribute> attributes) {
  std::unordered_set<std::string> seen;
  for (const auto& a : attributes) {
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + a.name);
    }
  }
  return Schema(std::move(attributes));
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i != 0) out += ", ";
    out += attributes_[i].name;
    out += ":";
    out += ValueTypeName(attributes_[i].type);
  }
  out += ")";
  return out;
}

StatusOr<NaturalJoinLayout> DeriveNaturalJoinLayout(const Schema& r,
                                                    const Schema& s) {
  NaturalJoinLayout layout;
  std::unordered_map<std::string, size_t> s_by_name;
  for (size_t j = 0; j < s.num_attributes(); ++j) {
    s_by_name.emplace(s.attribute(j).name, j);
  }

  std::vector<Attribute> out_attrs;
  std::unordered_set<size_t> s_joined;
  for (size_t i = 0; i < r.num_attributes(); ++i) {
    const Attribute& ra = r.attribute(i);
    auto it = s_by_name.find(ra.name);
    if (it != s_by_name.end()) {
      const Attribute& sa = s.attribute(it->second);
      if (sa.type != ra.type) {
        return Status::InvalidArgument(
            "shared attribute '" + ra.name + "' has mismatched types: " +
            ValueTypeName(ra.type) + " vs " + ValueTypeName(sa.type));
      }
      layout.r_join_attrs.push_back(i);
      layout.s_join_attrs.push_back(it->second);
      s_joined.insert(it->second);
      out_attrs.push_back(ra);
    }
  }
  for (size_t i = 0; i < r.num_attributes(); ++i) {
    if (s_by_name.find(r.attribute(i).name) == s_by_name.end()) {
      layout.r_rest.push_back(i);
      out_attrs.push_back(r.attribute(i));
    }
  }
  for (size_t j = 0; j < s.num_attributes(); ++j) {
    if (s_joined.find(j) == s_joined.end()) {
      layout.s_rest.push_back(j);
      out_attrs.push_back(s.attribute(j));
    }
  }
  layout.output = Schema(std::move(out_attrs));
  return layout;
}

}  // namespace tempo
