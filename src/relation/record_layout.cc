#include "relation/record_layout.h"

namespace tempo {

RecordLayout MakeRecordLayout(const std::vector<ValueType>& types) {
  RecordLayout layout;
  layout.num_attributes = static_cast<uint32_t>(types.size());
  layout.types = types;
  layout.bitmap_bytes = (layout.num_attributes + 7) / 8;
  layout.values_offset = RecordLayout::kBitmapOffset + layout.bitmap_bytes;
  layout.first_var_attr = layout.num_attributes;
  for (uint32_t i = 0; i < layout.num_attributes; ++i) {
    if (types[i] == ValueType::kString) {
      layout.first_var_attr = i;
      break;
    }
  }
  layout.fixed_record_size = layout.all_fixed_width()
                                 ? layout.values_offset +
                                       8 * layout.num_attributes
                                 : 0;
  return layout;
}

}  // namespace tempo
