#include "relation/value.h"

#include <cstdio>

namespace tempo {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

size_t Value::Hash() const {
  if (is_null()) return 0xdeadbeefcafef00dull;
  size_t h = 0;
  switch (type()) {
    case ValueType::kInt64:
      h = std::hash<int64_t>()(std::get<int64_t>(v_));
      break;
    case ValueType::kDouble:
      h = std::hash<double>()(std::get<double>(v_));
      break;
    case ValueType::kString:
      h = std::hash<std::string>()(std::get<std::string>(v_));
      break;
  }
  // Mix in the alternative index so equal bit patterns of different types
  // hash apart, then finalize (splitmix-style).
  h ^= v_.index() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(v_));
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
      return buf;
    }
    case ValueType::kString:
      return "\"" + std::get<std::string>(v_) + "\"";
  }
  return "?";
}

}  // namespace tempo
