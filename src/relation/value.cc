#include "relation/value.h"

#include <cstdio>

namespace tempo {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

size_t Value::Hash() const {
  if (is_null()) return HashNull();
  switch (type()) {
    case ValueType::kInt64:
      return HashInt64(std::get<int64_t>(v_));
    case ValueType::kDouble:
      return HashDouble(std::get<double>(v_));
    case ValueType::kString:
      return HashString(std::get<std::string>(v_));
  }
  return HashNull();
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(v_));
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
      return buf;
    }
    case ValueType::kString:
      return "\"" + std::get<std::string>(v_) + "\"";
  }
  return "?";
}

}  // namespace tempo
