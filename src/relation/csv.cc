#include "relation/csv.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace tempo {

namespace {

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    *out += "NULL";
    return;
  }
  switch (v.type()) {
    case ValueType::kInt64:
      *out += std::to_string(v.AsInt64());
      break;
    case ValueType::kDouble: {
      // Shortest decimal form that parses back to the exact same bits
      // (including negative zero and full-range magnitudes).
      char buf[64];
#if defined(__cpp_lib_to_chars)
      auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v.AsDouble());
      TEMPO_CHECK(ec == std::errc());
      out->append(buf, static_cast<size_t>(p - buf));
#else
      std::snprintf(buf, sizeof(buf), "%.*g",
                    std::numeric_limits<double>::max_digits10, v.AsDouble());
      *out += buf;
#endif
      break;
    }
    case ValueType::kString:
      AppendQuoted(out, v.AsString());
      break;
  }
}

/// Splits one CSV record starting at `pos` into fields, honoring quotes.
/// Advances `pos` past the record's newline. Returns false at end of
/// input (no record).
StatusOr<bool> NextRecord(std::string_view csv, size_t* pos,
                          std::vector<std::string>* fields,
                          std::vector<bool>* quoted) {
  fields->clear();
  quoted->clear();
  size_t i = *pos;
  if (i >= csv.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool field_quoted = false;
  while (i <= csv.size()) {
    char c = i < csv.size() ? csv[i] : '\n';  // virtual trailing newline
    if (in_quotes) {
      if (i >= csv.size()) {
        return Status::InvalidArgument("unterminated quote in CSV");
      }
      if (c == '"') {
        if (i + 1 < csv.size() && csv[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
      field_quoted = true;
    } else if (c == ',') {
      fields->push_back(std::move(field));
      quoted->push_back(field_quoted);
      field.clear();
      field_quoted = false;
    } else if (c == '\n' || c == '\r') {
      fields->push_back(std::move(field));
      quoted->push_back(field_quoted);
      // Swallow \r\n pairs and the newline itself.
      if (i < csv.size() && csv[i] == '\r' && i + 1 < csv.size() &&
          csv[i + 1] == '\n') {
        ++i;
      }
      *pos = i + 1;
      return true;
    } else {
      field.push_back(c);
    }
    ++i;
  }
  *pos = i;
  return true;
}

StatusOr<int64_t> ParseInt(const std::string& s, size_t line) {
  int64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size()) {
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": not an integer: '" + s + "'");
  }
  return v;
}

}  // namespace

std::string ToCsv(const Schema& schema, const std::vector<Tuple>& tuples) {
  std::string out;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i != 0) out.push_back(',');
    out += schema.attribute(i).name;
  }
  out += schema.num_attributes() > 0 ? ",__vs,__ve\n" : "__vs,__ve\n";
  for (const Tuple& t : tuples) {
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      if (i != 0) out.push_back(',');
      AppendValue(&out, t.value(i));
    }
    if (schema.num_attributes() > 0) out.push_back(',');
    out += std::to_string(t.interval().start());
    out.push_back(',');
    out += std::to_string(t.interval().end());
    out.push_back('\n');
  }
  return out;
}

StatusOr<std::vector<Tuple>> FromCsv(const Schema& schema,
                                     std::string_view csv) {
  size_t pos = 0;
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  const size_t n = schema.num_attributes();

  // Header.
  TEMPO_ASSIGN_OR_RETURN(bool has_header,
                         NextRecord(csv, &pos, &fields, &quoted));
  if (!has_header || fields.size() != n + 2) {
    return Status::InvalidArgument("CSV header does not match schema arity");
  }
  for (size_t i = 0; i < n; ++i) {
    if (fields[i] != schema.attribute(i).name) {
      return Status::InvalidArgument("CSV header column '" + fields[i] +
                                     "' does not match attribute '" +
                                     schema.attribute(i).name + "'");
    }
  }
  if (fields[n] != "__vs" || fields[n + 1] != "__ve") {
    return Status::InvalidArgument("CSV header must end with __vs,__ve");
  }

  std::vector<Tuple> out;
  size_t line = 1;
  while (true) {
    TEMPO_ASSIGN_OR_RETURN(bool more, NextRecord(csv, &pos, &fields, &quoted));
    if (!more) break;
    ++line;
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != n + 2) {
      return Status::InvalidArgument(
          "line " + std::to_string(line) + ": expected " +
          std::to_string(n + 2) + " fields, got " +
          std::to_string(fields.size()));
    }
    std::vector<Value> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (!quoted[i] && fields[i] == "NULL") {
        values.push_back(Value::Null());
        continue;
      }
      switch (schema.attribute(i).type) {
        case ValueType::kInt64: {
          TEMPO_ASSIGN_OR_RETURN(int64_t v, ParseInt(fields[i], line));
          values.emplace_back(v);
          break;
        }
        case ValueType::kDouble: {
          double d = 0.0;
          bool ok = !fields[i].empty();
          if (ok) {
#if defined(__cpp_lib_to_chars)
            auto [p, ec] = std::from_chars(
                fields[i].data(), fields[i].data() + fields[i].size(), d);
            ok = ec == std::errc() && p == fields[i].data() + fields[i].size();
#else
            // strtod sets ERANGE for subnormals too; only reject a true
            // overflow so denormal magnitudes survive the round trip.
            errno = 0;
            char* end = nullptr;
            d = std::strtod(fields[i].c_str(), &end);
            ok = end == fields[i].c_str() + fields[i].size() &&
                 !(errno == ERANGE && (d == HUGE_VAL || d == -HUGE_VAL));
#endif
          }
          if (!ok) {
            return Status::InvalidArgument("line " + std::to_string(line) +
                                           ": not a double: '" + fields[i] +
                                           "'");
          }
          values.emplace_back(d);
          break;
        }
        case ValueType::kString:
          values.emplace_back(fields[i]);
          break;
      }
    }
    TEMPO_ASSIGN_OR_RETURN(int64_t vs, ParseInt(fields[n], line));
    TEMPO_ASSIGN_OR_RETURN(int64_t ve, ParseInt(fields[n + 1], line));
    auto iv = Interval::Make(vs, ve);
    if (!iv) {
      return Status::InvalidArgument("line " + std::to_string(line) +
                                     ": invalid interval [" +
                                     std::to_string(vs) + ", " +
                                     std::to_string(ve) + "]");
    }
    out.push_back(Tuple(std::move(values), *iv));
  }
  return out;
}

Status ExportCsvFile(const Schema& schema, const std::vector<Tuple>& tuples,
                     const std::string& path) {
  std::string csv = ToCsv(schema, tuples);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  int rc = std::fclose(f);
  if (written != csv.size() || rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

StatusOr<std::vector<Tuple>> ImportCsvFile(const Schema& schema,
                                           const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::string csv;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    csv.append(buf, got);
  }
  std::fclose(f);
  return FromCsv(schema, csv);
}

}  // namespace tempo
