#ifndef TEMPO_RELATION_SCHEMA_H_
#define TEMPO_RELATION_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "relation/record_layout.h"
#include "relation/value.h"

namespace tempo {

/// One explicit (non-timestamp) attribute of a valid-time relation schema.
struct Attribute {
  std::string name;
  ValueType type;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

/// Schema of a valid-time relation in the 1NF tuple-timestamped model
/// (paper Section 2): explicit attributes A1..An plus the implicit
/// valid-time interval V = [Vs, Ve]. The timestamp attributes are not listed
/// here; every Tuple carries an Interval alongside its explicit values.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// Validating factory: rejects duplicate attribute names.
  static StatusOr<Schema> Make(std::vector<Attribute> attributes);

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

  /// "(name:type, ...)"
  std::string ToString() const;

  /// Precomputed serialized-record layout for this schema's attribute
  /// types. Cached once at construction; TupleView borrows it, so the
  /// layout is held behind a shared_ptr that copies of the Schema share
  /// (views remain valid across Schema copies).
  const RecordLayout& layout() const;

 private:
  std::vector<Attribute> attributes_;
  std::shared_ptr<const RecordLayout> layout_;
};

/// Precomputed layout of a valid-time natural join r ⋈ᵥ s: which attribute
/// positions participate in the equi-join (the A's of the paper's
/// definition, i.e. the attributes the two schemas share by name), and how
/// the output tuple is assembled (A, B from r, C from s).
struct NaturalJoinLayout {
  /// Positions of the shared attributes in r and s, aligned pairwise.
  std::vector<size_t> r_join_attrs;
  std::vector<size_t> s_join_attrs;
  /// Positions of r's non-join attributes (the B's).
  std::vector<size_t> r_rest;
  /// Positions of s's non-join attributes (the C's).
  std::vector<size_t> s_rest;
  /// Output schema: A1..An, B1..Bk, C1..Cm (valid time implicit).
  Schema output;
};

/// Derives the natural-join layout of two schemas. Fails with
/// InvalidArgument if a shared attribute name has different types in r and
/// s. Schemas sharing no attribute are allowed: the join degenerates to a
/// valid-time Cartesian product filtered by interval overlap (the paper's
/// time-join T-join).
StatusOr<NaturalJoinLayout> DeriveNaturalJoinLayout(const Schema& r,
                                                    const Schema& s);

}  // namespace tempo

#endif  // TEMPO_RELATION_SCHEMA_H_
