#ifndef TEMPO_RELATION_TUPLE_VIEW_H_
#define TEMPO_RELATION_TUPLE_VIEW_H_

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "relation/record_layout.h"
#include "relation/tuple.h"
#include "temporal/interval.h"

namespace tempo {

/// A non-owning, zero-copy view of one serialized record.
///
/// Where Tuple decodes a record into a heap-allocated vector of variant
/// Values (one string allocation per string attribute), a TupleView
/// interprets the record bytes in place: interval access is two 8-byte
/// loads, fixed-width attributes in the no-NULL prefix are direct loads at
/// layout-constant offsets, and join-key hashing/equality run over the
/// record bytes without materializing anything. Hash and equality are
/// bit-compatible with Tuple::HashAttrs / Value::operator== (including
/// NULL == NULL and -0.0 == 0.0 for doubles), so views and owning tuples
/// can share one hash index.
///
/// Lifetime: a view borrows (a) the record bytes — usually a Page pinned in
/// a PageTupleArena — and (b) the RecordLayout cached on the Schema. It is
/// valid only while both outlive it; a view must never escape the phase
/// that owns its arena. Materialize() produces an owning Tuple at result
/// append and API boundaries.
class TupleView {
 public:
  TupleView() = default;

  /// Validates `size` bytes at `data` as one record of `layout` and
  /// returns a view over them. Performs exactly the corruption checks of
  /// Tuple::Deserialize (short buffer, invalid interval, nonzero bitmap
  /// padding, trailing bytes) in one allocation-free walk.
  static StatusOr<TupleView> Make(const RecordLayout& layout,
                                  const char* data, size_t size);

  /// Unchecked construction over bytes produced by SerializeTo (debug
  /// builds still validate). For records that never left this process.
  static TupleView Trusted(const RecordLayout& layout, const char* data,
                           size_t size);

  bool valid() const { return data_ != nullptr; }
  size_t num_values() const { return layout_->num_attributes; }
  const RecordLayout& layout() const { return *layout_; }

  /// The raw serialized record. Appending these bytes to a page reproduces
  /// the record exactly (serialization is canonical), which is what lets
  /// the Grace partitioner route records without re-encoding.
  std::string_view record() const { return {data_, size_}; }

  Interval interval() const {
    return Interval(LoadChronon(0), LoadChronon(8));
  }

  bool is_null(size_t i) const {
    return (data_[RecordLayout::kBitmapOffset + i / 8] >> (i % 8)) & 1;
  }

  /// Payload accessors; the attribute must be non-NULL and of the declared
  /// type (checked in debug builds).
  int64_t Int64At(size_t i) const;
  double DoubleAt(size_t i) const;
  std::string_view StringAt(size_t i) const;

  /// Materializes attribute `i` as an owning Value (allocates for
  /// strings). Result-append and API boundaries only.
  Value ValueAt(size_t i) const;

  /// Owning Tuple with the same values and interval.
  Tuple Materialize() const;

  /// Combined hash over attribute positions; equals HashAttrs of the
  /// materialized tuple.
  size_t HashAttrs(const std::vector<size_t>& positions) const;

  /// True iff this view and `other` agree on the aligned positions, with
  /// Value semantics (NULL == NULL, typed comparison for doubles).
  bool EqualOnAttrs(const std::vector<size_t>& mine,
                    const std::vector<size_t>& theirs,
                    const TupleView& other) const;

  /// Same, against an owning Tuple (`theirs` indexes `other`).
  bool EqualOnAttrs(const std::vector<size_t>& mine,
                    const std::vector<size_t>& theirs,
                    const Tuple& other) const;

 private:
  struct Extent {
    uint32_t offset = 0;  // payload offset within the record
    uint32_t length = 0;  // payload bytes (strings: excludes the length u32)
    bool null = false;
  };

  /// Locates attribute `i`. O(1) for fixed-width attributes in a no-NULL
  /// record; otherwise one forward walk over the preceding attributes.
  Extent ExtentOf(size_t i) const;

  Chronon LoadChronon(size_t pos) const {
    uint64_t bits;
    std::memcpy(&bits, data_ + pos, 8);
    return static_cast<Chronon>(bits);
  }

  size_t HashAttr(size_t i) const;

  const RecordLayout* layout_ = nullptr;
  const char* data_ = nullptr;
  uint32_t size_ = 0;
  // True when the null bitmap is all-zero: every fixed-width attribute
  // before first_var_attr then sits at a layout-constant offset.
  bool no_nulls_ = false;
};

}  // namespace tempo

#endif  // TEMPO_RELATION_TUPLE_VIEW_H_
