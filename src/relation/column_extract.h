#ifndef TEMPO_RELATION_COLUMN_EXTRACT_H_
#define TEMPO_RELATION_COLUMN_EXTRACT_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/statusor.h"
#include "relation/schema.h"
#include "relation/tuple_view.h"
#include "storage/page.h"
#include "temporal/interval.h"

namespace tempo {

/// Flat join columns extracted from one relation's page stream: one
/// structure-of-arrays entry per record, in page order then slot order, so
/// entry i corresponds to row ordinal i of the relation.
///
/// `key_hashes` is TupleView::HashAttrs over the join attributes —
/// bit-compatible with Tuple::HashAttrs, NULL == NULL included, and
/// finish-mixed, so any bit window of it is usable as a radix digit.
/// `starts`/`ends` are the record's valid-time interval, and `rows` the
/// original row ordinal (identity after extraction; the radix passes
/// permute all four arrays together).
struct JoinColumns {
  std::vector<uint64_t> key_hashes;
  std::vector<Chronon> starts;
  std::vector<Chronon> ends;
  std::vector<uint32_t> rows;

  size_t num_rows() const { return rows.size(); }

  void Reserve(size_t n) {
    key_hashes.reserve(n);
    starts.reserve(n);
    ends.reserve(n);
    rows.reserve(n);
  }

  void Resize(size_t n) {
    key_hashes.resize(n);
    starts.resize(n);
    ends.resize(n);
    rows.resize(n);
  }
};

/// Per-row footprint the extractor charges against the in-memory budget:
/// the four column entries plus the pinned TupleView.
inline constexpr uint64_t kColumnRowBytes =
    sizeof(uint64_t) + 2 * sizeof(Chronon) + sizeof(uint32_t) +
    sizeof(TupleView);

/// Extracts join-key hash, valid-time interval and row-position columns
/// from a stream of pages, pinning each page so the per-row TupleViews
/// stay valid for the consuming join phase (the emit step re-reads record
/// bytes through them).
///
/// Pages are pinned in a deque — growth never moves existing elements —
/// exactly like PageTupleArena, but extraction also fills the flat
/// JoinColumns arrays in the same walk, so the radix partitioner never
/// touches record bytes again until result emission.
///
/// The schema passed to the constructor must outlive the extractor (its
/// cached RecordLayout backs every view).
class ColumnExtractor {
 public:
  /// `key_attrs` are the join-attribute positions hashed into
  /// JoinColumns::key_hashes; kept by pointer, caller owns.
  ColumnExtractor(const Schema* schema, const std::vector<size_t>* key_attrs)
      : schema_(schema), key_attrs_(key_attrs) {}

  ColumnExtractor(const ColumnExtractor&) = delete;
  ColumnExtractor& operator=(const ColumnExtractor&) = delete;

  /// Pins `page` and appends one column entry + view per record. Returns
  /// the number of records appended, or the first record-corruption error
  /// (the page is dropped again, leaving the extractor consistent).
  StatusOr<size_t> AddPage(const Page& page);

  /// The extracted columns; rows[i] == i until a partitioner permutes a
  /// copy.
  const JoinColumns& columns() const { return cols_; }
  JoinColumns& columns() { return cols_; }

  /// Row ordinal -> validated view over the pinned record bytes.
  const std::vector<TupleView>& views() const { return views_; }

  size_t num_rows() const { return views_.size(); }
  size_t num_pages() const { return pages_.size(); }

  /// Exact bytes of pinned pages plus per-row column/view state. This is
  /// the number the radix join charges against its memory budget — it is
  /// deterministic (no allocator slack is counted), so budget-driven
  /// fallback decisions reproduce across runs and platforms with the same
  /// type sizes.
  uint64_t footprint_bytes() const {
    return static_cast<uint64_t>(pages_.size()) * kPageSize +
           static_cast<uint64_t>(views_.size()) * kColumnRowBytes;
  }

  /// Invalidates all views and columns handed out so far.
  void Clear() {
    pages_.clear();
    views_.clear();
    cols_ = JoinColumns{};
  }

 private:
  const Schema* schema_;
  const std::vector<size_t>* key_attrs_;
  std::deque<Page> pages_;
  std::vector<TupleView> views_;
  JoinColumns cols_;
};

}  // namespace tempo

#endif  // TEMPO_RELATION_COLUMN_EXTRACT_H_
