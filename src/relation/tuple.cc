#include "relation/tuple.h"

#include <cstring>

namespace tempo {

namespace {

void AppendRaw64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadRaw64(const char*& p, const char* end, uint64_t* v) {
  if (end - p < 8) return false;
  std::memcpy(v, p, 8);
  p += 8;
  return true;
}

}  // namespace

size_t Tuple::HashAttrs(const std::vector<size_t>& positions) const {
  size_t h = kAttrHashSeed;
  for (size_t pos : positions) h = MixAttrHash(h, value(pos).Hash());
  return h;
}

bool Tuple::EqualOnAttrs(const std::vector<size_t>& mine,
                         const std::vector<size_t>& theirs,
                         const Tuple& other) const {
  TEMPO_DCHECK(mine.size() == theirs.size());
  for (size_t i = 0; i < mine.size(); ++i) {
    if (value(mine[i]) != other.value(theirs[i])) return false;
  }
  return true;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i != 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ") @ ";
  out += interval_.ToString();
  return out;
}

size_t Tuple::SerializedSize(const Schema& schema) const {
  size_t size = 16;  // interval
  size += (schema.num_attributes() + 7) / 8;  // null bitmap
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (value(i).is_null()) continue;
    switch (schema.attribute(i).type) {
      case ValueType::kInt64:
      case ValueType::kDouble:
        size += 8;
        break;
      case ValueType::kString:
        size += 4 + value(i).AsString().size();
        break;
    }
  }
  return size;
}

void Tuple::SerializeTo(const Schema& schema, std::string* out) const {
  TEMPO_DCHECK(values_.size() == schema.num_attributes());
  AppendRaw64(out, static_cast<uint64_t>(interval_.start()));
  AppendRaw64(out, static_cast<uint64_t>(interval_.end()));
  // Null bitmap: bit i set means attribute i is NULL (no payload bytes).
  const size_t bitmap_bytes = (schema.num_attributes() + 7) / 8;
  size_t bitmap_pos = out->size();
  out->append(bitmap_bytes, '\0');
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (value(i).is_null()) {
      (*out)[bitmap_pos + i / 8] |= static_cast<char>(1u << (i % 8));
      continue;
    }
    TEMPO_DCHECK(value(i).type() == schema.attribute(i).type);
    switch (schema.attribute(i).type) {
      case ValueType::kInt64:
        AppendRaw64(out, static_cast<uint64_t>(value(i).AsInt64()));
        break;
      case ValueType::kDouble: {
        double d = value(i).AsDouble();
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        AppendRaw64(out, bits);
        break;
      }
      case ValueType::kString: {
        const std::string& s = value(i).AsString();
        uint32_t len = static_cast<uint32_t>(s.size());
        char buf[4];
        std::memcpy(buf, &len, 4);
        out->append(buf, 4);
        out->append(s);
        break;
      }
    }
  }
}

StatusOr<Tuple> Tuple::Deserialize(const Schema& schema, const char* data,
                                   size_t size) {
  const char* p = data;
  const char* end = data + size;
  uint64_t vs_bits, ve_bits;
  if (!ReadRaw64(p, end, &vs_bits) || !ReadRaw64(p, end, &ve_bits)) {
    return Status::Corruption("record too short for interval");
  }
  Chronon vs = static_cast<Chronon>(vs_bits);
  Chronon ve = static_cast<Chronon>(ve_bits);
  auto iv = Interval::Make(vs, ve);
  if (!iv) return Status::Corruption("record has invalid interval");

  const size_t bitmap_bytes = (schema.num_attributes() + 7) / 8;
  if (static_cast<size_t>(end - p) < bitmap_bytes) {
    return Status::Corruption("record too short for null bitmap");
  }
  const char* bitmap = p;
  p += bitmap_bytes;
  // Padding bits past the last attribute must be zero: set bits there
  // indicate corruption (and would break round-trip canonicality).
  for (size_t bit = schema.num_attributes(); bit < bitmap_bytes * 8; ++bit) {
    if ((bitmap[bit / 8] >> (bit % 8)) & 1) {
      return Status::Corruption("null bitmap has nonzero padding bits");
    }
  }

  std::vector<Value> values;
  values.reserve(schema.num_attributes());
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if ((bitmap[i / 8] >> (i % 8)) & 1) {
      values.push_back(Value::Null());
      continue;
    }
    switch (schema.attribute(i).type) {
      case ValueType::kInt64: {
        uint64_t v;
        if (!ReadRaw64(p, end, &v)) {
          return Status::Corruption("record too short for int64 attribute");
        }
        values.emplace_back(static_cast<int64_t>(v));
        break;
      }
      case ValueType::kDouble: {
        uint64_t bits;
        if (!ReadRaw64(p, end, &bits)) {
          return Status::Corruption("record too short for double attribute");
        }
        double d;
        std::memcpy(&d, &bits, 8);
        values.emplace_back(d);
        break;
      }
      case ValueType::kString: {
        if (end - p < 4) {
          return Status::Corruption("record too short for string length");
        }
        uint32_t len;
        std::memcpy(&len, p, 4);
        p += 4;
        if (end - p < static_cast<ptrdiff_t>(len)) {
          return Status::Corruption("record too short for string payload");
        }
        values.emplace_back(std::string(p, len));
        p += len;
        break;
      }
    }
  }
  if (p != end) {
    return Status::Corruption("record has trailing bytes");
  }
  return Tuple(std::move(values), *iv);
}

}  // namespace tempo
