#include "service/query_service.h"

#include <chrono>
#include <utility>

#include "obs/explain.h"
#include "obs/export.h"

namespace tempo {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

const char* RunStateName(uint8_t state) {
  switch (state) {
    case 0:
      return "queued";
    case 1:
      return "running";
    case 2:
      return "finished";
    case 3:
      return "failed";
    case 4:
      return "cancelled";
  }
  return "?";
}

}  // namespace

// --- QueryProgress ---------------------------------------------------------

Json QueryProgress::ToJson() const {
  Json j = Json::Object();
  j.Set("query_id", query_id);
  j.Set("state", state);
  j.Set("phase", phase);
  j.Set("morsels_completed", morsels_completed);
  j.Set("morsels_total", morsels_total);
  j.Set("io", IoStatsToJson(io));
  j.Set("pages_reserved", static_cast<uint64_t>(pages_reserved));
  j.Set("pages_held", pages_held);
  j.Set("queue_position", static_cast<uint64_t>(queue_position));
  return j;
}

// --- QueryHandle -----------------------------------------------------------

QueryHandle::QueryHandle(QueryService* service, JoinRequest request,
                         std::unique_ptr<StoredRelation> output,
                         uint64_t query_id)
    : service_(service),
      request_(std::move(request)),
      output_(std::move(output)),
      query_id_(query_id) {}

QueryHandle::~QueryHandle() {
  service_->UnregisterHandle(this);
  Cancel();
  Wait().ok();
}

Status QueryHandle::Wait() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!joined_) {
    if (thread_.joinable()) thread_.join();  // publishes Run()'s writes
    joined_ = true;
  }
  return status_;
}

void QueryHandle::Cancel() { ticket_->Cancel(); }

QueryProgress QueryHandle::Progress() const {
  QueryProgress p;
  p.query_id = query_id_;
  const RunState state = state_.load(std::memory_order_acquire);
  p.state = RunStateName(static_cast<uint8_t>(state));
  const uint8_t phase = ctx_.tracer().live_phase();
  p.phase = phase == Tracer::kNoLivePhase
                ? ""
                : PhaseName(static_cast<Phase>(phase));
  p.morsels_completed = progress_.completed.load(std::memory_order_relaxed);
  p.morsels_total = progress_.total.load(std::memory_order_relaxed);
  p.io = accountant_.stats();  // mutex-guarded snapshot
  p.pages_reserved = ticket_->pages();
  p.pages_held = ticket_->granted();
  p.queue_position = service_->pool()->QueuePosition(ticket_.get());
  return p;
}

void QueryHandle::Run() {
  const auto t0 = std::chrono::steady_clock::now();
  Status admit = ticket_->Wait();
  const double wait_us = MicrosSince(t0);
  admission_wait_us_ = wait_us;
  if (!admit.ok()) {
    state_.store(RunState::kCancelled, std::memory_order_release);
    service_->flight()->Append(FlightEventKind::kQueryCancelled, query_id_);
    status_ = admit;
    service_->RecordOutcome(/*cancelled=*/true, wait_us, MicrosSince(t0));
    return;
  }
  state_.store(RunState::kRunning, std::memory_order_release);
  service_->flight()->Append(FlightEventKind::kQueryAdmitted, query_id_,
                             ticket_->pages());

  // A fresh accountant per query, bound to this coordinator thread (and
  // propagated by the executors to any helper thread they spawn): the
  // query's head positions evolve exactly as in a standalone run, so its
  // charged IoStats are identical at any concurrency level. The telemetry
  // layer only ever *reads* this accountant (Progress, DumpStats), so
  // enabling it cannot perturb the charged counts.
  Disk* disk = service_->disk();
  accountant_.set_head_model(disk->base_accountant().head_model());
  StatusOr<JoinRunStats> result = Status::Internal("query did not run");
  {
    ScopedAccountantBinding binding(disk, &accountant_);
    ScopedMorselProgress morsel_binding(&progress_);
    ctx_.SetScheduler(service_->scheduler());
    ctx_.BindAccountant(&accountant_);
    ctx_.tracer().SetFlightRecorder(service_->flight(), query_id_);
    ScopedPoolRegistration pool_reg(&ctx_,
                                    service_->pool()->buffer_manager());
    result = RunJoin(request_, output_.get(), &ctx_);
  }
  // Return the reservation before bookkeeping so queued queries start
  // as early as possible.
  ticket_->Release();
  if (result.ok()) {
    stats_ = std::move(result).value();
    status_ = Status::OK();
    state_.store(RunState::kFinished, std::memory_order_release);
  } else {
    status_ = result.status();
    state_.store(RunState::kFailed, std::memory_order_release);
  }
  const double latency_us = MicrosSince(t0);
  service_->RecordOutcome(/*cancelled=*/false, wait_us, latency_us);
  service_->OnQueryFinished(this, wait_us, latency_us);
}

// --- Session ---------------------------------------------------------------

StatusOr<std::unique_ptr<QueryHandle>> Session::Submit(
    const JoinRequest& request, const std::string& output_name) {
  if (request.r == nullptr || request.s == nullptr) {
    return Status::InvalidArgument(
        "JoinRequest has no input relations (call From)");
  }
  const uint64_t query_id = service_->NextQueryId();
  // The submit event lands before the admission request: a fail-fast
  // rejection below leaves a submit/reject pair in the flight recorder,
  // which is exactly the evidence an operator needs for a query that
  // never ran.
  service_->flight()->Append(FlightEventKind::kQuerySubmitted, query_id,
                             request.options.buffer_pages);
  // Reserve first: an impossible reservation (more pages than the whole
  // pool) must fail fast instead of wedging the FIFO queue.
  auto ticket_or =
      service_->pool()->Request(request.options.buffer_pages, query_id);
  if (!ticket_or.ok()) {
    service_->OnQueryRejected(query_id, request.options.buffer_pages);
    return ticket_or.status();
  }
  std::unique_ptr<AdmissionTicket> ticket = std::move(ticket_or).value();

  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(request.r->schema(),
                                                 request.s->schema()));
  std::string name = output_name;
  if (name.empty()) {
    name = "s" + std::to_string(id_) + ".q" + std::to_string(next_query_) +
           ".out";
  }
  ++next_query_;
  auto output = std::make_unique<StoredRelation>(service_->disk(),
                                                 layout.output, name);
  std::unique_ptr<QueryHandle> handle(
      new QueryHandle(service_, request, std::move(output), query_id));
  handle->ticket_ = std::move(ticket);
  service_->RegisterHandle(handle.get());
  handle->thread_ = std::thread([raw = handle.get()] { raw->Run(); });
  return handle;
}

StatusOr<StoredRelation*> Session::Relation(const std::string& name) const {
  return service_->Lookup(name);
}

// --- QueryService ----------------------------------------------------------

StatusOr<std::unique_ptr<QueryService>> QueryService::Create(
    Disk* disk, const QueryServiceOptions& options) {
  if (disk == nullptr) {
    return Status::InvalidArgument("QueryService needs a disk");
  }
  if (options.pool_pages == 0) {
    return Status::InvalidArgument(
        "QueryService needs a non-empty buffer pool");
  }
  TEMPO_ASSIGN_OR_RETURN(std::unique_ptr<Scheduler> scheduler,
                         Scheduler::Create(options.scheduler));
  TelemetryConfig telemetry = options.telemetry;
  if (!telemetry.enabled()) {
    TEMPO_ASSIGN_OR_RETURN(telemetry, TelemetryConfig::FromEnv());
  }
  std::unique_ptr<QueryService> service(new QueryService(
      disk, std::move(scheduler), options.pool_pages, telemetry));
  if (!telemetry.jsonl_path.empty()) {
    TEMPO_ASSIGN_OR_RETURN(service->sink_,
                           TelemetrySink::Open(telemetry.jsonl_path));
    QueryService* raw = service.get();
    service->sampler_ = std::make_unique<MetricsSampler>(
        telemetry.sampler_period_ms, service->sink_.get(),
        [raw] { return raw->SampleTelemetry(); });
  }
  if (!telemetry.flight_path.empty()) {
    FlightRecorder::InstallFatalSignalDump(&service->flight_,
                                           telemetry.flight_path);
  }
  return service;
}

QueryService::QueryService(Disk* disk, std::unique_ptr<Scheduler> scheduler,
                           uint32_t pool_pages,
                           const TelemetryConfig& telemetry)
    : disk_(disk),
      scheduler_(std::move(scheduler)),
      pool_(disk, pool_pages),
      telemetry_(telemetry),
      flight_(telemetry.flight_events) {
  pool_.SetFlightRecorder(&flight_);
}

QueryService::~QueryService() {
  // Order matters: the sampler's callback reads this service, so it must
  // stop before anything else is torn down; the signal handler holds a
  // raw recorder pointer, so disarm it before the recorder dies.
  if (sampler_ != nullptr) sampler_->Stop();
  pool_.SetFlightRecorder(nullptr);
  if (!telemetry_.flight_path.empty()) {
    FlightRecorder::InstallFatalSignalDump(nullptr, "");
    flight_.DumpFile(telemetry_.flight_path).ok();
  }
}

Status QueryService::Register(StoredRelation* relation) {
  if (relation == nullptr) {
    return Status::InvalidArgument("cannot register a null relation");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = catalog_.emplace(relation->name(), relation);
  if (!inserted) {
    return Status::InvalidArgument("relation already registered: " +
                                   relation->name());
  }
  return Status::OK();
}

StatusOr<StoredRelation*> QueryService::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no relation registered as: " + name);
  }
  return it->second;
}

Session QueryService::OpenSession() {
  std::lock_guard<std::mutex> lock(mu_);
  return Session(this, next_session_++);
}

MetricsRegistry QueryService::SnapshotMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsRegistry snapshot = metrics_;
  snapshot.Set(Metric::kAdmissionQueuePeak,
               static_cast<double>(pool_.queue_peak()));
  return snapshot;
}

GaugeSnapshot QueryService::SampleGauges() const {
  GaugeSnapshot g;
  g.Set(Gauge::kPoolPagesTotal, static_cast<double>(pool_.capacity_pages()));
  g.Set(Gauge::kPoolPagesAvailable,
        static_cast<double>(pool_.available_pages()));
  g.Set(Gauge::kAdmissionQueueDepth,
        static_cast<double>(pool_.queue_depth()));
  ThreadPool* workers = scheduler_->pool();
  g.Set(Gauge::kSchedulerRunQueue,
        workers == nullptr ? 0.0
                           : static_cast<double>(workers->queue_depth()));
  g.Set(Gauge::kSchedulerThreads,
        static_cast<double>(scheduler_->num_threads()));
  uint64_t queued = 0;
  uint64_t running = 0;
  {
    std::lock_guard<std::mutex> lock(handles_mu_);
    for (const auto& [id, handle] : handles_) {
      switch (handle->state_.load(std::memory_order_acquire)) {
        case QueryHandle::RunState::kQueued:
          ++queued;
          break;
        case QueryHandle::RunState::kRunning:
          ++running;
          break;
        default:
          break;
      }
    }
  }
  g.Set(Gauge::kQueriesQueued, static_cast<double>(queued));
  g.Set(Gauge::kQueriesRunning, static_cast<double>(running));
  {
    std::lock_guard<std::mutex> lock(mu_);
    g.Set(Gauge::kSessionsOpened, static_cast<double>(next_session_));
  }
  g.Set(Gauge::kSlowQueriesLogged,
        static_cast<double>(slow_queries_.load(std::memory_order_relaxed)));
  g.Set(Gauge::kFlightEventsAppended,
        static_cast<double>(flight_.events_appended()));
  return g;
}

Json QueryService::DumpStats() const {
  Json queries = Json::Array();
  {
    std::lock_guard<std::mutex> lock(handles_mu_);
    for (const auto& [id, handle] : handles_) {
      queries.Append(handle->Progress().ToJson());
    }
  }
  Json doc = Json::Object();
  doc.Set("queries", std::move(queries));
  doc.Set("gauges", SampleGauges().ToJson());
  doc.Set("metrics", MetricsToJson(SnapshotMetrics()));
  return doc;
}

std::string QueryService::RenderPrometheusText() const {
  const GaugeSnapshot gauges = SampleGauges();
  return RenderPrometheus(SnapshotMetrics(), &gauges);
}

Json QueryService::SampleTelemetry() const {
  Json sample = Json::Object();
  sample.Set("gauges", SampleGauges().ToJson());
  sample.Set("metrics", MetricsToJson(SnapshotMetrics()));
  return sample;
}

void QueryService::RecordOutcome(bool cancelled, double wait_us,
                                 double latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cancelled) {
    metrics_.Add(Metric::kQueriesCancelled, 1.0);
  } else {
    metrics_.Add(Metric::kQueriesCompleted, 1.0);
    metrics_.Record(Hist::kAdmissionWaitUs, wait_us);
  }
  metrics_.Record(Hist::kQueryLatencyUs, latency_us);
}

void QueryService::OnQueryFinished(QueryHandle* handle, double wait_us,
                                   double latency_us) {
  flight_.Append(FlightEventKind::kQueryFinished, handle->query_id_,
                 static_cast<uint64_t>(latency_us));
  if (handle->ctx_.metrics().Get(Metric::kRadixFallback) != 0.0) {
    flight_.Append(FlightEventKind::kExecutorFallback, handle->query_id_);
  }

  // Per-query trace file: under the concurrent service every query gets
  // its own "<base>.q<id>.<ext>" file, so one TEMPO_TRACE_OUT setting no
  // longer makes N queries clobber a single path.
  const std::string trace_base = TraceOutPath();
  if (!trace_base.empty()) {
    WriteTraceFile(handle->ctx_,
                   PerQueryTracePath(trace_base, handle->query_id_))
        .ok();
  }

  if (telemetry_.slow_query_log &&
      latency_us >= static_cast<double>(telemetry_.slow_query_ms) * 1000.0) {
    slow_queries_.fetch_add(1, std::memory_order_relaxed);
    flight_.Append(FlightEventKind::kSlowQuery, handle->query_id_,
                   static_cast<uint64_t>(latency_us));
    if (sink_ != nullptr) {
      const JoinRequest& req = handle->request_;
      Json request = Json::Object();
      request.Set("executor", JoinExecutorName(req.executor));
      request.Set("kind", JoinKindName(req.options.join_kind));
      request.Set("predicate", req.options.predicate.Name());
      request.Set("buffer_pages",
                  static_cast<uint64_t>(req.options.buffer_pages));
      if (req.r != nullptr) request.Set("r", req.r->name());
      if (req.s != nullptr) request.Set("s", req.s->name());

      Json record = Json::Object();
      record.Set("type", "slow_query");
      record.Set("query_id", handle->query_id_);
      record.Set("latency_us", latency_us);
      record.Set("wait_us", wait_us);
      record.Set("request", std::move(request));
      record.Set("io", IoStatsToJson(handle->accountant_.stats()));
      record.Set("metrics", MetricsToJson(handle->ctx_.metrics()));
      record.Set("explain", ExplainAnalyze(handle->ctx_));
      sink_->Append(record).ok();
    }
  }
}

void QueryService::OnQueryRejected(uint64_t query_id, uint32_t pages) {
  flight_.Append(FlightEventKind::kQueryRejected, query_id, pages);
  {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_.Add(Metric::kQueriesCancelled, 1.0);
  }
  // A rejection is exactly the "what led up to this?" moment the flight
  // recorder exists for — dump it now, while the evidence is fresh.
  if (!telemetry_.flight_path.empty()) {
    flight_.DumpFile(telemetry_.flight_path).ok();
  }
}

void QueryService::RegisterHandle(QueryHandle* handle) {
  std::lock_guard<std::mutex> lock(handles_mu_);
  handles_[handle->query_id_] = handle;
}

void QueryService::UnregisterHandle(QueryHandle* handle) {
  std::lock_guard<std::mutex> lock(handles_mu_);
  handles_.erase(handle->query_id_);
}

}  // namespace tempo
