#include "service/query_service.h"

#include <chrono>
#include <utility>

namespace tempo {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// --- QueryHandle -----------------------------------------------------------

QueryHandle::QueryHandle(QueryService* service, JoinRequest request,
                         std::unique_ptr<StoredRelation> output)
    : service_(service),
      request_(std::move(request)),
      output_(std::move(output)) {}

QueryHandle::~QueryHandle() {
  Cancel();
  Wait().ok();
}

Status QueryHandle::Wait() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!joined_) {
    if (thread_.joinable()) thread_.join();  // publishes Run()'s writes
    joined_ = true;
  }
  return status_;
}

void QueryHandle::Cancel() { ticket_->Cancel(); }

void QueryHandle::Run() {
  const auto t0 = std::chrono::steady_clock::now();
  Status admit = ticket_->Wait();
  const double wait_us = MicrosSince(t0);
  admission_wait_us_ = wait_us;
  if (!admit.ok()) {
    status_ = admit;
    service_->RecordOutcome(/*cancelled=*/true, wait_us, MicrosSince(t0));
    return;
  }

  // A fresh accountant per query, bound to this coordinator thread (and
  // propagated by the executors to any helper thread they spawn): the
  // query's head positions evolve exactly as in a standalone run, so its
  // charged IoStats are identical at any concurrency level.
  Disk* disk = service_->disk();
  IoAccountant accountant;
  accountant.set_head_model(disk->base_accountant().head_model());
  StatusOr<JoinRunStats> result = Status::Internal("query did not run");
  {
    ScopedAccountantBinding binding(disk, &accountant);
    ExecContext ctx;
    ctx.SetScheduler(service_->scheduler());
    ctx.BindAccountant(&accountant);
    ScopedPoolRegistration pool_reg(&ctx,
                                    service_->pool()->buffer_manager());
    result = RunJoin(request_, output_.get(), &ctx);
  }
  // Return the reservation before bookkeeping so queued queries start
  // as early as possible.
  ticket_->Release();
  if (result.ok()) {
    stats_ = std::move(result).value();
    status_ = Status::OK();
  } else {
    status_ = result.status();
  }
  service_->RecordOutcome(/*cancelled=*/false, wait_us, MicrosSince(t0));
}

// --- Session ---------------------------------------------------------------

StatusOr<std::unique_ptr<QueryHandle>> Session::Submit(
    const JoinRequest& request, const std::string& output_name) {
  if (request.r == nullptr || request.s == nullptr) {
    return Status::InvalidArgument(
        "JoinRequest has no input relations (call From)");
  }
  // Reserve first: an impossible reservation (more pages than the whole
  // pool) must fail fast instead of wedging the FIFO queue.
  TEMPO_ASSIGN_OR_RETURN(
      std::unique_ptr<AdmissionTicket> ticket,
      service_->pool()->Request(request.options.buffer_pages));

  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(request.r->schema(),
                                                 request.s->schema()));
  std::string name = output_name;
  if (name.empty()) {
    name = "s" + std::to_string(id_) + ".q" + std::to_string(next_query_) +
           ".out";
  }
  ++next_query_;
  auto output = std::make_unique<StoredRelation>(service_->disk(),
                                                 layout.output, name);
  std::unique_ptr<QueryHandle> handle(
      new QueryHandle(service_, request, std::move(output)));
  handle->ticket_ = std::move(ticket);
  handle->thread_ = std::thread([raw = handle.get()] { raw->Run(); });
  return handle;
}

StatusOr<StoredRelation*> Session::Relation(const std::string& name) const {
  return service_->Lookup(name);
}

// --- QueryService ----------------------------------------------------------

StatusOr<std::unique_ptr<QueryService>> QueryService::Create(
    Disk* disk, const QueryServiceOptions& options) {
  if (disk == nullptr) {
    return Status::InvalidArgument("QueryService needs a disk");
  }
  if (options.pool_pages == 0) {
    return Status::InvalidArgument(
        "QueryService needs a non-empty buffer pool");
  }
  TEMPO_ASSIGN_OR_RETURN(std::unique_ptr<Scheduler> scheduler,
                         Scheduler::Create(options.scheduler));
  return std::unique_ptr<QueryService>(
      new QueryService(disk, std::move(scheduler), options.pool_pages));
}

Status QueryService::Register(StoredRelation* relation) {
  if (relation == nullptr) {
    return Status::InvalidArgument("cannot register a null relation");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = catalog_.emplace(relation->name(), relation);
  if (!inserted) {
    return Status::InvalidArgument("relation already registered: " +
                                   relation->name());
  }
  return Status::OK();
}

StatusOr<StoredRelation*> QueryService::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no relation registered as: " + name);
  }
  return it->second;
}

Session QueryService::OpenSession() {
  std::lock_guard<std::mutex> lock(mu_);
  return Session(this, next_session_++);
}

MetricsRegistry QueryService::SnapshotMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsRegistry snapshot = metrics_;
  snapshot.Set(Metric::kAdmissionQueuePeak,
               static_cast<double>(pool_.queue_peak()));
  return snapshot;
}

void QueryService::RecordOutcome(bool cancelled, double wait_us,
                                 double latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cancelled) {
    metrics_.Add(Metric::kQueriesCancelled, 1.0);
  } else {
    metrics_.Add(Metric::kQueriesCompleted, 1.0);
    metrics_.Record(Hist::kAdmissionWaitUs, wait_us);
  }
  metrics_.Record(Hist::kQueryLatencyUs, latency_us);
}

}  // namespace tempo
