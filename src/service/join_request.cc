#include "service/join_request.h"

#include <algorithm>

#include "core/partition_join.h"
#include "core/planner.h"
#include "core/radix_join.h"
#include "join/indexed_join.h"
#include "join/nested_loop_join.h"
#include "join/reference_join.h"
#include "join/sort_merge_join.h"
#include "join/sweep_join.h"

namespace tempo {

const char* JoinExecutorName(JoinExecutor e) {
  switch (e) {
    case JoinExecutor::kAuto:
      return "auto";
    case JoinExecutor::kNestedLoop:
      return "nested-loop";
    case JoinExecutor::kSortMerge:
      return "sort-merge";
    case JoinExecutor::kIndexed:
      return "indexed";
    case JoinExecutor::kPartition:
      return "partition";
    case JoinExecutor::kReference:
      return "reference";
    case JoinExecutor::kInMemoryRadix:
      return "in-memory-radix";
    case JoinExecutor::kSweep:
      return "sweep";
  }
  return "unknown";
}

Status ValidateExecOptions(JoinExecutor executor, const ExecOptions& options) {
  const TemporalPredicate& pred = options.predicate;
  if (options.join_kind != JoinKind::kInner) {
    if (executor != JoinExecutor::kAuto &&
        executor != JoinExecutor::kPartition &&
        executor != JoinExecutor::kReference) {
      return Status::InvalidArgument(
          std::string("executor ") + JoinExecutorName(executor) +
          " cannot evaluate join kind " + JoinKindName(options.join_kind) +
          " under predicate '" + pred.Name() +
          "': sequenced outer/anti joins run on the partition executor "
          "(or auto, which routes there) or the reference oracle");
    }
    if (!pred.IsOverlapDefault()) {
      return Status::InvalidArgument(
          std::string("executor ") + JoinExecutorName(executor) +
          " cannot evaluate join kind " + JoinKindName(options.join_kind) +
          " under predicate '" + pred.Name() +
          "': sequenced outer/anti semantics are defined over the default "
          "overlap predicate only");
    }
    return Status::OK();
  }
  if (pred.ImpliesSharedChronon()) return Status::OK();
  if (!pred.HasDisjointNonAdjacent()) {
    if (executor == JoinExecutor::kAuto || executor == JoinExecutor::kSweep ||
        executor == JoinExecutor::kReference) {
      return Status::OK();
    }
    return Status::InvalidArgument(
        std::string("executor ") + JoinExecutorName(executor) +
        " cannot evaluate join kind " + JoinKindName(options.join_kind) +
        " under predicate '" + pred.Name() +
        "': adjacency relations (meets/met-by) need the sweep executor, "
        "auto planning, or the reference oracle");
  }
  if (executor == JoinExecutor::kReference) return Status::OK();
  return Status::InvalidArgument(
      std::string("executor ") + JoinExecutorName(executor) +
      " cannot evaluate join kind " + JoinKindName(options.join_kind) +
      " under predicate '" + pred.Name() +
      "': before/after match unboundedly separated tuples, which only the "
      "reference oracle evaluates");
}

namespace {

/// The oracle as an executor: both inputs read fully (charged as
/// sequential scans), joined in memory, results appended through the
/// canonical writer (sorted serialized records). Canonical order makes an
/// oracle run byte-identical to any executor run of the same request —
/// the partition executor's sequenced variants and the sweep executor
/// write the same canonical order — and to itself regardless of the
/// predicate. Inner joins evaluate the request's TemporalPredicate via
/// ReferenceTemporalJoin (the single ground truth for every executor x
/// predicate pair); the sequenced outer/anti kinds are defined over the
/// default overlap predicate, which ValidateExecOptions guarantees here.
StatusOr<JoinRunStats> RunReferenceJoin(StoredRelation* r, StoredRelation* s,
                                        StoredRelation* out,
                                        const VtJoinOptions& options,
                                        ExecContext* ctx) {
  JoinKind kind = options.join_kind;
  TEMPO_RETURN_IF_ERROR(PrepareJoinForKind(r, s, out, kind).status());
  Disk* disk = r->disk();
  IoAccountant& acct = disk->accountant();
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&acct);
  }
  IoStats before = acct.stats();
  TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> r_tuples, r->ReadAll());
  TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> s_tuples, s->ReadAll());
  std::vector<Tuple> result;
  if (kind == JoinKind::kInner) {
    TEMPO_ASSIGN_OR_RETURN(
        result, ReferenceTemporalJoin(r->schema(), r_tuples, s->schema(),
                                      s_tuples, options.predicate));
  } else {
    TEMPO_ASSIGN_OR_RETURN(
        result, ReferenceSequencedJoin(r->schema(), r_tuples, s->schema(),
                                       s_tuples, kind));
  }
  ResultWriter writer = ResultWriter::Canonical(out);
  for (const Tuple& t : result) {
    TEMPO_RETURN_IF_ERROR(writer.EmitAssembled(t));
  }
  TEMPO_RETURN_IF_ERROR(writer.Finish());
  JoinRunStats stats;
  stats.io = acct.stats() - before;
  stats.output_tuples = result.size();
  if (kind != JoinKind::kInner) {
    stats.Set(Metric::kSequencedJoinKind,
              static_cast<double>(static_cast<uint8_t>(kind)));
  }
  ExportMetrics(stats, ctx);
  return stats;
}

Status ValidateJoinAttrs(const JoinRequest& req) {
  if (req.expected_join_attrs.empty()) return Status::OK();
  TEMPO_ASSIGN_OR_RETURN(
      NaturalJoinLayout layout,
      DeriveNaturalJoinLayout(req.r->schema(), req.s->schema()));
  std::vector<std::string> actual;
  actual.reserve(layout.r_join_attrs.size());
  for (size_t pos : layout.r_join_attrs) {
    actual.push_back(req.r->schema().attribute(pos).name);
  }
  std::vector<std::string> expected = req.expected_join_attrs;
  std::sort(actual.begin(), actual.end());
  std::sort(expected.begin(), expected.end());
  if (actual != expected) {
    std::string got = "{";
    for (const std::string& a : actual) {
      if (got.size() > 1) got += ", ";
      got += a;
    }
    got += "}";
    std::string want = "{";
    for (const std::string& a : expected) {
      if (want.size() > 1) want += ", ";
      want += a;
    }
    want += "}";
    return Status::InvalidArgument("join attributes mismatch: schemas share " +
                                   got + " but the request expects " + want);
  }
  return Status::OK();
}

}  // namespace

StatusOr<JoinRunStats> RunJoin(const JoinRequest& req, StoredRelation* out,
                               ExecContext* ctx) {
  if (req.r == nullptr || req.s == nullptr) {
    return Status::InvalidArgument(
        "JoinRequest has no input relations (call From)");
  }
  if (out == nullptr) {
    return Status::InvalidArgument("RunJoin needs an output relation");
  }
  if (out == req.r || out == req.s) {
    return Status::InvalidArgument(
        "output relation must be distinct from the inputs");
  }
  TEMPO_RETURN_IF_ERROR(ValidateJoinAttrs(req));
  TEMPO_RETURN_IF_ERROR(ValidateExecOptions(req.executor, req.options));

  StatusOr<JoinRunStats> result = [&]() -> StatusOr<JoinRunStats> {
    switch (req.executor) {
      case JoinExecutor::kAuto:
        return ExecuteVtJoin(req.r, req.s, out, req.options, ctx);
      case JoinExecutor::kNestedLoop:
        return NestedLoopVtJoin(req.r, req.s, out, req.options, ctx);
      case JoinExecutor::kSortMerge:
        return SortMergeVtJoin(req.r, req.s, out, req.options, ctx);
      case JoinExecutor::kIndexed:
        return IndexedVtJoin(req.r, req.s, out, req.options, ctx);
      case JoinExecutor::kPartition: {
        PartitionJoinOptions part;
        static_cast<ExecOptions&>(part) = req.options;
        return PartitionVtJoin(req.r, req.s, out, part, ctx);
      }
      case JoinExecutor::kReference:
        return RunReferenceJoin(req.r, req.s, out, req.options, ctx);
      case JoinExecutor::kInMemoryRadix: {
        RadixJoinOptions radix;
        static_cast<ExecOptions&>(radix) = req.options;
        return RadixVtJoin(req.r, req.s, out, radix, ctx);
      }
      case JoinExecutor::kSweep:
        return SweepVtJoin(req.r, req.s, out, req.options, ctx);
    }
    return Status::InvalidArgument("unknown executor");
  }();
  if (result.ok() && !req.options.predicate.IsOverlapDefault()) {
    result->Set(Metric::kJoinPredicateMask,
                static_cast<double>(req.options.predicate.mask()));
  }
  return result;
}

}  // namespace tempo
