#ifndef TEMPO_SERVICE_JOIN_REQUEST_H_
#define TEMPO_SERVICE_JOIN_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "join/join_common.h"
#include "storage/stored_relation.h"

namespace tempo {

/// The evaluation strategies a JoinRequest may name. kAuto defers to the
/// cost-based planner; the rest force one executor. kReference is the
/// in-memory oracle (O(|r|*|s|)), kept addressable for verification runs
/// and the only executor that evaluates predicates containing
/// before/after. kSweep is the endpoint-sorted sweep, the only planned
/// executor for adjacency predicates (meets/met-by).
enum class JoinExecutor {
  kAuto,
  kNestedLoop,
  kSortMerge,
  kIndexed,
  kPartition,
  kReference,
  kInMemoryRadix,
  kSweep,
};

const char* JoinExecutorName(JoinExecutor e);

/// The single gatekeeper for executor x join-kind x predicate: returns OK
/// when the named executor can evaluate `options`, and InvalidArgument
/// naming all three otherwise. The rules it encodes:
///
///  - non-inner kinds (outer/anti) run on the partition executor (kAuto
///    routes there) or the reference oracle, and only under the default
///    overlap predicate — the sequenced semantics are defined over
///    overlapping valid time;
///  - predicates whose relations all imply a shared chronon (subsets of
///    the overlap disjunction) are accepted by every executor;
///  - adjacency predicates (containing meets/met-by but not before/after)
///    need the sweep executor, the planner (which routes to it), or the
///    oracle;
///  - predicates containing before/after match unboundedly separated
///    tuples and are accepted by the reference oracle only.
///
/// RunJoin calls this before dispatch; executors also self-check (their
/// guards make standalone calls safe), but this is the layer that can
/// name the requested executor in the error.
Status ValidateExecOptions(JoinExecutor executor, const ExecOptions& options);

/// One valid-time natural join, described declaratively: which relations,
/// which executor, and the budget knobs — the single entry point that
/// replaced six per-executor free functions. Build with the chainable
/// setters and hand to RunJoin (or Session::Submit for the concurrent
/// service):
///
///   JoinRequest req;
///   req.From(&r, &s).Using(JoinExecutor::kPartition).BufferPages(32);
///   TEMPO_ASSIGN_OR_RETURN(JoinRunStats stats, RunJoin(req, &out, &ctx));
///
/// The legacy free functions (NestedLoopVtJoin, SortMergeVtJoin,
/// IndexedVtJoin, PartitionVtJoin, RadixVtJoin, ExecuteVtJoin) remain as
/// thin deprecated entry points for one release; new code goes through
/// RunJoin.
struct JoinRequest {
  StoredRelation* r = nullptr;
  StoredRelation* s = nullptr;
  JoinExecutor executor = JoinExecutor::kAuto;

  /// Shared budget knobs (buffer_pages is the paper's buffSize — also the
  /// page reservation the service's admission control charges).
  VtJoinOptions options;

  /// When non-empty, RunJoin validates that the natural join's shared
  /// attributes are exactly these names (order-insensitive) and fails
  /// with InvalidArgument otherwise — a schema-drift guard for requests
  /// built from catalog names rather than literal relations.
  std::vector<std::string> expected_join_attrs;

  JoinRequest& From(StoredRelation* r_in, StoredRelation* s_in) {
    r = r_in;
    s = s_in;
    return *this;
  }
  JoinRequest& Using(JoinExecutor e) {
    executor = e;
    return *this;
  }
  JoinRequest& On(std::vector<std::string> attrs) {
    expected_join_attrs = std::move(attrs);
    return *this;
  }
  JoinRequest& BufferPages(uint32_t pages) {
    options.buffer_pages = pages;
    return *this;
  }
  JoinRequest& Model(const CostModel& model) {
    options.cost_model = model;
    return *this;
  }
  JoinRequest& Seed(uint64_t seed) {
    options.seed = seed;
    return *this;
  }
  JoinRequest& RadixBudgetBytes(uint64_t bytes) {
    options.radix_budget_bytes = bytes;
    return *this;
  }
  /// Selects the sequenced join variant. Non-inner kinds run on the
  /// partition executor (kAuto routes there) or the reference oracle;
  /// naming any other executor is InvalidArgument (see
  /// ValidateExecOptions). Their output is the canonical sequenced result
  /// order, so an executor run and an oracle run of the same request are
  /// byte-identical.
  JoinRequest& Kind(JoinKind kind) {
    options.join_kind = kind;
    return *this;
  }
  /// Selects the temporal predicate the join evaluates (default: the
  /// overlap disjunction). Which executors accept which predicates is
  /// ValidateExecOptions's contract; kAuto plans within the eligible set.
  JoinRequest& Predicate(TemporalPredicate predicate) {
    options.predicate = predicate;
    return *this;
  }
  /// Convenience overload: require exactly one Allen relation, e.g.
  /// `req.Predicate(AllenRelation::kMeets)`.
  JoinRequest& Predicate(AllenRelation relation) {
    options.predicate = TemporalPredicate::Exactly(relation);
    return *this;
  }
};

/// Executes `req` into `out`. Dispatches to the named executor (kAuto
/// plans first), after validating the request: relations present, out
/// distinct from the inputs, and — when expected_join_attrs is set — the
/// derived shared attributes match.
///
/// Parallelism comes from the Scheduler handle on `ctx` (serial when the
/// context or handle is null), and all charged I/O lands on the
/// accountant `Disk::accountant()` resolves for the calling thread — so
/// the same request run through the concurrent service produces the same
/// output pages and the same charged IoStats as a standalone call.
StatusOr<JoinRunStats> RunJoin(const JoinRequest& req, StoredRelation* out,
                               ExecContext* ctx = nullptr);

}  // namespace tempo

#endif  // TEMPO_SERVICE_JOIN_REQUEST_H_
