#ifndef TEMPO_SERVICE_QUERY_SERVICE_H_
#define TEMPO_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/statusor.h"
#include "obs/exec_context.h"
#include "parallel/scheduler.h"
#include "service/join_request.h"
#include "service/shared_buffer_pool.h"
#include "storage/stored_relation.h"

namespace tempo {

class QueryService;
class Session;

/// Configuration of a QueryService.
struct QueryServiceOptions {
  /// Logical buffer pages shared by all concurrent queries; each admitted
  /// query reserves its whole buffer_pages budget against this.
  uint32_t pool_pages = 4096;

  /// Worker-thread configuration, resolved against TEMPO_BENCH_THREADS by
  /// Scheduler::Create (conflicting settings are an error).
  SchedulerConfig scheduler;
};

/// One submitted join: a future over the join's result. Submit returns
/// immediately; the query runs on its own coordinator thread (admission
/// wait included), fanning CPU-bound morsels onto the service's shared
/// work-stealing pool.
///
/// The handle owns the output relation and the final stats. Wait() blocks
/// until the query finishes; Cancel() aborts a query still waiting in the
/// admission queue (a running query is past cancellation — the paper's
/// algorithms have no safe preemption points). Destroying the handle
/// cancels-if-queued and joins.
class QueryHandle {
 public:
  ~QueryHandle();

  QueryHandle(const QueryHandle&) = delete;
  QueryHandle& operator=(const QueryHandle&) = delete;

  /// Blocks until the query completes (or its cancellation lands) and
  /// returns the execution status. Idempotent.
  Status Wait();

  /// Cancels the query if it is still queued for admission; its
  /// reservation slot is released immediately so queries behind it can
  /// run. No effect once admitted.
  void Cancel();

  /// The result relation; rows are valid only after Wait() returned OK.
  StoredRelation* output() { return output_.get(); }

  /// The run's stats; valid only after Wait() returned OK.
  const JoinRunStats& stats() const { return stats_; }

  /// Microseconds this query spent queued for admission (valid after
  /// Wait()).
  double admission_wait_us() const { return admission_wait_us_; }

 private:
  friend class Session;

  QueryHandle(QueryService* service, JoinRequest request,
              std::unique_ptr<StoredRelation> output);

  void Run();  // thread body

  QueryService* service_;
  JoinRequest request_;
  std::unique_ptr<StoredRelation> output_;
  std::unique_ptr<AdmissionTicket> ticket_;  // written before thread start

  std::mutex mu_;
  bool joined_ = false;
  Status status_ = Status::OK();
  JoinRunStats stats_;
  double admission_wait_us_ = 0.0;
  std::thread thread_;
};

/// A client's handle into the service: a factory for queries over the
/// service's registered (shared, immutable) relations. Sessions are
/// lightweight — state lives in the service — and must not outlive it.
class Session {
 public:
  /// Submits a join for concurrent execution. The output relation is
  /// created on the service's disk with the derived natural-join schema,
  /// named after the session and a per-session query counter (override
  /// with `output_name`). Fails fast (without queueing) when the request
  /// is malformed or its reservation exceeds the whole pool.
  StatusOr<std::unique_ptr<QueryHandle>> Submit(
      const JoinRequest& request, const std::string& output_name = "");

  /// Looks up a relation registered with the service.
  StatusOr<StoredRelation*> Relation(const std::string& name) const;

  uint64_t id() const { return id_; }

 private:
  friend class QueryService;
  Session(QueryService* service, uint64_t id)
      : service_(service), id_(id) {}

  QueryService* service_;
  uint64_t id_;
  uint64_t next_query_ = 0;
};

/// The concurrent query service: one shared scheduler (work-stealing
/// thread pool), one shared buffer pool with strict-FIFO admission
/// control, and a catalog of shared immutable input relations. Sessions
/// submit JoinRequests; each query runs with a private IoAccountant bound
/// to its coordinator thread, so its output pages and charged IoStats are
/// byte-identical to running the same request alone (see DESIGN.md §4h).
class QueryService {
 public:
  /// Resolves the scheduler config (TEMPO_BENCH_THREADS conflicts are an
  /// error) and builds the service.
  static StatusOr<std::unique_ptr<QueryService>> Create(
      Disk* disk, const QueryServiceOptions& options);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers a relation under its name for lookup by sessions. The
  /// relation must stay alive and unmodified while the service runs.
  Status Register(StoredRelation* relation);

  StatusOr<StoredRelation*> Lookup(const std::string& name) const;

  Session OpenSession();

  Disk* disk() { return disk_; }
  Scheduler* scheduler() { return scheduler_.get(); }
  SharedBufferPool* pool() { return &pool_; }

  /// Snapshot of the service's lifetime metrics (queries completed /
  /// cancelled, admission queue peak, wait and latency histograms).
  MetricsRegistry SnapshotMetrics() const;

 private:
  friend class QueryHandle;

  QueryService(Disk* disk, std::unique_ptr<Scheduler> scheduler,
               uint32_t pool_pages)
      : disk_(disk), scheduler_(std::move(scheduler)),
        pool_(disk, pool_pages) {}

  /// Called by each query's thread as it finishes (MetricsRegistry
  /// scalars are not thread-safe; the service serializes them here).
  void RecordOutcome(bool cancelled, double wait_us, double latency_us);

  Disk* disk_;
  std::unique_ptr<Scheduler> scheduler_;
  SharedBufferPool pool_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, StoredRelation*> catalog_;
  MetricsRegistry metrics_;
  uint64_t next_session_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SERVICE_QUERY_SERVICE_H_
