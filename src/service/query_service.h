#ifndef TEMPO_SERVICE_QUERY_SERVICE_H_
#define TEMPO_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/statusor.h"
#include "obs/exec_context.h"
#include "obs/telemetry.h"
#include "parallel/scheduler.h"
#include "service/join_request.h"
#include "service/shared_buffer_pool.h"
#include "storage/stored_relation.h"

namespace tempo {

class QueryService;
class Session;

/// Configuration of a QueryService.
struct QueryServiceOptions {
  /// Logical buffer pages shared by all concurrent queries; each admitted
  /// query reserves its whole buffer_pages budget against this.
  uint32_t pool_pages = 4096;

  /// Worker-thread configuration, resolved against TEMPO_BENCH_THREADS by
  /// Scheduler::Create (conflicting settings are an error).
  SchedulerConfig scheduler;

  /// Telemetry knobs. Left default-constructed (nothing enabled), Create
  /// resolves them from the environment (TelemetryConfig::FromEnv, strict
  /// parsing); a programmatically-filled config wins over the
  /// environment. The flight recorder itself is always on — these knobs
  /// only govern where (and whether) its dumps and the JSONL stream land.
  TelemetryConfig telemetry;
};

/// One point-in-time view of a submitted query, safe to take while the
/// query runs (every field reads an atomic or a mutex-guarded snapshot;
/// nothing here perturbs charged I/O). Returned by QueryHandle::Progress
/// and aggregated by QueryService::DumpStats.
struct QueryProgress {
  uint64_t query_id = 0;
  /// "queued" | "running" | "finished" | "failed" | "cancelled".
  const char* state = "queued";
  /// Most recently entered executor phase ("" before the first span).
  const char* phase = "";
  /// Live morsel counters: completed bodies / dispatched-so-far total
  /// across every parallel region the query has entered. The total grows
  /// as the query reaches new regions.
  uint64_t morsels_completed = 0;
  uint64_t morsels_total = 0;
  /// Charged I/O on the query's private accountant so far.
  IoStats io;
  /// The admission reservation: its size, whether it is currently held,
  /// and (while queued) the 1-based FIFO position (0 = not queued).
  uint32_t pages_reserved = 0;
  bool pages_held = false;
  size_t queue_position = 0;

  Json ToJson() const;
};

/// One submitted join: a future over the join's result. Submit returns
/// immediately; the query runs on its own coordinator thread (admission
/// wait included), fanning CPU-bound morsels onto the service's shared
/// work-stealing pool.
///
/// The handle owns the output relation and the final stats. Wait() blocks
/// until the query finishes; Cancel() aborts a query still waiting in the
/// admission queue (a running query is past cancellation — the paper's
/// algorithms have no safe preemption points). Destroying the handle
/// cancels-if-queued and joins.
class QueryHandle {
 public:
  ~QueryHandle();

  QueryHandle(const QueryHandle&) = delete;
  QueryHandle& operator=(const QueryHandle&) = delete;

  /// Blocks until the query completes (or its cancellation lands) and
  /// returns the execution status. Idempotent.
  Status Wait();

  /// Cancels the query if it is still queued for admission; its
  /// reservation slot is released immediately so queries behind it can
  /// run. No effect once admitted.
  void Cancel();

  /// The result relation; rows are valid only after Wait() returned OK.
  StoredRelation* output() { return output_.get(); }

  /// The run's stats; valid only after Wait() returned OK.
  const JoinRunStats& stats() const { return stats_; }

  /// Microseconds this query spent queued for admission (valid after
  /// Wait()).
  double admission_wait_us() const { return admission_wait_us_; }

  /// Service-wide id of this query (tags its flight-recorder events and
  /// its per-query trace file).
  uint64_t query_id() const { return query_id_; }

  /// Live progress snapshot, safe to call from any thread at any time —
  /// including concurrently with the query's own execution.
  QueryProgress Progress() const;

 private:
  friend class Session;
  friend class QueryService;

  enum class RunState : uint8_t {
    kQueued,
    kRunning,
    kFinished,
    kFailed,
    kCancelled,
  };

  QueryHandle(QueryService* service, JoinRequest request,
              std::unique_ptr<StoredRelation> output, uint64_t query_id);

  void Run();  // thread body

  QueryService* service_;
  JoinRequest request_;
  std::unique_ptr<StoredRelation> output_;
  std::unique_ptr<AdmissionTicket> ticket_;  // written before thread start
  const uint64_t query_id_;

  /// Live-progress state, readable while Run() executes. The accountant
  /// and context are members (not Run() locals) so Progress() can read
  /// charged I/O and the live phase mid-flight; both are only *written*
  /// by the query's own threads.
  std::atomic<RunState> state_{RunState::kQueued};
  IoAccountant accountant_;
  ExecContext ctx_;
  MorselProgress progress_;

  std::mutex mu_;
  bool joined_ = false;
  Status status_ = Status::OK();
  JoinRunStats stats_;
  double admission_wait_us_ = 0.0;
  std::thread thread_;
};

/// A client's handle into the service: a factory for queries over the
/// service's registered (shared, immutable) relations. Sessions are
/// lightweight — state lives in the service — and must not outlive it.
class Session {
 public:
  /// Submits a join for concurrent execution. The output relation is
  /// created on the service's disk with the derived natural-join schema,
  /// named after the session and a per-session query counter (override
  /// with `output_name`). Fails fast (without queueing) when the request
  /// is malformed or its reservation exceeds the whole pool.
  StatusOr<std::unique_ptr<QueryHandle>> Submit(
      const JoinRequest& request, const std::string& output_name = "");

  /// Looks up a relation registered with the service.
  StatusOr<StoredRelation*> Relation(const std::string& name) const;

  uint64_t id() const { return id_; }

 private:
  friend class QueryService;
  Session(QueryService* service, uint64_t id)
      : service_(service), id_(id) {}

  QueryService* service_;
  uint64_t id_;
  uint64_t next_query_ = 0;
};

/// The concurrent query service: one shared scheduler (work-stealing
/// thread pool), one shared buffer pool with strict-FIFO admission
/// control, and a catalog of shared immutable input relations. Sessions
/// submit JoinRequests; each query runs with a private IoAccountant bound
/// to its coordinator thread, so its output pages and charged IoStats are
/// byte-identical to running the same request alone (see DESIGN.md §4h).
class QueryService {
 public:
  /// Resolves the scheduler config (TEMPO_BENCH_THREADS conflicts are an
  /// error) and builds the service.
  static StatusOr<std::unique_ptr<QueryService>> Create(
      Disk* disk, const QueryServiceOptions& options);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers a relation under its name for lookup by sessions. The
  /// relation must stay alive and unmodified while the service runs.
  Status Register(StoredRelation* relation);

  StatusOr<StoredRelation*> Lookup(const std::string& name) const;

  ~QueryService();

  Session OpenSession();

  Disk* disk() { return disk_; }
  Scheduler* scheduler() { return scheduler_.get(); }
  SharedBufferPool* pool() { return &pool_; }

  /// The always-on flight recorder of lifecycle events.
  FlightRecorder* flight() { return &flight_; }

  /// The JSONL sink behind TEMPO_TELEMETRY_OUT; null when not configured.
  TelemetrySink* telemetry_sink() { return sink_.get(); }

  /// The background sampler; null when no JSONL sink is configured.
  MetricsSampler* sampler() { return sampler_.get(); }

  const TelemetryConfig& telemetry_config() const { return telemetry_; }

  /// Snapshot of the service's lifetime metrics (queries completed /
  /// cancelled, admission queue peak, wait and latency histograms).
  MetricsRegistry SnapshotMetrics() const;

  /// One reading of every declared service gauge (pool occupancy, queue
  /// depths, live query counts, ...). What the sampler snapshots each
  /// tick; safe to call concurrently with execution.
  GaugeSnapshot SampleGauges() const;

  /// Everything at once, as one JSON document: per-query Progress() of
  /// every live handle (ordered by query id), the gauge snapshot, and the
  /// metrics snapshot. Safe to call concurrently with execution.
  Json DumpStats() const;

  /// The service's state in the Prometheus text exposition format
  /// (SnapshotMetrics + SampleGauges through RenderPrometheus).
  std::string RenderPrometheusText() const;

  /// Queries captured by the slow-query log so far.
  uint64_t slow_queries_logged() const {
    return slow_queries_.load(std::memory_order_relaxed);
  }

 private:
  friend class QueryHandle;
  friend class Session;

  QueryService(Disk* disk, std::unique_ptr<Scheduler> scheduler,
               uint32_t pool_pages, const TelemetryConfig& telemetry);

  /// Called by each query's thread as it finishes (MetricsRegistry
  /// scalars are not thread-safe; the service serializes them here).
  void RecordOutcome(bool cancelled, double wait_us, double latency_us);

  /// Post-run bookkeeping on the query's thread: flight finish/fallback
  /// events, the slow-query log, the per-query trace file.
  void OnQueryFinished(QueryHandle* handle, double wait_us,
                       double latency_us);

  /// Fail-fast rejection path: flight reject event + dump (the wedged
  /// state a flight recorder exists to capture).
  void OnQueryRejected(uint64_t query_id, uint32_t pages);

  uint64_t NextQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void RegisterHandle(QueryHandle* handle);
  void UnregisterHandle(QueryHandle* handle);

  /// The sampler's per-tick record: {"gauges": ..., "metrics": ...}.
  Json SampleTelemetry() const;

  Disk* disk_;
  std::unique_ptr<Scheduler> scheduler_;
  SharedBufferPool pool_;

  TelemetryConfig telemetry_;
  FlightRecorder flight_;
  std::unique_ptr<TelemetrySink> sink_;
  std::unique_ptr<MetricsSampler> sampler_;
  std::atomic<uint64_t> next_query_id_{1};
  std::atomic<uint64_t> slow_queries_{0};

  mutable std::mutex mu_;
  std::unordered_map<std::string, StoredRelation*> catalog_;
  MetricsRegistry metrics_;
  uint64_t next_session_ = 0;

  /// Live handles for DumpStats, keyed by query id (ordered so dumps are
  /// deterministic). A handle registers on Submit and unregisters first
  /// thing in its destructor, so the map never holds a dying handle.
  mutable std::mutex handles_mu_;
  std::map<uint64_t, QueryHandle*> handles_;
};

}  // namespace tempo

#endif  // TEMPO_SERVICE_QUERY_SERVICE_H_
