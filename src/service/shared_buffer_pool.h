#ifndef TEMPO_SERVICE_SHARED_BUFFER_POOL_H_
#define TEMPO_SERVICE_SHARED_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "common/statusor.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"

namespace tempo {

class FlightRecorder;
class SharedBufferPool;

/// One query's buffer-page reservation, issued by
/// SharedBufferPool::Request. States move strictly forward:
///
///   queued --> granted --> released        (normal life cycle)
///   queued --> cancelled                   (Cancel before the grant)
///
/// Wait() blocks until the ticket leaves the queued state and returns OK
/// (granted) or Cancelled. Destroying the ticket releases whatever it
/// holds: a granted ticket returns its pages (waking the queue), a queued
/// one removes itself from the queue (equivalent to Cancel).
class AdmissionTicket {
 public:
  ~AdmissionTicket() { Release(); }

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  /// Blocks until granted (OK) or cancelled (Cancelled status).
  Status Wait();

  /// Cancels the reservation if still queued; the slot is removed from
  /// the FIFO immediately, so queries behind it can be admitted. A
  /// granted or already-finished ticket is unaffected.
  void Cancel();

  /// Returns the reservation (idempotent). Granted pages go back to the
  /// pool; a still-queued ticket is cancelled.
  void Release();

  uint32_t pages() const { return pages_; }

  /// True once the ticket has been granted (and not yet released).
  bool granted() const;

  /// Opaque owner tag carried into the pool's flight-recorder events (the
  /// query service passes the query id to Request). 0 = untagged.
  uint64_t tag() const { return tag_; }

 private:
  friend class SharedBufferPool;
  enum class State { kQueued, kGranted, kCancelled, kReleased };

  AdmissionTicket(SharedBufferPool* pool, uint32_t pages, uint64_t tag)
      : pool_(pool), pages_(pages), tag_(tag) {}

  SharedBufferPool* pool_;
  const uint32_t pages_;
  const uint64_t tag_;
  State state_ = State::kQueued;  // guarded by pool_->mu_
};

/// The concurrent query service's shared buffer memory: a logical ledger
/// of `capacity_pages` pages with strict-FIFO admission control, plus one
/// shared BufferManager for cached page access.
///
/// Each query reserves its whole buffer budget (the paper's buffSize) up
/// front: Request(pages) returns a ticket that is granted immediately
/// when the pages are free *and* no earlier query is still waiting —
/// admission is strictly first-come-first-served, so a small query cannot
/// overtake a large one and starve it. When the front reservation cannot
/// fit, every later query waits behind it. A request larger than the whole
/// pool fails immediately with ResourceExhausted (it could never be
/// granted; queueing it would deadlock the FIFO).
///
/// The ledger is intentionally decoupled from the executors' actual page
/// usage: the paper's algorithms manage their buffSize budget internally,
/// so admission control only needs to guarantee that the *sum of budgets*
/// of running queries never exceeds the pool — the same contract a real
/// buffer manager's reservation API would enforce.
class SharedBufferPool {
 public:
  SharedBufferPool(Disk* disk, uint32_t capacity_pages)
      : capacity_(capacity_pages),
        available_(capacity_pages),
        buffers_(disk, capacity_pages) {}

  SharedBufferPool(const SharedBufferPool&) = delete;
  SharedBufferPool& operator=(const SharedBufferPool&) = delete;

  /// Reserves `pages` of the pool. ResourceExhausted when pages == 0 or
  /// pages > capacity. Otherwise returns a queued (or, when the pool is
  /// idle and the pages free, immediately granted) ticket; call Wait().
  /// `tag` travels into the flight-recorder grant/release events (the
  /// query service passes the query id).
  StatusOr<std::unique_ptr<AdmissionTicket>> Request(uint32_t pages,
                                                     uint64_t tag = 0);

  uint32_t capacity_pages() const { return capacity_; }
  uint32_t available_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return available_;
  }

  /// Queries currently waiting in the admission queue.
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// Peak queue depth over the pool's lifetime (the admission_queue_peak
  /// metric).
  uint64_t queue_peak() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_peak_;
  }

  /// The shared page cache over the same disk, sized to the pool. Query
  /// contexts register it for hit/miss observability.
  BufferManager* buffer_manager() { return &buffers_; }

  /// 1-based FIFO position of a still-queued ticket (1 = next to be
  /// granted); 0 when the ticket is not queued (granted, cancelled,
  /// released, or foreign). The "queue position" of
  /// QueryHandle::Progress().
  size_t QueuePosition(const AdmissionTicket* ticket) const;

  /// Wires admission grants/releases into a service flight recorder
  /// (kAdmissionGranted / kAdmissionReleased events carrying the ticket's
  /// tag and page count). Null detaches. The recorder must outlive the
  /// pool or the detach call.
  void SetFlightRecorder(FlightRecorder* recorder) {
    flight_.store(recorder, std::memory_order_release);
  }

 private:
  friend class AdmissionTicket;

  /// Grants from the queue front while reservations fit. Caller holds mu_.
  void GrantFromFront();

  /// Removes a queued ticket from the FIFO. Caller holds mu_.
  void Unqueue(AdmissionTicket* ticket);

  const uint32_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint32_t available_;  // guarded by mu_
  std::deque<AdmissionTicket*> queue_;
  uint64_t queue_peak_ = 0;
  std::atomic<FlightRecorder*> flight_{nullptr};
  BufferManager buffers_;
};

}  // namespace tempo

#endif  // TEMPO_SERVICE_SHARED_BUFFER_POOL_H_
