#include "service/shared_buffer_pool.h"

#include <algorithm>
#include <string>

#include "obs/telemetry.h"

namespace tempo {

Status AdmissionTicket::Wait() {
  std::unique_lock<std::mutex> lock(pool_->mu_);
  pool_->cv_.wait(lock, [this] { return state_ != State::kQueued; });
  if (state_ == State::kGranted) return Status::OK();
  return Status::Cancelled("admission ticket cancelled while queued");
}

void AdmissionTicket::Cancel() {
  std::lock_guard<std::mutex> lock(pool_->mu_);
  if (state_ != State::kQueued) return;
  pool_->Unqueue(this);
  state_ = State::kCancelled;
  // Removing a stuck front reservation can unblock everything behind it.
  pool_->GrantFromFront();
  pool_->cv_.notify_all();
}

void AdmissionTicket::Release() {
  std::lock_guard<std::mutex> lock(pool_->mu_);
  switch (state_) {
    case State::kGranted:
      pool_->available_ += pages_;
      state_ = State::kReleased;
      if (FlightRecorder* flight =
              pool_->flight_.load(std::memory_order_acquire)) {
        flight->Append(FlightEventKind::kAdmissionReleased, tag_, pages_);
      }
      pool_->GrantFromFront();
      pool_->cv_.notify_all();
      break;
    case State::kQueued:
      pool_->Unqueue(this);
      state_ = State::kCancelled;
      pool_->GrantFromFront();
      pool_->cv_.notify_all();
      break;
    case State::kCancelled:
    case State::kReleased:
      break;
  }
}

bool AdmissionTicket::granted() const {
  std::lock_guard<std::mutex> lock(pool_->mu_);
  return state_ == State::kGranted;
}

StatusOr<std::unique_ptr<AdmissionTicket>> SharedBufferPool::Request(
    uint32_t pages, uint64_t tag) {
  if (pages == 0) {
    return Status::InvalidArgument("a query must reserve at least one page");
  }
  if (pages > capacity_) {
    // Could never be admitted; queueing it would wedge the strict FIFO
    // behind an ungrantable reservation.
    return Status::ResourceExhausted(
        "query needs " + std::to_string(pages) + " buffer pages but the "
        "shared pool holds only " + std::to_string(capacity_));
  }
  std::unique_ptr<AdmissionTicket> ticket(
      new AdmissionTicket(this, pages, tag));
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(ticket.get());
  queue_peak_ = std::max<uint64_t>(queue_peak_, queue_.size());
  GrantFromFront();
  if (ticket->state_ == AdmissionTicket::State::kGranted) cv_.notify_all();
  return ticket;
}

void SharedBufferPool::GrantFromFront() {
  // Strict FIFO: only ever grant the front. A front that does not fit
  // blocks everyone behind it — that is the fairness guarantee.
  FlightRecorder* flight = flight_.load(std::memory_order_acquire);
  while (!queue_.empty() && queue_.front()->pages_ <= available_) {
    AdmissionTicket* front = queue_.front();
    queue_.pop_front();
    available_ -= front->pages_;
    front->state_ = AdmissionTicket::State::kGranted;
    if (flight != nullptr) {
      flight->Append(FlightEventKind::kAdmissionGranted, front->tag_,
                     front->pages_);
    }
  }
}

void SharedBufferPool::Unqueue(AdmissionTicket* ticket) {
  auto it = std::find(queue_.begin(), queue_.end(), ticket);
  if (it != queue_.end()) queue_.erase(it);
}

size_t SharedBufferPool::QueuePosition(const AdmissionTicket* ticket) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i] == ticket) return i + 1;
  }
  return 0;
}

}  // namespace tempo
