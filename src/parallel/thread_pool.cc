#include "parallel/thread_pool.h"

namespace tempo {

namespace {

/// Set once per worker thread at spawn; -1 on every other thread.
thread_local int t_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

int ThreadPool::CurrentWorkerIndex() { return t_worker_index; }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(uint32_t index) {
  t_worker_index = static_cast<int>(index);
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    // Notify while holding the lock: once the last decrement is visible a
    // waiter may return and destroy this group, so the condvar must not be
    // touched after the lock is released.
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace tempo
