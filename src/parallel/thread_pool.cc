#include "parallel/thread_pool.h"

namespace tempo {

namespace {

/// Set once per worker thread at spawn; -1 on every other thread.
thread_local int t_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  queues_.resize(num_threads);
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

int ThreadPool::CurrentWorkerIndex() { return t_worker_index; }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

uint64_t ThreadPool::tasks_stolen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stolen_;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t depth = 0;
  for (const auto& q : queues_) depth += q.size();
  return depth;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int self = t_worker_index;
    // A worker submitting keeps the task local; external submitters deal
    // round-robin so concurrent coordinators spread their morsels across
    // every deque instead of piling onto one.
    uint32_t target;
    if (self >= 0 && static_cast<size_t>(self) < queues_.size()) {
      target = static_cast<uint32_t>(self);
    } else {
      target = next_queue_;
      next_queue_ = (next_queue_ + 1) % static_cast<uint32_t>(queues_.size());
    }
    queues_[target].push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::PopOrSteal(uint32_t index, std::function<void()>* task) {
  std::deque<std::function<void()>>& own = queues_[index];
  if (!own.empty()) {
    *task = std::move(own.front());
    own.pop_front();
    return true;
  }
  // Steal from the back of the longest other deque: the back is the
  // victim's coldest work, and the longest deque is where a backlog (one
  // query flooding its coordinator's round-robin share) actually is.
  size_t victim = queues_.size();
  size_t victim_size = 0;
  for (size_t q = 0; q < queues_.size(); ++q) {
    if (q != index && queues_[q].size() > victim_size) {
      victim = q;
      victim_size = queues_[q].size();
    }
  }
  if (victim == queues_.size()) return false;
  *task = std::move(queues_[victim].back());
  queues_[victim].pop_back();
  ++stolen_;
  return true;
}

void ThreadPool::WorkerLoop(uint32_t index) {
  t_worker_index = static_cast<int>(index);
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (true) {
        if (PopOrSteal(index, &task)) break;
        if (stop_) return;  // every deque drained and shutting down
        cv_.wait(lock);
      }
    }
    task();
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    // Notify while holding the lock: once the last decrement is visible a
    // waiter may return and destroy this group, so the condvar must not be
    // touched after the lock is released.
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace tempo
