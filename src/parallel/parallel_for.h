#ifndef TEMPO_PARALLEL_PARALLEL_FOR_H_
#define TEMPO_PARALLEL_PARALLEL_FOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "parallel/thread_pool.h"

namespace tempo {

/// Threading knob for the CPU-bound executor phases. The default of one
/// thread is the paper-faithful serial mode: identical output bytes,
/// identical charged I/O, no pool ever created, so every existing figure
/// and cost statement is unchanged.
///
/// With more threads, page decode / hash probe / partition routing / run
/// sorting fan out to a pool while all disk traffic stays on the
/// coordinator in the original page order. Results are merged back in
/// input order, so the output relation is byte-identical to the serial
/// run, and under the default per-file head model the charged I/O counts
/// are identical too (see DESIGN.md "Threading model" for the single-head
/// caveat).
struct ParallelOptions {
  /// Worker threads for CPU-bound phases; 1 = serial.
  uint32_t num_threads = 1;

  /// Pages grouped into one morsel (dispatch unit) in page-granular
  /// loops. Larger morsels amortize dispatch overhead; smaller morsels
  /// balance skew.
  uint32_t morsel_pages = 4;

  bool enabled() const { return num_threads > 1; }
};

/// Where the parallel wall-clock went: `busy_seconds` sums the time workers
/// spent inside morsel bodies; `wall_seconds` is the coordinator-observed
/// span of the parallel regions. Efficiency near 1.0 means the workers were
/// saturated; near 1/num_threads means the region was serialized.
struct MorselStats {
  uint64_t morsels_dispatched = 0;
  double busy_seconds = 0.0;
  double wall_seconds = 0.0;
  /// Busy seconds by pool worker index; [0] also absorbs morsels executed
  /// inline on a coordinator (serial fallback). Sized lazily to the highest
  /// worker seen, so serial runs carry an empty vector.
  std::vector<double> per_worker_busy;
  /// Distribution of individual morsel durations (microseconds); the mean
  /// matches busy_seconds/morsels_dispatched but the tail exposes skewed
  /// morsels that the aggregate hides.
  LogHistogram duration_hist;

  void Merge(const MorselStats& other) {
    morsels_dispatched += other.morsels_dispatched;
    busy_seconds += other.busy_seconds;
    wall_seconds += other.wall_seconds;
    if (per_worker_busy.size() < other.per_worker_busy.size()) {
      per_worker_busy.resize(other.per_worker_busy.size(), 0.0);
    }
    for (size_t i = 0; i < other.per_worker_busy.size(); ++i) {
      per_worker_busy[i] += other.per_worker_busy[i];
    }
    duration_hist.Merge(other.duration_hist);
  }

  double Efficiency(uint32_t num_threads) const {
    if (num_threads == 0 || wall_seconds <= 0.0) return 1.0;
    return busy_seconds / (wall_seconds * static_cast<double>(num_threads));
  }
};

/// Live morsel counters of one query, readable concurrently with
/// execution (QueryHandle::Progress). ParallelFor adds a region's morsel
/// count to `total` at dispatch and bumps `completed` as each morsel body
/// returns, so completed/total reflect every region dispatched so far —
/// the denominator grows as the query enters new parallel regions.
struct MorselProgress {
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> total{0};
};

/// Binds `progress` as the calling thread's live morsel counter for every
/// ParallelFor it dispatches, for the lifetime of this object (null is a
/// no-op). Per-thread and innermost-wins, mirroring
/// ScopedAccountantBinding: a query's coordinator installs its handle's
/// counter, and any helper coordinator thread an executor spawns rebinds
/// Current() so its regions count toward the same query.
class ScopedMorselProgress {
 public:
  explicit ScopedMorselProgress(MorselProgress* progress);
  ~ScopedMorselProgress();

  ScopedMorselProgress(const ScopedMorselProgress&) = delete;
  ScopedMorselProgress& operator=(const ScopedMorselProgress&) = delete;

  /// The counter bound to the calling thread; null when none.
  static MorselProgress* Current();

 private:
  MorselProgress* prev_;
};

/// Splits [0, n) into morsels of `morsel_size` indices and runs
/// `fn(morsel_index, begin, end)` for each. With a pool, morsels run on the
/// workers and this call blocks until all complete; with a null pool they
/// run inline in ascending order. Morsel boundaries are identical either
/// way (morsel m covers [m*morsel_size, min(n, (m+1)*morsel_size))), so a
/// caller that buffers per-morsel results and merges them by morsel index
/// gets deterministic, execution-order-independent output.
///
/// Returns the error of the lowest-indexed failing morsel, or OK. `stats`,
/// when non-null, accumulates dispatch counts and busy/wall time.
Status ParallelFor(ThreadPool* pool, size_t n, size_t morsel_size,
                   const std::function<Status(size_t morsel, size_t begin,
                                              size_t end)>& fn,
                   MorselStats* stats = nullptr);

}  // namespace tempo

#endif  // TEMPO_PARALLEL_PARALLEL_FOR_H_
