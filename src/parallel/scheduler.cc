#include "parallel/scheduler.h"

#include <string>

#include "common/env.h"

namespace tempo {

StatusOr<SchedulerConfig> ResolveSchedulerConfig(SchedulerConfig requested) {
  // Fallback 0 doubles as the "unset" sentinel: EnvStrictUint64 only
  // accepts values >= 1, so a parsed value can never collide with it.
  const uint32_t env_threads = static_cast<uint32_t>(
      EnvStrictUint64("TEMPO_BENCH_THREADS", 0,
                      std::numeric_limits<uint32_t>::max()));
  SchedulerConfig resolved = requested;
  if (requested.num_threads == 0) {
    resolved.num_threads = env_threads == 0 ? 1 : env_threads;
  } else if (env_threads != 0 && env_threads != requested.num_threads) {
    return Status::InvalidArgument(
        "thread-count conflict: TEMPO_BENCH_THREADS=" +
        std::to_string(env_threads) + " but the caller requested " +
        std::to_string(requested.num_threads) +
        " threads; set exactly one of the two");
  }
  if (resolved.morsel_pages == 0) resolved.morsel_pages = 1;
  return resolved;
}

StatusOr<std::unique_ptr<Scheduler>> Scheduler::Create(
    SchedulerConfig requested) {
  TEMPO_ASSIGN_OR_RETURN(SchedulerConfig resolved,
                         ResolveSchedulerConfig(requested));
  return std::make_unique<Scheduler>(resolved);
}

}  // namespace tempo
