#include "parallel/parallel_for.h"

#include <algorithm>
#include <chrono>
#include <mutex>

namespace tempo {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

thread_local MorselProgress* t_morsel_progress = nullptr;

}  // namespace

ScopedMorselProgress::ScopedMorselProgress(MorselProgress* progress)
    : prev_(t_morsel_progress) {
  if (progress != nullptr) t_morsel_progress = progress;
}

ScopedMorselProgress::~ScopedMorselProgress() { t_morsel_progress = prev_; }

MorselProgress* ScopedMorselProgress::Current() { return t_morsel_progress; }

Status ParallelFor(ThreadPool* pool, size_t n, size_t morsel_size,
                   const std::function<Status(size_t morsel, size_t begin,
                                              size_t end)>& fn,
                   MorselStats* stats) {
  if (n == 0) return Status::OK();
  if (morsel_size == 0) morsel_size = 1;
  const size_t num_morsels = (n + morsel_size - 1) / morsel_size;

  // Capture the dispatching thread's live-progress binding now: the
  // morsel bodies run on pool workers, which have no binding of their own.
  MorselProgress* progress = ScopedMorselProgress::Current();
  if (progress != nullptr) {
    progress->total.fetch_add(num_morsels, std::memory_order_relaxed);
  }

  const Clock::time_point wall_start = Clock::now();

  std::mutex mu;  // guards first_error_morsel / first_error / busy
  size_t first_error_morsel = num_morsels;
  Status first_error = Status::OK();
  double busy = 0.0;
  std::vector<double> worker_busy;

  {
    TaskGroup group(pool);
    for (size_t m = 0; m < num_morsels; ++m) {
      const size_t begin = m * morsel_size;
      const size_t end = std::min(n, begin + morsel_size);
      group.Run([&, m, begin, end] {
        const Clock::time_point t0 = Clock::now();
        Status st = fn(m, begin, end);
        const double spent = Seconds(t0, Clock::now());
        const int worker = ThreadPool::CurrentWorkerIndex();
        const size_t slot = worker < 0 ? 0 : static_cast<size_t>(worker);
        if (progress != nullptr) {
          progress->completed.fetch_add(1, std::memory_order_relaxed);
        }
        if (stats != nullptr) stats->duration_hist.Record(spent * 1e6);
        std::lock_guard<std::mutex> lock(mu);
        busy += spent;
        if (pool != nullptr) {
          if (worker_busy.size() <= slot) worker_busy.resize(slot + 1, 0.0);
          worker_busy[slot] += spent;
        }
        if (!st.ok() && m < first_error_morsel) {
          first_error_morsel = m;
          first_error = std::move(st);
        }
      });
    }
    group.Wait();
  }

  if (stats != nullptr) {
    stats->morsels_dispatched += num_morsels;
    stats->busy_seconds += busy;
    stats->wall_seconds += Seconds(wall_start, Clock::now());
    if (stats->per_worker_busy.size() < worker_busy.size()) {
      stats->per_worker_busy.resize(worker_busy.size(), 0.0);
    }
    for (size_t i = 0; i < worker_busy.size(); ++i) {
      stats->per_worker_busy[i] += worker_busy[i];
    }
  }
  return first_error;
}

}  // namespace tempo
