#ifndef TEMPO_PARALLEL_SCHEDULER_H_
#define TEMPO_PARALLEL_SCHEDULER_H_

#include <cstdint>
#include <memory>

#include "common/statusor.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace tempo {

/// Threading configuration of a Scheduler. This is the *single* resolved
/// source of truth for worker threads: executors no longer accept a
/// ParallelOptions — they read the scheduler handle carried by their
/// ExecContext (serial when absent), so one machine-wide setting governs
/// every concurrent query instead of each call site guessing its own.
struct SchedulerConfig {
  /// Worker threads for CPU-bound morsels. 1 = the paper-faithful serial
  /// mode; 0 = unspecified, deferring to TEMPO_BENCH_THREADS (see
  /// ResolveSchedulerConfig).
  uint32_t num_threads = 1;

  /// Pages grouped into one morsel (dispatch unit) in page-granular
  /// loops. Larger morsels amortize dispatch overhead; smaller morsels
  /// balance skew.
  uint32_t morsel_pages = 4;
};

/// Resolves `requested` against the TEMPO_BENCH_THREADS environment knob,
/// both through the strict parser in common/env.h. Exactly one of the two
/// may decide the thread count:
///
///   - env unset, requested 0        -> 1 (serial)
///   - env unset, requested N        -> N
///   - env set,   requested 0        -> env
///   - env set,   requested == env   -> that value
///   - env set,   requested != env   -> InvalidArgument (the two knobs
///     used to disagree silently; now the conflict is an error naming
///     both values)
StatusOr<SchedulerConfig> ResolveSchedulerConfig(SchedulerConfig requested);

/// A shared execution scheduler: one work-stealing ThreadPool that every
/// concurrent query multiplexes its CPU-bound morsels onto, instead of
/// each query spawning (and tearing down) a private pool.
///
/// Executors receive the scheduler as a handle on ExecContext
/// (ctx->scheduler()); a null context or a null handle is the serial
/// fallback. The handle is non-owning: the Scheduler must outlive every
/// ExecContext carrying it (the QueryService owns one scheduler for its
/// whole lifetime; tests and benches create one on the stack around
/// their runs).
///
/// Determinism: the pool only ever runs CPU-side morsel bodies — all
/// charged I/O stays on each query's coordinating thread in the paper's
/// order, and ParallelFor callers merge per-morsel results by morsel
/// index — so output bytes and charged IoStats are independent of the
/// thread count and of which worker stole which morsel.
class Scheduler {
 public:
  /// Constructs from an already-resolved config (no environment access).
  /// In serial mode (num_threads <= 1) no pool is created.
  explicit Scheduler(const SchedulerConfig& config)
      : config_(config) {
    if (config_.num_threads == 0) config_.num_threads = 1;
    if (config_.morsel_pages == 0) config_.morsel_pages = 1;
    if (config_.num_threads > 1) {
      pool_ = std::make_unique<ThreadPool>(config_.num_threads);
    }
  }

  /// Resolves `requested` against TEMPO_BENCH_THREADS (erroring on a
  /// conflict) and constructs the scheduler.
  static StatusOr<std::unique_ptr<Scheduler>> Create(
      SchedulerConfig requested);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  uint32_t num_threads() const { return config_.num_threads; }
  const SchedulerConfig& config() const { return config_; }

  /// The shared work-stealing pool; null in serial mode (the executors'
  /// ParallelFor call sites treat a null pool as "run inline").
  ThreadPool* pool() { return pool_.get(); }

  /// The morsel knobs in the shape ParallelFor-era internals consume.
  ParallelOptions parallel() const {
    return ParallelOptions{config_.num_threads, config_.morsel_pages};
  }

 private:
  SchedulerConfig config_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Null-safe views of a possibly-absent scheduler handle — the serial
/// fallback every executor takes when no ExecContext (or no scheduler on
/// it) was supplied.
inline ParallelOptions SchedulerParallel(const Scheduler* scheduler) {
  return scheduler == nullptr ? ParallelOptions{} : scheduler->parallel();
}
inline ThreadPool* SchedulerPool(Scheduler* scheduler) {
  return scheduler == nullptr ? nullptr : scheduler->pool();
}

}  // namespace tempo

#endif  // TEMPO_PARALLEL_SCHEDULER_H_
