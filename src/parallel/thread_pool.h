#ifndef TEMPO_PARALLEL_THREAD_POOL_H_
#define TEMPO_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tempo {

/// A fixed-size worker pool with per-worker task deques and work stealing.
///
/// Submissions land on per-worker deques (round-robin from external
/// threads; a pool worker submitting enqueues onto its own deque for
/// locality). Each worker drains its own deque front-first and, when
/// empty, steals from the back of the longest other deque — so one
/// query's burst of morsels cannot strand another query's tasks behind
/// it. This is what lets many concurrent joins share a single pool
/// instead of spawning a pool per query.
///
/// The executors use it morsel-style: a coordinator thread performs all
/// page I/O in the paper's prescribed order (so charged I/O counts are
/// unchanged) and hands CPU-bound work — page decode, hash probe, run
/// sorting, partition routing — to the pool in batches, merging the
/// results back in input order. Workers never block on each other, so
/// tasks must not submit-and-wait on the same pool from within a task
/// (coordinators submit from outside, or from dedicated std::threads).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(uint32_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queues and joins all workers.
  ~ThreadPool();

  /// Enqueues a task. Safe to call from any thread.
  void Submit(std::function<void()> task);

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Tasks executed by workers that did not find them on their own deque
  /// — the steal count. Monotonic over the pool's lifetime; used by tests
  /// and the scheduler's observability.
  uint64_t tasks_stolen() const;

  /// Tasks currently sitting on the worker deques, not yet picked up —
  /// the run-queue length the telemetry sampler exposes as the
  /// scheduler_run_queue gauge. A point-in-time read; tasks being
  /// executed are not counted.
  size_t queue_depth() const;

  /// Index of the calling pool worker in [0, num_threads), or -1 when
  /// called from a thread that is not a pool worker (e.g. a coordinator
  /// running a morsel inline). Lets the parallel layer attribute morsel
  /// time to individual workers for the observability span tree.
  static int CurrentWorkerIndex();

 private:
  void WorkerLoop(uint32_t index);

  /// Pops the next task for worker `index`: own deque front, else steal
  /// from the back of the longest other deque. Caller holds mu_. Returns
  /// false when every deque is empty.
  bool PopOrSteal(uint32_t index, std::function<void()>* task);

  std::vector<std::thread> workers_;
  /// One deque per worker, all guarded by the single pool mutex. The lock
  /// is held only for queue surgery (push/pop/steal), never while a task
  /// runs, so a shared lock is cheap next to morsel bodies; per-deque
  /// locks would buy little and complicate the empty/stop protocol.
  std::vector<std::deque<std::function<void()>>> queues_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint32_t next_queue_ = 0;  ///< round-robin target for external submits
  uint64_t stolen_ = 0;
  bool stop_ = false;
};

/// Tracks a batch of tasks on a pool and blocks until every one finished.
/// With a null pool, Run() executes inline on the calling thread — the
/// serial mode all parallel call sites fall back to.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() { Wait(); }

  /// Runs `fn` on the pool (or inline when the pool is null).
  void Run(std::function<void()> fn);

  /// Blocks until all Run() tasks have completed.
  void Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t pending_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_PARALLEL_THREAD_POOL_H_
