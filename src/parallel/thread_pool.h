#ifndef TEMPO_PARALLEL_THREAD_POOL_H_
#define TEMPO_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tempo {

/// A fixed-size worker pool draining a shared chunk queue.
///
/// The executors use it morsel-style: a coordinator thread performs all
/// page I/O in the paper's prescribed order (so charged I/O counts are
/// unchanged) and hands CPU-bound work — page decode, hash probe, run
/// sorting, partition routing — to the pool in batches, merging the
/// results back in input order. Workers never block on each other, so
/// tasks must not submit-and-wait on the same pool from within a task
/// (coordinators submit from outside, or from dedicated std::threads).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(uint32_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  /// Enqueues a task. Safe to call from any thread.
  void Submit(std::function<void()> task);

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Index of the calling pool worker in [0, num_threads), or -1 when
  /// called from a thread that is not a pool worker (e.g. a coordinator
  /// running a morsel inline). Lets the parallel layer attribute morsel
  /// time to individual workers for the observability span tree.
  static int CurrentWorkerIndex();

 private:
  void WorkerLoop(uint32_t index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Tracks a batch of tasks on a pool and blocks until every one finished.
/// With a null pool, Run() executes inline on the calling thread — the
/// serial mode all parallel call sites fall back to.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() { Wait(); }

  /// Runs `fn` on the pool (or inline when the pool is null).
  void Run(std::function<void()> fn);

  /// Blocks until all Run() tasks have completed.
  void Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t pending_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_PARALLEL_THREAD_POOL_H_
