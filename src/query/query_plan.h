#ifndef TEMPO_QUERY_QUERY_PLAN_H_
#define TEMPO_QUERY_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/exec_options.h"
#include "relation/value.h"
#include "storage/stored_relation.h"

namespace tempo {

/// Comparison operators of the structured selection predicate.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// A structured attribute-op-literal predicate over a tuple's explicit
/// values. Restricting selections to this form keeps every pipeline
/// snapshot reducible by construction: the predicate never inspects the
/// timestamp, so selecting then timeslicing equals timeslicing then
/// selecting. (Timestamp selections — Allen predicates — live in
/// src/algebra and are deliberately NOT part of the sequenced layer.)
struct AttrPredicate {
  std::string attr;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

/// Evaluates `pred`'s comparison against attribute value `v`. NULL
/// semantics follow SQL's UNKNOWN-is-false: a NULL on either side fails
/// every comparison, including equality between two NULLs. (Join *keys*
/// use plain Value equality, where NULL == NULL matches — the executor
/// and the snapshot oracle share both primitives, so they always agree.)
bool EvalAttrPredicate(const AttrPredicate& pred, const Value& v);

/// Operators of the sequenced temporal query layer. Every operator is
/// change preserving: each output interval derives from a subinterval of
/// exactly one input tuple per operator — nothing is coalesced — so
/// lineage survives the pipeline and timeslicing the result at any
/// chronon t equals running the nontemporal operator tree over the
/// inputs timesliced at t (snapshot reducibility).
enum class QueryOp : uint8_t { kScan, kSelect, kProject, kJoin, kDifference };

const char* QueryOpName(QueryOp op);

/// One node of a sequenced query plan. Built through QueryPlan; consumed
/// by RunSequencedQuery (sequenced_exec.h) and by the snapshot oracle
/// (snapshot_oracle.h).
struct QueryNode {
  QueryOp op = QueryOp::kScan;

  /// kScan: the base relation (borrowed; must outlive the plan).
  StoredRelation* scan = nullptr;

  /// kSelect.
  AttrPredicate predicate;

  /// kProject: attribute names to keep, in output order.
  std::vector<std::string> project_attrs;

  /// kJoin: which sequenced variant (inner / left-outer / full-outer /
  /// anti).
  JoinKind join_kind = JoinKind::kInner;

  /// kJoin: the temporal predicate the join evaluates (default: the
  /// overlap disjunction). Non-default predicates are inner-only —
  /// ValidateExecOptions rejects the combination otherwise — and take the
  /// plan outside snapshot reducibility (the snapshot oracle refuses
  /// them: a during/meets match is a property of whole intervals, not of
  /// any single chronon's snapshot).
  TemporalPredicate join_predicate;

  /// kSelect/kProject: one child. kJoin/kDifference: two (left, right).
  std::vector<std::unique_ptr<QueryNode>> children;
};

/// Composable value-semantics builder for sequenced SPJ pipelines:
///
///   QueryPlan plan = QueryPlan::Join(
///       QueryPlan::Scan(&emp).Select({"dept", CompareOp::kEq, Value("r&d")}),
///       QueryPlan::Scan(&proj),
///       JoinKind::kLeftOuter)
///     .Project({"name", "title"});
///
/// The builder owns the node tree; base relations are borrowed.
class QueryPlan {
 public:
  static QueryPlan Scan(StoredRelation* rel);
  static QueryPlan Join(QueryPlan left, QueryPlan right,
                        JoinKind kind = JoinKind::kInner);
  /// Predicate-qualified inner join node, e.g.
  /// `QueryPlan::Join(std::move(l), std::move(r),
  ///                  TemporalPredicate::Exactly(AllenRelation::kDuring))`.
  static QueryPlan Join(QueryPlan left, QueryPlan right,
                        TemporalPredicate predicate);
  /// Union-compatible sequenced set difference left -ᵗ right.
  static QueryPlan Difference(QueryPlan left, QueryPlan right);

  QueryPlan Select(AttrPredicate pred) &&;
  QueryPlan Project(std::vector<std::string> attrs) &&;

  const QueryNode& root() const { return *root_; }

 private:
  QueryPlan() = default;
  std::unique_ptr<QueryNode> root_;
};

}  // namespace tempo

#endif  // TEMPO_QUERY_QUERY_PLAN_H_
