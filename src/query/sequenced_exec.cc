#include "query/sequenced_exec.h"

#include <utility>
#include <vector>

#include "storage/page_arena.h"
#include "temporal/interval_set.h"

namespace tempo {

namespace {

/// A node's materialized output: either a borrowed base relation (scan)
/// or an owned temporary the parent must delete after consuming.
struct Materialized {
  StoredRelation* rel = nullptr;
  std::unique_ptr<StoredRelation> owned;  // null when borrowed
};

class SequencedExecutor {
 public:
  SequencedExecutor(Disk* disk, const QueryOptions& options, ExecContext* ctx,
                    const std::string& prefix)
      : disk_(disk), options_(options), ctx_(ctx), prefix_(prefix) {}

  StatusOr<Materialized> Run(const QueryNode& node) {
    switch (node.op) {
      case QueryOp::kScan:
        return RunScan(node);
      case QueryOp::kSelect:
        return RunSelect(node);
      case QueryOp::kProject:
        return RunProject(node);
      case QueryOp::kJoin:
        return RunJoinNode(node);
      case QueryOp::kDifference:
        return RunDifference(node);
    }
    return Status::InvalidArgument("unknown query operator");
  }

 private:
  std::string TempName() {
    return prefix_ + ".n" + std::to_string(counter_++);
  }

  /// Deletes a consumed intermediate's backing file (no-op for borrowed
  /// base relations).
  Status Release(Materialized* m) {
    if (m->owned == nullptr) return Status::OK();
    Status st = disk_->DeleteFile(m->owned->file_id());
    m->owned.reset();
    m->rel = nullptr;
    return st;
  }

  StatusOr<Materialized> RunScan(const QueryNode& node) {
    if (node.scan == nullptr) {
      return Status::InvalidArgument("scan node has no relation");
    }
    if (node.scan->HasUnflushedAppends()) {
      return Status::FailedPrecondition(
          "base relation " + node.scan->name() +
          " must be flushed before querying");
    }
    Materialized m;
    m.rel = node.scan;
    return m;
  }

  /// Streaming zero-copy filter: each page's records are viewed in place;
  /// passing records are appended verbatim, so a selected tuple's stored
  /// bytes are identical to its input bytes (trivially change preserving).
  StatusOr<Materialized> RunSelect(const QueryNode& node) {
    TEMPO_ASSIGN_OR_RETURN(Materialized in, Run(*node.children[0]));
    TraceSpan span = SpanIf(ctx_, Phase::kQuerySelect);
    const Schema& schema = in.rel->schema();
    auto pos = schema.IndexOf(node.predicate.attr);
    if (!pos.has_value()) {
      return Status::InvalidArgument("select: no attribute named '" +
                                     node.predicate.attr + "' in " +
                                     schema.ToString());
    }
    Materialized out;
    out.owned =
        std::make_unique<StoredRelation>(disk_, schema, TempName());
    out.rel = out.owned.get();
    PageTupleArena arena;
    const uint32_t pages = in.rel->num_pages();
    for (uint32_t p = 0; p < pages; ++p) {
      Page page;
      TEMPO_RETURN_IF_ERROR(in.rel->ReadPage(p, &page));
      arena.Clear();
      TEMPO_RETURN_IF_ERROR(
          StoredRelation::DecodePageViews(schema, page, &arena).status());
      for (const TupleView& v : arena.views()) {
        if (!EvalAttrPredicate(node.predicate, v.ValueAt(*pos))) continue;
        TEMPO_RETURN_IF_ERROR(out.rel->AppendRecord(v.record()));
      }
    }
    TEMPO_RETURN_IF_ERROR(out.rel->Flush());
    TEMPO_RETURN_IF_ERROR(Release(&in));
    return out;
  }

  /// Change-preserving projection: keeps the named attributes (in the
  /// given order) and the interval of every input tuple, duplicates and
  /// all. Deliberately no coalescing — algebra::Project's coalesce would
  /// merge value-equivalent rows and destroy per-tuple lineage.
  StatusOr<Materialized> RunProject(const QueryNode& node) {
    TEMPO_ASSIGN_OR_RETURN(Materialized in, Run(*node.children[0]));
    TraceSpan span = SpanIf(ctx_, Phase::kQueryProject);
    const Schema& schema = in.rel->schema();
    std::vector<size_t> positions;
    std::vector<Attribute> attrs;
    positions.reserve(node.project_attrs.size());
    for (const std::string& name : node.project_attrs) {
      auto pos = schema.IndexOf(name);
      if (!pos.has_value()) {
        return Status::InvalidArgument("project: no attribute named '" +
                                       name + "' in " + schema.ToString());
      }
      positions.push_back(*pos);
      attrs.push_back(schema.attribute(*pos));
    }
    TEMPO_ASSIGN_OR_RETURN(Schema out_schema, Schema::Make(std::move(attrs)));
    Materialized out;
    out.owned =
        std::make_unique<StoredRelation>(disk_, out_schema, TempName());
    out.rel = out.owned.get();
    auto scan = in.rel->Scan();
    Tuple t;
    while (true) {
      TEMPO_ASSIGN_OR_RETURN(bool more, scan.Next(&t));
      if (!more) break;
      std::vector<Value> values;
      values.reserve(positions.size());
      for (size_t pos : positions) values.push_back(t.value(pos));
      TEMPO_RETURN_IF_ERROR(
          out.rel->Append(Tuple(std::move(values), t.interval())));
    }
    TEMPO_RETURN_IF_ERROR(out.rel->Flush());
    TEMPO_RETURN_IF_ERROR(Release(&in));
    return out;
  }

  StatusOr<Materialized> RunJoinNode(const QueryNode& node) {
    TEMPO_ASSIGN_OR_RETURN(Materialized left, Run(*node.children[0]));
    TEMPO_ASSIGN_OR_RETURN(Materialized right, Run(*node.children[1]));
    TraceSpan span = SpanIf(ctx_, Phase::kQueryJoin);
    Schema out_schema;
    if (node.join_kind == JoinKind::kAnti) {
      out_schema = left.rel->schema();  // anti preserves r's own schema
    } else {
      TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(left.rel->schema(),
                                                     right.rel->schema()));
      out_schema = layout.output;
    }
    Materialized out;
    out.owned =
        std::make_unique<StoredRelation>(disk_, out_schema, TempName());
    out.rel = out.owned.get();
    JoinRequest req;
    req.From(left.rel, right.rel).Using(options_.executor);
    req.options = options_.join;
    req.options.join_kind = node.join_kind;
    req.options.predicate = node.join_predicate;
    TEMPO_RETURN_IF_ERROR(RunJoin(req, out.rel, ctx_).status());
    TEMPO_RETURN_IF_ERROR(Release(&left));
    TEMPO_RETURN_IF_ERROR(Release(&right));
    return out;
  }

  /// Union-compatible sequenced difference l -ᵗ r: for each l tuple,
  /// subtract the intervals of every value-equivalent r tuple from its
  /// validity and emit one row per uncovered subinterval. Per-tuple
  /// arithmetic — duplicates in l each produce their own rows, and no two
  /// l tuples are ever merged (change preservation; contrast
  /// algebra::VtDifference, which coalesces per value group).
  StatusOr<Materialized> RunDifference(const QueryNode& node) {
    TEMPO_ASSIGN_OR_RETURN(Materialized left, Run(*node.children[0]));
    TEMPO_ASSIGN_OR_RETURN(Materialized right, Run(*node.children[1]));
    TraceSpan span = SpanIf(ctx_, Phase::kQueryDifference);
    if (!(left.rel->schema() == right.rel->schema())) {
      return Status::InvalidArgument(
          "difference requires union-compatible inputs: " +
          left.rel->schema().ToString() + " vs " +
          right.rel->schema().ToString());
    }
    const Schema& schema = left.rel->schema();
    std::vector<size_t> all_attrs;
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      all_attrs.push_back(i);
    }
    TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> r_tuples,
                           right.rel->ReadAll());
    HashedTupleIndex index(&r_tuples, &all_attrs);
    Materialized out;
    out.owned =
        std::make_unique<StoredRelation>(disk_, schema, TempName());
    out.rel = out.owned.get();
    auto scan = left.rel->Scan();
    Tuple x;
    while (true) {
      TEMPO_ASSIGN_OR_RETURN(bool more, scan.Next(&x));
      if (!more) break;
      std::vector<Interval> covered;
      index.ForEachMatch(x, all_attrs, [&](const Tuple& y) {
        auto common = Overlap(x.interval(), y.interval());
        if (common) covered.push_back(*common);
      });
      const IntervalSet uncovered = SubtractAll(x.interval(), covered);
      for (const Interval& iv : uncovered.intervals()) {
        TEMPO_RETURN_IF_ERROR(out.rel->Append(Tuple(x.values(), iv)));
      }
    }
    TEMPO_RETURN_IF_ERROR(out.rel->Flush());
    TEMPO_RETURN_IF_ERROR(Release(&left));
    TEMPO_RETURN_IF_ERROR(Release(&right));
    return out;
  }

  Disk* disk_;
  const QueryOptions& options_;
  ExecContext* ctx_;
  std::string prefix_;
  int counter_ = 0;
};

}  // namespace

StatusOr<QueryResult> RunSequencedQuery(const QueryPlan& plan, Disk* disk,
                                        const QueryOptions& options,
                                        ExecContext* ctx,
                                        const std::string& name_prefix) {
  if (disk == nullptr) {
    return Status::InvalidArgument("RunSequencedQuery needs a disk");
  }
  if (ctx != nullptr && ctx->accountant() == nullptr) {
    ctx->BindAccountant(&disk->accountant());
  }
  TraceSpan query_span = SpanIf(ctx, Phase::kQuery);
  SequencedExecutor exec(disk, options, ctx, name_prefix);
  TEMPO_ASSIGN_OR_RETURN(Materialized m, exec.Run(plan.root()));
  QueryResult result;
  if (m.owned != nullptr) {
    result.relation = std::move(m.owned);
  } else {
    // Bare scan: materialize a copy so the caller always owns the result.
    auto copy = std::make_unique<StoredRelation>(disk, m.rel->schema(),
                                                 name_prefix + ".n.root");
    PageTupleArena arena;
    const uint32_t pages = m.rel->num_pages();
    for (uint32_t p = 0; p < pages; ++p) {
      Page page;
      TEMPO_RETURN_IF_ERROR(m.rel->ReadPage(p, &page));
      arena.Clear();
      TEMPO_RETURN_IF_ERROR(
          StoredRelation::DecodePageViews(m.rel->schema(), page, &arena)
              .status());
      for (const TupleView& v : arena.views()) {
        TEMPO_RETURN_IF_ERROR(copy->AppendRecord(v.record()));
      }
    }
    TEMPO_RETURN_IF_ERROR(copy->Flush());
    result.relation = std::move(copy);
  }
  result.output_tuples = result.relation->num_tuples();
  return result;
}

}  // namespace tempo
