#ifndef TEMPO_QUERY_SNAPSHOT_ORACLE_H_
#define TEMPO_QUERY_SNAPSHOT_ORACLE_H_

#include <utility>
#include <vector>

#include "common/statusor.h"
#include "query/query_plan.h"
#include "relation/tuple.h"

namespace tempo {

/// Output schema of a plan node, derived without executing it.
StatusOr<Schema> DeriveQuerySchema(const QueryNode& node);

/// The snapshot oracle: evaluates the plan NONTEMPORALLY over the
/// timeslices of its base relations at chronon `t` — scans timeslice,
/// select/project/join/difference run as plain bag-semantics relational
/// operators — and returns the resulting rows, each stamped [t, t].
///
/// This is the right-hand side of the snapshot-reducibility equation
///   τ_t(Q(r₁..rₙ)) == Q_nontemporal(τ_t(r₁)..τ_t(rₙ))
/// that every sequenced operator must satisfy. The oracle shares the
/// executor's value primitives (EqualOnAttrs key equality where NULLs
/// match, EvalAttrPredicate where NULLs fail), so any disagreement is an
/// executor bug, not a semantics mismatch. O(product of input sizes);
/// reads base relations on every call — testing only.
StatusOr<std::vector<Tuple>> SnapshotEval(const QueryNode& node, Chronon t);

/// [min start - 1, max end + 1] over every base-relation tuple under
/// `node` — one chronon of slack each side so empty snapshots are checked
/// too. Returns {0, -1} (an empty range) when all base relations are
/// empty.
StatusOr<std::pair<Chronon, Chronon>> BaseChrononRange(const QueryNode& node);

/// Verifies snapshot reducibility of a sequenced result: for every
/// chronon t in [lo, hi], the timeslice of `result` at t must equal (as a
/// multiset) the snapshot oracle's evaluation of `plan` at t. Returns
/// FailedPrecondition naming the first differing chronon.
Status CheckSnapshotReducible(const QueryNode& plan,
                              const std::vector<Tuple>& result, Chronon lo,
                              Chronon hi);

}  // namespace tempo

#endif  // TEMPO_QUERY_SNAPSHOT_ORACLE_H_
