#include "query/query_plan.h"

namespace tempo {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* QueryOpName(QueryOp op) {
  switch (op) {
    case QueryOp::kScan:
      return "scan";
    case QueryOp::kSelect:
      return "select";
    case QueryOp::kProject:
      return "project";
    case QueryOp::kJoin:
      return "join";
    case QueryOp::kDifference:
      return "difference";
  }
  return "?";
}

bool EvalAttrPredicate(const AttrPredicate& pred, const Value& v) {
  if (v.is_null() || pred.literal.is_null()) return false;
  switch (pred.op) {
    case CompareOp::kEq:
      return v == pred.literal;
    case CompareOp::kNe:
      return v != pred.literal;
    case CompareOp::kLt:
      return v < pred.literal;
    case CompareOp::kLe:
      return v < pred.literal || v == pred.literal;
    case CompareOp::kGt:
      return !(v < pred.literal) && v != pred.literal;
    case CompareOp::kGe:
      return !(v < pred.literal);
  }
  return false;
}

QueryPlan QueryPlan::Scan(StoredRelation* rel) {
  QueryPlan plan;
  plan.root_ = std::make_unique<QueryNode>();
  plan.root_->op = QueryOp::kScan;
  plan.root_->scan = rel;
  return plan;
}

QueryPlan QueryPlan::Join(QueryPlan left, QueryPlan right, JoinKind kind) {
  QueryPlan plan;
  plan.root_ = std::make_unique<QueryNode>();
  plan.root_->op = QueryOp::kJoin;
  plan.root_->join_kind = kind;
  plan.root_->children.push_back(std::move(left.root_));
  plan.root_->children.push_back(std::move(right.root_));
  return plan;
}

QueryPlan QueryPlan::Join(QueryPlan left, QueryPlan right,
                          TemporalPredicate predicate) {
  QueryPlan plan = Join(std::move(left), std::move(right), JoinKind::kInner);
  plan.root_->join_predicate = predicate;
  return plan;
}

QueryPlan QueryPlan::Difference(QueryPlan left, QueryPlan right) {
  QueryPlan plan;
  plan.root_ = std::make_unique<QueryNode>();
  plan.root_->op = QueryOp::kDifference;
  plan.root_->children.push_back(std::move(left.root_));
  plan.root_->children.push_back(std::move(right.root_));
  return plan;
}

QueryPlan QueryPlan::Select(AttrPredicate pred) && {
  QueryPlan plan;
  plan.root_ = std::make_unique<QueryNode>();
  plan.root_->op = QueryOp::kSelect;
  plan.root_->predicate = std::move(pred);
  plan.root_->children.push_back(std::move(root_));
  return plan;
}

QueryPlan QueryPlan::Project(std::vector<std::string> attrs) && {
  QueryPlan plan;
  plan.root_ = std::make_unique<QueryNode>();
  plan.root_->op = QueryOp::kProject;
  plan.root_->project_attrs = std::move(attrs);
  plan.root_->children.push_back(std::move(root_));
  return plan;
}

}  // namespace tempo
