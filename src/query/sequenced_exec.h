#ifndef TEMPO_QUERY_SEQUENCED_EXEC_H_
#define TEMPO_QUERY_SEQUENCED_EXEC_H_

#include <memory>
#include <string>

#include "common/statusor.h"
#include "join/join_common.h"
#include "query/query_plan.h"
#include "service/join_request.h"
#include "storage/disk.h"
#include "storage/stored_relation.h"

namespace tempo {

/// Knobs of one sequenced query run. Join nodes inherit the shared
/// executor options (buffer pages, cost model, seed); each node's
/// JoinKind comes from the plan, overriding `join.join_kind`.
struct QueryOptions {
  VtJoinOptions join;
  /// Executor for join nodes: kAuto defers to the planner (which forces
  /// the partition executor for non-inner kinds).
  JoinExecutor executor = JoinExecutor::kAuto;
};

/// Result of one sequenced query: the materialized output relation (owned,
/// living on the Disk the query ran against) plus summary counters.
struct QueryResult {
  std::unique_ptr<StoredRelation> relation;
  uint64_t output_tuples = 0;
};

/// Evaluates a sequenced query plan bottom-up, materializing every
/// non-scan node as a temporary relation on `disk` (intermediates are
/// deleted as soon as their parent consumed them; the root's relation is
/// returned). All I/O is charged to the disk's accountant; with a non-null
/// `ctx` the run is traced as a span tree (sequenced query > one span per
/// operator node) for EXPLAIN ANALYZE.
///
/// Operator semantics (all change preserving — no coalescing anywhere, so
/// the pipeline is snapshot reducible; snapshot_oracle.h checks this):
///
///   select      attr-op-literal filter; rows pass through byte-identical
///               (zero-copy record append).
///   project     keeps named attributes in the given order; intervals
///               untouched, duplicates kept (unlike algebra::Project,
///               which coalesces).
///   join        the sequenced join variants via RunJoin: inner, or the
///               partition executor's left-outer / full-outer / anti with
///               uncovered-subinterval emission.
///   difference  union-compatible r -ᵗ s: per r-tuple, the subintervals
///               of its validity not covered by any value-equivalent
///               s-tuple (IntervalSet::SubtractAll); each output interval
///               derives from exactly one r tuple (unlike
///               algebra::VtDifference, which merges value groups).
///
/// `name_prefix` namespaces the temporary files ("<prefix>.n<k>") so
/// concurrent queries on one disk do not collide.
StatusOr<QueryResult> RunSequencedQuery(const QueryPlan& plan, Disk* disk,
                                        const QueryOptions& options = {},
                                        ExecContext* ctx = nullptr,
                                        const std::string& name_prefix = "q");

}  // namespace tempo

#endif  // TEMPO_QUERY_SEQUENCED_EXEC_H_
