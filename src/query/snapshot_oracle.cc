#include "query/snapshot_oracle.h"

#include <algorithm>
#include <limits>
#include <string>

#include "join/join_common.h"
#include "join/reference_join.h"

namespace tempo {

StatusOr<Schema> DeriveQuerySchema(const QueryNode& node) {
  switch (node.op) {
    case QueryOp::kScan:
      if (node.scan == nullptr) {
        return Status::InvalidArgument("scan node has no relation");
      }
      return node.scan->schema();
    case QueryOp::kSelect:
      return DeriveQuerySchema(*node.children[0]);
    case QueryOp::kProject: {
      TEMPO_ASSIGN_OR_RETURN(Schema in, DeriveQuerySchema(*node.children[0]));
      std::vector<Attribute> attrs;
      for (const std::string& name : node.project_attrs) {
        auto pos = in.IndexOf(name);
        if (!pos.has_value()) {
          return Status::InvalidArgument("project: no attribute named '" +
                                         name + "' in " + in.ToString());
        }
        attrs.push_back(in.attribute(*pos));
      }
      return Schema::Make(std::move(attrs));
    }
    case QueryOp::kJoin: {
      TEMPO_ASSIGN_OR_RETURN(Schema l, DeriveQuerySchema(*node.children[0]));
      TEMPO_ASSIGN_OR_RETURN(Schema r, DeriveQuerySchema(*node.children[1]));
      if (node.join_kind == JoinKind::kAnti) return l;
      TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(l, r));
      return layout.output;
    }
    case QueryOp::kDifference: {
      TEMPO_ASSIGN_OR_RETURN(Schema l, DeriveQuerySchema(*node.children[0]));
      TEMPO_ASSIGN_OR_RETURN(Schema r, DeriveQuerySchema(*node.children[1]));
      if (!(l == r)) {
        return Status::InvalidArgument(
            "difference requires union-compatible inputs: " + l.ToString() +
            " vs " + r.ToString());
      }
      return l;
    }
  }
  return Status::InvalidArgument("unknown query operator");
}

namespace {

/// Nontemporal natural-join row assembly at chronon t, including the
/// NULL-padded unmatched rows of the outer kinds. Every row in `l` and
/// `r` is already a timeslice row ([t, t]); the overlap of two such rows
/// is always [t, t], so MakeJoinTuple/MakeUnmatchedTuple reduce to plain
/// nontemporal assembly.
StatusOr<std::vector<Tuple>> SnapshotJoin(const NaturalJoinLayout& layout,
                                          const std::vector<Tuple>& l,
                                          const std::vector<Tuple>& r,
                                          JoinKind kind, Chronon t) {
  const Interval at(t, t);
  std::vector<Tuple> out;
  std::vector<bool> r_matched(r.size(), false);
  for (const Tuple& x : l) {
    bool matched = false;
    for (size_t j = 0; j < r.size(); ++j) {
      const Tuple& y = r[j];
      if (!x.EqualOnAttrs(layout.r_join_attrs, layout.s_join_attrs, y)) {
        continue;
      }
      matched = true;
      r_matched[j] = true;
      if (kind != JoinKind::kAnti) {
        out.push_back(MakeJoinTuple(layout, x, y, at));
      }
    }
    if (matched) continue;
    if (kind == JoinKind::kAnti) {
      out.push_back(MakeAntiTuple(x, at));
    } else if (kind == JoinKind::kLeftOuter || kind == JoinKind::kFullOuter) {
      out.push_back(MakeUnmatchedTuple(layout, /*preserved_is_r=*/true, x, at));
    }
  }
  if (kind == JoinKind::kFullOuter) {
    for (size_t j = 0; j < r.size(); ++j) {
      if (r_matched[j]) continue;
      out.push_back(
          MakeUnmatchedTuple(layout, /*preserved_is_r=*/false, r[j], at));
    }
  }
  return out;
}

}  // namespace

StatusOr<std::vector<Tuple>> SnapshotEval(const QueryNode& node, Chronon t) {
  const Interval at(t, t);
  switch (node.op) {
    case QueryOp::kScan: {
      if (node.scan == nullptr) {
        return Status::InvalidArgument("scan node has no relation");
      }
      TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> all, node.scan->ReadAll());
      std::vector<Tuple> out;
      for (const Tuple& x : all) {
        if (x.interval().Contains(t)) out.emplace_back(x.values(), at);
      }
      return out;
    }
    case QueryOp::kSelect: {
      TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> in,
                             SnapshotEval(*node.children[0], t));
      TEMPO_ASSIGN_OR_RETURN(Schema schema,
                             DeriveQuerySchema(*node.children[0]));
      auto pos = schema.IndexOf(node.predicate.attr);
      if (!pos.has_value()) {
        return Status::InvalidArgument("select: no attribute named '" +
                                       node.predicate.attr + "' in " +
                                       schema.ToString());
      }
      std::vector<Tuple> out;
      for (const Tuple& x : in) {
        if (EvalAttrPredicate(node.predicate, x.value(*pos))) {
          out.push_back(x);
        }
      }
      return out;
    }
    case QueryOp::kProject: {
      TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> in,
                             SnapshotEval(*node.children[0], t));
      TEMPO_ASSIGN_OR_RETURN(Schema schema,
                             DeriveQuerySchema(*node.children[0]));
      std::vector<size_t> positions;
      for (const std::string& name : node.project_attrs) {
        auto pos = schema.IndexOf(name);
        if (!pos.has_value()) {
          return Status::InvalidArgument("project: no attribute named '" +
                                         name + "' in " + schema.ToString());
        }
        positions.push_back(*pos);
      }
      std::vector<Tuple> out;
      for (const Tuple& x : in) {
        std::vector<Value> values;
        values.reserve(positions.size());
        for (size_t pos : positions) values.push_back(x.value(pos));
        out.emplace_back(std::move(values), at);
      }
      return out;
    }
    case QueryOp::kJoin: {
      if (!node.join_predicate.IsOverlapDefault()) {
        return Status::InvalidArgument(
            "snapshot oracle: join predicate '" + node.join_predicate.Name() +
            "' is not snapshot reducible (Allen relations other than the "
            "overlap disjunction constrain whole intervals, not any single "
            "chronon's snapshot)");
      }
      TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> l,
                             SnapshotEval(*node.children[0], t));
      TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> r,
                             SnapshotEval(*node.children[1], t));
      TEMPO_ASSIGN_OR_RETURN(Schema ls, DeriveQuerySchema(*node.children[0]));
      TEMPO_ASSIGN_OR_RETURN(Schema rs, DeriveQuerySchema(*node.children[1]));
      TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(ls, rs));
      return SnapshotJoin(layout, l, r, node.join_kind, t);
    }
    case QueryOp::kDifference: {
      TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> l,
                             SnapshotEval(*node.children[0], t));
      TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> r,
                             SnapshotEval(*node.children[1], t));
      // NOT EXISTS semantics, matching the per-tuple sequenced
      // difference: an l row survives iff no value-equivalent r row is
      // valid at t; surviving duplicates all survive.
      std::vector<Tuple> out;
      for (const Tuple& x : l) {
        bool covered = false;
        for (const Tuple& y : r) {
          if (x.values() == y.values()) {
            covered = true;
            break;
          }
        }
        if (!covered) out.push_back(x);
      }
      return out;
    }
  }
  return Status::InvalidArgument("unknown query operator");
}

StatusOr<std::pair<Chronon, Chronon>> BaseChrononRange(const QueryNode& node) {
  Chronon lo = std::numeric_limits<Chronon>::max();
  Chronon hi = std::numeric_limits<Chronon>::min();
  if (node.op == QueryOp::kScan) {
    if (node.scan == nullptr) {
      return Status::InvalidArgument("scan node has no relation");
    }
    TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> all, node.scan->ReadAll());
    for (const Tuple& x : all) {
      lo = std::min(lo, x.interval().start());
      hi = std::max(hi, x.interval().end());
    }
  }
  for (const auto& child : node.children) {
    TEMPO_ASSIGN_OR_RETURN(auto range, BaseChrononRange(*child));
    if (range.first <= range.second) {
      lo = std::min(lo, range.first + 1);
      hi = std::max(hi, range.second - 1);
    }
  }
  if (lo > hi) return std::make_pair(Chronon{0}, Chronon{-1});
  return std::make_pair(lo - 1, hi + 1);
}

Status CheckSnapshotReducible(const QueryNode& plan,
                              const std::vector<Tuple>& result, Chronon lo,
                              Chronon hi) {
  for (Chronon t = lo; t <= hi; ++t) {
    std::vector<Tuple> sliced;
    for (const Tuple& x : result) {
      if (x.interval().Contains(t)) {
        sliced.emplace_back(x.values(), Interval(t, t));
      }
    }
    TEMPO_ASSIGN_OR_RETURN(std::vector<Tuple> expected, SnapshotEval(plan, t));
    if (!SameTupleMultiset(sliced, expected)) {
      return Status::FailedPrecondition(
          "snapshot reducibility violated at chronon " + std::to_string(t) +
          ": timeslice has " + std::to_string(sliced.size()) +
          " rows, nontemporal evaluation has " +
          std::to_string(expected.size()));
    }
  }
  return Status::OK();
}

}  // namespace tempo
