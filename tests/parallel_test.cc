// Tests for the morsel-driven parallel execution layer: the thread pool
// and ParallelFor primitives, the overflow-chunk path of the partition
// join under threading, and the headline guarantee that num_threads is
// invisible — byte-identical output and identical charged I/O.

#include <atomic>
#include <cstring>
#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "core/partition_coalesce.h"
#include "core/partition_join.h"
#include "join/indexed_join.h"
#include "join/nested_loop_join.h"
#include "join/reference_join.h"
#include "join/sort_merge_join.h"
#include "obs/exec_context.h"
#include "parallel/parallel_for.h"
#include "parallel/scheduler.h"
#include "parallel/thread_pool.h"
#include "test_util.h"
#include "workload/generator.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

// Executors take their thread count from the scheduler handle on the
// ExecContext now; this bundles the pair for the thread-sweep tests.
struct ScopedScheduler {
  explicit ScopedScheduler(uint32_t threads)
      : scheduler(SchedulerConfig{threads, /*morsel_pages=*/4}) {
    ctx.SetScheduler(&scheduler);
  }
  Scheduler scheduler;
  ExecContext ctx;
};

// ---------------------------------------------------------------------
// ThreadPool / TaskGroup
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 100; ++i) {
      group.Run([&counter] { counter.fetch_add(1); });
    }
    group.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    TaskGroup group(&pool);
    for (int i = 0; i < 50; ++i) {
      group.Run([&counter] { counter.fetch_add(1); });
    }
    // TaskGroup's destructor waits; the pool's destructor then joins.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(TaskGroupTest, NullPoolRunsInline) {
  std::atomic<int> counter{0};
  TaskGroup group(nullptr);
  group.Run([&counter] { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 1);  // already ran, before Wait()
  group.Wait();
  EXPECT_EQ(counter.load(), 1);
}

// ---------------------------------------------------------------------
// ParallelFor
// ---------------------------------------------------------------------

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (bool use_pool : {false, true}) {
    std::vector<std::atomic<int>> hits(97);
    for (auto& h : hits) h.store(0);
    MorselStats stats;
    Status st = ParallelFor(
        use_pool ? &pool : nullptr, hits.size(), 7,
        [&](size_t m, size_t begin, size_t end) -> Status {
          EXPECT_EQ(begin, m * 7);
          for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
          return Status::OK();
        },
        &stats);
    TEMPO_ASSERT_OK(st);
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
    EXPECT_EQ(stats.morsels_dispatched, (97 + 6) / 7);
    stats = MorselStats{};
  }
}

TEST(ParallelForTest, EmptyRangeIsOk) {
  TEMPO_ASSERT_OK(ParallelFor(nullptr, 0, 4,
                              [](size_t, size_t, size_t) -> Status {
                                ADD_FAILURE() << "must not be called";
                                return Status::OK();
                              }));
}

TEST(ParallelForTest, ReportsLowestIndexedError) {
  ThreadPool pool(4);
  Status st = ParallelFor(&pool, 20, 1,
                          [](size_t m, size_t, size_t) -> Status {
                            if (m == 7 || m == 13) {
                              return Status::Internal(
                                  "morsel " + std::to_string(m));
                            }
                            return Status::OK();
                          });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("morsel 7"), std::string::npos)
      << st.ToString();
}

// ---------------------------------------------------------------------
// Overflow-chunk path under threading (satellite: overflow coverage)
// ---------------------------------------------------------------------

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"sval", ValueType::kString}});
}

Tuple S(int64_t key, const std::string& v, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(v)}, Interval(vs, ve));
}

TEST(ParallelJoinTest, OverflowChunksMatchReferenceAcrossThreadCounts) {
  Random rng(99);
  // Wide pads make the outer partitions overflow a 1-page partition area
  // (buffer_pages=4 => reserved 3, area = 1 page payload).
  std::vector<Tuple> r_tuples;
  std::vector<Tuple> s_tuples;
  std::string pad(120, 'r');
  for (const Tuple& t : RandomTuples(rng, 300, 20, 600, 0.3)) {
    r_tuples.push_back(T(t.value(0).AsInt64(), pad, t.interval().start(),
                         t.interval().end()));
  }
  for (const Tuple& t : RandomTuples(rng, 250, 20, 600, 0.3)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), "s", t.interval().start(),
                         t.interval().end()));
  }
  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> expected,
      ReferenceValidTimeJoin(TestSchema(), r_tuples, SSchema(), s_tuples));

  for (uint32_t threads : {1u, 4u}) {
    Disk disk;
    auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
    auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
    TEMPO_ASSERT_OK_AND_ASSIGN(
        NaturalJoinLayout layout,
        DeriveNaturalJoinLayout(TestSchema(), SSchema()));
    StoredRelation out(&disk, layout.output, "out");

    PartitionJoinOptions options;
    options.buffer_pages = 4;
    options.forced_num_partitions = 2;
    ScopedScheduler sched(threads);
    TEMPO_ASSERT_OK_AND_ASSIGN(
        JoinRunStats stats,
        PartitionVtJoin(r.get(), s.get(), &out, options, &sched.ctx));

    EXPECT_GT(stats.Get(Metric::kOverflowChunks), 0.0)
        << "workload must exercise the chunked outer-area path";
    TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
    EXPECT_TRUE(SameTupleMultiset(actual, expected))
        << "threads=" << threads << " actual=" << actual.size()
        << " expected=" << expected.size();
  }
}

// ---------------------------------------------------------------------
// Determinism: threading must be invisible in output bytes and IoStats
// ---------------------------------------------------------------------

struct RunResult {
  std::vector<Page> out_pages;
  IoStats io;
  uint64_t output_tuples = 0;
};

RunResult RunSkewedPartitionJoin(uint32_t num_threads) {
  RunResult result;
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = 2500;
  spec.num_long_lived = 500;  // long-lived tuples exercise the cache
  spec.lifespan = 50000;
  spec.distinct_keys = 100;
  spec.zipf_theta = 0.8;  // skewed keys => uneven probe morsels
  spec.tuple_bytes = 64;
  spec.seed = 7;
  auto r_or = GenerateRelation(&disk, spec, "r");
  spec.seed = 1007;
  auto s_gen_or = GenerateRelation(&disk, spec, "s");
  if (!r_or.ok() || !s_gen_or.ok()) {
    ADD_FAILURE() << "workload generation failed";
    return result;
  }
  std::unique_ptr<StoredRelation> r = *std::move(r_or);
  // Rename s's pad attribute so only "key" is a join attribute.
  Schema s_schema({{"key", ValueType::kInt64}, {"spad", ValueType::kString}});
  auto s = std::make_unique<StoredRelation>(&disk, s_schema, "s2");
  auto s_tuples = (*s_gen_or)->ReadAll();
  if (!s_tuples.ok()) {
    ADD_FAILURE() << s_tuples.status().ToString();
    return result;
  }
  for (const Tuple& t : *s_tuples) {
    if (!s->Append(t).ok()) return result;
  }
  if (!s->Flush().ok()) return result;
  disk.DeleteFile((*s_gen_or)->file_id()).ok();

  auto layout = DeriveNaturalJoinLayout(r->schema(), s->schema());
  if (!layout.ok()) {
    ADD_FAILURE() << layout.status().ToString();
    return result;
  }
  StoredRelation out(&disk, layout->output, "out");

  PartitionJoinOptions options;
  options.buffer_pages = 16;  // small memory => several partitions
  ScopedScheduler sched(num_threads);
  auto stats = PartitionVtJoin(r.get(), s.get(), &out, options, &sched.ctx);
  if (!stats.ok()) {
    ADD_FAILURE() << stats.status().ToString();
    return result;
  }
  result.io = stats->io;
  result.output_tuples = stats->output_tuples;
  result.out_pages.resize(out.num_pages());
  for (uint32_t p = 0; p < out.num_pages(); ++p) {
    auto st = out.ReadPage(p, &result.out_pages[p]);
    if (!st.ok()) ADD_FAILURE() << st.ToString();
  }
  return result;
}

TEST(ParallelJoinTest, ThreadCountIsInvisibleInOutputAndIoStats) {
  RunResult serial = RunSkewedPartitionJoin(1);
  ASSERT_GT(serial.output_tuples, 0u);
  ASSERT_FALSE(serial.out_pages.empty());
  for (uint32_t threads : {2u, 8u}) {
    RunResult parallel = RunSkewedPartitionJoin(threads);
    EXPECT_EQ(parallel.output_tuples, serial.output_tuples);
    EXPECT_TRUE(parallel.io == serial.io)
        << "threads=" << threads << " parallel=" << parallel.io.ToString()
        << " serial=" << serial.io.ToString();
    ASSERT_EQ(parallel.out_pages.size(), serial.out_pages.size());
    for (size_t p = 0; p < serial.out_pages.size(); ++p) {
      EXPECT_EQ(std::memcmp(&parallel.out_pages[p], &serial.out_pages[p],
                            sizeof(Page)),
                0)
          << "threads=" << threads << " output page " << p
          << " differs from the serial run";
    }
  }
}

TEST(ParallelJoinTest, SortMergeAgreesAcrossThreadCounts) {
  Random rng(5);
  std::vector<Tuple> r_tuples = RandomTuples(rng, 500, 40, 800, 0.2);
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 450, 40, 800, 0.2)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), t.value(1).AsString(),
                         t.interval().start(), t.interval().end()));
  }
  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> expected,
      ReferenceValidTimeJoin(TestSchema(), r_tuples, SSchema(), s_tuples));

  IoStats serial_io;
  for (uint32_t threads : {1u, 4u}) {
    Disk disk;
    auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
    auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
    TEMPO_ASSERT_OK_AND_ASSIGN(
        NaturalJoinLayout layout,
        DeriveNaturalJoinLayout(TestSchema(), SSchema()));
    StoredRelation out(&disk, layout.output, "out");
    VtJoinOptions options;
    options.buffer_pages = 8;  // forces real run formation + merges
    ScopedScheduler sched(threads);
    TEMPO_ASSERT_OK_AND_ASSIGN(
        JoinRunStats stats,
        SortMergeVtJoin(r.get(), s.get(), &out, options, &sched.ctx));
    TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
    EXPECT_TRUE(SameTupleMultiset(actual, expected)) << "threads=" << threads;
    if (threads == 1) {
      serial_io = stats.io;
    } else {
      EXPECT_TRUE(stats.io == serial_io)
          << "threads=" << threads << " io=" << stats.io.ToString()
          << " serial=" << serial_io.ToString();
    }
  }
}

// ---------------------------------------------------------------------
// Zero-copy view refactor lock: every executor must produce the same
// output bytes and charged I/O at any thread count, and must actually
// run its hot loop on page-backed views.
// ---------------------------------------------------------------------

struct ExecRun {
  std::vector<Page> pages;
  IoStats io;
  uint64_t output_tuples = 0;
  double views = 0;  // decode_materializations_avoided
};

void CapturePages(StoredRelation* out, ExecRun* run) {
  run->pages.resize(out->num_pages());
  for (uint32_t p = 0; p < out->num_pages(); ++p) {
    TEMPO_ASSERT_OK(out->ReadPage(p, &run->pages[p]));
  }
}

void ExpectSameRun(const ExecRun& a, const ExecRun& b, const char* what) {
  EXPECT_EQ(a.output_tuples, b.output_tuples) << what;
  EXPECT_TRUE(a.io == b.io) << what << ": " << a.io.ToString() << " vs "
                            << b.io.ToString();
  EXPECT_EQ(a.views, b.views) << what << ": view counts diverge";
  ASSERT_EQ(a.pages.size(), b.pages.size()) << what;
  for (size_t p = 0; p < a.pages.size(); ++p) {
    EXPECT_EQ(std::memcmp(&a.pages[p], &b.pages[p], sizeof(Page)), 0)
        << what << ": output page " << p << " differs";
  }
}

TEST(ZeroCopyLockTest, AllExecutorsByteIdenticalAcrossThreadCounts) {
  Random rng(21);
  std::vector<Tuple> r_tuples = RandomTuples(rng, 800, 30, 900, 0.25);
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 700, 30, 900, 0.25)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), t.value(1).AsString(),
                         t.interval().start(), t.interval().end()));
  }

  using Runner = std::function<StatusOr<JoinRunStats>(
      StoredRelation*, StoredRelation*, StoredRelation*, uint32_t)>;
  struct Executor {
    const char* name;
    Runner run;
  };
  const std::vector<Executor> executors = {
      {"nested_loop",
       [](StoredRelation* r, StoredRelation* s, StoredRelation* out,
          uint32_t threads) {
         VtJoinOptions o;
         o.buffer_pages = 8;
         ScopedScheduler sched(threads);
         return NestedLoopVtJoin(r, s, out, o, &sched.ctx);
       }},
      {"sort_merge",
       [](StoredRelation* r, StoredRelation* s, StoredRelation* out,
          uint32_t threads) {
         VtJoinOptions o;
         o.buffer_pages = 8;
         ScopedScheduler sched(threads);
         return SortMergeVtJoin(r, s, out, o, &sched.ctx);
       }},
      {"indexed",
       [](StoredRelation* r, StoredRelation* s, StoredRelation* out,
          uint32_t threads) {
         VtJoinOptions o;
         o.buffer_pages = 12;
         ScopedScheduler sched(threads);
         return IndexedVtJoin(r, s, out, o, &sched.ctx);
       }},
      {"partition",
       [](StoredRelation* r, StoredRelation* s, StoredRelation* out,
          uint32_t threads) {
         PartitionJoinOptions o;
         o.buffer_pages = 8;  // forces several partitions + spill paths
         ScopedScheduler sched(threads);
         return PartitionVtJoin(r, s, out, o, &sched.ctx);
       }},
  };

  for (const Executor& exec : executors) {
    ExecRun reference;
    for (uint32_t threads : {1u, 4u}) {
      Disk disk;
      auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
      auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
      TEMPO_ASSERT_OK_AND_ASSIGN(
          NaturalJoinLayout layout,
          DeriveNaturalJoinLayout(TestSchema(), SSchema()));
      StoredRelation out(&disk, layout.output, "out");
      auto stats_or = exec.run(r.get(), s.get(), &out, threads);
      ASSERT_TRUE(stats_or.ok())
          << exec.name << ": " << stats_or.status().ToString();
      ExecRun run;
      run.io = stats_or->io;
      run.output_tuples = stats_or->output_tuples;
      run.views = stats_or->Get(Metric::kDecodeMaterializationsAvoided);
      CapturePages(&out, &run);
      EXPECT_GT(run.views, 0.0)
          << exec.name << " must stream views through its hot loop";
      EXPECT_GT(run.output_tuples, 0u) << exec.name;
      if (threads == 1) {
        reference = std::move(run);
      } else {
        ExpectSameRun(reference, run, exec.name);
      }
    }
  }
}

TEST(ZeroCopyLockTest, CoalesceByteIdenticalAcrossThreadCounts) {
  // Duplicate values with touching/overlapping intervals so coalescing
  // actually merges runs.
  Random rng(31);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 900; ++i) {
    int64_t key = static_cast<int64_t>(rng.Uniform(40));
    Chronon start = rng.UniformRange(0, 500);
    tuples.push_back(T(key, "grp" + std::to_string(key), start,
                       start + rng.UniformRange(1, 30)));
  }
  ExecRun reference;
  for (uint32_t threads : {1u, 4u}) {
    Disk disk;
    auto in = MakeRelation(&disk, TestSchema(), tuples, "in");
    StoredRelation out(&disk, TestSchema(), "out");
    PartitionJoinOptions o;
    o.buffer_pages = 8;
    o.forced_num_partitions = 3;  // exercise the carry-across path
    ScopedScheduler sched(threads);
    TEMPO_ASSERT_OK_AND_ASSIGN(
        JoinRunStats stats,
        PartitionCoalesce(in.get(), &out, o, &sched.ctx));
    ExecRun run;
    run.io = stats.io;
    run.output_tuples = stats.output_tuples;
    run.views = stats.Get(Metric::kDecodeMaterializationsAvoided);
    CapturePages(&out, &run);
    EXPECT_GT(run.views, 0.0);
    EXPECT_GT(run.output_tuples, 0u);
    EXPECT_LT(run.output_tuples, tuples.size());  // something coalesced
    if (threads == 1) {
      reference = std::move(run);
    } else {
      ExpectSameRun(reference, run, "coalesce");
    }
  }
}

// ---------------------------------------------------------------------
// DecodePageAppend (satellite: arena-reuse decode variant)
// ---------------------------------------------------------------------

TEST(DecodePageAppendTest, AppendsIntoArenaAndReportsCount) {
  Disk disk;
  std::vector<Tuple> tuples;
  for (int i = 0; i < 40; ++i) tuples.push_back(T(i, "v", i, i + 2));
  auto rel = MakeRelation(&disk, TestSchema(), tuples, "rel");
  ASSERT_GE(rel->num_pages(), 1u);

  std::vector<Tuple> arena;
  size_t total = 0;
  for (uint32_t p = 0; p < rel->num_pages(); ++p) {
    Page page;
    TEMPO_ASSERT_OK(rel->ReadPage(p, &page));
    TEMPO_ASSERT_OK_AND_ASSIGN(
        size_t added,
        StoredRelation::DecodePageAppend(TestSchema(), page, &arena));
    EXPECT_GT(added, 0u);
    total += added;
    EXPECT_EQ(arena.size(), total);  // appended, not replaced
  }
  EXPECT_EQ(total, tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(arena[i].value(0).AsInt64(), tuples[i].value(0).AsInt64());
  }
}

}  // namespace
}  // namespace tempo
