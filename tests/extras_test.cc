// Coverage for smaller public APIs not exercised by the module suites.

#include <gtest/gtest.h>

#include "common/format.h"
#include "core/determine_part_intervals.h"
#include "core/partition_join.h"
#include "join/nested_loop_join.h"
#include "core/partition_spec.h"
#include "storage/buffer_manager.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

TEST(IntervalExtrasTest, BeforeIsStrict) {
  EXPECT_TRUE(Interval(0, 4).Before(Interval(5, 9)));
  EXPECT_FALSE(Interval(0, 5).Before(Interval(5, 9)));
  EXPECT_FALSE(Interval(5, 9).Before(Interval(0, 4)));
}

TEST(ValueExtrasTest, OrderingIsTypeThenValue) {
  // variant ordering: same-type values compare by value.
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_FALSE(Value("b") < Value("a"));
}

TEST(PinnedPageTest, RaiiUnpinsOnDestruction) {
  Disk disk;
  FileId file = disk.CreateFile("f");
  Page p;
  p.AddRecord("x");
  TEMPO_ASSERT_OK(disk.AppendPage(file, p).status());

  BufferManager buf(&disk, 1);
  {
    TEMPO_ASSERT_OK_AND_ASSIGN(Page * raw, buf.Pin(file, 0));
    PinnedPage pinned(&buf, file, 0, raw);
    EXPECT_EQ(pinned->GetRecord(0), "x");
    // Re-pinning the same page is a hit even while the guard holds it.
    TEMPO_ASSERT_OK(buf.Pin(file, 0).status());
    TEMPO_ASSERT_OK(buf.Unpin(file, 0, false));
  }
  // After the guard died, the frame is evictable: pinning another page
  // must succeed by evicting it.
  Page q;
  TEMPO_ASSERT_OK(disk.AppendPage(file, q).status());
  TEMPO_ASSERT_OK(buf.Pin(file, 1).status());
  TEMPO_ASSERT_OK(buf.Unpin(file, 1, false));
}

TEST(PinnedPageTest, DirtyMarkWritesBack) {
  Disk disk;
  FileId file = disk.CreateFile("f");
  Page p;
  TEMPO_ASSERT_OK(disk.AppendPage(file, p).status());
  BufferManager buf(&disk, 1);
  {
    TEMPO_ASSERT_OK_AND_ASSIGN(Page * raw, buf.Pin(file, 0));
    PinnedPage pinned(&buf, file, 0, raw);
    pinned->AddRecord("dirty");
    pinned.MarkDirty();
  }
  TEMPO_ASSERT_OK(buf.FlushAll());
  Page back;
  TEMPO_ASSERT_OK(disk.ReadPage(file, 0, &back));
  EXPECT_EQ(back.GetRecord(0), "dirty");
}

TEST(PartitionSpecPropertyTest, IndexOfAgreesWithLinearScan) {
  Random rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    // Random strictly-increasing boundaries.
    std::vector<Chronon> bounds;
    Chronon b = rng.UniformRange(-100, 0);
    size_t count = 1 + rng.Uniform(10);
    for (size_t i = 0; i < count; ++i) {
      b += 1 + rng.UniformRange(0, 40);
      bounds.push_back(b);
    }
    TEMPO_ASSERT_OK_AND_ASSIGN(PartitionSpec spec,
                               PartitionSpec::FromBoundaries(bounds));
    for (int probe = 0; probe < 50; ++probe) {
      Chronon t = rng.UniformRange(-200, 600);
      size_t expected = spec.num_partitions();
      for (size_t i = 0; i < spec.num_partitions(); ++i) {
        if (spec.partition(i).Contains(t)) {
          expected = i;
          break;
        }
      }
      ASSERT_LT(expected, spec.num_partitions());
      EXPECT_EQ(spec.IndexOf(t), expected);
    }
    // Coverage and adjacency invariants.
    EXPECT_EQ(spec.partition(0).start(), kChrononMin);
    EXPECT_EQ(spec.partition(spec.num_partitions() - 1).end(), kChrononMax);
  }
}

TEST(PartitionCostCurveTest, CandidatesAscendAndSampleCostMonotone) {
  Disk disk;
  Random rng(9);
  auto rel = MakeRelation(&disk, TestSchema(),
                          RandomTuples(rng, 6000, 100, 5000, 0.3), "r");
  PartitionPlanOptions options;
  options.buffer_pages = rel->num_pages() / 3;
  Random plan_rng(1);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto curve,
                             PartitionCostCurve(rel.get(), options, &plan_rng));
  ASSERT_GT(curve.size(), 3u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].part_size_pages, curve[i - 1].part_size_pages);
    EXPECT_GE(curve[i].c_sample + 1e-9, curve[i - 1].c_sample);
    EXPECT_LT(curve[i].num_partitions, curve[i - 1].num_partitions + 1);
  }
  // The optimizer's pick equals the curve's minimum.
  Random plan_rng2(1);
  TEMPO_ASSERT_OK_AND_ASSIGN(
      PartitionPlan plan, DeterminePartIntervals(rel.get(), options, &plan_rng2));
  double best = curve.front().total();
  uint32_t best_ps = curve.front().part_size_pages;
  for (const auto& p : curve) {
    if (p.total() <= best) {
      best = p.total();
      best_ps = p.part_size_pages;
    }
  }
  EXPECT_EQ(plan.part_size_pages, best_ps);
}

TEST(PartitionCostCurveTest, EmptyForFittingRelation) {
  Disk disk;
  auto rel = MakeRelation(&disk, TestSchema(), {T(1, "a", 0, 1)}, "r");
  PartitionPlanOptions options;
  options.buffer_pages = 64;
  Random rng(1);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto curve,
                             PartitionCostCurve(rel.get(), options, &rng));
  EXPECT_TRUE(curve.empty());
}

TEST(FormatExtrasTest, FractionalBytes) {
  // 1.5 MiB is not an exact multiple of MiB: one-decimal rendering.
  EXPECT_EQ(FormatBytes(1536 * 1024), "1.5 MiB");
}

TEST(DiskExtrasTest, FileNamesForDebugging) {
  Disk disk;
  FileId f = disk.CreateFile("my-relation");
  EXPECT_EQ(disk.FileName(f), "my-relation");
  EXPECT_EQ(disk.FileName(999), "<unknown>");
}


TEST(DeterminismTest, PartitionJoinIsReproducibleFromSeed) {
  auto run = []() {
    Random rng(42);
    Disk disk;
    auto r = tempo::testing::MakeRelation(
        &disk, tempo::testing::TestSchema(),
        tempo::testing::RandomTuples(rng, 2000, 40, 1500, 0.3), "r");
    Schema s_schema({{"key", ValueType::kInt64},
                     {"dept", ValueType::kString}});
    std::vector<Tuple> s_tuples;
    for (const Tuple& t :
         tempo::testing::RandomTuples(rng, 1800, 40, 1500, 0.3)) {
      s_tuples.push_back(Tuple({t.value(0), t.value(1)}, t.interval()));
    }
    auto s = tempo::testing::MakeRelation(&disk, s_schema, s_tuples, "s");
    auto layout = DeriveNaturalJoinLayout(r->schema(), s->schema());
    StoredRelation out(&disk, layout->output, "out");
    PartitionJoinOptions options;
    options.buffer_pages = 12;
    options.seed = 7;
    auto stats = PartitionVtJoin(r.get(), s.get(), &out, options);
    EXPECT_TRUE(stats.ok());
    return std::make_tuple(stats->io, stats->output_tuples,
                           stats->Get(Metric::kPartitions),
                           stats->Get(Metric::kSamples));
  };
  EXPECT_EQ(run(), run());
}


TEST(SingleHeadModelTest, NestedLoopMatchesAnalyticUnderSingleHead) {
  Random rng(5);
  Disk disk;
  disk.accountant().set_head_model(HeadModel::kSingleHead);
  auto r = tempo::testing::MakeRelation(
      &disk, tempo::testing::TestSchema(),
      tempo::testing::RandomTuples(rng, 3000, 40, 1500, 0.1), "r");
  Schema s_schema({{"key", ValueType::kInt64}, {"dept", ValueType::kString}});
  std::vector<Tuple> s_tuples;
  for (const Tuple& t :
       tempo::testing::RandomTuples(rng, 3000, 40, 1500, 0.1)) {
    s_tuples.push_back(Tuple({t.value(0), t.value(1)}, t.interval()));
  }
  auto s = tempo::testing::MakeRelation(&disk, s_schema, s_tuples, "s");
  auto layout = DeriveNaturalJoinLayout(r->schema(), s->schema());
  StoredRelation out(&disk, layout->output, "out");
  TEMPO_ASSERT_OK(out.SetCharged(false));
  disk.accountant().Reset();
  // Reset clears the head; keep the single-head model.
  disk.accountant().set_head_model(HeadModel::kSingleHead);
  VtJoinOptions options;
  options.buffer_pages = 10;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             NestedLoopVtJoin(r.get(), s.get(), &out, options));
  CostModel m = CostModel::Ratio(5.0);
  EXPECT_DOUBLE_EQ(stats.Cost(m),
                   NestedLoopAnalyticCost(r->num_pages(), s->num_pages(), 10,
                                          m, HeadModel::kSingleHead));
}


// The pure time-join (T-join [GS90]): schemas sharing no attribute make
// the natural join degenerate to a timestamp-filtered cross product, and
// the partition framework evaluates it unchanged.
TEST(TimeJoinTest, DisjointSchemasJoinOnOverlapOnly) {
  Disk disk;
  Schema a_schema({{"a", ValueType::kInt64}});
  Schema b_schema({{"b", ValueType::kString}});
  auto mk_a = [&](int64_t v, Chronon s, Chronon e) {
    return Tuple({Value(v)}, Interval(s, e));
  };
  auto mk_b = [&](const char* v, Chronon s, Chronon e) {
    return Tuple({Value(v)}, Interval(s, e));
  };
  StoredRelation a(&disk, a_schema, "a");
  StoredRelation b(&disk, b_schema, "b");
  Random rng(3);
  std::vector<Tuple> a_tuples, b_tuples;
  for (int i = 0; i < 120; ++i) {
    Chronon s = rng.UniformRange(0, 300);
    a_tuples.push_back(mk_a(i, s, s + rng.UniformRange(0, 40)));
    Chronon s2 = rng.UniformRange(0, 300);
    b_tuples.push_back(
        mk_b(("x" + std::to_string(i)).c_str(), s2,
             s2 + rng.UniformRange(0, 40)));
  }
  for (auto& t : a_tuples) TEMPO_ASSERT_OK(a.Append(t));
  for (auto& t : b_tuples) TEMPO_ASSERT_OK(b.Append(t));
  TEMPO_ASSERT_OK(a.Flush());
  TEMPO_ASSERT_OK(b.Flush());

  auto layout = DeriveNaturalJoinLayout(a_schema, b_schema);
  TEMPO_ASSERT_OK(layout.status());
  StoredRelation out(&disk, layout->output, "out");
  PartitionJoinOptions options;
  options.buffer_pages = 8;
  options.forced_num_partitions = 4;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             PartitionVtJoin(&a, &b, &out, options));

  uint64_t expected = 0;
  for (const Tuple& x : a_tuples) {
    for (const Tuple& y : b_tuples) {
      if (x.interval().Overlaps(y.interval())) ++expected;
    }
  }
  EXPECT_EQ(stats.output_tuples, expected);
  EXPECT_GT(expected, 0u);
}

}  // namespace
}  // namespace tempo
