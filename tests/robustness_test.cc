// Robustness: storage faults injected mid-operation must surface as
// Status errors from every executor — no crashes, no CHECK failures, no
// silent partial results mistaken for success — and corrupted records
// must never be trusted.

#include <gtest/gtest.h>

#include "core/partition_join.h"
#include "core/planner.h"
#include "incremental/materialized_view.h"
#include "join/external_sort.h"
#include "join/nested_loop_join.h"
#include "join/sort_merge_join.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"dept", ValueType::kString}});
}

struct FaultFixture {
  FaultFixture() {
    Random rng(13);
    r_tuples = RandomTuples(rng, 1500, 30, 800, 0.3);
    for (const Tuple& t : RandomTuples(rng, 1400, 30, 800, 0.3)) {
      s_tuples.push_back(Tuple({t.value(0), t.value(1)}, t.interval()));
    }
    r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
    s = MakeRelation(&disk, SSchema(), s_tuples, "s");
    auto l = DeriveNaturalJoinLayout(TestSchema(), SSchema());
    layout = *l;
  }

  Disk disk;
  std::vector<Tuple> r_tuples, s_tuples;
  std::unique_ptr<StoredRelation> r, s;
  NaturalJoinLayout layout;
};

// Every executor, with a fault at several points in its execution: the
// call must return a non-OK status mentioning the injected fault (or
// complete successfully if the fault lands after its last I/O).
class ExecutorFaultTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorFaultTest, AllExecutorsPropagateInjectedFaults) {
  const uint64_t fail_after = GetParam();
  for (int algo = 0; algo < 3; ++algo) {
    FaultFixture f;
    StoredRelation out(&f.disk, f.layout.output, "out");
    VtJoinOptions base;
    base.buffer_pages = 8;
    PartitionJoinOptions pj;
    pj.buffer_pages = 8;
    f.disk.InjectFaultAfter(fail_after);
    StatusOr<JoinRunStats> stats = Status::Internal("");
    switch (algo) {
      case 0:
        stats = NestedLoopVtJoin(f.r.get(), f.s.get(), &out, base);
        break;
      case 1:
        stats = SortMergeVtJoin(f.r.get(), f.s.get(), &out, base);
        break;
      default:
        stats = PartitionVtJoin(f.r.get(), f.s.get(), &out, pj);
    }
    f.disk.ClearFault();
    if (!stats.ok()) {
      EXPECT_EQ(stats.status().code(), StatusCode::kInternal)
          << "algo " << algo << ": " << stats.status().ToString();
      EXPECT_NE(stats.status().message().find("injected"),
                std::string_view::npos);
    }
    // Either way the disk must stay usable afterwards.
    StoredRelation out2(&f.disk, f.layout.output, "out2");
    TEMPO_EXPECT_OK(
        NestedLoopVtJoin(f.r.get(), f.s.get(), &out2, base).status());
  }
}

INSTANTIATE_TEST_SUITE_P(FaultPoints, ExecutorFaultTest,
                         ::testing::Values(0, 1, 7, 50, 300, 2000));

TEST(FaultTest, FaultAfterCompletionIsHarmless) {
  FaultFixture f;
  StoredRelation out(&f.disk, f.layout.output, "out");
  VtJoinOptions base;
  base.buffer_pages = 16;
  f.disk.InjectFaultAfter(100000000);  // far beyond any I/O this run does
  TEMPO_EXPECT_OK(
      NestedLoopVtJoin(f.r.get(), f.s.get(), &out, base).status());
  f.disk.ClearFault();
}

TEST(FaultTest, ExternalSortPropagates) {
  FaultFixture f;
  f.disk.InjectFaultAfter(5);
  auto sorted = ExternalSortByVs(f.r.get(), 6, "sorted");
  EXPECT_FALSE(sorted.ok());
  f.disk.ClearFault();
}

TEST(FaultTest, ViewBuildPropagates) {
  FaultFixture f;
  MaterializedVtJoinView view(&f.disk, "view");
  f.disk.InjectFaultAfter(10);
  EXPECT_FALSE(view.Build(f.r.get(), f.s.get(), 8).ok());
  f.disk.ClearFault();
}

TEST(FaultTest, PlannerExecutePropagates) {
  FaultFixture f;
  StoredRelation out(&f.disk, f.layout.output, "out");
  VtJoinOptions base;
  base.buffer_pages = 8;
  f.disk.InjectFaultAfter(3);
  EXPECT_FALSE(ExecuteVtJoin(f.r.get(), f.s.get(), &out, base).ok());
  f.disk.ClearFault();
}

// Deserialization fuzz: arbitrary bytes must never crash — every input
// either round-trips as a valid tuple or yields a Corruption status.
class DeserializeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeserializeFuzzTest, ArbitraryBytesNeverCrash) {
  Random rng(GetParam());
  Schema schema({{"a", ValueType::kInt64},
                 {"b", ValueType::kString},
                 {"c", ValueType::kDouble}});
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng.Uniform(200);
    std::string bytes;
    bytes.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto result = Tuple::Deserialize(schema, bytes.data(), bytes.size());
    if (result.ok()) {
      // If it parsed, re-serialization must reproduce the input.
      std::string back;
      result->SerializeTo(schema, &back);
      EXPECT_EQ(back, bytes);
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeserializeFuzzTest,
                         ::testing::Range<uint64_t>(0, 10));

// Truncation fuzz over real records of every schema shape.
TEST(DeserializeFuzzTest, TruncatedRealRecordsAlwaysRejected) {
  Schema schema({{"a", ValueType::kInt64},
                 {"b", ValueType::kString},
                 {"c", ValueType::kDouble},
                 {"d", ValueType::kString}});
  Tuple t({Value(int64_t{-7}), Value("hello"), Value(2.5), Value("")},
          Interval(-3, 999));
  std::string buf;
  t.SerializeTo(schema, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    auto result = Tuple::Deserialize(schema, buf.data(), cut);
    EXPECT_FALSE(result.ok()) << "cut " << cut;
  }
}

}  // namespace
}  // namespace tempo
