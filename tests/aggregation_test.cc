#include <map>

#include <gtest/gtest.h>

#include "algebra/aggregation.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

// Schema for numeric aggregation: (key, amount).
Schema NumSchema() {
  return Schema({{"key", ValueType::kInt64}, {"amount", ValueType::kInt64}});
}

Tuple N(int64_t key, int64_t amount, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(amount)}, Interval(vs, ve));
}

TEST(TemporalAggregateTest, CountBasic) {
  std::vector<Tuple> in{N(1, 0, 0, 4), N(1, 0, 2, 6)};
  AggregationSpec spec;
  spec.fn = AggregateFn::kCount;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto result,
                             TemporalAggregate(NumSchema(), in, spec));
  // (1)@[0,1], (2)@[2,4], (1)@[5,6]
  ASSERT_EQ(result.second.size(), 3u);
  EXPECT_EQ(result.second[0], Tuple({Value(int64_t{1})}, Interval(0, 1)));
  EXPECT_EQ(result.second[1], Tuple({Value(int64_t{2})}, Interval(2, 4)));
  EXPECT_EQ(result.second[2], Tuple({Value(int64_t{1})}, Interval(5, 6)));
  EXPECT_EQ(result.first.ToString(), "(count:int64)");
}

TEST(TemporalAggregateTest, GapsProduceNoOutput) {
  std::vector<Tuple> in{N(1, 0, 0, 2), N(1, 0, 10, 12)};
  AggregationSpec spec;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto result,
                             TemporalAggregate(NumSchema(), in, spec));
  ASSERT_EQ(result.second.size(), 2u);
  EXPECT_EQ(result.second[0].interval(), Interval(0, 2));
  EXPECT_EQ(result.second[1].interval(), Interval(10, 12));
}

TEST(TemporalAggregateTest, SumMergesEqualSegments) {
  // Two tuples handing over at the same value: [0,4]@5 then [5,9]@5 —
  // the sum is constantly 5, one segment.
  std::vector<Tuple> in{N(1, 5, 0, 4), N(1, 5, 5, 9)};
  AggregationSpec spec;
  spec.fn = AggregateFn::kSum;
  spec.value_attr = 1;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto result,
                             TemporalAggregate(NumSchema(), in, spec));
  ASSERT_EQ(result.second.size(), 1u);
  EXPECT_EQ(result.second[0], Tuple({Value(int64_t{5})}, Interval(0, 9)));
}

TEST(TemporalAggregateTest, MinMaxTrackActiveSet) {
  std::vector<Tuple> in{N(1, 10, 0, 9), N(1, 3, 2, 5), N(1, 7, 4, 6)};
  AggregationSpec min_spec;
  min_spec.fn = AggregateFn::kMin;
  min_spec.value_attr = 1;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto mins,
                             TemporalAggregate(NumSchema(), in, min_spec));
  // min: 10@[0,1], 3@[2,5], 7@[6,6], 10@[7,9]
  ASSERT_EQ(mins.second.size(), 4u);
  EXPECT_EQ(mins.second[0], Tuple({Value(int64_t{10})}, Interval(0, 1)));
  EXPECT_EQ(mins.second[1], Tuple({Value(int64_t{3})}, Interval(2, 5)));
  EXPECT_EQ(mins.second[2], Tuple({Value(int64_t{7})}, Interval(6, 6)));
  EXPECT_EQ(mins.second[3], Tuple({Value(int64_t{10})}, Interval(7, 9)));

  AggregationSpec max_spec;
  max_spec.fn = AggregateFn::kMax;
  max_spec.value_attr = 1;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto maxs,
                             TemporalAggregate(NumSchema(), in, max_spec));
  // max is 10 throughout [0,9].
  ASSERT_EQ(maxs.second.size(), 1u);
  EXPECT_EQ(maxs.second[0], Tuple({Value(int64_t{10})}, Interval(0, 9)));
}

TEST(TemporalAggregateTest, GroupBySeparatesSeries) {
  std::vector<Tuple> in{N(1, 2, 0, 5), N(2, 9, 0, 5), N(1, 2, 6, 9)};
  AggregationSpec spec;
  spec.fn = AggregateFn::kSum;
  spec.value_attr = 1;
  spec.group_by = {0};
  TEMPO_ASSERT_OK_AND_ASSIGN(auto result,
                             TemporalAggregate(NumSchema(), in, spec));
  EXPECT_EQ(result.first.ToString(), "(key:int64, sum:int64)");
  std::map<int64_t, int> per_key;
  for (const Tuple& t : result.second) ++per_key[t.value(0).AsInt64()];
  EXPECT_EQ(per_key[1], 1);  // constant sum 2 over [0,9]
  EXPECT_EQ(per_key[2], 1);
}

TEST(TemporalAggregateTest, EmptyInput) {
  AggregationSpec spec;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto result,
                             TemporalAggregate(NumSchema(), {}, spec));
  EXPECT_TRUE(result.second.empty());
}

TEST(TemporalAggregateTest, RejectsBadSpecs) {
  AggregationSpec spec;
  spec.fn = AggregateFn::kSum;
  spec.value_attr = 9;
  EXPECT_FALSE(TemporalAggregate(NumSchema(), {}, spec).ok());
  spec.value_attr = 1;
  spec.group_by = {7};
  EXPECT_FALSE(TemporalAggregate(NumSchema(), {}, spec).ok());
  // Non-int64 aggregate attribute.
  AggregationSpec str_spec;
  str_spec.fn = AggregateFn::kSum;
  str_spec.value_attr = 1;
  EXPECT_FALSE(TemporalAggregate(TestSchema(), {}, str_spec).ok());
}

// Property: the sweep agrees with a per-chronon brute force over a small
// universe, for every aggregate function.
class AggregatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregatePropertyTest, MatchesBruteForce) {
  constexpr Chronon kUniverse = 50;
  Random rng(GetParam());
  std::vector<Tuple> in;
  size_t n = 3 + rng.Uniform(20);
  for (size_t i = 0; i < n; ++i) {
    Chronon s = rng.UniformRange(0, kUniverse - 1);
    Chronon e = std::min<Chronon>(kUniverse - 1, s + rng.UniformRange(0, 15));
    in.push_back(N(static_cast<int64_t>(rng.Uniform(3)),
                   rng.UniformRange(-5, 20), s, e));
  }
  for (AggregateFn fn : {AggregateFn::kCount, AggregateFn::kSum,
                         AggregateFn::kMin, AggregateFn::kMax}) {
    AggregationSpec spec;
    spec.fn = fn;
    spec.value_attr = 1;
    spec.group_by = {0};
    TEMPO_ASSERT_OK_AND_ASSIGN(auto result,
                               TemporalAggregate(NumSchema(), in, spec));
    // Brute force per (key, chronon).
    for (int64_t key = 0; key < 3; ++key) {
      for (Chronon t = 0; t < kUniverse; ++t) {
        int64_t count = 0, sum = 0;
        int64_t mn = INT64_MAX, mx = INT64_MIN;
        for (const Tuple& tup : in) {
          if (tup.value(0).AsInt64() != key || !tup.interval().Contains(t)) {
            continue;
          }
          ++count;
          int64_t v = tup.value(1).AsInt64();
          sum += v;
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
        // The sweep's value at (key, t), if any.
        std::optional<int64_t> swept;
        for (const Tuple& seg : result.second) {
          if (seg.value(0).AsInt64() == key && seg.interval().Contains(t)) {
            ASSERT_FALSE(swept.has_value()) << "overlapping segments";
            swept = seg.value(1).AsInt64();
          }
        }
        if (count == 0) {
          EXPECT_FALSE(swept.has_value())
              << "key " << key << " t " << t << " fn "
              << AggregateFnName(fn);
          continue;
        }
        ASSERT_TRUE(swept.has_value())
            << "key " << key << " t " << t << " fn " << AggregateFnName(fn);
        int64_t expected = 0;
        switch (fn) {
          case AggregateFn::kCount:
            expected = count;
            break;
          case AggregateFn::kSum:
            expected = sum;
            break;
          case AggregateFn::kMin:
            expected = mn;
            break;
          case AggregateFn::kMax:
            expected = mx;
            break;
        }
        EXPECT_EQ(*swept, expected)
            << "key " << key << " t " << t << " fn " << AggregateFnName(fn);
      }
    }
    // Segments are maximal: adjacent same-key segments differ in value or
    // have a gap.
    for (size_t i = 1; i < result.second.size(); ++i) {
      const Tuple& a = result.second[i - 1];
      const Tuple& b = result.second[i];
      if (a.value(0) != b.value(0)) continue;
      if (a.interval().Meets(b.interval())) {
        EXPECT_NE(a.value(1), b.value(1)) << "non-maximal segments";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregatePropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace tempo
