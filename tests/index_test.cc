#include <gtest/gtest.h>

#include "join/append_only_tree.h"
#include "join/external_sort.h"
#include "join/indexed_join.h"
#include "join/reference_join.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"dept", ValueType::kString}});
}

std::unique_ptr<StoredRelation> MakeSorted(Disk* disk, size_t n,
                                           double long_lived_prob,
                                           uint64_t seed,
                                           const std::string& name) {
  Random rng(seed);
  std::vector<Tuple> tuples = RandomTuples(rng, n, 20, 2000,
                                           long_lived_prob);
  std::sort(tuples.begin(), tuples.end(), [](const Tuple& a, const Tuple& b) {
    return IntervalStartLess()(a.interval(), b.interval());
  });
  return MakeRelation(disk, TestSchema(), tuples, name);
}

TEST(AppendOnlyTreeTest, BuildsOverSortedRelation) {
  Disk disk;
  auto rel = MakeSorted(&disk, 3000, 0.2, 1, "r");
  TEMPO_ASSERT_OK_AND_ASSIGN(auto tree, AppendOnlyTree::Build(rel.get(), "r"));
  EXPECT_EQ(tree->num_data_pages(), rel->num_pages());
  EXPECT_GE(tree->height(), 1u);
  EXPECT_GT(tree->num_node_pages(), 0u);
  EXPECT_GT(tree->max_duration(), 1);
  TEMPO_ASSERT_OK(tree->Drop());
}

TEST(AppendOnlyTreeTest, RejectsUnsortedRelation) {
  Disk disk;
  auto rel = MakeRelation(&disk, TestSchema(),
                          {T(1, "a", 100, 101), T(2, "b", 5, 6)}, "r");
  EXPECT_EQ(AppendOnlyTree::Build(rel.get(), "r").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AppendOnlyTreeTest, BoundsBracketEveryProbe) {
  Disk disk;
  auto rel = MakeSorted(&disk, 5000, 0.1, 2, "r");
  TEMPO_ASSERT_OK_AND_ASSIGN(auto tree, AppendOnlyTree::Build(rel.get(), "r"));
  BufferManager pool(&disk, 8);

  // Collect each page's true first Vs.
  std::vector<Chronon> first_vs;
  for (uint32_t p = 0; p < rel->num_pages(); ++p) {
    TEMPO_ASSERT_OK_AND_ASSIGN(auto tuples, rel->ReadPageTuples(p));
    ASSERT_FALSE(tuples.empty());
    first_vs.push_back(tuples.front().interval().start());
  }

  Random rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    Chronon t = rng.UniformRange(-50, 2100);
    TEMPO_ASSERT_OK_AND_ASSIGN(uint32_t upper,
                               tree->UpperBoundPage(t, &pool));
    // Oracle: last page with first_vs <= t (or page 0 when none).
    uint32_t expected = 0;
    for (uint32_t p = 0; p < first_vs.size(); ++p) {
      if (first_vs[p] <= t) expected = p;
    }
    EXPECT_EQ(upper, expected) << "t=" << t;
    TEMPO_ASSERT_OK_AND_ASSIGN(uint32_t lower,
                               tree->LowerBoundPage(t, &pool));
    EXPECT_EQ(lower, expected > 0 ? expected - 1 : 0);
  }
  TEMPO_ASSERT_OK(tree->Drop());
}

TEST(AppendOnlyTreeTest, IncrementalAppendsExtendTheIndex) {
  Disk disk;
  auto rel = MakeSorted(&disk, 2000, 0.0, 4, "r");
  TEMPO_ASSERT_OK_AND_ASSIGN(auto tree, AppendOnlyTree::Build(rel.get(), "r"));
  uint32_t pages_before = tree->num_data_pages();
  // Simulate appending new data pages with ever-larger start times.
  for (uint32_t i = 0; i < 500; ++i) {
    TEMPO_ASSERT_OK(tree->AppendPage(10000 + i, pages_before + i));
  }
  EXPECT_EQ(tree->num_data_pages(), pages_before + 500);
  BufferManager pool(&disk, 8);
  TEMPO_ASSERT_OK_AND_ASSIGN(uint32_t page,
                             tree->UpperBoundPage(10250, &pool));
  EXPECT_EQ(page, pages_before + 250);
  TEMPO_ASSERT_OK(tree->Drop());
}

TEST(AppendOnlyTreeTest, AppendsChargeUpdateIo) {
  Disk disk;
  auto rel = MakeSorted(&disk, 2000, 0.0, 5, "r");
  TEMPO_ASSERT_OK_AND_ASSIGN(auto tree, AppendOnlyTree::Build(rel.get(), "r"));
  disk.accountant().Reset();
  TEMPO_ASSERT_OK(tree->AppendPage(99999, tree->num_data_pages()));
  // At least the rightmost leaf must be rewritten — the "additional
  // update costs" of maintaining an access path.
  EXPECT_GE(disk.accountant().stats().total_random() +
                disk.accountant().stats().total_sequential(),
            1u);
  TEMPO_ASSERT_OK(tree->Drop());
}

struct IndexedJoinCase {
  uint32_t buffer_pages;
  double long_lived_prob;
  uint64_t seed;
};

class IndexedJoinOracleTest
    : public ::testing::TestWithParam<IndexedJoinCase> {};

TEST_P(IndexedJoinOracleTest, MatchesReferenceJoin) {
  const IndexedJoinCase& c = GetParam();
  Random rng(c.seed);
  std::vector<Tuple> r_tuples = RandomTuples(rng, 400, 25, 700,
                                             c.long_lived_prob);
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 380, 25, 700, c.long_lived_prob)) {
    s_tuples.push_back(Tuple({t.value(0), t.value(1)}, t.interval()));
  }
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  StoredRelation out(&disk, layout.output, "out");
  VtJoinOptions options;
  options.buffer_pages = c.buffer_pages;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             IndexedVtJoin(r.get(), s.get(), &out, options));
  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> expected,
      ReferenceValidTimeJoin(TestSchema(), r_tuples, SSchema(), s_tuples));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
  EXPECT_EQ(stats.output_tuples, expected.size());
  EXPECT_TRUE(SameTupleMultiset(actual, expected));
  EXPECT_GT(stats.Get(Metric::kIndexNodePages), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexedJoinOracleTest,
    ::testing::Values(IndexedJoinCase{8, 0.0, 1}, IndexedJoinCase{8, 0.5, 2},
                      IndexedJoinCase{16, 0.2, 3},
                      IndexedJoinCase{64, 0.8, 4}),
    [](const ::testing::TestParamInfo<IndexedJoinCase>& info) {
      const IndexedJoinCase& c = info.param;
      return "b" + std::to_string(c.buffer_pages) + "_ll" +
             std::to_string(static_cast<int>(c.long_lived_prob * 10)) +
             "_s" + std::to_string(c.seed);
    });

TEST(IndexedJoinTest, LongLivedTuplesWidenScans) {
  auto scanned_at = [&](double llp) -> double {
    Random rng(9);
    Disk disk;
    std::vector<Tuple> r_tuples = RandomTuples(rng, 2000, 40, 5000, llp);
    std::vector<Tuple> s_tuples;
    for (const Tuple& t : RandomTuples(rng, 2000, 40, 5000, llp)) {
      s_tuples.push_back(Tuple({t.value(0), t.value(1)}, t.interval()));
    }
    auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
    auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
    auto layout = DeriveNaturalJoinLayout(TestSchema(), SSchema());
    StoredRelation out(&disk, layout->output, "out");
    out.SetCharged(false).ok();
    VtJoinOptions options;
    options.buffer_pages = 16;
    auto stats = IndexedVtJoin(r.get(), s.get(), &out, options);
    EXPECT_TRUE(stats.ok());
    return stats->Get(Metric::kInnerPagesScanned);
  };
  EXPECT_GT(scanned_at(0.4), scanned_at(0.0) * 2);
}

}  // namespace
}  // namespace tempo
