// Golden suite for the sequenced temporal query layer: ten hand-derived
// SPJ pipelines over small relations, each checked two ways — exact
// multiset equality against the hand-derived rows, and chronon-exact
// snapshot reducibility against the nontemporal oracle at every chronon
// of the inputs' lifespan (plus one chronon of slack each side). Also
// covers plan validation errors, bare-scan materialization, intermediate
// cleanup, and the EXPLAIN ANALYZE rendering of a sequenced run.
//
// The pipelines play the role of a PUG-style golden corpus: every
// expected row below was derived by hand from the operator definitions
// in DESIGN.md §4i and is stated inline, next to the plan that must
// produce it.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "join/reference_join.h"
#include "obs/explain.h"
#include "query/query_plan.h"
#include "query/sequenced_exec.h"
#include "query/snapshot_oracle.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"sval", ValueType::kString}});
}

Tuple S(int64_t key, const std::string& v, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(v)}, Interval(vs, ve));
}

Value VN(const char* s) {
  return s == nullptr ? Value::Null() : Value(std::string(s));
}

// Join-output row (key, name, sval); nullptr marks a NULL-padded slot.
Tuple J(int64_t key, const char* name, const char* sval, Chronon vs,
        Chronon ve) {
  return Tuple({Value(key), VN(name), VN(sval)}, Interval(vs, ve));
}

// Single-int64 and (int64, string) rows for projected outputs.
Tuple K(int64_t key, Chronon vs, Chronon ve) {
  return Tuple({Value(key)}, Interval(vs, ve));
}
Tuple N(const std::string& name, Chronon vs, Chronon ve) {
  return Tuple({Value(name)}, Interval(vs, ve));
}

AttrPredicate Eq(const std::string& attr, Value v) {
  return {attr, CompareOp::kEq, std::move(v)};
}

// The shared base data (same as the outer-join golden corpus):
//
// r (key, name):              s (key, sval):
//   (1, alice) [0, 10]          (1, sales) [0, 7]
//   (1, ann)   [5, 15]          (2, eng)   [3, 9]
//   (2, bob)   [0, 5]           (3, ops)   [0, 4]
//   (3, carol) [8, 12]          (5, hr)    [0, 30]
//   (4, dave)  [20, 25]
class GoldenPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = MakeRelation(&disk_, TestSchema(),
                      {T(1, "alice", 0, 10), T(1, "ann", 5, 15),
                       T(2, "bob", 0, 5), T(3, "carol", 8, 12),
                       T(4, "dave", 20, 25)},
                      "r");
    s_ = MakeRelation(&disk_, SSchema(),
                      {S(1, "sales", 0, 7), S(2, "eng", 3, 9),
                       S(3, "ops", 0, 4), S(5, "hr", 0, 30)},
                      "s");
  }

  // Runs `plan`, requires the output to equal `expected` exactly (as a
  // multiset), and checks snapshot reducibility at every chronon of the
  // base relations' range.
  void ExpectGolden(const QueryPlan& plan,
                    const std::vector<Tuple>& expected,
                    const std::string& prefix) {
    TEMPO_ASSERT_OK_AND_ASSIGN(
        QueryResult result,
        RunSequencedQuery(plan, &disk_, QueryOptions{}, nullptr, prefix));
    TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual,
                               result.relation->ReadAll());
    EXPECT_TRUE(SameTupleMultiset(actual, expected))
        << prefix << ": actual=" << actual.size()
        << " expected=" << expected.size();
    EXPECT_EQ(result.output_tuples, expected.size()) << prefix;

    TEMPO_ASSERT_OK_AND_ASSIGN(auto range, BaseChrononRange(plan.root()));
    ASSERT_LE(range.first, range.second) << prefix;
    TEMPO_EXPECT_OK(
        CheckSnapshotReducible(plan.root(), actual, range.first,
                               range.second));
  }

  Disk disk_;
  std::unique_ptr<StoredRelation> r_;
  std::unique_ptr<StoredRelation> s_;
};

// P1: σ key=1 (r) — both key-1 tuples, intervals untouched.
TEST_F(GoldenPipelineTest, SelectOnScan) {
  ExpectGolden(QueryPlan::Scan(r_.get()).Select(Eq("key", Value(int64_t{1}))),
               {T(1, "alice", 0, 10), T(1, "ann", 5, 15)}, "p1");
}

// P2: π key (r) — value-equal rows with overlapping intervals stay
// separate rows: [0,10] and [5,15] for key 1 must NOT merge into [0,15]
// (change preservation; algebra::Project would coalesce them).
TEST_F(GoldenPipelineTest, ProjectKeepsDuplicatesAndIntervals) {
  ExpectGolden(QueryPlan::Scan(r_.get()).Project({"key"}),
               {K(1, 0, 10), K(1, 5, 15), K(2, 0, 5), K(3, 8, 12),
                K(4, 20, 25)},
               "p2");
}

// P3: π key (σ name≠bob (r)).
TEST_F(GoldenPipelineTest, SelectThenProject) {
  ExpectGolden(QueryPlan::Scan(r_.get())
                   .Select({"name", CompareOp::kNe, Value(std::string("bob"))})
                   .Project({"key"}),
               {K(1, 0, 10), K(1, 5, 15), K(3, 8, 12), K(4, 20, 25)}, "p3");
}

// P4: σ sval=sales (r ⋈ᵗ s) — the two sales matches.
TEST_F(GoldenPipelineTest, JoinThenSelect) {
  ExpectGolden(
      QueryPlan::Join(QueryPlan::Scan(r_.get()), QueryPlan::Scan(s_.get()))
          .Select(Eq("sval", Value(std::string("sales")))),
      {J(1, "alice", "sales", 0, 7), J(1, "ann", "sales", 5, 7)}, "p4");
}

// P5: π key,name (r ⟕ᵗ s) — the three matches plus the five uncovered
// r-subintervals, with the NULL sval column projected away.
TEST_F(GoldenPipelineTest, LeftOuterThenProject) {
  ExpectGolden(
      QueryPlan::Join(QueryPlan::Scan(r_.get()), QueryPlan::Scan(s_.get()),
                      JoinKind::kLeftOuter)
          .Project({"key", "name"}),
      {T(1, "alice", 0, 7), T(1, "ann", 5, 7), T(2, "bob", 3, 5),
       T(1, "alice", 8, 10), T(1, "ann", 8, 15), T(2, "bob", 0, 2),
       T(3, "carol", 8, 12), T(4, "dave", 20, 25)},
      "p5");
}

// P6: σ key>1 (r ⟗ᵗ s) — full outer, then drop the key-1 rows. The
// s-unmatched rows carry s's key, so eng/ops/hr survive the filter.
TEST_F(GoldenPipelineTest, FullOuterThenSelect) {
  ExpectGolden(
      QueryPlan::Join(QueryPlan::Scan(r_.get()), QueryPlan::Scan(s_.get()),
                      JoinKind::kFullOuter)
          .Select({"key", CompareOp::kGt, Value(int64_t{1})}),
      {J(2, "bob", "eng", 3, 5), J(2, "bob", nullptr, 0, 2),
       J(3, "carol", nullptr, 8, 12), J(4, "dave", nullptr, 20, 25),
       J(2, nullptr, "eng", 6, 9), J(3, nullptr, "ops", 0, 4),
       J(5, nullptr, "hr", 0, 30)},
      "p6");
}

// P7: π name (r ▷ᵗ s) — anti join in r's own schema, then keep the name.
TEST_F(GoldenPipelineTest, AntiThenProject) {
  ExpectGolden(
      QueryPlan::Join(QueryPlan::Scan(r_.get()), QueryPlan::Scan(s_.get()),
                      JoinKind::kAnti)
          .Project({"name"}),
      {N("alice", 8, 10), N("ann", 8, 15), N("bob", 0, 2), N("carol", 8, 12),
       N("dave", 20, 25)},
      "p7");
}

// P8: r -ᵗ r2 — sequenced difference splits intervals per tuple: alice
// loses [3,20] of her [0,10], bob [0,5] vanishes inside [0,10]; ann
// (different name) is untouched even where alice's subtrahend overlaps.
TEST_F(GoldenPipelineTest, DifferenceSplitsIntervals) {
  auto r2 = MakeRelation(&disk_, TestSchema(),
                         {T(1, "alice", 3, 20), T(2, "bob", 0, 10)}, "r2");
  ExpectGolden(
      QueryPlan::Difference(QueryPlan::Scan(r_.get()),
                            QueryPlan::Scan(r2.get())),
      {T(1, "alice", 0, 2), T(1, "ann", 5, 15), T(3, "carol", 8, 12),
       T(4, "dave", 20, 25)},
      "p8");
}

// P9: σ key=1 (r) ⟕ᵗ s — selection below the preserved side of an outer
// join: only alice and ann reach the join, each with match + uncovered
// rows.
TEST_F(GoldenPipelineTest, SelectUnderLeftOuter) {
  ExpectGolden(
      QueryPlan::Join(
          QueryPlan::Scan(r_.get()).Select(Eq("key", Value(int64_t{1}))),
          QueryPlan::Scan(s_.get()), JoinKind::kLeftOuter),
      {J(1, "alice", "sales", 0, 7), J(1, "ann", "sales", 5, 7),
       J(1, "alice", nullptr, 8, 10), J(1, "ann", nullptr, 8, 15)},
      "p9");
}

// P10: σ key=1 (r) -ᵗ σ name=alice (r) — difference of two selections;
// alice cancels herself exactly, ann survives whole.
TEST_F(GoldenPipelineTest, DifferenceOfSelects) {
  ExpectGolden(
      QueryPlan::Difference(
          QueryPlan::Scan(r_.get()).Select(Eq("key", Value(int64_t{1}))),
          QueryPlan::Scan(r_.get()).Select(
              Eq("name", Value(std::string("alice"))))),
      {T(1, "ann", 5, 15)}, "p10");
}

// ---------------------------------------------------------------------
// Mechanics: bare scans, cleanup, validation, EXPLAIN ANALYZE
// ---------------------------------------------------------------------

TEST_F(GoldenPipelineTest, BareScanRootMaterializesACopy) {
  TEMPO_ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      RunSequencedQuery(QueryPlan::Scan(r_.get()), &disk_));
  EXPECT_NE(result.relation.get(), r_.get());
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual,
                             result.relation->ReadAll());
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> original, r_->ReadAll());
  EXPECT_TRUE(SameTupleMultiset(actual, original));
}

TEST_F(GoldenPipelineTest, IntermediatesAreDeletedEagerly) {
  // A three-operator pipeline materializes two intermediates plus the
  // root. Deleted files free their pages, so after the run the disk's
  // footprint must be exactly the base relations plus the root's file.
  const uint64_t pages_before = disk_.TotalPages();
  TEMPO_ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      RunSequencedQuery(QueryPlan::Join(QueryPlan::Scan(r_.get()),
                                        QueryPlan::Scan(s_.get()),
                                        JoinKind::kLeftOuter)
                            .Select({"key", CompareOp::kGe, Value(int64_t{0})})
                            .Project({"key", "name"}),
                        &disk_));
  EXPECT_EQ(disk_.TotalPages(), pages_before + result.relation->num_pages())
      << "intermediate relations must be deleted as soon as consumed";
}

TEST_F(GoldenPipelineTest, ValidationErrors) {
  auto bad_select = RunSequencedQuery(
      QueryPlan::Scan(r_.get()).Select(Eq("nope", Value(int64_t{0}))), &disk_);
  EXPECT_EQ(bad_select.status().code(), StatusCode::kInvalidArgument);

  auto bad_project = RunSequencedQuery(
      QueryPlan::Scan(r_.get()).Project({"key", "nope"}), &disk_);
  EXPECT_EQ(bad_project.status().code(), StatusCode::kInvalidArgument);

  // r and s are not union compatible (name:string vs sval:string differ
  // by attribute name).
  auto bad_diff = RunSequencedQuery(
      QueryPlan::Difference(QueryPlan::Scan(r_.get()),
                            QueryPlan::Scan(s_.get())),
      &disk_);
  EXPECT_EQ(bad_diff.status().code(), StatusCode::kInvalidArgument);

  StoredRelation unflushed(&disk_, TestSchema(), "unflushed");
  TEMPO_ASSERT_OK(unflushed.Append(T(1, "x", 0, 1)));
  auto bad_scan = RunSequencedQuery(QueryPlan::Scan(&unflushed), &disk_);
  EXPECT_EQ(bad_scan.status().code(), StatusCode::kFailedPrecondition);
}

// Predicate-qualified join nodes run end-to-end through the service
// facade. σ kept on top to show the node composes like any other join.
TEST_F(GoldenPipelineTest, PredicateQualifiedJoinNode) {
  // contain-join: r[V] ⊇ s[V]. Only alice [0,10] ⊇ sales [0,7]
  // (started-by); the stamp is the intersection.
  TEMPO_ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      RunSequencedQuery(
          QueryPlan::Join(QueryPlan::Scan(r_.get()), QueryPlan::Scan(s_.get()),
                          TemporalPredicate::ContainJoin())
              .Project({"key", "name"}),
          &disk_));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual,
                             result.relation->ReadAll());
  EXPECT_TRUE(SameTupleMultiset(
      actual, {Tuple({Value(int64_t{1}), Value(std::string("alice"))},
                     Interval(0, 7))}));
}

// An adjacency predicate routes (via the planner) to the sweep executor
// inside the query pipeline.
TEST_F(GoldenPipelineTest, AdjacencyPredicateJoinNode) {
  auto r2 = MakeRelation(&disk_, TestSchema(), {T(7, "lead", 0, 9)}, "r2");
  auto s2 = MakeRelation(&disk_, SSchema(), {S(7, "next", 10, 20)}, "s2");
  TEMPO_ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      RunSequencedQuery(
          QueryPlan::Join(QueryPlan::Scan(r2.get()), QueryPlan::Scan(s2.get()),
                          TemporalPredicate::Exactly(AllenRelation::kMeets)),
          &disk_));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual,
                             result.relation->ReadAll());
  EXPECT_TRUE(SameTupleMultiset(actual, {J(7, "lead", "next", 0, 20)}));
}

// Non-default predicates are outside snapshot reducibility: the snapshot
// oracle refuses rather than silently checking the wrong semantics.
TEST_F(GoldenPipelineTest, SnapshotOracleRefusesPredicateJoins) {
  QueryPlan plan =
      QueryPlan::Join(QueryPlan::Scan(r_.get()), QueryPlan::Scan(s_.get()),
                      TemporalPredicate::ContainJoin());
  Status st = CheckSnapshotReducible(plan.root(), {}, 0, 1);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(std::string(st.message()).find("snapshot reducible"),
            std::string::npos)
      << st.ToString();
}

TEST_F(GoldenPipelineTest, ExplainAnalyzeShowsOperatorTreeAndJoinKind) {
  ExplainOptions opts;
  opts.include_timing = false;
  {
    ExecContext ctx;
    TEMPO_ASSERT_OK_AND_ASSIGN(
        QueryResult result,
        RunSequencedQuery(QueryPlan::Join(QueryPlan::Scan(r_.get()),
                                          QueryPlan::Scan(s_.get()),
                                          JoinKind::kLeftOuter)
                              .Project({"key", "name"}),
                          &disk_, QueryOptions{}, &ctx));
    EXPECT_EQ(result.output_tuples, 8u);
    const std::string text = ExplainAnalyze(ctx, opts);
    EXPECT_NE(text.find("sequenced query"), std::string::npos) << text;
    EXPECT_NE(text.find("join kind: left-outer"), std::string::npos) << text;
    // The swapped second pass belongs to the full outer only.
    EXPECT_EQ(text.find("outer pass"), std::string::npos) << text;
  }
  {
    ExecContext ctx;
    TEMPO_ASSERT_OK_AND_ASSIGN(
        QueryResult result,
        RunSequencedQuery(QueryPlan::Join(QueryPlan::Scan(r_.get()),
                                          QueryPlan::Scan(s_.get()),
                                          JoinKind::kFullOuter),
                          &disk_, QueryOptions{}, &ctx));
    EXPECT_EQ(result.output_tuples, 11u);
    const std::string text = ExplainAnalyze(ctx, opts);
    EXPECT_NE(text.find("join kind: full-outer"), std::string::npos) << text;
    EXPECT_NE(text.find("outer pass"), std::string::npos) << text;
  }
}

}  // namespace
}  // namespace tempo
