// Tests for the minimal JSON substrate of the export layer: build/dump,
// strict parse, escaping, number round-trips, and the error paths the
// bench_compare CLI relies on to reject malformed reports.

#include <string>

#include <gtest/gtest.h>

#include "common/json.h"

namespace tempo {
namespace {

TEST(JsonTest, BuildAndDumpCompact) {
  Json doc = Json::Object();
  doc.Set("name", "fig4");
  doc.Set("version", 1);
  doc.Set("ok", true);
  doc.Set("missing", Json());
  Json& arr = doc.Set("xs", Json::Array());
  arr.Append(1.5);
  arr.Append(-2);
  EXPECT_EQ(doc.Dump(),
            R"({"name":"fig4","version":1,"ok":true,"missing":null,)"
            R"("xs":[1.5,-2]})");
}

TEST(JsonTest, DumpPrettyIsStable) {
  Json doc = Json::Object();
  doc.Set("a", 1);
  Json& nested = doc.Set("b", Json::Object());
  nested.Set("c", Json::Array());
  EXPECT_EQ(doc.Dump(2), "{\n  \"a\": 1,\n  \"b\": {\n    \"c\": []\n  }\n}");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndSetReplaces) {
  Json doc = Json::Object();
  doc.Set("z", 1);
  doc.Set("a", 2);
  doc.Set("z", 3);  // replaces in place, keeps position
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[0].second.AsNumber(), 3.0);
  EXPECT_EQ(doc.members()[1].first, "a");
}

TEST(JsonTest, FindAndNumberOr) {
  Json doc = Json::Object();
  doc.Set("x", 4.25);
  doc.Set("s", "not a number");
  ASSERT_NE(doc.Find("x"), nullptr);
  EXPECT_EQ(doc.Find("x")->AsNumber(), 4.25);
  EXPECT_EQ(doc.Find("nope"), nullptr);
  EXPECT_EQ(doc.NumberOr("x", -1.0), 4.25);
  EXPECT_EQ(doc.NumberOr("s", -1.0), -1.0);
  EXPECT_EQ(doc.NumberOr("nope", -1.0), -1.0);
}

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  Json doc = Json::Object();
  doc.Set("s", std::string("a\"b\\c\n\t\x01") + "z");
  std::string dumped = doc.Dump();
  EXPECT_NE(dumped.find("a\\\"b\\\\c\\n\\t\\u0001z"),
            std::string::npos)
      << dumped;
  // And the parser inverts it.
  auto back = Json::Parse(dumped);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Find("s")->AsString(), std::string("a\"b\\c\n\t\x01") + "z");
}

TEST(JsonTest, NumbersRoundTripExactly) {
  for (double v : {0.0, -0.0, 1.0, -2.5, 0.1, 1e-9, 1e30, 16777217.0,
                   123456789.123456789}) {
    std::string s = JsonNumberToString(v);
    auto parsed = Json::Parse(s);
    ASSERT_TRUE(parsed.ok()) << s;
    EXPECT_EQ(parsed->AsNumber(), v) << s;
  }
}

TEST(JsonTest, ParseDumpRoundTripOfNestedDocument) {
  const std::string text =
      R"({"schema_version":1,"bench":"x","config":{"scale":64},)"
      R"("points":[{"label":"a","values":{"k":1}},)"
      R"({"label":"b","values":{}}],"flags":[true,false,null]})";
  auto doc = Json::Parse(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Dump(), text);
}

TEST(JsonTest, ParseAcceptsWhitespaceAndUnicodeEscapes) {
  auto doc = Json::Parse(" { \"a\" : [ 1 , \"\\u0041\\u00e9\" ] } ");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("a")->elements()[1].AsString(), "A\xc3\xa9");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "{'a':1}", "nul",
        "1 2", "{\"a\":1} trailing", "\"unterminated", "{\"a\":1,}"}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << "accepted: " << bad;
  }
}

TEST(JsonTest, MutableFindAllowsInPlaceEdit) {
  Json doc = Json::Object();
  doc.Set("vals", Json::Object()).Set("x", 1);
  doc.Find("vals")->Set("x", 2.0);
  EXPECT_EQ(doc.Find("vals")->NumberOr("x", 0.0), 2.0);
}

}  // namespace
}  // namespace tempo
