// End-to-end integration: all executors over generated paper workloads,
// result-equivalence across algorithms, and the cost relationships the
// paper's evaluation section claims.

#include <gtest/gtest.h>

#include "core/partition_join.h"
#include "join/nested_loop_join.h"
#include "join/reference_join.h"
#include "join/sort_merge_join.h"
#include "test_util.h"
#include "workload/generator.h"

namespace tempo {
namespace {

struct Setup {
  Disk disk;
  std::unique_ptr<StoredRelation> r;
  std::unique_ptr<StoredRelation> s;
  NaturalJoinLayout layout;
};

std::unique_ptr<Setup> MakeSetup(uint64_t tuples, uint64_t long_lived,
                                 uint64_t keys, uint64_t seed) {
  auto setup = std::make_unique<Setup>();
  WorkloadSpec spec;
  spec.num_tuples = tuples;
  spec.num_long_lived = long_lived;
  spec.lifespan = 100000;
  spec.distinct_keys = keys;
  spec.tuple_bytes = 64;
  spec.seed = seed;
  auto r = GenerateRelation(&setup->disk, spec, "r");
  spec.seed = seed + 1000;
  auto s = GenerateRelation(&setup->disk, spec, "s");
  if (!r.ok() || !s.ok()) return nullptr;
  setup->r = *std::move(r);
  // The generator produces identical schemas; rename s's pad attribute so
  // only "key" joins.
  Schema s_schema({{"key", ValueType::kInt64}, {"spad", ValueType::kString}});
  setup->s = std::make_unique<StoredRelation>(&setup->disk, s_schema, "s2");
  auto tuples_s = (*s)->ReadAll();
  if (!tuples_s.ok()) return nullptr;
  for (const Tuple& t : *tuples_s) {
    if (!setup->s->Append(t).ok()) return nullptr;
  }
  if (!setup->s->Flush().ok()) return nullptr;
  setup->disk.DeleteFile((*s)->file_id()).ok();
  auto layout = DeriveNaturalJoinLayout(setup->r->schema(),
                                        setup->s->schema());
  if (!layout.ok()) return nullptr;
  setup->layout = *layout;
  return setup;
}

class AllExecutorsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllExecutorsTest, AgreeOnGeneratedWorkload) {
  auto setup = MakeSetup(3000, 600, 150, GetParam());
  ASSERT_NE(setup, nullptr);

  VtJoinOptions base;
  base.buffer_pages = 16;
  PartitionJoinOptions pj_options;
  pj_options.buffer_pages = 16;

  StoredRelation out_nl(&setup->disk, setup->layout.output, "out_nl");
  StoredRelation out_sm(&setup->disk, setup->layout.output, "out_sm");
  StoredRelation out_pj(&setup->disk, setup->layout.output, "out_pj");

  TEMPO_ASSERT_OK(
      NestedLoopVtJoin(setup->r.get(), setup->s.get(), &out_nl, base)
          .status());
  TEMPO_ASSERT_OK(
      SortMergeVtJoin(setup->r.get(), setup->s.get(), &out_sm, base)
          .status());
  TEMPO_ASSERT_OK(
      PartitionVtJoin(setup->r.get(), setup->s.get(), &out_pj, pj_options)
          .status());

  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> nl, out_nl.ReadAll());
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> sm, out_sm.ReadAll());
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> pj, out_pj.ReadAll());
  EXPECT_FALSE(nl.empty());
  EXPECT_TRUE(SameTupleMultiset(nl, sm));
  EXPECT_TRUE(SameTupleMultiset(nl, pj));

  // And all agree with the in-memory oracle.
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> r_all, setup->r->ReadAll());
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> s_all, setup->s->ReadAll());
  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> oracle,
      ReferenceValidTimeJoin(setup->r->schema(), r_all, setup->s->schema(),
                             s_all));
  EXPECT_TRUE(SameTupleMultiset(nl, oracle));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllExecutorsTest,
                         ::testing::Values(11, 22, 33));

// The paper's headline cost claims, at a laptop-scale rendition of the
// Section 4 configuration (ratios preserved).
TEST(CostShapeTest, PartitionBeatsSortMergeAndSmallMemoryNestedLoop) {
  auto setup = MakeSetup(20000, 2000, 600, 77);
  ASSERT_NE(setup, nullptr);
  const CostModel model = CostModel::Ratio(5.0);
  // Memory ~= 1/20 of the relation, the paper's "little memory" regime
  // (at 1 MiB : 32 MiB the paper's ratio is 1:32).
  uint32_t pages = setup->r->num_pages() / 20;

  auto run = [&](char algo) -> double {
    StoredRelation out(&setup->disk, setup->layout.output, "out");
    out.SetCharged(false).ok();
    setup->disk.accountant().Reset();
    StatusOr<JoinRunStats> stats = Status::Internal("");
    VtJoinOptions base;
    base.buffer_pages = pages;
    base.cost_model = model;
    PartitionJoinOptions pj;
    pj.buffer_pages = pages;
    pj.cost_model = model;
    switch (algo) {
      case 'n':
        stats = NestedLoopVtJoin(setup->r.get(), setup->s.get(), &out, base);
        break;
      case 's':
        stats = SortMergeVtJoin(setup->r.get(), setup->s.get(), &out, base);
        break;
      default:
        stats = PartitionVtJoin(setup->r.get(), setup->s.get(), &out, pj);
    }
    EXPECT_TRUE(stats.ok());
    setup->disk.DeleteFile(out.file_id()).ok();
    return stats.ok() ? stats->Cost(model) : 0.0;
  };

  double nl = run('n');
  double sm = run('s');
  double pj = run('p');
  // Section 4.5: "with adequate main memory our algorithm exhibits almost
  // uniformly better performance".
  EXPECT_LT(pj, sm);
  EXPECT_LT(pj, nl);
}

TEST(CostShapeTest, NestedLoopInsensitiveToLongLivedTuples) {
  const CostModel model = CostModel::Ratio(5.0);
  auto cost_at = [&](uint64_t long_lived) -> double {
    auto setup = MakeSetup(10000, long_lived, 300, 88);
    EXPECT_NE(setup, nullptr);
    StoredRelation out(&setup->disk, setup->layout.output, "out");
    out.SetCharged(false).ok();
    VtJoinOptions base;
    base.buffer_pages = setup->r->num_pages() / 4;
    auto stats =
        NestedLoopVtJoin(setup->r.get(), setup->s.get(), &out, base);
    EXPECT_TRUE(stats.ok());
    return stats->Cost(model);
  };
  EXPECT_DOUBLE_EQ(cost_at(0), cost_at(5000));
}

TEST(CostShapeTest, SortMergeGrowsWithLongLivedDensityUnderTightMemory) {
  const CostModel model = CostModel::Ratio(5.0);
  auto cost_at = [&](uint64_t long_lived) -> double {
    auto setup = MakeSetup(20000, long_lived, 300, 99);
    EXPECT_NE(setup, nullptr);
    StoredRelation out(&setup->disk, setup->layout.output, "out");
    out.SetCharged(false).ok();
    VtJoinOptions base;
    base.buffer_pages = 12;
    base.cost_model = model;
    auto stats = SortMergeVtJoin(setup->r.get(), setup->s.get(), &out, base);
    EXPECT_TRUE(stats.ok());
    return stats->Cost(model);
  };
  EXPECT_GT(cost_at(10000), cost_at(0) * 1.05);
}

TEST(CostShapeTest, PartitionJoinImprovesWithMemory) {
  auto setup = MakeSetup(20000, 2000, 600, 111);
  ASSERT_NE(setup, nullptr);
  const CostModel model = CostModel::Ratio(5.0);
  auto run_at = [&](uint32_t pages) -> double {
    StoredRelation out(&setup->disk, setup->layout.output, "out");
    out.SetCharged(false).ok();
    PartitionJoinOptions pj;
    pj.buffer_pages = pages;
    pj.cost_model = model;
    auto stats = PartitionVtJoin(setup->r.get(), setup->s.get(), &out, pj);
    EXPECT_TRUE(stats.ok());
    setup->disk.DeleteFile(out.file_id()).ok();
    return stats->Cost(model);
  };
  uint32_t n = setup->r->num_pages();
  EXPECT_LE(run_at(n * 2), run_at(n / 16));
}

}  // namespace
}  // namespace tempo
