// CSV interchange and relation persistence.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "relation/csv.h"
#include "storage/relation_io.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

TEST(CsvTest, RoundTripSimple) {
  std::vector<Tuple> tuples{T(1, "ada", 0, 120), T(2, "grace", 50, 300)};
  std::string csv = ToCsv(TestSchema(), tuples);
  EXPECT_NE(csv.find("key,name,__vs,__ve"), std::string::npos);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto back, FromCsv(TestSchema(), csv));
  EXPECT_EQ(back, tuples);
}

TEST(CsvTest, QuotingSurvivesCommasQuotesAndNewlines) {
  std::vector<Tuple> tuples{
      T(1, "a,b", 0, 1),
      T(2, "say \"hi\"", 2, 3),
      T(3, "line1\nline2", 4, 5),
  };
  std::string csv = ToCsv(TestSchema(), tuples);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto back, FromCsv(TestSchema(), csv));
  EXPECT_EQ(back, tuples);
}

TEST(CsvTest, NullRoundTrip) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  std::vector<Tuple> tuples{
      Tuple({Value(int64_t{1}), Value::Null()}, Interval(0, 1)),
      Tuple({Value::Null(), Value("NULL")}, Interval(2, 3)),  // quoted "NULL"
  };
  std::string csv = ToCsv(schema, tuples);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto back, FromCsv(schema, csv));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back[0].value(1).is_null());
  EXPECT_TRUE(back[1].value(0).is_null());
  EXPECT_EQ(back[1].value(1).AsString(), "NULL");  // literal string survives
}

TEST(CsvTest, DoubleRoundTrip) {
  Schema schema({{"x", ValueType::kDouble}});
  std::vector<Tuple> tuples{Tuple({Value(0.1)}, Interval(0, 1)),
                            Tuple({Value(-3.5e300)}, Interval(1, 2))};
  std::string csv = ToCsv(schema, tuples);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto back, FromCsv(schema, csv));
  EXPECT_EQ(back, tuples);
}

TEST(CsvTest, DoubleExactRoundTripHardCases) {
  Schema schema({{"x", ValueType::kDouble}});
  const std::vector<double> cases = {
      0.0,
      -0.0,  // sign must survive, not just numeric equality
      0.1,
      1.0 / 3.0,
      3.141592653589793,
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      -3.5e300,
      123456789012345678.0,
      6.02214076e23,
      -1.0000000000000002,  // one ulp above -1
  };
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < cases.size(); ++i) {
    tuples.push_back(Tuple({Value(cases[i])},
                           Interval(static_cast<Chronon>(i),
                                    static_cast<Chronon>(i) + 1)));
  }
  tuples.push_back(Tuple({Value::Null()}, Interval(100, 101)));
  std::string csv = ToCsv(schema, tuples);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto back, FromCsv(schema, csv));
  ASSERT_EQ(back.size(), tuples.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    ASSERT_FALSE(back[i].value(0).is_null()) << "case " << i;
    double got = back[i].value(0).AsDouble();
    // Bit-exact comparison: catches -0.0 vs 0.0 and one-ulp drift that
    // a double== comparison would miss.
    uint64_t want_bits, got_bits;
    std::memcpy(&want_bits, &cases[i], sizeof(want_bits));
    std::memcpy(&got_bits, &got, sizeof(got_bits));
    EXPECT_EQ(got_bits, want_bits)
        << "case " << i << ": " << cases[i] << " came back as " << got;
  }
  EXPECT_TRUE(back.back().value(0).is_null());
}

TEST(CsvTest, HeaderMismatchRejected) {
  EXPECT_FALSE(FromCsv(TestSchema(), "wrong,name,__vs,__ve\n").ok());
  EXPECT_FALSE(FromCsv(TestSchema(), "key,name,__vs\n").ok());
  EXPECT_FALSE(FromCsv(TestSchema(), "key,name,__ve,__vs\n").ok());
}

TEST(CsvTest, MalformedRowsRejectedWithLineNumbers) {
  std::string header = "key,name,__vs,__ve\n";
  auto expect_bad = [&](const std::string& row, const char* what) {
    auto result = FromCsv(TestSchema(), header + row);
    EXPECT_FALSE(result.ok()) << what;
    EXPECT_NE(result.status().message().find("line 2"),
              std::string_view::npos)
        << result.status().ToString();
  };
  expect_bad("x,\"a\",0,1\n", "non-integer key");
  expect_bad("1,\"a\",zero,1\n", "non-integer vs");
  expect_bad("1,\"a\",5,1\n", "inverted interval");
  expect_bad("1,\"a\",0\n", "missing field");
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  EXPECT_FALSE(
      FromCsv(TestSchema(), "key,name,__vs,__ve\n1,\"oops,0,1\n").ok());
}

TEST(CsvTest, BlankLinesIgnored) {
  std::string csv = "key,name,__vs,__ve\n1,\"a\",0,1\n\n2,\"b\",2,3\n";
  TEMPO_ASSERT_OK_AND_ASSIGN(auto back, FromCsv(TestSchema(), csv));
  EXPECT_EQ(back.size(), 2u);
}

TEST(CsvTest, FileRoundTrip) {
  Random rng(1);
  std::vector<Tuple> tuples = RandomTuples(rng, 500, 20, 1000, 0.3);
  std::string path = ::testing::TempDir() + "/tempo_csv_test.csv";
  TEMPO_ASSERT_OK(ExportCsvFile(TestSchema(), tuples, path));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto back, ImportCsvFile(TestSchema(), path));
  EXPECT_EQ(back, tuples);
  std::remove(path.c_str());
}

TEST(CsvTest, ImportMissingFileFails) {
  EXPECT_EQ(ImportCsvFile(TestSchema(), "/nonexistent/nope.csv")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(RelationIoTest, SaveLoadRoundTrip) {
  Disk disk;
  Random rng(2);
  std::vector<Tuple> tuples = RandomTuples(rng, 2000, 50, 5000, 0.2);
  auto rel = MakeRelation(&disk, TestSchema(), tuples, "r");
  std::string path = ::testing::TempDir() + "/tempo_rel_test.bin";
  TEMPO_ASSERT_OK(SaveRelation(rel.get(), path));

  Disk other;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto loaded, LoadRelation(&other, path, "r2"));
  EXPECT_EQ(loaded->schema(), rel->schema());
  EXPECT_EQ(loaded->num_tuples(), rel->num_tuples());
  TEMPO_ASSERT_OK_AND_ASSIGN(auto back, loaded->ReadAll());
  EXPECT_EQ(back, tuples);
  std::remove(path.c_str());
}

TEST(RelationIoTest, SaveRequiresFlush) {
  Disk disk;
  StoredRelation rel(&disk, TestSchema(), "r");
  TEMPO_ASSERT_OK(rel.Append(T(1, "a", 0, 1)));
  EXPECT_EQ(SaveRelation(&rel, "/tmp/never-written.bin").code(),
            StatusCode::kFailedPrecondition);
}

TEST(RelationIoTest, LoadRejectsCorruptImages) {
  Disk disk;
  auto rel = MakeRelation(&disk, TestSchema(), {T(1, "a", 0, 1)}, "r");
  std::string path = ::testing::TempDir() + "/tempo_rel_corrupt.bin";
  TEMPO_ASSERT_OK(SaveRelation(rel.get(), path));

  // Truncate the image at various points.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string data;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, got);
  std::fclose(f);

  Disk other;
  for (size_t cut : {size_t{0}, size_t{5}, data.size() / 2,
                     data.size() - 1}) {
    std::FILE* w = std::fopen(path.c_str(), "wb");
    ASSERT_NE(w, nullptr);
    std::fwrite(data.data(), 1, cut, w);
    std::fclose(w);
    auto result = LoadRelation(&other, path, "broken");
    EXPECT_FALSE(result.ok()) << "cut " << cut;
  }
  // Bad magic.
  {
    std::string bad = data;
    bad[0] = 'X';
    std::FILE* w = std::fopen(path.c_str(), "wb");
    std::fwrite(bad.data(), 1, bad.size(), w);
    std::fclose(w);
    EXPECT_FALSE(LoadRelation(&other, path, "broken").ok());
  }
  std::remove(path.c_str());
}

TEST(RelationIoTest, EmptyRelation) {
  Disk disk;
  auto rel = MakeRelation(&disk, TestSchema(), {}, "empty");
  std::string path = ::testing::TempDir() + "/tempo_rel_empty.bin";
  TEMPO_ASSERT_OK(SaveRelation(rel.get(), path));
  Disk other;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto loaded, LoadRelation(&other, path, "e2"));
  EXPECT_EQ(loaded->num_tuples(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tempo
