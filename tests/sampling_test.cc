#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "sampling/kolmogorov.h"
#include "sampling/relation_sampler.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

TEST(KolmogorovTest, DeviationShrinksWithSamples) {
  EXPECT_DOUBLE_EQ(KolmogorovDeviation(100), 1.63 / 10.0);
  EXPECT_GT(KolmogorovDeviation(100), KolmogorovDeviation(400));
}

TEST(KolmogorovTest, RequiredSamplesMatchesPaperFormula) {
  // m >= ((1.63 * |r|) / errorSize)^2.
  EXPECT_EQ(RequiredKolmogorovSamples(8192, 8192),
            static_cast<uint64_t>(std::ceil(1.63 * 1.63)));
  // errorSize = |r|/8: m >= (1.63*8)^2 = 170.0... -> 171.
  EXPECT_EQ(RequiredKolmogorovSamples(8192, 1024), 171u);
}

TEST(KolmogorovTest, RequiredSamplesDependsOnlyOnRatio) {
  // Footnote 2: the bound depends only on |r|/errorSize.
  EXPECT_EQ(RequiredKolmogorovSamples(8192, 1024),
            RequiredKolmogorovSamples(16384, 2048));
  EXPECT_EQ(RequiredKolmogorovSamples(100, 10),
            RequiredKolmogorovSamples(1000, 100));
}

TEST(KolmogorovTest, TighterConfidenceNeedsMoreSamples) {
  EXPECT_LT(RequiredKolmogorovSamples(8192, 512, KolmogorovCritical::k90),
            RequiredKolmogorovSamples(8192, 512, KolmogorovCritical::k99));
}

TEST(KolmogorovTest, MinimumOneSample) {
  EXPECT_GE(RequiredKolmogorovSamples(1, 1000000), 1u);
}

class RelationSamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<Tuple> tuples;
    for (int i = 0; i < 600; ++i) {
      tuples.push_back(T(i, "some-padding-text", i * 10, i * 10 + 5));
    }
    rel_ = MakeRelation(&disk_, TestSchema(), tuples, "r");
    disk_.accountant().Reset();
  }

  Disk disk_;
  std::unique_ptr<StoredRelation> rel_;
};

TEST_F(RelationSamplerTest, DrawsRequestedCount) {
  Random rng(1);
  RelationSampler sampler(rel_.get(), &rng);
  TEMPO_ASSERT_OK_AND_ASSIGN(uint64_t drawn, sampler.DrawRandom(50));
  EXPECT_EQ(drawn, 50u);
  EXPECT_EQ(sampler.samples().size(), 50u);
}

TEST_F(RelationSamplerTest, SamplesAreDistinctTuples) {
  Random rng(2);
  RelationSampler sampler(rel_.get(), &rng);
  TEMPO_ASSERT_OK(sampler.DrawRandom(600).status());
  // All 600 distinct tuples drawn: intervals are unique by construction.
  std::set<Chronon> starts;
  for (const Interval& iv : sampler.samples()) starts.insert(iv.start());
  EXPECT_EQ(starts.size(), 600u);
}

TEST_F(RelationSamplerTest, DrawClampsToPopulation) {
  Random rng(3);
  RelationSampler sampler(rel_.get(), &rng);
  TEMPO_ASSERT_OK_AND_ASSIGN(uint64_t drawn, sampler.DrawRandom(10000));
  EXPECT_EQ(drawn, 600u);
  TEMPO_ASSERT_OK_AND_ASSIGN(uint64_t more, sampler.DrawRandom(5));
  EXPECT_EQ(more, 0u);
}

TEST_F(RelationSamplerTest, RandomDrawsChargeRandomReads) {
  Random rng(4);
  RelationSampler sampler(rel_.get(), &rng);
  TEMPO_ASSERT_OK(sampler.DrawRandom(20).status());
  // Each sample reads one page; nearly all should be random (some may
  // land on the previously read page and count sequential).
  EXPECT_EQ(disk_.accountant().stats().total_ops(), 20u);
  EXPECT_GT(disk_.accountant().stats().random_reads, 10u);
}

TEST_F(RelationSamplerTest, ScanMakesFurtherDrawsFree) {
  Random rng(5);
  RelationSampler sampler(rel_.get(), &rng);
  TEMPO_ASSERT_OK(sampler.SwitchToScan());
  uint64_t after_scan = disk_.accountant().stats().total_ops();
  EXPECT_EQ(after_scan, rel_->num_pages());
  TEMPO_ASSERT_OK(sampler.DrawRandom(300).status());
  EXPECT_EQ(disk_.accountant().stats().total_ops(), after_scan);
  EXPECT_EQ(sampler.samples().size(), 300u);
}

TEST_F(RelationSamplerTest, ScanIsIdempotent) {
  Random rng(6);
  RelationSampler sampler(rel_.get(), &rng);
  TEMPO_ASSERT_OK(sampler.SwitchToScan());
  uint64_t ops = disk_.accountant().stats().total_ops();
  TEMPO_ASSERT_OK(sampler.SwitchToScan());
  EXPECT_EQ(disk_.accountant().stats().total_ops(), ops);
}

TEST_F(RelationSamplerTest, CostEstimates) {
  Random rng(7);
  RelationSampler sampler(rel_.get(), &rng);
  EXPECT_DOUBLE_EQ(sampler.EstimateDrawCost(10, 5.0), 50.0);
  double scan = sampler.ScanCost(5.0);
  EXPECT_DOUBLE_EQ(scan, 5.0 + (rel_->num_pages() - 1));
  TEMPO_ASSERT_OK(sampler.SwitchToScan());
  EXPECT_DOUBLE_EQ(sampler.EstimateDrawCost(10, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(sampler.ScanCost(5.0), 0.0);
}

TEST_F(RelationSamplerTest, SamplesRoughlyUniformOverTime) {
  Random rng(8);
  RelationSampler sampler(rel_.get(), &rng);
  TEMPO_ASSERT_OK(sampler.DrawRandom(300).status());
  // Tuples have starts i*10 for i in [0,600): half should start below the
  // median 3000, within generous bounds.
  int below = 0;
  for (const Interval& iv : sampler.samples()) {
    if (iv.start() < 3000) ++below;
  }
  EXPECT_GT(below, 100);
  EXPECT_LT(below, 200);
}

}  // namespace
}  // namespace tempo
