#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "algebra/temporal_joins.h"
#include "join/reference_join.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"dept", ValueType::kString}});
}

Tuple S(int64_t key, const std::string& dept, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(dept)}, Interval(vs, ve));
}

// ---------------------------------------------------------------------
// Coalesce
// ---------------------------------------------------------------------

TEST(CoalesceTest, MergesAdjacentValueEquivalentTuples) {
  std::vector<Tuple> in{T(1, "a", 0, 4), T(1, "a", 5, 9), T(1, "a", 20, 25)};
  std::vector<Tuple> out = Coalesce(in);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].interval(), Interval(0, 9));
  EXPECT_EQ(out[1].interval(), Interval(20, 25));
}

TEST(CoalesceTest, MergesOverlapping) {
  std::vector<Tuple> in{T(1, "a", 0, 10), T(1, "a", 5, 20)};
  std::vector<Tuple> out = Coalesce(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].interval(), Interval(0, 20));
}

TEST(CoalesceTest, KeepsDistinctValuesApart) {
  std::vector<Tuple> in{T(1, "a", 0, 10), T(1, "b", 5, 20), T(2, "a", 0, 10)};
  std::vector<Tuple> out = Coalesce(in);
  EXPECT_EQ(out.size(), 3u);
}

TEST(CoalesceTest, Idempotent) {
  Random rng(3);
  std::vector<Tuple> in = RandomTuples(rng, 200, 5, 100, 0.4);
  std::vector<Tuple> once = Coalesce(in);
  std::vector<Tuple> twice = Coalesce(once);
  EXPECT_TRUE(SameTupleMultiset(once, twice));
}

TEST(CoalesceTest, PreservesSnapshots) {
  // Snapshot equivalence: the timeslice at every chronon is unchanged.
  Random rng(4);
  std::vector<Tuple> in = RandomTuples(rng, 100, 4, 60, 0.5);
  std::vector<Tuple> out = Coalesce(in);
  for (Chronon t = 0; t < 60; t += 7) {
    // Compare value multisets at time t (duplicates collapse under
    // coalescing, so compare *sets* of values).
    auto values_at = [t](const std::vector<Tuple>& rel) {
      std::set<std::string> vals;
      for (const Tuple& tup : Timeslice(rel, t)) {
        std::string key;
        for (const Value& v : tup.values()) key += v.ToString() + "|";
        vals.insert(key);
      }
      return vals;
    };
    EXPECT_EQ(values_at(in), values_at(out)) << "at chronon " << t;
  }
}

// ---------------------------------------------------------------------
// Timeslice / selection / projection
// ---------------------------------------------------------------------

TEST(TimesliceTest, PicksValidTuples) {
  std::vector<Tuple> in{T(1, "a", 0, 5), T(2, "b", 3, 8), T(3, "c", 6, 9)};
  std::vector<Tuple> out = Timeslice(in, 4);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].interval(), Interval::At(4));
  EXPECT_EQ(out[0].value(0).AsInt64(), 1);
  EXPECT_EQ(out[1].value(0).AsInt64(), 2);
}

TEST(SelectAllenTest, FiltersByRelation) {
  std::vector<Tuple> in{T(1, "a", 2, 4), T(2, "b", 0, 10), T(3, "c", 12, 15)};
  Interval q(0, 10);
  std::vector<Tuple> during = SelectAllen(in, AllenRelation::kDuring, q);
  ASSERT_EQ(during.size(), 1u);
  EXPECT_EQ(during[0].value(0).AsInt64(), 1);
  std::vector<Tuple> equal = SelectAllen(in, AllenRelation::kEquals, q);
  ASSERT_EQ(equal.size(), 1u);
  EXPECT_EQ(equal[0].value(0).AsInt64(), 2);
  EXPECT_EQ(SelectAllen(in, AllenRelation::kAfter, q).size(), 1u);
}

TEST(SelectTest, ArbitraryPredicate) {
  std::vector<Tuple> in{T(1, "a", 0, 1), T(5, "b", 0, 1)};
  auto out = Select(in, [](const Tuple& t) {
    return t.value(0).AsInt64() > 2;
  });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value(0).AsInt64(), 5);
}

TEST(ProjectTest, DropsAttributesAndCoalesces) {
  // Distinct names with the same key become value-equivalent after
  // projecting to {key} and must merge.
  std::vector<Tuple> in{T(1, "alice", 0, 4), T(1, "bob", 5, 9)};
  TEMPO_ASSERT_OK_AND_ASSIGN(auto result, Project(TestSchema(), in, {0}));
  EXPECT_EQ(result.first.ToString(), "(key:int64)");
  ASSERT_EQ(result.second.size(), 1u);
  EXPECT_EQ(result.second[0].interval(), Interval(0, 9));
}

TEST(ProjectTest, OutOfRangeFails) {
  EXPECT_FALSE(Project(TestSchema(), {}, {7}).ok());
}

TEST(VtUnionTest, CoalescesAcrossInputs) {
  std::vector<Tuple> r{T(1, "a", 0, 4)};
  std::vector<Tuple> s{T(1, "a", 5, 9)};
  std::vector<Tuple> out = VtUnion(r, s);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].interval(), Interval(0, 9));
}

TEST(VtDifferenceTest, SubtractsCoveredTime) {
  std::vector<Tuple> r{T(1, "a", 0, 10)};
  std::vector<Tuple> s{T(1, "a", 3, 5)};
  std::vector<Tuple> out = VtDifference(r, s);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].interval(), Interval(0, 2));
  EXPECT_EQ(out[1].interval(), Interval(6, 10));
}

TEST(VtDifferenceTest, DifferentValuesUntouched) {
  std::vector<Tuple> r{T(1, "a", 0, 10)};
  std::vector<Tuple> s{T(1, "b", 0, 10)};
  std::vector<Tuple> out = VtDifference(r, s);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].interval(), Interval(0, 10));
}

// ---------------------------------------------------------------------
// Temporal join family through the partition framework
// ---------------------------------------------------------------------

class PredicateJoinTest
    : public ::testing::TestWithParam<IntervalJoinPredicate> {};

TEST_P(PredicateJoinTest, MatchesInMemoryOracle) {
  IntervalJoinPredicate pred = GetParam();
  Random rng(55);
  std::vector<Tuple> r_tuples = RandomTuples(rng, 300, 20, 400, 0.3);
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 300, 20, 400, 0.3)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), t.value(1).AsString(),
                         t.interval().start(), t.interval().end()));
  }

  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  StoredRelation out(&disk, layout.output, "out");
  PartitionJoinOptions options;
  options.buffer_pages = 12;
  TEMPO_ASSERT_OK(
      PartitionTemporalJoin(r.get(), s.get(), &out, pred, options).status());

  // Oracle: nested loops with the predicate.
  std::vector<Tuple> expected;
  for (const Tuple& x : r_tuples) {
    for (const Tuple& y : s_tuples) {
      if (!x.EqualOnAttrs(layout.r_join_attrs, layout.s_join_attrs, y)) {
        continue;
      }
      if (!EvalIntervalPredicate(pred, x.interval(), y.interval())) continue;
      auto common = Overlap(x.interval(), y.interval());
      ASSERT_TRUE(common.has_value());
      expected.push_back(MakeJoinTuple(layout, x, y, *common));
    }
  }
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
  EXPECT_TRUE(SameTupleMultiset(actual, expected))
      << IntervalJoinPredicateName(pred) << ": got " << actual.size()
      << ", want " << expected.size();
}

INSTANTIATE_TEST_SUITE_P(
    Predicates, PredicateJoinTest,
    ::testing::Values(IntervalJoinPredicate::kOverlap,
                      IntervalJoinPredicate::kContains,
                      IntervalJoinPredicate::kContainedIn,
                      IntervalJoinPredicate::kEqual),
    [](const ::testing::TestParamInfo<IntervalJoinPredicate>& info) {
      std::string name = IntervalJoinPredicateName(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(ContainSemiJoinTest, KeepsContainingTuples) {
  std::vector<Tuple> r{T(1, "a", 0, 10), T(1, "b", 2, 3), T(2, "c", 0, 10)};
  std::vector<Tuple> s{S(1, "x", 4, 6)};
  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      ContainSemiJoin(TestSchema(), r, SSchema(), s));
  // Only (1,a) contains [4,6] with a matching key; (2,c) contains it but
  // the key differs; (1,b) doesn't contain it.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value(1).AsString(), "a");
}

// ---------------------------------------------------------------------
// TE-outerjoin / event join
// ---------------------------------------------------------------------

TEST(TEOuterJoinTest, PadsUnmatchedStretchesWithNulls) {
  std::vector<Tuple> r{T(1, "a", 0, 10)};
  std::vector<Tuple> s{S(1, "x", 3, 5)};
  TEMPO_ASSERT_OK_AND_ASSIGN(auto result,
                             TEOuterJoin(TestSchema(), r, SSchema(), s));
  // One match on [3,5], NULL-padded stretches [0,2] and [6,10].
  std::vector<Tuple>& out = result.second;
  ASSERT_EQ(out.size(), 3u);
  int matches = 0, nulls = 0;
  for (const Tuple& t : out) {
    if (t.value(2).is_null()) {
      ++nulls;
      EXPECT_TRUE(t.interval() == Interval(0, 2) ||
                  t.interval() == Interval(6, 10))
          << t.ToString();
      EXPECT_EQ(t.value(0).AsInt64(), 1);
      EXPECT_EQ(t.value(1).AsString(), "a");
    } else {
      ++matches;
      EXPECT_EQ(t.interval(), Interval(3, 5));
      EXPECT_EQ(t.value(2).AsString(), "x");
    }
  }
  EXPECT_EQ(matches, 1);
  EXPECT_EQ(nulls, 2);
}

TEST(TEOuterJoinTest, FullyCoveredTupleHasNoPadding) {
  std::vector<Tuple> r{T(1, "a", 3, 5)};
  std::vector<Tuple> s{S(1, "x", 0, 10)};
  TEMPO_ASSERT_OK_AND_ASSIGN(auto result,
                             TEOuterJoin(TestSchema(), r, SSchema(), s));
  ASSERT_EQ(result.second.size(), 1u);
  EXPECT_FALSE(result.second[0].value(2).is_null());
}

TEST(TEOuterJoinTest, NoMatchMeansFullPadding) {
  std::vector<Tuple> r{T(1, "a", 0, 10)};
  std::vector<Tuple> s{S(2, "x", 0, 10)};
  TEMPO_ASSERT_OK_AND_ASSIGN(auto result,
                             TEOuterJoin(TestSchema(), r, SSchema(), s));
  ASSERT_EQ(result.second.size(), 1u);
  EXPECT_TRUE(result.second[0].value(2).is_null());
  EXPECT_EQ(result.second[0].interval(), Interval(0, 10));
}

TEST(TEOuterJoinTest, CoverageInvariant) {
  // For every r tuple, the output intervals carrying its values exactly
  // tile its validity interval (match stretches + padding).
  Random rng(66);
  std::vector<Tuple> r_tuples = RandomTuples(rng, 60, 6, 80, 0.4);
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 60, 6, 80, 0.4)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), t.value(1).AsString(),
                         t.interval().start(), t.interval().end()));
  }
  TEMPO_ASSERT_OK_AND_ASSIGN(
      auto result, TEOuterJoin(TestSchema(), r_tuples, SSchema(), s_tuples));
  // Coverage check per r tuple via chronon counting.
  for (const Tuple& x : r_tuples) {
    for (Chronon t = x.interval().start(); t <= x.interval().end(); ++t) {
      // Count output tuples with x's key+name valid at t: padding is
      // exactly where no s tuple overlaps; matches elsewhere. Either way
      // at least one output tuple must cover chronon t.
      bool covered = false;
      for (const Tuple& z : result.second) {
        if (z.value(0) == x.value(0) && z.value(1) == x.value(1) &&
            z.interval().Contains(t)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << x.ToString() << " at " << t;
    }
  }
}

TEST(EventJoinTest, PadsBothSides) {
  std::vector<Tuple> r{T(1, "a", 0, 4)};
  std::vector<Tuple> s{S(1, "x", 3, 8)};
  TEMPO_ASSERT_OK_AND_ASSIGN(auto result,
                             EventJoin(TestSchema(), r, SSchema(), s));
  // Match [3,4]; r-padding [0,2]; s-padding [5,8] with NULL name.
  ASSERT_EQ(result.second.size(), 3u);
  int r_pads = 0, s_pads = 0, matches = 0;
  for (const Tuple& t : result.second) {
    if (t.value(2).is_null()) {
      ++r_pads;
      EXPECT_EQ(t.interval(), Interval(0, 2));
    } else if (t.value(1).is_null()) {
      ++s_pads;
      EXPECT_EQ(t.interval(), Interval(5, 8));
      EXPECT_EQ(t.value(2).AsString(), "x");
    } else {
      ++matches;
      EXPECT_EQ(t.interval(), Interval(3, 4));
    }
  }
  EXPECT_EQ(r_pads, 1);
  EXPECT_EQ(s_pads, 1);
  EXPECT_EQ(matches, 1);
}

TEST(NullValueTest, SerializationRoundTripWithNulls) {
  Schema schema({{"a", ValueType::kInt64},
                 {"b", ValueType::kString},
                 {"c", ValueType::kDouble}});
  Tuple t({Value(int64_t{5}), Value::Null(), Value::Null()}, Interval(0, 3));
  std::string buf;
  t.SerializeTo(schema, &buf);
  EXPECT_EQ(buf.size(), t.SerializedSize(schema));
  TEMPO_ASSERT_OK_AND_ASSIGN(Tuple back,
                             Tuple::Deserialize(schema, buf.data(), buf.size()));
  EXPECT_EQ(back, t);
  EXPECT_TRUE(back.value(1).is_null());
  EXPECT_TRUE(back.value(2).is_null());
  EXPECT_EQ(back.value(0).AsInt64(), 5);
}

TEST(NullValueTest, NullEqualityAndPrinting) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_FALSE(Value(int64_t{0}).is_null());
}

}  // namespace
}  // namespace tempo
