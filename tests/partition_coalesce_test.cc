#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "core/partition_coalesce.h"
#include "join/reference_join.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

TEST(PartitionCoalesceTest, MergesAcrossPartitionBoundaries) {
  Disk disk;
  // Two abutting fragments of the same fact, plus noise, forced into
  // several partitions: the fragments must merge even when they land in
  // different partitions.
  std::vector<Tuple> tuples{T(1, "a", 0, 49),   T(1, "a", 50, 99),
                            T(2, "b", 10, 20),  T(2, "b", 60, 70),
                            T(1, "a", 200, 220)};
  auto in = MakeRelation(&disk, TestSchema(), tuples, "in");
  StoredRelation out(&disk, TestSchema(), "out");
  PartitionJoinOptions options;
  options.buffer_pages = 8;
  options.forced_num_partitions = 3;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             PartitionCoalesce(in.get(), &out, options));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> result, out.ReadAll());
  std::vector<Tuple> expected = Coalesce(tuples);
  EXPECT_TRUE(SameTupleMultiset(result, expected));
  EXPECT_EQ(stats.output_tuples, expected.size());
}

TEST(PartitionCoalesceTest, SinglePartitionPath) {
  Disk disk;
  std::vector<Tuple> tuples{T(1, "a", 0, 5), T(1, "a", 6, 10)};
  auto in = MakeRelation(&disk, TestSchema(), tuples, "in");
  StoredRelation out(&disk, TestSchema(), "out");
  PartitionJoinOptions options;
  options.buffer_pages = 1024;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             PartitionCoalesce(in.get(), &out, options));
  EXPECT_EQ(stats.Get(Metric::kPartitions), 1.0);
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> result, out.ReadAll());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].interval(), Interval(0, 10));
}

TEST(PartitionCoalesceTest, SchemaMismatchRejected) {
  Disk disk;
  auto in = MakeRelation(&disk, TestSchema(), {}, "in");
  Schema other({{"x", ValueType::kInt64}});
  StoredRelation out(&disk, other, "out");
  PartitionJoinOptions options;
  EXPECT_FALSE(PartitionCoalesce(in.get(), &out, options).ok());
}

struct CoalesceCase {
  uint32_t buffer_pages;
  uint32_t forced_partitions;
  double long_lived_prob;
  uint64_t seed;
};

class PartitionCoalesceOracleTest
    : public ::testing::TestWithParam<CoalesceCase> {};

TEST_P(PartitionCoalesceOracleTest, MatchesInMemoryCoalesce) {
  const CoalesceCase& c = GetParam();
  Random rng(c.seed);
  // Few distinct values and a dense chronon range so runs frequently abut
  // and span partition boundaries.
  std::vector<Tuple> tuples;
  for (const Tuple& t : RandomTuples(rng, 600, 8, 200, c.long_lived_prob)) {
    tuples.push_back(T(t.value(0).AsInt64(), "v", t.interval().start(),
                       t.interval().end()));
  }
  Disk disk;
  auto in = MakeRelation(&disk, TestSchema(), tuples, "in");
  StoredRelation out(&disk, TestSchema(), "out");
  PartitionJoinOptions options;
  options.buffer_pages = c.buffer_pages;
  options.forced_num_partitions = c.forced_partitions;
  options.seed = c.seed;
  TEMPO_ASSERT_OK(PartitionCoalesce(in.get(), &out, options).status());
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> result, out.ReadAll());
  std::vector<Tuple> expected = Coalesce(tuples);
  EXPECT_TRUE(SameTupleMultiset(result, expected))
      << "got " << result.size() << ", want " << expected.size();
  // Output must itself be coalesced (idempotence).
  EXPECT_TRUE(SameTupleMultiset(Coalesce(result), result));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionCoalesceOracleTest,
    ::testing::Values(CoalesceCase{6, 0, 0.1, 1}, CoalesceCase{6, 0, 0.6, 2},
                      CoalesceCase{8, 5, 0.3, 3}, CoalesceCase{12, 9, 0.0, 4},
                      CoalesceCase{16, 2, 0.5, 5},
                      CoalesceCase{512, 0, 0.3, 6}),
    [](const ::testing::TestParamInfo<CoalesceCase>& info) {
      const CoalesceCase& c = info.param;
      return "b" + std::to_string(c.buffer_pages) + "_f" +
             std::to_string(c.forced_partitions) + "_ll" +
             std::to_string(static_cast<int>(c.long_lived_prob * 10)) +
             "_s" + std::to_string(c.seed);
    });

}  // namespace
}  // namespace tempo
