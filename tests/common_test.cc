#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/format.h"
#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"
#include "test_util.h"

namespace tempo {
namespace {

// ---------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "page 7");
  EXPECT_EQ(s.ToString(), "NotFound: page 7");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotSupported("").code(), StatusCode::kNotSupported);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Status FailsAtTwo(int x) {
  if (x == 2) return Status::InvalidArgument("two");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  TEMPO_RETURN_IF_ERROR(FailsAtTwo(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(2).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

StatusOr<int> DoublePositive(int x) {
  TEMPO_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  EXPECT_EQ(ok.value_or(-1), 21);

  StatusOr<int> err = ParsePositive(-5);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*DoublePositive(4), 8);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> p = std::make_unique<int>(7);
  ASSERT_TRUE(p.ok());
  std::unique_ptr<int> owned = std::move(p).value();
  EXPECT_EQ(*owned, 7);
}

// ---------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------

TEST(RandomTest, DeterministicFromSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformStaysInBounds) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Random rng(17);
  auto sample = rng.SampleWithoutReplacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (uint64_t v : sample) EXPECT_LT(v, 1000u);
}

TEST(RandomTest, SampleWithoutReplacementFullPopulation) {
  Random rng(19);
  auto sample = rng.SampleWithoutReplacement(50, 50);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(RandomTest, ShufflePreservesElements) {
  Random rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Random rng(29);
  ZipfGenerator zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[zipf.Next(rng)];
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 600);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Random rng(31);
  ZipfGenerator zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Next(rng)];
  EXPECT_GT(counts[0], counts[10] * 3);
  EXPECT_GT(counts[0], counts[99] * 20);
}

// ---------------------------------------------------------------------
// Format helpers
// ---------------------------------------------------------------------

TEST(FormatTest, Commas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(4096), "4 KiB");
  EXPECT_EQ(FormatBytes(32ull * 1024 * 1024), "32 MiB");
}

TEST(FormatTest, TextTableAlignsColumns) {
  TextTable t({"a", "bbbb"});
  t.AddRow({"xx", "y"});
  t.AddRow({"1", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("a   bbbb"), std::string::npos);
  EXPECT_NE(s.find("xx  y"), std::string::npos);
}

TEST(FormatTest, TextTableCsv) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace tempo
