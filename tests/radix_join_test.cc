// Tests for the in-memory columnar radix fast path: byte-identical output
// pages and identical charged IoStats vs the reference join at every
// thread count, skewed-key bucket overflow, degenerate inputs, the
// budget-driven fallback, and the TEMPO_RADIX_THRESHOLD_MB knob.

#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "core/planner.h"
#include "core/radix_join.h"
#include "join/reference_join.h"
#include "obs/explain.h"
#include "parallel/scheduler.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"dept", ValueType::kString}});
}

Tuple S(int64_t key, const std::string& dept, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(dept)}, Interval(vs, ve));
}

std::vector<Tuple> ToS(const std::vector<Tuple>& tuples) {
  std::vector<Tuple> out;
  out.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    out.push_back(Tuple({t.value(0), t.value(1)}, t.interval()));
  }
  return out;
}

struct ExecRun {
  std::vector<Page> pages;
  IoStats io;
  uint64_t output_tuples = 0;
};

void CapturePages(StoredRelation* out, ExecRun* run) {
  run->pages.resize(out->num_pages());
  for (uint32_t p = 0; p < out->num_pages(); ++p) {
    TEMPO_ASSERT_OK(out->ReadPage(p, &run->pages[p]));
  }
}

void ExpectSameRun(const ExecRun& a, const ExecRun& b, const char* what) {
  EXPECT_EQ(a.output_tuples, b.output_tuples) << what;
  EXPECT_TRUE(a.io == b.io) << what << ": " << a.io.ToString() << " vs "
                            << b.io.ToString();
  ASSERT_EQ(a.pages.size(), b.pages.size()) << what;
  for (size_t p = 0; p < a.pages.size(); ++p) {
    EXPECT_EQ(std::memcmp(&a.pages[p], &b.pages[p], sizeof(Page)), 0)
        << what << ": output page " << p << " differs";
  }
}

/// The reference run: the oracle's result tuples appended in its
/// r-outer/s-inner emission order, with the charged I/O of the two
/// sequential input scans that fed it — exactly what the radix path
/// charges (its only I/O is one page scan per input).
ExecRun ReferenceRun(Disk* disk, StoredRelation* r, StoredRelation* s,
                     const Schema& out_schema) {
  ExecRun run;
  disk->accountant().Reset();
  auto r_tuples = r->ReadAll();
  auto s_tuples = s->ReadAll();
  EXPECT_TRUE(r_tuples.ok() && s_tuples.ok());
  run.io = disk->accountant().stats();
  auto expected =
      ReferenceValidTimeJoin(r->schema(), *r_tuples, s->schema(), *s_tuples);
  EXPECT_TRUE(expected.ok());
  StoredRelation out(disk, out_schema, "ref.out");
  EXPECT_TRUE(out.SetCharged(false).ok());
  EXPECT_TRUE(out.AppendAll(*expected).ok());
  run.output_tuples = expected->size();
  CapturePages(&out, &run);
  return run;
}

TEST(RadixJoinTest, ByteIdenticalAndIoIdenticalToReferenceAcrossThreads) {
  Disk disk;
  Random rng(11);
  auto r =
      MakeRelation(&disk, TestSchema(), RandomTuples(rng, 900, 40, 800, 0.2), "r");
  auto s =
      MakeRelation(&disk, SSchema(), ToS(RandomTuples(rng, 800, 40, 800, 0.2)), "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  ExecRun reference = ReferenceRun(&disk, r.get(), s.get(), layout.output);
  ASSERT_GT(reference.output_tuples, 0u);

  for (uint32_t threads : {1u, 2u, 4u}) {
    StoredRelation out(&disk, layout.output,
                       "radix.out.t" + std::to_string(threads));
    TEMPO_ASSERT_OK(out.SetCharged(false));
    disk.accountant().Reset();
    RadixJoinOptions options;
    options.buffer_pages = 4096;  // 16 MiB budget: everything fits
    Scheduler scheduler(SchedulerConfig{threads, /*morsel_pages=*/4});
    ExecContext ctx;
    ctx.SetScheduler(&scheduler);
    TEMPO_ASSERT_OK_AND_ASSIGN(
        JoinRunStats stats, RadixVtJoin(r.get(), s.get(), &out, options, &ctx));
    ExecRun run;
    run.io = stats.io;
    run.output_tuples = stats.output_tuples;
    CapturePages(&out, &run);
    ExpectSameRun(reference, run,
                  ("radix threads=" + std::to_string(threads)).c_str());
    EXPECT_GT(stats.Get(Metric::kRadixActFootprintBytes),
              stats.Get(Metric::kRadixEstFootprintBytes));
  }
}

TEST(RadixJoinTest, SkewedKeysOverflowOneBucket) {
  // Every tuple carries the same key: all rows land in one radix bucket no
  // matter how many passes run, far past the per-bucket target — the probe
  // must stay correct (and byte-identical) on the overflowing bucket.
  Disk disk;
  Random rng(13);
  std::vector<Tuple> r_tuples, s_tuples;
  for (int i = 0; i < 1500; ++i) {
    Chronon a = rng.UniformRange(0, 297);
    r_tuples.push_back(T(7, "r" + std::to_string(i), a, a + 2));
    Chronon b = rng.UniformRange(0, 297);
    s_tuples.push_back(S(7, "s" + std::to_string(i), b, b + 2));
  }
  auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  ExecRun reference = ReferenceRun(&disk, r.get(), s.get(), layout.output);
  ASSERT_GT(reference.output_tuples, 0u);

  for (uint32_t threads : {1u, 2u}) {
    StoredRelation out(&disk, layout.output,
                       "skew.out.t" + std::to_string(threads));
    TEMPO_ASSERT_OK(out.SetCharged(false));
    disk.accountant().Reset();
    RadixJoinOptions options;
    options.buffer_pages = 4096;
    options.bucket_target_bytes = 1024;  // forces at least one radix pass
    Scheduler scheduler(SchedulerConfig{threads, /*morsel_pages=*/4});
    ExecContext ctx;
    ctx.SetScheduler(&scheduler);
    TEMPO_ASSERT_OK_AND_ASSIGN(
        JoinRunStats stats, RadixVtJoin(r.get(), s.get(), &out, options, &ctx));
    EXPECT_GE(stats.Get(Metric::kRadixPasses), 1.0);
    EXPECT_EQ(stats.Get(Metric::kRadixBuckets), 1.0);  // all keys collide
    ExecRun run;
    run.io = stats.io;
    run.output_tuples = stats.output_tuples;
    CapturePages(&out, &run);
    ExpectSameRun(reference, run,
                  ("skew threads=" + std::to_string(threads)).c_str());
  }
}

TEST(RadixJoinTest, EmptySidesProduceEmptyOutput) {
  Disk disk;
  Random rng(17);
  auto r = MakeRelation(&disk, TestSchema(), RandomTuples(rng, 50, 5, 100, 0.0), "r");
  auto s_empty = MakeRelation(&disk, SSchema(), {}, "s_empty");
  auto r_empty = MakeRelation(&disk, TestSchema(), {}, "r_empty");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  RadixJoinOptions options;
  options.buffer_pages = 1024;
  {
    StoredRelation out(&disk, layout.output, "out1");
    TEMPO_ASSERT_OK(out.SetCharged(false));
    TEMPO_ASSERT_OK_AND_ASSIGN(
        JoinRunStats stats, RadixVtJoin(r.get(), s_empty.get(), &out, options));
    EXPECT_EQ(stats.output_tuples, 0u);
    EXPECT_EQ(out.num_tuples(), 0u);
  }
  {
    StoredRelation out(&disk, layout.output, "out2");
    TEMPO_ASSERT_OK(out.SetCharged(false));
    auto s = MakeRelation(&disk, SSchema(), ToS(RandomTuples(rng, 50, 5, 100, 0.0)), "s");
    TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                               RadixVtJoin(r_empty.get(), s.get(), &out, options));
    EXPECT_EQ(stats.output_tuples, 0u);
  }
  {
    StoredRelation out(&disk, layout.output, "out3");
    TEMPO_ASSERT_OK(out.SetCharged(false));
    TEMPO_ASSERT_OK_AND_ASSIGN(
        JoinRunStats stats,
        RadixVtJoin(r_empty.get(), s_empty.get(), &out, options));
    EXPECT_EQ(stats.output_tuples, 0u);
  }
}

TEST(RadixJoinTest, AllNullKeysJoinUnderNullEqualsNull) {
  // NULL == NULL in this system's join semantics; the key-hash columns
  // must preserve that (TupleView::HashAttrs hashes NULLs canonically), so
  // all-NULL sides degenerate to an interval-overlap cross product.
  Disk disk;
  std::vector<Tuple> r_tuples, s_tuples;
  for (int i = 0; i < 40; ++i) {
    r_tuples.push_back(Tuple({Value::Null(), Value("r" + std::to_string(i))},
                             Interval(i, i + 5)));
    s_tuples.push_back(Tuple({Value::Null(), Value("s" + std::to_string(i))},
                             Interval(i + 2, i + 6)));
  }
  auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  ExecRun reference = ReferenceRun(&disk, r.get(), s.get(), layout.output);
  ASSERT_GT(reference.output_tuples, 0u);

  StoredRelation out(&disk, layout.output, "null.out");
  TEMPO_ASSERT_OK(out.SetCharged(false));
  disk.accountant().Reset();
  RadixJoinOptions options;
  options.buffer_pages = 1024;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             RadixVtJoin(r.get(), s.get(), &out, options));
  ExecRun run;
  run.io = stats.io;
  run.output_tuples = stats.output_tuples;
  CapturePages(&out, &run);
  ExpectSameRun(reference, run, "all-null keys");
}

TEST(RadixJoinTest, BudgetExceededMidExtractReturnsResourceExhausted) {
  Disk disk;
  Random rng(19);
  auto r = MakeRelation(&disk, TestSchema(), RandomTuples(rng, 2000, 50, 900, 0.1), "r");
  auto s = MakeRelation(&disk, SSchema(), ToS(RandomTuples(rng, 2000, 50, 900, 0.1)), "s");
  ASSERT_GT(r->num_pages(), 1u);
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  StoredRelation out(&disk, layout.output, "out");
  TEMPO_ASSERT_OK(out.SetCharged(false));
  RadixJoinOptions options;
  options.radix_budget_bytes = kPageSize;  // one page: dies mid-extract
  StatusOr<JoinRunStats> stats = RadixVtJoin(r.get(), s.get(), &out, options);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(out.num_tuples(), 0u);  // nothing was emitted before the abort
}

TEST(RadixJoinTest, ExecuteFallsBackToPagedGraceWhenBudgetExceeded) {
  // The planner's footprint estimate counts page bytes only; the real
  // footprint adds per-row column/view state. A budget wedged between the
  // two admits the radix plan, then forces the mid-extract fallback.
  Disk disk;
  Random rng(23);
  std::vector<Tuple> r_tuples = RandomTuples(rng, 1200, 40, 700, 0.15);
  std::vector<Tuple> s_tuples = ToS(RandomTuples(rng, 1100, 40, 700, 0.15));
  auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  StoredRelation out(&disk, layout.output, "out");
  TEMPO_ASSERT_OK(out.SetCharged(false));

  VtJoinOptions options;
  options.buffer_pages = 256;
  options.radix_budget_bytes =
      EstimateRadixFootprintBytes(r->num_pages(), s->num_pages()) + 8;

  JoinPlan plan = PlanVtJoin(r.get(), s.get(), options);
  EXPECT_EQ(plan.algorithm, JoinAlgorithm::kInMemoryRadix);

  ExecContext ctx;
  TEMPO_ASSERT_OK_AND_ASSIGN(
      JoinRunStats stats,
      ExecuteVtJoin(r.get(), s.get(), &out, options, &ctx));
  EXPECT_EQ(stats.Get(Metric::kPlannedAlgorithm), 3.0);
  EXPECT_EQ(stats.Get(Metric::kRadixFallback), 1.0);

  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> expected,
      ReferenceValidTimeJoin(TestSchema(), r_tuples, SSchema(), s_tuples));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
  EXPECT_TRUE(SameTupleMultiset(actual, expected));

  const std::string explain = ExplainAnalyze(ctx, ExplainOptions{});
  EXPECT_NE(explain.find("radix fallback"), std::string::npos) << explain;
  EXPECT_NE(explain.find("paged-grace"), std::string::npos) << explain;
}

TEST(RadixJoinTest, ExplainRendersPhysicalPathAndRadixSpans) {
  Disk disk;
  Random rng(29);
  auto r = MakeRelation(&disk, TestSchema(), RandomTuples(rng, 400, 20, 400, 0.1), "r");
  auto s = MakeRelation(&disk, SSchema(), ToS(RandomTuples(rng, 350, 20, 400, 0.1)), "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  StoredRelation out(&disk, layout.output, "out");
  TEMPO_ASSERT_OK(out.SetCharged(false));
  VtJoinOptions options;
  options.buffer_pages = 2048;
  ExecContext ctx;
  TEMPO_ASSERT_OK_AND_ASSIGN(
      JoinRunStats stats,
      ExecuteVtJoin(r.get(), s.get(), &out, options, &ctx));
  EXPECT_EQ(stats.Get(Metric::kPlannedAlgorithm), 3.0);
  const std::string explain = ExplainAnalyze(ctx, ExplainOptions{});
  EXPECT_NE(explain.find("physical path: in-memory-radix"), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("radix_extract"), std::string::npos) << explain;
  EXPECT_NE(explain.find("radix_partition"), std::string::npos) << explain;
  EXPECT_NE(explain.find("radix_probe"), std::string::npos) << explain;
  EXPECT_NE(explain.find("budget"), std::string::npos) << explain;
}

TEST(RadixJoinTest, BudgetKnobPrecedenceAndStrictParsing) {
  ExecOptions options;
  options.buffer_pages = 10;  // derived default: 10 pages = 40,960 B
  const uint64_t derived = 10ull * kPageSize;

  unsetenv("TEMPO_RADIX_THRESHOLD_MB");
  EXPECT_EQ(ResolveRadixBudgetBytes(options), derived);

  setenv("TEMPO_RADIX_THRESHOLD_MB", "8", 1);
  EXPECT_EQ(ResolveRadixBudgetBytes(options), 8ull << 20);

  // The explicit field wins over the env knob.
  options.radix_budget_bytes = 123456;
  EXPECT_EQ(ResolveRadixBudgetBytes(options), 123456u);
  options.radix_budget_bytes = 0;

  // Strict parsing: trailing garbage, zero and non-numeric values are
  // rejected (with a warning) and the derived default is used.
  for (const char* bad : {"16x", "8 ", "0", "-3", "banana", ""}) {
    setenv("TEMPO_RADIX_THRESHOLD_MB", bad, 1);
    EXPECT_EQ(ResolveRadixBudgetBytes(options), derived)
        << "value: \"" << bad << "\"";
  }
  unsetenv("TEMPO_RADIX_THRESHOLD_MB");
}

}  // namespace
}  // namespace tempo
