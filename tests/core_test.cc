#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/choose_intervals.h"
#include "core/determine_part_intervals.h"
#include "core/estimate_cache.h"
#include "core/grace_partitioner.h"
#include "core/partition_join.h"
#include "core/partition_spec.h"
#include "core/tuple_cache.h"
#include "join/reference_join.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"dept", ValueType::kString}});
}

Tuple S(int64_t key, const std::string& dept, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(dept)}, Interval(vs, ve));
}

// ---------------------------------------------------------------------
// PartitionSpec
// ---------------------------------------------------------------------

TEST(PartitionSpecTest, TrivialSpecCoversLine) {
  PartitionSpec spec;
  EXPECT_EQ(spec.num_partitions(), 1u);
  EXPECT_EQ(spec.IndexOf(0), 0u);
  EXPECT_EQ(spec.IndexOf(kChrononMin), 0u);
  EXPECT_EQ(spec.IndexOf(kChrononMax), 0u);
}

TEST(PartitionSpecTest, FromBoundaries) {
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionSpec spec,
                             PartitionSpec::FromBoundaries({10, 20}));
  ASSERT_EQ(spec.num_partitions(), 3u);
  EXPECT_EQ(spec.partition(0), Interval(kChrononMin, 10));
  EXPECT_EQ(spec.partition(1), Interval(11, 20));
  EXPECT_EQ(spec.partition(2), Interval(21, kChrononMax));
}

TEST(PartitionSpecTest, FromBoundariesRejectsUnsorted) {
  EXPECT_FALSE(PartitionSpec::FromBoundaries({20, 10}).ok());
  EXPECT_FALSE(PartitionSpec::FromBoundaries({10, 10}).ok());
  EXPECT_FALSE(PartitionSpec::FromBoundaries({kChrononMax}).ok());
}

TEST(PartitionSpecTest, FromIntervalsValidates) {
  EXPECT_TRUE(PartitionSpec::FromIntervals(
                  {Interval(kChrononMin, 5), Interval(6, kChrononMax)})
                  .ok());
  // Gap.
  EXPECT_FALSE(PartitionSpec::FromIntervals(
                   {Interval(kChrononMin, 5), Interval(7, kChrononMax)})
                   .ok());
  // Doesn't cover the line.
  EXPECT_FALSE(
      PartitionSpec::FromIntervals({Interval(0, kChrononMax)}).ok());
  EXPECT_FALSE(PartitionSpec::FromIntervals({}).ok());
}

TEST(PartitionSpecTest, IndexOfFindsContainingPartition) {
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionSpec spec,
                             PartitionSpec::FromBoundaries({10, 20, 30}));
  EXPECT_EQ(spec.IndexOf(-100), 0u);
  EXPECT_EQ(spec.IndexOf(10), 0u);
  EXPECT_EQ(spec.IndexOf(11), 1u);
  EXPECT_EQ(spec.IndexOf(20), 1u);
  EXPECT_EQ(spec.IndexOf(25), 2u);
  EXPECT_EQ(spec.IndexOf(31), 3u);
}

TEST(PartitionSpecTest, OverlapQueries) {
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionSpec spec,
                             PartitionSpec::FromBoundaries({10, 20, 30}));
  Interval long_lived(5, 25);
  EXPECT_EQ(spec.FirstOverlapping(long_lived), 0u);
  EXPECT_EQ(spec.LastOverlapping(long_lived), 2u);
  EXPECT_EQ(spec.OverlapCount(long_lived), 3u);
  Interval short_lived(15, 15);
  EXPECT_EQ(spec.OverlapCount(short_lived), 1u);
}

// ---------------------------------------------------------------------
// ChooseIntervals vs. the paper's materialized-multiset pseudocode
// ---------------------------------------------------------------------

// Oracle: literal A.3 — materialize the covered-chronon multiset, sort it,
// pick boundaries at equal positions.
std::vector<Chronon> MaterializedBoundaries(const std::vector<Interval>& samples,
                                            uint32_t n) {
  std::vector<Chronon> multiset;
  for (const Interval& iv : samples) {
    for (Chronon t = iv.start(); t <= iv.end(); ++t) multiset.push_back(t);
  }
  std::sort(multiset.begin(), multiset.end());
  std::vector<Chronon> bounds;
  if (multiset.empty()) return bounds;
  for (uint32_t q = 1; q < n; ++q) {
    size_t pos = (multiset.size() * q + n - 1) / n;  // ceil, 1-based
    if (pos == 0) pos = 1;
    Chronon b = multiset[pos - 1];
    if (b >= multiset.back()) continue;
    if (!bounds.empty() && b <= bounds.back()) continue;
    bounds.push_back(b);
  }
  return bounds;
}

class ChooseIntervalsPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ChooseIntervalsPropertyTest, MatchesMaterializedPseudocode) {
  Random rng(GetParam());
  std::vector<Interval> samples;
  size_t count = 5 + rng.Uniform(40);
  for (size_t i = 0; i < count; ++i) {
    Chronon s = rng.UniformRange(0, 60);
    Chronon e = s + rng.UniformRange(0, 20);
    samples.push_back(Interval(s, e));
  }
  uint32_t n = 2 + static_cast<uint32_t>(rng.Uniform(6));
  PartitionSpec spec = ChooseIntervals(samples, n);
  std::vector<Chronon> expected = MaterializedBoundaries(samples, n);
  ASSERT_EQ(spec.num_partitions(), expected.size() + 1)
      << "seed " << GetParam();
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(spec.partition(i).end(), expected[i]) << "boundary " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChooseIntervalsPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

TEST(ChooseIntervalsTest, EmptySamplesGiveTrivialSpec) {
  EXPECT_EQ(ChooseIntervals({}, 8).num_partitions(), 1u);
}

TEST(ChooseIntervalsTest, OnePartitionIsTrivial) {
  EXPECT_EQ(ChooseIntervals({Interval(0, 10)}, 1).num_partitions(), 1u);
}

TEST(ChooseIntervalsTest, UniformSamplesGiveBalancedPartitions) {
  std::vector<Interval> samples;
  for (Chronon t = 0; t < 1000; ++t) samples.push_back(Interval::At(t));
  PartitionSpec spec = ChooseIntervals(samples, 4);
  ASSERT_EQ(spec.num_partitions(), 4u);
  // Interior boundaries near the quartiles.
  EXPECT_NEAR(static_cast<double>(spec.partition(0).end()), 250, 2);
  EXPECT_NEAR(static_cast<double>(spec.partition(1).end()), 500, 2);
  EXPECT_NEAR(static_cast<double>(spec.partition(2).end()), 750, 2);
}

TEST(ChooseIntervalsTest, IdenticalSamplesCollapse) {
  std::vector<Interval> samples(50, Interval::At(7));
  PartitionSpec spec = ChooseIntervals(samples, 8);
  // Only one distinct chronon: no valid interior boundary.
  EXPECT_EQ(spec.num_partitions(), 1u);
}

TEST(ChooseIntervalsTest, LongLivedSamplesPullBoundaries) {
  // 80 chronons of mass in [0,9], 90 in one long interval [10,99]: the
  // half-weight boundary falls inside the long interval, not at the
  // numeric midpoint of the sample starts — long-lived samples count in
  // proportion to their duration.
  std::vector<Interval> samples;
  for (int i = 0; i < 8; ++i) samples.push_back(Interval(0, 9));
  samples.push_back(Interval(10, 99));
  PartitionSpec spec = ChooseIntervals(samples, 2);
  ASSERT_EQ(spec.num_partitions(), 2u);
  EXPECT_GT(spec.partition(0).end(), 9);
}

// ---------------------------------------------------------------------
// EstimateCacheSizes
// ---------------------------------------------------------------------

TEST(EstimateCacheTest, NoLongLivedMeansNoCache) {
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionSpec spec,
                             PartitionSpec::FromBoundaries({10, 20}));
  std::vector<Interval> samples{Interval::At(5), Interval::At(15),
                                Interval::At(25)};
  auto pages = EstimateCacheSizes(samples, 300, 10.0, spec);
  EXPECT_EQ(pages, std::vector<uint64_t>({0, 0, 0}));
}

TEST(EstimateCacheTest, LongLivedCountedInAllButLastPartition) {
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionSpec spec,
                             PartitionSpec::FromBoundaries({10, 20}));
  // Spans all three partitions: cached for partitions 0 and 1.
  std::vector<Interval> samples{Interval(5, 25)};
  auto pages = EstimateCacheSizes(samples, 100, 10.0, spec);
  // Scale: 100 tuples / 1 sample = 100 estimated tuples, 10/page.
  EXPECT_EQ(pages[0], 10u);
  EXPECT_EQ(pages[1], 10u);
  EXPECT_EQ(pages[2], 0u);
}

TEST(EstimateCacheTest, ScalingBySampleFraction) {
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionSpec spec,
                             PartitionSpec::FromBoundaries({10}));
  // 2 of 4 samples overlap both partitions.
  std::vector<Interval> samples{Interval(5, 15), Interval(8, 12),
                                Interval::At(3), Interval::At(14)};
  auto pages = EstimateCacheSizes(samples, 400, 10.0, spec);
  // (2/4) * 400 = 200 tuples -> 20 pages for partition 0.
  EXPECT_EQ(pages[0], 20u);
  EXPECT_EQ(pages[1], 0u);
}

TEST(EstimateCacheTest, EmptySamples) {
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionSpec spec,
                             PartitionSpec::FromBoundaries({10}));
  auto pages = EstimateCacheSizes({}, 400, 10.0, spec);
  EXPECT_EQ(pages, std::vector<uint64_t>({0, 0}));
}

// ---------------------------------------------------------------------
// DeterminePartIntervals
// ---------------------------------------------------------------------

class DeterminePlanTest : public ::testing::Test {
 protected:
  std::unique_ptr<StoredRelation> MakeBig(double long_lived_prob,
                                          uint64_t seed) {
    Random rng(seed);
    return MakeRelation(&disk_, TestSchema(),
                        RandomTuples(rng, 4000, 100, 5000, long_lived_prob),
                        "r" + std::to_string(seed));
  }

  Disk disk_;
};

TEST_F(DeterminePlanTest, FittingRelationGetsTrivialPlan) {
  auto rel = MakeBig(0.1, 1);
  PartitionPlanOptions options;
  options.buffer_pages = rel->num_pages() + 10;
  Random rng(9);
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionPlan plan,
                             DeterminePartIntervals(rel.get(), options, &rng));
  EXPECT_EQ(plan.num_partitions, 1u);
  EXPECT_EQ(plan.samples_drawn, 0u);
  EXPECT_EQ(plan.spec.num_partitions(), 1u);
}

TEST_F(DeterminePlanTest, BigRelationGetsMultiplePartitions) {
  auto rel = MakeBig(0.0, 2);
  PartitionPlanOptions options;
  options.buffer_pages = rel->num_pages() / 4;
  Random rng(9);
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionPlan plan,
                             DeterminePartIntervals(rel.get(), options, &rng));
  EXPECT_GT(plan.num_partitions, 1u);
  EXPECT_GT(plan.samples_drawn, 0u);
  EXPECT_EQ(plan.spec.num_partitions(), plan.num_partitions);
  // Estimated partition size must fit the area.
  EXPECT_LE(plan.part_size_pages, options.buffer_pages - 3);
}

TEST_F(DeterminePlanTest, ForcedPartitionCountHonored) {
  auto rel = MakeBig(0.0, 3);
  PartitionPlanOptions options;
  options.buffer_pages = rel->num_pages();
  options.forced_num_partitions = 5;
  Random rng(9);
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionPlan plan,
                             DeterminePartIntervals(rel.get(), options, &rng));
  EXPECT_EQ(plan.num_partitions, 5u);
}

TEST_F(DeterminePlanTest, PartitionsRoughlyBalanced) {
  auto rel = MakeBig(0.0, 4);
  PartitionPlanOptions options;
  options.buffer_pages = rel->num_pages() / 4;
  Random rng(10);
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionPlan plan,
                             DeterminePartIntervals(rel.get(), options, &rng));
  ASSERT_GT(plan.num_partitions, 1u);
  // Count tuples stored per partition (last-overlap placement).
  std::vector<uint64_t> counts(plan.num_partitions, 0);
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> all, rel->ReadAll());
  for (const Tuple& t : all) {
    ++counts[plan.spec.LastOverlapping(t.interval())];
  }
  uint64_t expected = all.size() / plan.num_partitions;
  for (uint64_t c : counts) {
    EXPECT_GT(c, expected / 3);
    EXPECT_LT(c, expected * 3);
  }
}

TEST_F(DeterminePlanTest, EmptyRelationTrivial) {
  auto rel = MakeRelation(&disk_, TestSchema(), {}, "empty");
  PartitionPlanOptions options;
  options.buffer_pages = 16;
  Random rng(1);
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionPlan plan,
                             DeterminePartIntervals(rel.get(), options, &rng));
  EXPECT_EQ(plan.num_partitions, 1u);
}

TEST_F(DeterminePlanTest, InScanCapsActualSamplingCost) {
  auto rel = MakeBig(0.2, 5);
  PartitionPlanOptions options;
  options.buffer_pages = std::max<uint32_t>(8, rel->num_pages() / 4);
  options.in_scan_sampling = true;
  Random rng(11);
  disk_.accountant().Reset();
  TEMPO_ASSERT_OK(DeterminePartIntervals(rel.get(), options, &rng).status());
  double cost = disk_.accountant().stats().Cost(options.cost_model);
  // Sampling can never exceed ~2 scans' worth under the in-scan rule
  // (random draws before the switch plus the scan itself).
  double scan = options.cost_model.random_weight + (rel->num_pages() - 1);
  EXPECT_LE(cost, 2.1 * scan);
}

// ---------------------------------------------------------------------
// GracePartition
// ---------------------------------------------------------------------

class GracePartitionTest : public ::testing::Test {
 protected:
  Disk disk_;
};

TEST_F(GracePartitionTest, LastOverlapPlacement) {
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionSpec spec,
                             PartitionSpec::FromBoundaries({10, 20}));
  std::vector<Tuple> tuples{T(1, "a", 0, 5), T(2, "b", 15, 25),
                            T(3, "c", 5, 15), T(4, "d", 21, 30)};
  auto rel = MakeRelation(&disk_, TestSchema(), tuples, "r");
  TEMPO_ASSERT_OK_AND_ASSIGN(
      PartitionedRelation parts,
      GracePartition(rel.get(), spec, 16, PlacementPolicy::kLastOverlap, "r"));
  ASSERT_EQ(parts.parts.size(), 3u);
  EXPECT_EQ(parts.tuples_written, 4u);

  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> p0, parts.parts[0]->ReadAll());
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> p1, parts.parts[1]->ReadAll());
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> p2, parts.parts[2]->ReadAll());
  // (1) ends at 5 -> p0. (3) ends at 15 -> p1. (2) and (4) end past 20 -> p2.
  ASSERT_EQ(p0.size(), 1u);
  EXPECT_EQ(p0[0].value(0).AsInt64(), 1);
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(p1[0].value(0).AsInt64(), 3);
  EXPECT_EQ(p2.size(), 2u);
  parts.Drop();
}

TEST_F(GracePartitionTest, ReplicatePlacement) {
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionSpec spec,
                             PartitionSpec::FromBoundaries({10, 20}));
  std::vector<Tuple> tuples{T(1, "a", 5, 25)};  // spans all three
  auto rel = MakeRelation(&disk_, TestSchema(), tuples, "r");
  TEMPO_ASSERT_OK_AND_ASSIGN(
      PartitionedRelation parts,
      GracePartition(rel.get(), spec, 16, PlacementPolicy::kReplicate, "r"));
  EXPECT_EQ(parts.tuples_written, 3u);
  for (auto& p : parts.parts) {
    EXPECT_EQ(p->num_tuples(), 1u);
  }
  parts.Drop();
}

TEST_F(GracePartitionTest, RequiresBufferPerPartition) {
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionSpec spec,
                             PartitionSpec::FromBoundaries({1, 2, 3, 4}));
  auto rel = MakeRelation(&disk_, TestSchema(), {}, "r");
  // 5 partitions need 6 pages.
  EXPECT_FALSE(
      GracePartition(rel.get(), spec, 5, PlacementPolicy::kLastOverlap, "r")
          .ok());
}

TEST_F(GracePartitionTest, EveryTupleLandsInItsLastOverlapPartition) {
  Random rng(31);
  std::vector<Tuple> tuples = RandomTuples(rng, 500, 20, 300, 0.3);
  auto rel = MakeRelation(&disk_, TestSchema(), tuples, "r");
  TEMPO_ASSERT_OK_AND_ASSIGN(PartitionSpec spec,
                             PartitionSpec::FromBoundaries({50, 120, 200}));
  TEMPO_ASSERT_OK_AND_ASSIGN(
      PartitionedRelation parts,
      GracePartition(rel.get(), spec, 16, PlacementPolicy::kLastOverlap, "r"));
  uint64_t total = 0;
  for (size_t i = 0; i < parts.parts.size(); ++i) {
    TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> in_part,
                               parts.parts[i]->ReadAll());
    total += in_part.size();
    for (const Tuple& t : in_part) {
      EXPECT_EQ(spec.LastOverlapping(t.interval()), i);
    }
  }
  EXPECT_EQ(total, tuples.size());
  parts.Drop();
}

// ---------------------------------------------------------------------
// TupleCache
// ---------------------------------------------------------------------

TEST(TupleCacheTest, SmallCacheStaysInMemory) {
  Disk disk;
  TupleCache cache(&disk, TestSchema(), "c");
  TEMPO_ASSERT_OK(cache.Add(T(1, "a", 0, 1)));
  TEMPO_ASSERT_OK(cache.Add(T(2, "b", 0, 1)));
  EXPECT_EQ(cache.spilled_pages(), 0u);
  EXPECT_EQ(cache.memory_tuples().size(), 2u);
  EXPECT_EQ(cache.num_tuples(), 2u);
}

TEST(TupleCacheTest, SpillsFullPages) {
  Disk disk;
  TupleCache cache(&disk, TestSchema(), "c");
  // ~120-byte records: ~34 fit a page.
  std::string pad(100, 'p');
  for (int i = 0; i < 200; ++i) {
    TEMPO_ASSERT_OK(cache.Add(T(i, pad, 0, 1)));
  }
  EXPECT_GT(cache.spilled_pages(), 3u);
  EXPECT_EQ(cache.num_tuples(), 200u);
  // Everything is retrievable: memory + spilled pages.
  uint64_t found = cache.memory_tuples().size();
  for (uint32_t p = 0; p < cache.spilled_pages(); ++p) {
    TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> page,
                               cache.ReadSpilledPage(p));
    found += page.size();
  }
  EXPECT_EQ(found, 200u);
}

TEST(TupleCacheTest, DiscardDropsSpill) {
  Disk disk;
  TupleCache cache(&disk, TestSchema(), "c");
  std::string pad(100, 'p');
  for (int i = 0; i < 100; ++i) TEMPO_ASSERT_OK(cache.Add(T(i, pad, 0, 1)));
  uint64_t pages_before = disk.TotalPages();
  EXPECT_GT(pages_before, 0u);
  TEMPO_ASSERT_OK(cache.Discard());
  EXPECT_EQ(disk.TotalPages(), 0u);
  EXPECT_EQ(cache.num_tuples(), 0u);
}

// ---------------------------------------------------------------------
// Partition join vs oracle (the headline correctness property)
// ---------------------------------------------------------------------

struct PartitionJoinCase {
  uint32_t buffer_pages;
  double long_lived_prob;
  PlacementPolicy placement;
  uint32_t forced_partitions;
  uint64_t seed;
};

class PartitionJoinOracleTest
    : public ::testing::TestWithParam<PartitionJoinCase> {};

TEST_P(PartitionJoinOracleTest, MatchesReferenceJoin) {
  const PartitionJoinCase& c = GetParam();
  Random rng(c.seed);
  std::vector<Tuple> r_tuples = RandomTuples(rng, 400, 30, 600,
                                             c.long_lived_prob);
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 350, 30, 600, c.long_lived_prob)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), t.value(1).AsString(),
                         t.interval().start(), t.interval().end()));
  }

  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  StoredRelation out(&disk, layout.output, "out");

  PartitionJoinOptions options;
  options.buffer_pages = c.buffer_pages;
  options.placement = c.placement;
  options.forced_num_partitions = c.forced_partitions;
  options.seed = c.seed * 7 + 1;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             PartitionVtJoin(r.get(), s.get(), &out, options));

  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> expected,
      ReferenceValidTimeJoin(TestSchema(), r_tuples, SSchema(), s_tuples));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
  EXPECT_EQ(stats.output_tuples, expected.size());
  EXPECT_TRUE(SameTupleMultiset(actual, expected))
      << "got " << actual.size() << " tuples, want " << expected.size()
      << " (partitions=" << stats.Get(Metric::kPartitions) << ")";
}

std::vector<PartitionJoinCase> MakePartitionJoinCases() {
  std::vector<PartitionJoinCase> cases;
  for (uint32_t pages : {6u, 10u, 24u, 256u}) {
    for (double llp : {0.0, 0.3, 0.9}) {
      for (PlacementPolicy pol :
           {PlacementPolicy::kLastOverlap, PlacementPolicy::kReplicate}) {
        for (uint64_t seed : {1ull, 2ull, 3ull}) {
          cases.push_back({pages, llp, pol, 0, seed});
        }
      }
    }
  }
  // Forced partition counts stress migration depth.
  for (uint32_t forced : {2u, 3u, 7u}) {
    cases.push_back(
        {64, 0.5, PlacementPolicy::kLastOverlap, forced, 42});
    cases.push_back({64, 0.5, PlacementPolicy::kReplicate, forced, 42});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionJoinOracleTest,
    ::testing::ValuesIn(MakePartitionJoinCases()),
    [](const ::testing::TestParamInfo<PartitionJoinCase>& info) {
      const PartitionJoinCase& c = info.param;
      return "b" + std::to_string(c.buffer_pages) + "_ll" +
             std::to_string(static_cast<int>(c.long_lived_prob * 10)) +
             (c.placement == PlacementPolicy::kReplicate ? "_rep" : "_mig") +
             "_f" + std::to_string(c.forced_partitions) + "_s" +
             std::to_string(c.seed);
    });

// ---------------------------------------------------------------------
// Partition join behavioural properties
// ---------------------------------------------------------------------

TEST(PartitionJoinTest, EmitsEachPairExactlyOnceAcrossPartitions) {
  // Two long-lived tuples overlapping every partition: they co-reside in
  // several partition steps; the result must still be a single tuple.
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), {T(1, "a", 0, 100)}, "r");
  auto s = MakeRelation(&disk, SSchema(), {S(1, "x", 0, 100)}, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  StoredRelation out(&disk, layout.output, "out");
  PartitionJoinOptions options;
  options.buffer_pages = 16;
  options.forced_num_partitions = 4;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             PartitionVtJoin(r.get(), s.get(), &out, options));
  EXPECT_EQ(stats.output_tuples, 1u);
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> result, out.ReadAll());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].interval(), Interval(0, 100));
}

TEST(PartitionJoinTest, CacheTrafficGrowsWithLongLivedTuples) {
  auto run = [](double llp) -> double {
    Random rng(77);
    Disk disk;
    auto r = MakeRelation(&disk, TestSchema(),
                          RandomTuples(rng, 3000, 50, 3000, llp), "r");
    std::vector<Tuple> s_tuples;
    for (const Tuple& t : RandomTuples(rng, 3000, 50, 3000, llp)) {
      s_tuples.push_back(S(t.value(0).AsInt64(), "d", t.interval().start(),
                           t.interval().end()));
    }
    auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
    auto layout = DeriveNaturalJoinLayout(r->schema(), s->schema());
    StoredRelation out(&disk, layout->output, "out");
    out.SetCharged(false).ok();
    PartitionJoinOptions options;
    options.buffer_pages = 16;
    auto stats = PartitionVtJoin(r.get(), s.get(), &out, options);
    return stats->Get(Metric::kCacheTuples);
  };
  EXPECT_GT(run(0.5), run(0.0));
}

TEST(PartitionJoinTest, ReplicationWritesMoreStorage) {
  Random rng(78);
  std::vector<Tuple> r_tuples = RandomTuples(rng, 2000, 50, 2000, 0.5);
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 2000, 50, 2000, 0.5)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), "d", t.interval().start(),
                         t.interval().end()));
  }
  auto run = [&](PlacementPolicy policy) -> double {
    Disk disk;
    auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
    auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
    auto layout = DeriveNaturalJoinLayout(r->schema(), s->schema());
    StoredRelation out(&disk, layout->output, "out");
    out.SetCharged(false).ok();
    PartitionJoinOptions options;
    options.buffer_pages = 32;
    options.placement = policy;
    options.forced_num_partitions = 8;
    auto stats = PartitionVtJoin(r.get(), s.get(), &out, options);
    return stats->Get(Metric::kTuplesWritten);
  };
  EXPECT_GT(run(PlacementPolicy::kReplicate),
            run(PlacementPolicy::kLastOverlap));
}

TEST(PartitionJoinTest, FitsInMemorySkipsPartitioning) {
  Random rng(79);
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(),
                        RandomTuples(rng, 200, 20, 500, 0.2), "r");
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 200, 20, 500, 0.2)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), "d", t.interval().start(),
                         t.interval().end()));
  }
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  auto layout = DeriveNaturalJoinLayout(r->schema(), s->schema());
  StoredRelation out(&disk, layout->output, "out");
  TEMPO_ASSERT_OK(out.SetCharged(false));
  disk.accountant().Reset();
  PartitionJoinOptions options;
  options.buffer_pages = 4096;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             PartitionVtJoin(r.get(), s.get(), &out, options));
  EXPECT_EQ(stats.Get(Metric::kPartitions), 1.0);
  // Exactly one sequential pass over each input, nothing else.
  EXPECT_EQ(stats.io.total_ops(), r->num_pages() + s->num_pages());
  EXPECT_EQ(stats.io.random_reads, 2u);
}

TEST(PartitionJoinTest, OverflowChunksKeepCorrectness) {
  // Force a partitioning whose outer partitions exceed the area: with
  // buffer_pages=5 the area is 2 pages, but forced 2 partitions of a
  // 10-page relation are ~5 pages each.
  Random rng(80);
  std::vector<Tuple> r_tuples = RandomTuples(rng, 800, 10, 400, 0.1);
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 700, 10, 400, 0.1)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), "d", t.interval().start(),
                         t.interval().end()));
  }
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  auto layout = DeriveNaturalJoinLayout(r->schema(), s->schema());
  StoredRelation out(&disk, layout->output, "out");
  PartitionJoinOptions options;
  options.buffer_pages = 5;
  options.forced_num_partitions = 2;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             PartitionVtJoin(r.get(), s.get(), &out, options));
  EXPECT_GT(stats.Get(Metric::kOverflowChunks), 0.0);
  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> expected,
      ReferenceValidTimeJoin(TestSchema(), r_tuples, SSchema(), s_tuples));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
  EXPECT_TRUE(SameTupleMultiset(actual, expected));
}

TEST(PartitionJoinTest, PartitionFilesAreDroppedAfterJoin) {
  Random rng(81);
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(),
                        RandomTuples(rng, 1000, 20, 500, 0.2), "r");
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 1000, 20, 500, 0.2)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), "d", t.interval().start(),
                         t.interval().end()));
  }
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  auto layout = DeriveNaturalJoinLayout(r->schema(), s->schema());
  StoredRelation out(&disk, layout->output, "out");
  uint64_t base_pages = disk.TotalPages();
  PartitionJoinOptions options;
  options.buffer_pages = 8;
  TEMPO_ASSERT_OK(PartitionVtJoin(r.get(), s.get(), &out, options).status());
  // Only the output remains beyond the inputs.
  EXPECT_EQ(disk.TotalPages(), base_pages + out.num_pages());
}

}  // namespace
}  // namespace tempo
