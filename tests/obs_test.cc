// Tests for the observability layer: the typed metrics registry, the
// phase-scoped tracer, the ExplainAnalyze renderer, and the guarantees
// the layer makes — span-tree I/O totals equal the run's charged IoStats,
// a serial and a 4-thread run render identical I/O columns, and a null
// ExecContext leaves execution byte-identical.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/partition_coalesce.h"
#include "core/partition_join.h"
#include "core/planner.h"
#include "incremental/materialized_view.h"
#include "join/indexed_join.h"
#include "join/nested_loop_join.h"
#include "join/sort_merge_join.h"
#include "obs/explain.h"
#include "parallel/scheduler.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"sval", ValueType::kString}});
}

Tuple S(int64_t key, const std::string& v, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(v)}, Interval(vs, ve));
}

// Deterministic workload big enough to force real partitioning (wide pads
// push r past the partition area at buffer_pages=4).
struct JoinInputs {
  std::vector<Tuple> r_tuples;
  std::vector<Tuple> s_tuples;
};

JoinInputs PaddedInputs() {
  JoinInputs in;
  Random rng(7);
  std::string pad(120, 'r');
  for (const Tuple& t : RandomTuples(rng, 300, 20, 600, 0.3)) {
    in.r_tuples.push_back(
        T(t.value(0).AsInt64(), pad, t.interval().start(), t.interval().end()));
  }
  for (const Tuple& t : RandomTuples(rng, 250, 20, 600, 0.3)) {
    in.s_tuples.push_back(S(t.value(0).AsInt64(), "s", t.interval().start(),
                            t.interval().end()));
  }
  return in;
}

struct PartitionRun {
  JoinRunStats stats;
  std::vector<Tuple> out_tuples;
  uint32_t out_pages = 0;
};

PartitionRun RunPartitionJoin(const JoinInputs& in, ExecContext* ctx,
                              uint32_t num_threads) {
  PartitionRun run;
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
  auto layout_or = DeriveNaturalJoinLayout(TestSchema(), SSchema());
  EXPECT_TRUE(layout_or.ok());
  StoredRelation out(&disk, layout_or.value().output, "out");

  PartitionJoinOptions options;
  options.buffer_pages = 4;
  // Thread count rides on the context's scheduler handle now; the handle
  // is cleared again before the local scheduler dies.
  Scheduler scheduler(SchedulerConfig{num_threads, /*morsel_pages=*/4});
  if (ctx != nullptr) ctx->SetScheduler(&scheduler);
  auto stats_or = PartitionVtJoin(r.get(), s.get(), &out, options, ctx);
  if (ctx != nullptr) ctx->SetScheduler(nullptr);
  EXPECT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  if (!stats_or.ok()) return run;
  run.stats = std::move(stats_or).value();
  auto tuples_or = out.ReadAll();
  EXPECT_TRUE(tuples_or.ok());
  if (tuples_or.ok()) run.out_tuples = std::move(tuples_or).value();
  run.out_pages = out.num_pages();
  return run;
}

/// The span-tree table only — ExplainAnalyze output up to the metrics
/// section (the metrics lines legitimately differ between serial and
/// parallel runs: morsels_dispatched / parallel_efficiency exist only in
/// parallel mode, and efficiency is timing-derived).
std::string TableOnly(const std::string& rendered) {
  size_t pos = rendered.find("\nmetrics:");
  return pos == std::string::npos ? rendered : rendered.substr(0, pos);
}

// ---------------------------------------------------------------------
// Span tree: totals, phases, estimates
// ---------------------------------------------------------------------

TEST(SpanTreeTest, InclusiveIoEqualsRunIoStats) {
  JoinInputs in = PaddedInputs();
  ExecContext ctx;
  PartitionRun run = RunPartitionJoin(in, &ctx, 1);

  // Every phase of the run executed under a span, so the tree's exclusive
  // I/O sums exactly to the run's charged IoStats — the renderer's TOTAL
  // row is the run, not an approximation of it.
  EXPECT_TRUE(ctx.tracer().TotalIo() == run.stats.io)
      << "tree: " << ctx.tracer().TotalIo().ToString()
      << " run: " << run.stats.io.ToString();

  const SpanNode& root = ctx.tracer().root();
  const SpanNode* join_root = root.FindPhase(Phase::kPartitionJoin);
  ASSERT_NE(join_root, nullptr);
  for (Phase p : {Phase::kChooseIntervals, Phase::kSampling,
                  Phase::kPartitionR, Phase::kPartitionS,
                  Phase::kJoinPartitions}) {
    EXPECT_NE(join_root->FindPhase(p), nullptr)
        << "missing phase " << PhaseName(p);
  }
  // Sampling nests under chooseIntervals, as in the paper's Figure 2.
  const SpanNode* choose = join_root->FindPhase(Phase::kChooseIntervals);
  ASSERT_NE(choose, nullptr);
  EXPECT_NE(choose->FindPhase(Phase::kSampling), nullptr);

  // The optimizer's estimates are attached to the phases they predict.
  EXPECT_GE(join_root->estimated_cost, 0.0);
  EXPECT_GE(join_root->FindPhase(Phase::kSampling)->estimated_cost, 0.0);
  EXPECT_GE(join_root->FindPhase(Phase::kJoinPartitions)->estimated_cost, 0.0);
}

TEST(SpanTreeTest, ParallelRunAttributesSameIoToSamePhases) {
  JoinInputs in = PaddedInputs();
  ExecContext serial_ctx;
  PartitionRun serial = RunPartitionJoin(in, &serial_ctx, 1);
  ExecContext parallel_ctx;
  PartitionRun parallel = RunPartitionJoin(in, &parallel_ctx, 4);

  EXPECT_TRUE(serial.stats.io == parallel.stats.io);
  EXPECT_TRUE(serial_ctx.tracer().TotalIo() == parallel_ctx.tracer().TotalIo());

  // Per-phase inclusive I/O is also thread-count-invariant, not just the
  // total: the per-file head model classifies each stream independently
  // of interleaving, and each phase's I/O is issued by its own thread.
  const SpanNode& sroot = serial_ctx.tracer().root();
  const SpanNode& proot = parallel_ctx.tracer().root();
  for (Phase p : {Phase::kChooseIntervals, Phase::kSampling,
                  Phase::kPartitionR, Phase::kPartitionS,
                  Phase::kJoinPartitions}) {
    const SpanNode* sn = sroot.FindPhase(p);
    const SpanNode* pn = proot.FindPhase(p);
    ASSERT_NE(sn, nullptr) << PhaseName(p);
    ASSERT_NE(pn, nullptr) << PhaseName(p);
    EXPECT_TRUE(sn->InclusiveIo() == pn->InclusiveIo())
        << PhaseName(p) << ": serial " << sn->InclusiveIo().ToString()
        << " parallel " << pn->InclusiveIo().ToString();
  }
}

TEST(SpanTreeTest, NullContextIsByteIdentical) {
  JoinInputs in = PaddedInputs();
  PartitionRun plain = RunPartitionJoin(in, nullptr, 1);
  ExecContext ctx;
  PartitionRun traced = RunPartitionJoin(in, &ctx, 1);

  EXPECT_TRUE(plain.stats.io == traced.stats.io)
      << "plain: " << plain.stats.io.ToString()
      << " traced: " << traced.stats.io.ToString();
  EXPECT_EQ(plain.stats.output_tuples, traced.stats.output_tuples);
  EXPECT_EQ(plain.out_pages, traced.out_pages);
  ASSERT_EQ(plain.out_tuples.size(), traced.out_tuples.size());
  for (size_t i = 0; i < plain.out_tuples.size(); ++i) {
    EXPECT_TRUE(plain.out_tuples[i] == traced.out_tuples[i]) << "tuple " << i;
  }
}

// ---------------------------------------------------------------------
// ExplainAnalyze rendering
// ---------------------------------------------------------------------

TEST(ExplainTest, SerialAndFourThreadRunsRenderIdenticalIoColumns) {
  JoinInputs in = PaddedInputs();
  ExecContext serial_ctx;
  RunPartitionJoin(in, &serial_ctx, 1);
  ExecContext parallel_ctx;
  RunPartitionJoin(in, &parallel_ctx, 4);

  ExplainOptions opts;
  opts.include_timing = false;  // wall-clock is the one nondeterministic axis
  std::string serial = ExplainAnalyze(serial_ctx, opts);
  std::string parallel = ExplainAnalyze(parallel_ctx, opts);
  EXPECT_EQ(TableOnly(serial), TableOnly(parallel));
}

TEST(ExplainTest, MatchesGoldenSpanTree) {
  JoinInputs in = PaddedInputs();
  ExecContext ctx;
  RunPartitionJoin(in, &ctx, 1);

  ExplainOptions opts;
  opts.include_timing = false;
  // Golden output. Deterministic because the data is seeded, the per-file
  // head model classifies I/O independently of scheduling, and timing
  // columns are disabled. Regenerate by printing TableOnly(...) if the
  // executor's I/O pattern legitimately changes.
  const std::string expected =
      "phase              est cost  act cost  random  seq\n"
      "partition join         88.0     146.0      13   81\n"
      "  chooseIntervals         -      16.0       1   11\n"
      "    sampling           16.0      16.0       1   11\n"
      "  partitioning r          -      40.0       4   20\n"
      "  partitioning s          -      22.0       4    2\n"
      "  joinPartitions       72.0      68.0       4   48\n"
      "TOTAL                     -     146.0      13   81\n";
  EXPECT_EQ(TableOnly(ExplainAnalyze(ctx, opts)), expected);
}

TEST(ExplainTest, ExecuteVtJoinShowsPlanPhaseAndPlannedCost) {
  JoinInputs in = PaddedInputs();
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
  auto layout_or = DeriveNaturalJoinLayout(TestSchema(), SSchema());
  ASSERT_TRUE(layout_or.ok());
  StoredRelation out(&disk, layout_or.value().output, "out");

  ExecContext ctx;
  VtJoinOptions options;
  options.buffer_pages = 4;
  auto stats_or = ExecuteVtJoin(r.get(), s.get(), &out, options, &ctx);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();

  EXPECT_NE(ctx.tracer().root().FindPhase(Phase::kPlan), nullptr);
  std::string rendered = ExplainAnalyze(ctx);
  EXPECT_NE(rendered.find("plan"), std::string::npos);
  EXPECT_NE(rendered.find("TOTAL"), std::string::npos);
  EXPECT_NE(rendered.find("planned_cost"), std::string::npos);
  EXPECT_NE(rendered.find("planned_algorithm"), std::string::npos);
  // The planner's estimate for the chosen algorithm appears on its root
  // span (est cost column is not all "-").
  EXPECT_TRUE(stats_or.value().Has(Metric::kPlannedCost));
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

TEST(MetricsTest, RegistryDistinguishesUnsetFromZero) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.Has(Metric::kPartitions));
  EXPECT_EQ(reg.Get(Metric::kPartitions), 0.0);
  reg.Set(Metric::kPartitions, 0.0);
  EXPECT_TRUE(reg.Has(Metric::kPartitions));
  reg.Add(Metric::kSamples, 2.0);
  reg.Add(Metric::kSamples, 3.0);
  EXPECT_EQ(reg.Get(Metric::kSamples), 5.0);
  EXPECT_EQ(reg.size(), 2u);

  MetricsRegistry other;
  other.Set(Metric::kSamples, 7.0);
  other.Set(Metric::kOverflowChunks, 1.0);
  reg.Merge(other);
  EXPECT_EQ(reg.Get(Metric::kSamples), 7.0);
  EXPECT_TRUE(reg.Has(Metric::kOverflowChunks));
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsTest, DescribeDocumentsEveryDeclaredMetric) {
  std::string table = MetricsRegistry::Describe();
  for (const MetricDef& def : AllMetricDefs()) {
    EXPECT_NE(table.find(def.name), std::string::npos) << def.name;
    EXPECT_NE(table.find(def.doc), std::string::npos) << def.name;
  }
  EXPECT_NE(table.find("| Metric | Unit | Emitted by | Description |"),
            std::string::npos);
}

TEST(MetricsTest, FindMetricByNameRoundTrips) {
  for (const MetricDef& def : AllMetricDefs()) {
    const MetricDef* found = FindMetricByName(def.name);
    ASSERT_NE(found, nullptr) << def.name;
    EXPECT_EQ(found->id, def.id);
  }
  EXPECT_EQ(FindMetricByName("no_such_metric"), nullptr);
}

/// Every metric an executor emits must round-trip through the declaration
/// table: its def is findable by name and maps back to the same id. (The
/// typed registry makes undeclared metrics unrepresentable; this guards
/// the name table staying consistent with the enum.)
void ExpectAllDeclared(const JoinRunStats& stats, const std::string& who) {
  size_t emitted = 0;
  stats.metrics.ForEach([&](const MetricDef& def, double value) {
    ++emitted;
    const MetricDef* found = FindMetricByName(def.name);
    ASSERT_NE(found, nullptr) << who << ": metric '" << def.name
                              << "' missing from the name table";
    EXPECT_EQ(found->id, def.id) << who;
    EXPECT_EQ(stats.metrics.Get(def.id), value) << who << ": " << def.name;
  });
  EXPECT_GT(emitted, 0u) << who;
}

TEST(MetricsTest, NoExecutorEmitsUndeclaredMetrics) {
  JoinInputs in = PaddedInputs();
  auto layout_or = DeriveNaturalJoinLayout(TestSchema(), SSchema());
  ASSERT_TRUE(layout_or.ok());
  const Schema out_schema = layout_or.value().output;

  struct Case {
    const char* name;
    StatusOr<JoinRunStats> (*run)(StoredRelation*, StoredRelation*,
                                  StoredRelation*, const VtJoinOptions&,
                                  ExecContext*);
  };
  for (const Case& c :
       {Case{"nested_loop", &NestedLoopVtJoin},
        Case{"sort_merge", &SortMergeVtJoin},
        Case{"indexed", &IndexedVtJoin},
        Case{"planner", &ExecuteVtJoin}}) {
    Disk disk;
    auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
    auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
    StoredRelation out(&disk, out_schema, "out");
    VtJoinOptions options;
    options.buffer_pages = 8;  // the indexed join's minimum
    auto stats_or = c.run(r.get(), s.get(), &out, options, nullptr);
    ASSERT_TRUE(stats_or.ok()) << c.name << ": "
                               << stats_or.status().ToString();
    ExpectAllDeclared(stats_or.value(), c.name);
  }

  {
    // Partition join in parallel mode (emits the morsel metrics too).
    Disk disk;
    auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
    auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
    StoredRelation out(&disk, out_schema, "out");
    PartitionJoinOptions options;
    options.buffer_pages = 4;
    Scheduler scheduler(SchedulerConfig{4, /*morsel_pages=*/4});
    ExecContext pctx;
    pctx.SetScheduler(&scheduler);
    auto stats_or = PartitionVtJoin(r.get(), s.get(), &out, options, &pctx);
    ASSERT_TRUE(stats_or.ok());
    ExpectAllDeclared(stats_or.value(), "partition");
  }

  {
    // Coalesce (same registry, different operator family).
    Disk disk;
    auto in_rel = MakeRelation(&disk, TestSchema(), in.r_tuples, "cin");
    StoredRelation out(&disk, TestSchema(), "cout");
    PartitionJoinOptions options;
    options.buffer_pages = 4;
    auto stats_or = PartitionCoalesce(in_rel.get(), &out, options, nullptr);
    ASSERT_TRUE(stats_or.ok());
    ExpectAllDeclared(stats_or.value(), "coalesce");
  }
}

// ---------------------------------------------------------------------
// ResultWriter (satellite: failed appends must not count)
// ---------------------------------------------------------------------

TEST(ResultWriterTest, FailedAppendIsNotCounted) {
  Disk disk;
  StoredRelation out(&disk, TestSchema(), "out");
  ResultWriter writer(&out);

  // A record larger than one page cannot be appended; the writer must
  // surface the error and leave the count untouched.
  Tuple oversized = T(1, std::string(1 << 16, 'x'), 0, 1);
  Status st = writer.EmitAssembled(oversized);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(writer.count(), 0u);

  TEMPO_EXPECT_OK(writer.EmitAssembled(T(2, "ok", 0, 1)));
  EXPECT_EQ(writer.count(), 1u);
  TEMPO_EXPECT_OK(writer.Finish());
  EXPECT_EQ(out.num_tuples(), 1u);
}

// ---------------------------------------------------------------------
// Incremental view maintenance under tracing
// ---------------------------------------------------------------------

TEST(ViewTraceTest, BuildAndMaintenanceRunUnderSpans) {
  // Wide pads force a multi-partition plan, so the build actually samples.
  Random rng(13);
  std::string pad(120, 'r');
  std::vector<Tuple> r_tuples;
  for (const Tuple& t : RandomTuples(rng, 300, 20, 400, 0.3)) {
    r_tuples.push_back(
        T(t.value(0).AsInt64(), pad, t.interval().start(), t.interval().end()));
  }
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 120, 20, 400, 0.3)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), "s", t.interval().start(),
                         t.interval().end()));
  }
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");

  ExecContext ctx;
  MaterializedVtJoinView view(&disk, "view");
  IoStats before = disk.accountant().stats();
  TEMPO_ASSERT_OK(view.Build(r.get(), s.get(), /*buffer_pages=*/8,
                             /*seed=*/42, &ctx));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto ins,
                             view.InsertR(T(3, "new", 10, 20), &ctx));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto del,
                             view.DeleteR(T(3, "new", 10, 20), &ctx));
  IoStats charged = disk.accountant().stats() - before;
  (void)ins;
  (void)del;

  const SpanNode& root = ctx.tracer().root();
  EXPECT_NE(root.FindPhase(Phase::kViewBuild), nullptr);
  EXPECT_NE(root.FindPhase(Phase::kViewInsert), nullptr);
  EXPECT_NE(root.FindPhase(Phase::kViewDelete), nullptr);
  // Build plans via the sampler, so its sampling I/O nests under the
  // build span.
  EXPECT_NE(root.FindPhase(Phase::kViewBuild)->FindPhase(Phase::kSampling),
            nullptr);
  // All charged I/O between the snapshots happened inside the three
  // spans (build, insert, delete) — the tree accounts for every page.
  EXPECT_TRUE(ctx.tracer().TotalIo() == charged)
      << "tree: " << ctx.tracer().TotalIo().ToString()
      << " charged: " << charged.ToString();
}

}  // namespace
}  // namespace tempo
