// Tests for the concurrent query service: strict-FIFO admission control
// on the shared buffer pool, queued-query cancellation, the JoinRequest
// facade, the thread-count conflict rule, and the headline guarantee that
// a query's output pages and charged IoStats are byte-identical to a
// standalone run at any concurrency level.

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "join/reference_join.h"
#include "parallel/scheduler.h"
#include "service/query_service.h"
#include "test_util.h"
#include "workload/generator.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"sval", ValueType::kString}});
}

Tuple S(int64_t key, const std::string& v, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(v)}, Interval(vs, ve));
}

// ---------------------------------------------------------------------
// SharedBufferPool admission
// ---------------------------------------------------------------------

TEST(SharedBufferPoolTest, OverCapacityRequestFailsFastNotDeadlocks) {
  Disk disk;
  SharedBufferPool pool(&disk, 8);
  auto ticket = pool.Request(9);
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kResourceExhausted)
      << ticket.status().ToString();
  // The impossible request must not occupy the queue.
  EXPECT_EQ(pool.queue_depth(), 0u);
  // The pool still works afterwards.
  TEMPO_ASSERT_OK_AND_ASSIGN(auto ok_ticket, pool.Request(8));
  EXPECT_TRUE(ok_ticket->granted());
}

TEST(SharedBufferPoolTest, ZeroPageRequestIsInvalid) {
  Disk disk;
  SharedBufferPool pool(&disk, 8);
  auto ticket = pool.Request(0);
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kInvalidArgument);
}

TEST(SharedBufferPoolTest, StrictFifoFrontBlocksSmallerLaterRequests) {
  Disk disk;
  SharedBufferPool pool(&disk, 10);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto a, pool.Request(6));
  EXPECT_TRUE(a->granted());  // 4 pages left
  TEMPO_ASSERT_OK_AND_ASSIGN(auto b, pool.Request(6));
  EXPECT_FALSE(b->granted());  // does not fit
  TEMPO_ASSERT_OK_AND_ASSIGN(auto c, pool.Request(2));
  // c would fit the 4 free pages, but strict FIFO means the blocked front
  // (b) holds it back — that is the no-starvation guarantee.
  EXPECT_FALSE(c->granted());
  EXPECT_EQ(pool.queue_depth(), 2u);

  a->Release();
  // b (6 pages) grants, then c (2 pages) fits the remaining 4 too.
  EXPECT_TRUE(b->granted());
  EXPECT_TRUE(c->granted());
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.available_pages(), 2u);
}

TEST(SharedBufferPoolTest, FifoFairnessUnderEightQueuedRequests) {
  Disk disk;
  SharedBufferPool pool(&disk, 4);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto holder, pool.Request(4));
  EXPECT_TRUE(holder->granted());

  std::vector<std::unique_ptr<AdmissionTicket>> queued;
  for (int i = 0; i < 8; ++i) {
    TEMPO_ASSERT_OK_AND_ASSIGN(auto t, pool.Request(4));
    EXPECT_FALSE(t->granted());
    queued.push_back(std::move(t));
  }
  EXPECT_EQ(pool.queue_depth(), 8u);
  EXPECT_EQ(pool.queue_peak(), 8u);

  // Releasing the holder admits exactly the oldest waiter, and so on down
  // the queue in submission order.
  holder->Release();
  for (size_t i = 0; i < queued.size(); ++i) {
    EXPECT_TRUE(queued[i]->granted()) << "ticket " << i;
    for (size_t j = i + 1; j < queued.size(); ++j) {
      EXPECT_FALSE(queued[j]->granted())
          << "ticket " << j << " admitted out of order";
    }
    queued[i]->Release();
  }
  EXPECT_EQ(pool.available_pages(), 4u);
}

TEST(SharedBufferPoolTest, CancellingQueuedTicketUnblocksThoseBehindIt) {
  Disk disk;
  SharedBufferPool pool(&disk, 4);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto holder, pool.Request(4));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto b, pool.Request(4));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto c, pool.Request(2));
  EXPECT_EQ(pool.queue_depth(), 2u);

  // Cancelling the queued front re-evaluates the queue...
  b->Cancel();
  EXPECT_EQ(pool.queue_depth(), 1u);
  EXPECT_FALSE(c->granted());  // ...but nothing is free yet.
  EXPECT_EQ(b->Wait().code(), StatusCode::kCancelled);

  holder->Release();
  EXPECT_TRUE(c->granted());
  TEMPO_ASSERT_OK(c->Wait());
}

// ---------------------------------------------------------------------
// Scheduler config resolution (the one thread knob)
// ---------------------------------------------------------------------

struct ScopedEnv {
  explicit ScopedEnv(const char* value) {
    if (value == nullptr) {
      unsetenv("TEMPO_BENCH_THREADS");
    } else {
      setenv("TEMPO_BENCH_THREADS", value, 1);
    }
  }
  ~ScopedEnv() { unsetenv("TEMPO_BENCH_THREADS"); }
};

TEST(SchedulerConfigTest, UnsetEnvDefersToRequestOrSerial) {
  ScopedEnv env(nullptr);
  TEMPO_ASSERT_OK_AND_ASSIGN(SchedulerConfig c0,
                             ResolveSchedulerConfig(SchedulerConfig{0, 4}));
  EXPECT_EQ(c0.num_threads, 1u);
  TEMPO_ASSERT_OK_AND_ASSIGN(SchedulerConfig c5,
                             ResolveSchedulerConfig(SchedulerConfig{5, 4}));
  EXPECT_EQ(c5.num_threads, 5u);
}

TEST(SchedulerConfigTest, EnvDecidesWhenCallerLeavesItOpen) {
  ScopedEnv env("3");
  TEMPO_ASSERT_OK_AND_ASSIGN(SchedulerConfig c,
                             ResolveSchedulerConfig(SchedulerConfig{0, 4}));
  EXPECT_EQ(c.num_threads, 3u);
}

TEST(SchedulerConfigTest, AgreeingKnobsAreFine) {
  ScopedEnv env("3");
  TEMPO_ASSERT_OK_AND_ASSIGN(SchedulerConfig c,
                             ResolveSchedulerConfig(SchedulerConfig{3, 4}));
  EXPECT_EQ(c.num_threads, 3u);
}

TEST(SchedulerConfigTest, ConflictingKnobsAreAnError) {
  ScopedEnv env("3");
  auto c = ResolveSchedulerConfig(SchedulerConfig{2, 4});
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(c.status().message().find("TEMPO_BENCH_THREADS"),
            std::string::npos)
      << c.status().ToString();
}

// ---------------------------------------------------------------------
// JoinRequest facade
// ---------------------------------------------------------------------

struct FacadeInputs {
  std::vector<Tuple> r_tuples;
  std::vector<Tuple> s_tuples;
  std::vector<Tuple> expected;
};

FacadeInputs MakeFacadeInputs() {
  FacadeInputs in;
  Random rng(17);
  in.r_tuples = RandomTuples(rng, 300, 25, 500, 0.25);
  for (const Tuple& t : RandomTuples(rng, 260, 25, 500, 0.25)) {
    in.s_tuples.push_back(S(t.value(0).AsInt64(), t.value(1).AsString(),
                            t.interval().start(), t.interval().end()));
  }
  auto expected = ReferenceValidTimeJoin(TestSchema(), in.r_tuples, SSchema(),
                                         in.s_tuples);
  if (expected.ok()) in.expected = *std::move(expected);
  return in;
}

TEST(JoinRequestTest, EveryExecutorMatchesTheReference) {
  FacadeInputs in = MakeFacadeInputs();
  ASSERT_FALSE(in.expected.empty());
  for (JoinExecutor executor :
       {JoinExecutor::kAuto, JoinExecutor::kNestedLoop,
        JoinExecutor::kSortMerge, JoinExecutor::kIndexed,
        JoinExecutor::kPartition, JoinExecutor::kReference,
        JoinExecutor::kInMemoryRadix}) {
    Disk disk;
    auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
    auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
    TEMPO_ASSERT_OK_AND_ASSIGN(
        NaturalJoinLayout layout,
        DeriveNaturalJoinLayout(TestSchema(), SSchema()));
    StoredRelation out(&disk, layout.output, "out");
    JoinRequest request;
    request.From(r.get(), s.get()).Using(executor).BufferPages(8).On({"key"});
    if (executor == JoinExecutor::kInMemoryRadix) {
      request.RadixBudgetBytes(uint64_t{1} << 20);  // inputs must fit
    }
    auto stats = RunJoin(request, &out);
    ASSERT_TRUE(stats.ok()) << JoinExecutorName(executor) << ": "
                            << stats.status().ToString();
    TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
    EXPECT_TRUE(SameTupleMultiset(actual, in.expected))
        << JoinExecutorName(executor) << " actual=" << actual.size()
        << " expected=" << in.expected.size();
    EXPECT_EQ(stats->output_tuples, in.expected.size())
        << JoinExecutorName(executor);
  }
}

TEST(JoinRequestTest, RejectsMalformedRequests) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), {T(1, "a", 0, 5)}, "r");
  auto s = MakeRelation(&disk, SSchema(), {S(1, "b", 0, 5)}, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  StoredRelation out(&disk, layout.output, "out");

  JoinRequest no_inputs;
  EXPECT_EQ(RunJoin(no_inputs, &out).status().code(),
            StatusCode::kInvalidArgument);

  JoinRequest wrong_attrs;
  wrong_attrs.From(r.get(), s.get()).On({"key", "missing"});
  auto st = RunJoin(wrong_attrs, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.status().message().find("missing"), std::string::npos);

  JoinRequest self_output;
  self_output.From(r.get(), s.get());
  EXPECT_EQ(RunJoin(self_output, r.get()).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------

struct ServiceFixture {
  Disk disk;
  std::unique_ptr<StoredRelation> r;
  std::unique_ptr<StoredRelation> s;
  std::vector<Tuple> expected;

  ServiceFixture() {
    Random rng(23);
    std::vector<Tuple> r_tuples = RandomTuples(rng, 400, 30, 600, 0.25);
    std::vector<Tuple> s_tuples;
    for (const Tuple& t : RandomTuples(rng, 350, 30, 600, 0.25)) {
      s_tuples.push_back(S(t.value(0).AsInt64(), t.value(1).AsString(),
                           t.interval().start(), t.interval().end()));
    }
    r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
    s = MakeRelation(&disk, SSchema(), s_tuples, "s");
    auto expected_or =
        ReferenceValidTimeJoin(TestSchema(), r_tuples, SSchema(), s_tuples);
    if (expected_or.ok()) expected = *std::move(expected_or);
  }
};

TEST(QueryServiceTest, SubmitFailsFastWhenReservationExceedsPool) {
  ServiceFixture f;
  QueryServiceOptions options;
  options.pool_pages = 8;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                             QueryService::Create(&f.disk, options));
  Session session = service->OpenSession();
  JoinRequest request;
  request.From(f.r.get(), f.s.get()).BufferPages(16);
  auto handle = session.Submit(request);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kResourceExhausted)
      << handle.status().ToString();
  // The pool is not wedged: a feasible query still runs.
  JoinRequest ok_request;
  ok_request.From(f.r.get(), f.s.get()).BufferPages(8);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto ok_handle, session.Submit(ok_request));
  TEMPO_ASSERT_OK(ok_handle->Wait());
  EXPECT_EQ(ok_handle->stats().output_tuples, f.expected.size());
}

TEST(QueryServiceTest, CancellingQueuedQueryReleasesItsSlot) {
  ServiceFixture f;
  QueryServiceOptions options;
  options.pool_pages = 8;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                             QueryService::Create(&f.disk, options));
  Session session = service->OpenSession();

  // Occupy the whole pool so every submitted query is deterministically
  // stuck in the admission queue.
  TEMPO_ASSERT_OK_AND_ASSIGN(auto blocker, service->pool()->Request(8));
  ASSERT_TRUE(blocker->granted());

  JoinRequest request;
  request.From(f.r.get(), f.s.get()).BufferPages(8);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto victim, session.Submit(request));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto survivor, session.Submit(request));
  EXPECT_EQ(service->pool()->queue_depth(), 2u);

  victim->Cancel();
  EXPECT_EQ(victim->Wait().code(), StatusCode::kCancelled);
  EXPECT_EQ(service->pool()->queue_depth(), 1u);

  // The cancelled query's slot is gone from the queue; releasing the
  // blocker admits the survivor, which completes normally.
  blocker->Release();
  TEMPO_ASSERT_OK(survivor->Wait());
  EXPECT_EQ(survivor->stats().output_tuples, f.expected.size());

  MetricsRegistry metrics = service->SnapshotMetrics();
  EXPECT_EQ(metrics.Get(Metric::kQueriesCancelled), 1.0);
  EXPECT_EQ(metrics.Get(Metric::kQueriesCompleted), 1.0);
}

TEST(QueryServiceTest, EightQueuedQueriesAllCompleteFifo) {
  ServiceFixture f;
  QueryServiceOptions options;
  options.pool_pages = 8;  // exactly one query's reservation
  TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                             QueryService::Create(&f.disk, options));
  TEMPO_ASSERT_OK(service->Register(f.r.get()));
  TEMPO_ASSERT_OK(service->Register(f.s.get()));
  Session session = service->OpenSession();
  TEMPO_ASSERT_OK_AND_ASSIGN(StoredRelation * r, session.Relation("r"));
  TEMPO_ASSERT_OK_AND_ASSIGN(StoredRelation * s, session.Relation("s"));

  TEMPO_ASSERT_OK_AND_ASSIGN(auto blocker, service->pool()->Request(8));
  std::vector<std::unique_ptr<QueryHandle>> handles;
  for (int i = 0; i < 8; ++i) {
    JoinRequest request;
    request.From(r, s).BufferPages(8).Using(
        i % 2 == 0 ? JoinExecutor::kPartition : JoinExecutor::kSortMerge);
    TEMPO_ASSERT_OK_AND_ASSIGN(auto h, session.Submit(request));
    handles.push_back(std::move(h));
  }
  EXPECT_EQ(service->pool()->queue_depth(), 8u);
  blocker->Release();

  for (size_t i = 0; i < handles.size(); ++i) {
    TEMPO_ASSERT_OK(handles[i]->Wait());
    EXPECT_EQ(handles[i]->stats().output_tuples, f.expected.size())
        << "query " << i;
  }
  MetricsRegistry metrics = service->SnapshotMetrics();
  EXPECT_EQ(metrics.Get(Metric::kQueriesCompleted), 8.0);
  EXPECT_EQ(metrics.Get(Metric::kAdmissionQueuePeak), 8.0);
}

// ---------------------------------------------------------------------
// Determinism: concurrent service runs must be byte-identical to a
// standalone run — same output pages, same charged IoStats — at every
// scheduler thread count. This is the test the TSan job hammers.
// ---------------------------------------------------------------------

struct RunImage {
  std::vector<Page> pages;
  IoStats io;
  uint64_t output_tuples = 0;
};

RunImage ImageOf(QueryHandle* handle) {
  RunImage image;
  image.io = handle->stats().io;
  image.output_tuples = handle->stats().output_tuples;
  StoredRelation* out = handle->output();
  image.pages.resize(out->num_pages());
  for (uint32_t p = 0; p < out->num_pages(); ++p) {
    auto st = out->ReadPage(p, &image.pages[p]);
    if (!st.ok()) ADD_FAILURE() << st.ToString();
  }
  return image;
}

void ExpectSameImage(const RunImage& a, const RunImage& b, const char* what) {
  EXPECT_EQ(a.output_tuples, b.output_tuples) << what;
  EXPECT_TRUE(a.io == b.io) << what << ": " << a.io.ToString() << " vs "
                            << b.io.ToString();
  ASSERT_EQ(a.pages.size(), b.pages.size()) << what;
  for (size_t p = 0; p < a.pages.size(); ++p) {
    EXPECT_EQ(std::memcmp(&a.pages[p], &b.pages[p], sizeof(Page)), 0)
        << what << ": output page " << p << " differs";
  }
}

TEST(QueryServiceTest, ConcurrentRunsByteIdenticalToSerialAtAnyThreadCount) {
  ServiceFixture f;
  const JoinExecutor executors[] = {JoinExecutor::kPartition,
                                    JoinExecutor::kSortMerge,
                                    JoinExecutor::kNestedLoop};

  // Reference images: one query at a time, serial scheduler.
  std::vector<RunImage> reference;
  {
    QueryServiceOptions options;
    options.pool_pages = 64;
    options.scheduler.num_threads = 1;
    TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                               QueryService::Create(&f.disk, options));
    Session session = service->OpenSession();
    for (JoinExecutor executor : executors) {
      JoinRequest request;
      request.From(f.r.get(), f.s.get()).Using(executor).BufferPages(8);
      TEMPO_ASSERT_OK_AND_ASSIGN(auto handle, session.Submit(request));
      TEMPO_ASSERT_OK(handle->Wait());
      reference.push_back(ImageOf(handle.get()));
      EXPECT_EQ(reference.back().output_tuples, f.expected.size());
    }
  }

  // Concurrent runs: all three executors in flight at once (the pool
  // admits them all), on shared worker pools of 2/4/8 threads.
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    QueryServiceOptions options;
    options.pool_pages = 64;
    options.scheduler.num_threads = threads;
    TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                               QueryService::Create(&f.disk, options));
    Session session = service->OpenSession();
    std::vector<std::unique_ptr<QueryHandle>> handles;
    for (JoinExecutor executor : executors) {
      JoinRequest request;
      request.From(f.r.get(), f.s.get()).Using(executor).BufferPages(8);
      TEMPO_ASSERT_OK_AND_ASSIGN(auto handle, session.Submit(request));
      handles.push_back(std::move(handle));
    }
    for (size_t i = 0; i < handles.size(); ++i) {
      TEMPO_ASSERT_OK(handles[i]->Wait());
      RunImage image = ImageOf(handles[i].get());
      ExpectSameImage(reference[i], image,
                      (std::string(JoinExecutorName(executors[i])) +
                       " @threads=" + std::to_string(threads))
                          .c_str());
    }
  }
}

TEST(QueryServiceTest, RegisterRejectsDuplicatesAndLookupMisses) {
  ServiceFixture f;
  QueryServiceOptions options;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                             QueryService::Create(&f.disk, options));
  TEMPO_ASSERT_OK(service->Register(f.r.get()));
  EXPECT_EQ(service->Register(f.r.get()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Lookup("nope").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tempo
